//! The transaction status machine.

use std::fmt;

/// The lifecycle states of an ASSET transaction (paper §2.1 and §4.2).
///
/// ```text
/// Initiated --begin--> Running --code returns--> Completed
///     |                   |                          |
///     |                   +-------- commit --> Committing --> Committed
///     |                   |                          |
///     +------- abort -> Aborting <---- abort --------+
///                           |
///                           v
///                        Aborted
/// ```
///
/// * *Initiated*: registered via `initiate`, not yet begun.
/// * *Running*: `begin` issued; the transaction's function is executing.
/// * *Completed*: the function returned; locks are **retained** and changes
///   are **not** durable until an explicit `commit`.
/// * *Committing* / *Aborting*: the §4.2 protocols are in progress. A
///   transaction that another transaction's abort marks as doomed sits in
///   *Aborting* until its own `commit`/`abort` call performs the undo steps.
/// * *Prepared*: durable-but-undecided distributed-commit participant
///   (DESIGN.md §14): its updates and a `Prepared` WAL record are forced,
///   locks are retained, and only the coordinator's decision may move it —
///   to *Committed* or through *Aborting* to *Aborted*. Survives restart.
/// * *Committed* / *Aborted*: terminal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TxnStatus {
    /// Registered but not yet executing.
    Initiated,
    /// Executing its function.
    Running,
    /// Function finished; awaiting commit/abort.
    Completed,
    /// Commit protocol in progress (may block on dependencies).
    Committing,
    /// Durable-but-undecided distributed-commit participant; awaiting the
    /// coordinator's decision, locks retained (DESIGN.md §14).
    Prepared,
    /// Terminal: effects durable, locks released.
    Committed,
    /// Abort requested or forced; undo pending or in progress.
    Aborting,
    /// Terminal: effects undone, locks released.
    Aborted,
}

impl TxnStatus {
    /// Has the transaction been terminated (committed or aborted)?
    #[inline]
    pub fn is_terminated(self) -> bool {
        matches!(self, TxnStatus::Committed | TxnStatus::Aborted)
    }

    /// Is the transaction *active* in the paper's sense — it has begun
    /// executing and has not terminated (running or completed)?
    #[inline]
    pub fn is_active(self) -> bool {
        matches!(
            self,
            TxnStatus::Running
                | TxnStatus::Completed
                | TxnStatus::Committing
                | TxnStatus::Prepared
                | TxnStatus::Aborting
        )
    }

    /// Has the transaction's code finished executing (successfully or not)?
    #[inline]
    pub fn is_complete(self) -> bool {
        matches!(
            self,
            TxnStatus::Completed
                | TxnStatus::Committing
                | TxnStatus::Prepared
                | TxnStatus::Committed
                | TxnStatus::Aborted
        )
    }

    /// Is the transaction doomed or gone — aborting or aborted?
    #[inline]
    pub fn is_abort_path(self) -> bool {
        matches!(self, TxnStatus::Aborting | TxnStatus::Aborted)
    }

    /// Is `next` a legal successor state of `self`?
    ///
    /// Used by debug assertions in the transaction manager; the status
    /// machine is the paper's, plus the rule that any non-terminal state may
    /// transition to `Aborting` (aborts can strike at any time, including
    /// before `begin`).
    pub fn can_transition_to(self, next: TxnStatus) -> bool {
        use TxnStatus::*;
        match (self, next) {
            (Initiated, Running) => true,
            (Running, Completed) => true,
            (Completed, Committing) => true,
            (Committing, Committed) => true,
            // distributed commit: a completed participant prepares; only the
            // coordinator's decision moves it out of Prepared (§14)
            (Completed | Committing, Prepared) => true,
            (Prepared, Committed) => true,
            (Prepared, Aborting) => true,
            // commit discovered a doomed transaction, or abort was called
            (Initiated | Running | Completed | Committing, Aborting) => true,
            (Aborting, Aborted) => true,
            // re-entrant commit retry keeps status at Committing
            (Committing, Committing) => true,
            _ => false,
        }
    }
}

impl fmt::Display for TxnStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TxnStatus::Initiated => "initiated",
            TxnStatus::Running => "running",
            TxnStatus::Completed => "completed",
            TxnStatus::Committing => "committing",
            TxnStatus::Prepared => "prepared",
            TxnStatus::Committed => "committed",
            TxnStatus::Aborting => "aborting",
            TxnStatus::Aborted => "aborted",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use TxnStatus::*;

    #[test]
    fn predicates() {
        assert!(Committed.is_terminated());
        assert!(Aborted.is_terminated());
        assert!(!Running.is_terminated());

        assert!(Running.is_active());
        assert!(Completed.is_active());
        assert!(!Initiated.is_active());
        assert!(!Committed.is_active());

        assert!(Completed.is_complete());
        assert!(Committed.is_complete());
        assert!(!Running.is_complete());

        assert!(Aborting.is_abort_path());
        assert!(Aborted.is_abort_path());
        assert!(!Committing.is_abort_path());

        assert!(Prepared.is_active());
        assert!(Prepared.is_complete());
        assert!(!Prepared.is_terminated());
        assert!(!Prepared.is_abort_path());
    }

    #[test]
    fn legal_transitions() {
        assert!(Initiated.can_transition_to(Running));
        assert!(Running.can_transition_to(Completed));
        assert!(Completed.can_transition_to(Committing));
        assert!(Committing.can_transition_to(Committed));
        assert!(Committing.can_transition_to(Aborting));
        assert!(Aborting.can_transition_to(Aborted));
        assert!(Initiated.can_transition_to(Aborting));
        assert!(Completed.can_transition_to(Prepared));
        assert!(Committing.can_transition_to(Prepared));
        assert!(Prepared.can_transition_to(Committed));
        assert!(Prepared.can_transition_to(Aborting));
    }

    #[test]
    fn illegal_transitions() {
        assert!(!Committed.can_transition_to(Aborting));
        assert!(!Aborted.can_transition_to(Running));
        assert!(!Initiated.can_transition_to(Completed));
        assert!(!Running.can_transition_to(Committing));
        assert!(!Committed.can_transition_to(Committed));
        assert!(!Running.can_transition_to(Prepared));
        assert!(!Prepared.can_transition_to(Running));
        assert!(!Prepared.can_transition_to(Aborted));
    }

    #[test]
    fn display() {
        assert_eq!(Running.to_string(), "running");
        assert_eq!(Committed.to_string(), "committed");
    }
}

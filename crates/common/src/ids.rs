//! Identifiers: transaction ids, object ids, and log sequence numbers.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A transaction identifier.
///
/// The paper's primitives return the *null tid* to signal failure (e.g.
/// `initiate` under resource exhaustion) and as the `parent()` of a
/// top-level transaction. [`Tid::NULL`] plays that role; the Rust-level API
/// additionally uses [`Result`](crate::Result) so that callers do not have
/// to test for null in the common case.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tid(pub u64);

impl Tid {
    /// The null transaction id.
    pub const NULL: Tid = Tid(0);

    /// Does this tid denote "no transaction"?
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Raw value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "t-null")
        } else {
            write!(f, "t{}", self.0)
        }
    }
}

impl fmt::Display for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A persistent object identifier.
///
/// ASSET locks, permits and delegates at object granularity (the paper notes
/// that operation-granularity delegation is possible but does not pursue it;
/// neither do we).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Oid(pub u64);

impl Oid {
    /// Raw value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ob{}", self.0)
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A log sequence number: the byte offset of a record in the write-ahead log.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Lsn(pub u64);

impl Lsn {
    /// The LSN before any record.
    pub const ZERO: Lsn = Lsn(0);
}

impl fmt::Debug for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lsn:{}", self.0)
    }
}

/// A monotonically increasing generator for [`Tid`]s (or any u64 id space).
///
/// Starts at 1 so that 0 remains the null id.
#[derive(Debug)]
pub struct IdGen {
    next: AtomicU64,
}

impl IdGen {
    /// New generator whose first issued id is 1.
    pub fn new() -> Self {
        IdGen {
            next: AtomicU64::new(1),
        }
    }

    /// New generator whose first issued id is `first`.
    pub fn starting_at(first: u64) -> Self {
        IdGen {
            next: AtomicU64::new(first.max(1)),
        }
    }

    /// Issue the next id.
    pub fn next(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Ensure future ids are strictly greater than `floor` (used by restart
    /// recovery so that new transactions never reuse a logged tid).
    pub fn bump_past(&self, floor: u64) {
        let mut cur = self.next.load(Ordering::Relaxed);
        while cur <= floor {
            match self.next.compare_exchange_weak(
                cur,
                floor + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }
}

impl Default for IdGen {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn null_tid() {
        assert!(Tid::NULL.is_null());
        assert!(!Tid(7).is_null());
        assert_eq!(format!("{:?}", Tid::NULL), "t-null");
        assert_eq!(format!("{}", Tid(3)), "t3");
    }

    #[test]
    fn oid_display() {
        assert_eq!(format!("{}", Oid(42)), "ob42");
    }

    #[test]
    fn idgen_starts_at_one() {
        let g = IdGen::new();
        assert_eq!(g.next(), 1);
        assert_eq!(g.next(), 2);
    }

    #[test]
    fn idgen_bump_past() {
        let g = IdGen::new();
        g.bump_past(100);
        assert_eq!(g.next(), 101);
        // bumping below the current value is a no-op
        g.bump_past(5);
        assert_eq!(g.next(), 102);
    }

    #[test]
    fn idgen_unique_across_threads() {
        let g = Arc::new(IdGen::new());
        let mut handles = vec![];
        for _ in 0..8 {
            let g = Arc::clone(&g);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| g.next()).collect::<Vec<_>>()
            }));
        }
        let mut all = HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert!(all.insert(id), "duplicate id {id}");
            }
        }
        assert_eq!(all.len(), 8000);
    }

    #[test]
    fn lsn_ordering() {
        assert!(Lsn(1) < Lsn(2));
        assert_eq!(Lsn::ZERO, Lsn(0));
    }
}

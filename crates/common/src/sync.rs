//! Lock primitives, switchable to loom's model-checked versions.
//!
//! Runtime code imports `Mutex`/`Condvar`/`RwLock` from here instead of
//! `parking_lot`. In a normal build the re-exports below are zero-cost
//! aliases for parking_lot, so nothing changes. Under `RUSTFLAGS="--cfg
//! loom"` the same names resolve to thin wrappers over `loom::sync`, and
//! every interleaving of the code built on them can be explored by
//! [loom](https://docs.rs/loom)'s model checker (the `loom_*` integration
//! tests; see DESIGN.md §11).
//!
//! The wrappers present parking_lot's API (guards returned directly, no
//! poisoning, `Condvar::wait(&mut guard)`): call sites stay identical in
//! both builds, which is the point — the model checks the code that ships.

#[cfg(not(loom))]
pub use parking_lot::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
};

#[cfg(loom)]
pub use self::loom_shim::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
};

#[cfg(loom)]
mod loom_shim {
    use std::time::Instant;

    pub type MutexGuard<'a, T> = loom::sync::MutexGuard<'a, T>;
    pub type RwLockReadGuard<'a, T> = loom::sync::RwLockReadGuard<'a, T>;
    pub type RwLockWriteGuard<'a, T> = loom::sync::RwLockWriteGuard<'a, T>;

    /// parking_lot-compatible mutex over [`loom::sync::Mutex`]: `lock`
    /// hands back the guard directly. Loom models no panics-while-locked,
    /// so the poison arm only recovers the guard.
    #[derive(Debug, Default)]
    pub struct Mutex<T>(loom::sync::Mutex<T>);

    impl<T> Mutex<T> {
        pub fn new(t: T) -> Self {
            Mutex(loom::sync::Mutex::new(t))
        }

        pub fn lock(&self) -> MutexGuard<'_, T> {
            self.0.lock().unwrap_or_else(|e| e.into_inner())
        }

        pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
            self.0.try_lock().ok()
        }
    }

    /// parking_lot-compatible reader-writer lock over
    /// [`loom::sync::RwLock`].
    #[derive(Debug, Default)]
    pub struct RwLock<T>(loom::sync::RwLock<T>);

    impl<T> RwLock<T> {
        pub fn new(t: T) -> Self {
            RwLock(loom::sync::RwLock::new(t))
        }

        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            self.0.read().unwrap_or_else(|e| e.into_inner())
        }

        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            self.0.write().unwrap_or_else(|e| e.into_inner())
        }
    }

    /// Result of a timed wait, mirroring parking_lot's.
    #[derive(Debug, Clone, Copy)]
    pub struct WaitTimeoutResult(bool);

    impl WaitTimeoutResult {
        pub fn timed_out(&self) -> bool {
            self.0
        }
    }

    /// parking_lot-compatible condition variable over
    /// [`loom::sync::Condvar`]: `wait` reborrows the guard in place
    /// instead of consuming it.
    #[derive(Debug)]
    pub struct Condvar(loom::sync::Condvar);

    impl Default for Condvar {
        fn default() -> Self {
            Condvar::new()
        }
    }

    impl Condvar {
        pub fn new() -> Self {
            Condvar(loom::sync::Condvar::new())
        }

        pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
            // SAFETY: the guard is moved out of `*guard` for loom's
            // by-value wait and the reacquired guard is written back
            // before returning. Neither arm of `unwrap_or_else` can
            // panic (the Err arm recovers the guard from the poison
            // error), so no path observes the moved-out slot.
            unsafe {
                let g = std::ptr::read(guard);
                let g = self.0.wait(g).unwrap_or_else(|e| e.into_inner());
                std::ptr::write(guard, g);
            }
        }

        /// Loom does not model time: a model run explores interleavings,
        /// not clocks, so the deadline is ignored and the wait never
        /// reports a timeout. Timeout-dependent fallback paths are out of
        /// scope for loom tests by design.
        pub fn wait_until<T>(
            &self,
            guard: &mut MutexGuard<'_, T>,
            _deadline: Instant,
        ) -> WaitTimeoutResult {
            self.wait(guard);
            WaitTimeoutResult(false)
        }

        pub fn notify_all(&self) {
            self.0.notify_all();
        }

        pub fn notify_one(&self) {
            self.0.notify_one();
        }
    }
}

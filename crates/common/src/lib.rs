//! # asset-common
//!
//! Foundation types shared by every crate in the ASSET workspace: identifiers
//! for transactions and objects, lock modes and operation sets, dependency
//! types, transaction status, error types, and system configuration.
//!
//! The vocabulary follows the paper *ASSET: A System for Supporting Extended
//! Transactions* (Biliris, Dar, Gehani, Jagadish, Ramamritham; SIGMOD 1994):
//!
//! * a **transaction** is identified by a [`Tid`] and moves through the
//!   states of [`TxnStatus`];
//! * transactions invoke **operations** ([`Operation`]) on persistent
//!   **objects** identified by [`Oid`]s;
//! * conflicts are governed by [`LockMode`]s, relaxed by *permits* whose
//!   scope is an [`ObSet`] × [`OpSet`];
//! * inter-transaction constraints are [`DepType`] dependencies (CD/AD/GC).

#![warn(missing_docs)]

pub mod config;
pub mod error;
pub mod ids;
pub mod mode;
pub mod status;
pub mod sync;

pub use config::{Config, Durability};
pub use error::{AssetError, Result};
pub use ids::{Lsn, Oid, Tid};
pub use mode::{DepType, LockMode, ObSet, OpSet, Operation};
pub use status::TxnStatus;

//! Error types for the ASSET system.

use crate::ids::{Oid, Tid};
use crate::status::TxnStatus;
use std::fmt;
use std::io;

/// The unified result type of the workspace.
pub type Result<T> = std::result::Result<T, AssetError>;

/// Every way an ASSET operation can fail.
#[derive(Debug)]
pub enum AssetError {
    /// The tid does not name a known transaction (it may have been retired).
    TxnNotFound(Tid),
    /// A primitive was invoked in a state where it is meaningless, e.g.
    /// `begin` on a running transaction.
    InvalidState {
        /// The transaction involved.
        tid: Tid,
        /// Its status at the time.
        status: TxnStatus,
        /// The primitive that was attempted.
        op: &'static str,
    },
    /// `initiate` failed because the configured transaction limit is
    /// reached (the paper: "if no resources are available ... return an
    /// error code").
    ResourceExhausted {
        /// The configured cap.
        limit: usize,
    },
    /// `form_dependency` would create a cycle in the CD/AD waits-for
    /// subgraph, which would deadlock the commit protocol.
    DependencyCycle {
        /// The dependent transaction of the rejected edge.
        dependent: Tid,
        /// The transaction it would depend on.
        on: Tid,
    },
    /// The deadlock detector chose this transaction as a victim.
    Deadlock(Tid),
    /// A lock wait exceeded the configured timeout.
    LockTimeout {
        /// The waiting transaction.
        tid: Tid,
        /// The object it waited for.
        ob: Oid,
    },
    /// The transaction was aborted (by itself, by a dependency, or by the
    /// deadlock detector) and can no longer perform work.
    TxnAborted(Tid),
    /// The object does not exist in the store.
    ObjectNotFound(Oid),
    /// Malformed or truncated data encountered in the log or a page.
    Corrupt(String),
    /// Underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for AssetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssetError::TxnNotFound(t) => write!(f, "unknown transaction {t}"),
            AssetError::InvalidState { tid, status, op } => {
                write!(f, "{op} invalid for {tid} in state {status}")
            }
            AssetError::ResourceExhausted { limit } => {
                write!(f, "transaction limit reached ({limit})")
            }
            AssetError::DependencyCycle { dependent, on } => {
                write!(
                    f,
                    "dependency {dependent} -> {on} would create a commit deadlock cycle"
                )
            }
            AssetError::Deadlock(t) => write!(f, "{t} aborted as deadlock victim"),
            AssetError::LockTimeout { tid, ob } => {
                write!(f, "{tid} timed out waiting for a lock on {ob}")
            }
            AssetError::TxnAborted(t) => write!(f, "{t} is aborted"),
            AssetError::ObjectNotFound(ob) => write!(f, "object {ob} not found"),
            AssetError::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            AssetError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for AssetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AssetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for AssetError {
    fn from(e: io::Error) -> Self {
        AssetError::Io(e)
    }
}

impl AssetError {
    /// Is this error one of the "the transaction cannot continue" family,
    /// after which user code should stop issuing operations and let the
    /// abort complete?
    pub fn is_abort(&self) -> bool {
        matches!(
            self,
            AssetError::TxnAborted(_) | AssetError::Deadlock(_) | AssetError::LockTimeout { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = AssetError::TxnNotFound(Tid(4));
        assert_eq!(e.to_string(), "unknown transaction t4");

        let e = AssetError::InvalidState {
            tid: Tid(1),
            status: TxnStatus::Running,
            op: "begin",
        };
        assert!(e.to_string().contains("begin"));
        assert!(e.to_string().contains("running"));

        let e = AssetError::ResourceExhausted { limit: 8 };
        assert!(e.to_string().contains('8'));

        let e = AssetError::LockTimeout {
            tid: Tid(2),
            ob: Oid(9),
        };
        assert!(e.to_string().contains("ob9"));
    }

    #[test]
    fn io_conversion_and_source() {
        let ioe = io::Error::other("boom");
        let e: AssetError = ioe.into();
        assert!(matches!(e, AssetError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&AssetError::TxnNotFound(Tid(1))).is_none());
    }

    #[test]
    fn abort_family() {
        assert!(AssetError::TxnAborted(Tid(1)).is_abort());
        assert!(AssetError::Deadlock(Tid(1)).is_abort());
        assert!(AssetError::LockTimeout {
            tid: Tid(1),
            ob: Oid(1)
        }
        .is_abort());
        assert!(!AssetError::TxnNotFound(Tid(1)).is_abort());
    }
}

//! System configuration.

use std::path::PathBuf;
use std::time::Duration;

/// How strictly the log is forced to stable storage.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Durability {
    /// `fsync` on every commit record (the paper's implied behaviour).
    Strict,
    /// Buffered writes, flushed by the OS; crash loses the tail. Useful for
    /// benchmarks that measure everything but the disk.
    Buffered,
    /// Keep the log purely in memory; restart recovery works only within
    /// the process (used by tests that exercise the recovery algorithms
    /// without touching a filesystem).
    InMemory,
}

/// Configuration for a [`Database`](https://docs.rs/asset-core) instance.
#[derive(Clone, Debug)]
pub struct Config {
    /// Maximum number of live (not yet retired) transactions. `initiate`
    /// fails with `ResourceExhausted` beyond this — per §4.2 of the paper.
    pub max_transactions: usize,
    /// How long a lock request waits before failing with `LockTimeout`.
    /// `None` waits forever (deadlock detection still applies).
    pub lock_wait_timeout: Option<Duration>,
    /// How often the deadlock detector scans the waits-for graph.
    pub deadlock_check_interval: Duration,
    /// Page size in bytes for the heap file (must be a power of two,
    /// >= 512).
    pub page_size: usize,
    /// Number of pages the buffer pool caches.
    pub buffer_pool_pages: usize,
    /// Directory for the heap file and log; `None` selects fully in-memory
    /// operation (implies `Durability::InMemory`).
    pub data_dir: Option<PathBuf>,
    /// Log durability mode.
    pub durability: Durability,
    /// Spin iterations before a latch acquisition starts yielding.
    pub latch_spin_limit: u32,
    /// Number of lock-manager shards (the paper's double hashing realized
    /// as independently locked stripes of the OD/LRD/PD tables). `0` means
    /// auto: `next_power_of_two(4 × cores)`. Values are rounded up to a
    /// power of two and clamped to [1, 1024].
    pub lock_shards: usize,
    /// Number of transaction-table shards in the transaction manager.
    /// `0` means auto (same rule as [`lock_shards`](Config::lock_shards)).
    pub txn_shards: usize,
    /// Under [`Durability::Buffered`], appended log frames accumulate in a
    /// user-space buffer and are written to the OS only once this many
    /// bytes are pending (or on an explicit/commit-path flush) — one
    /// syscall per watermark instead of one per append.
    pub flush_watermark: usize,
    /// Number of executor worker threads driving state-machine
    /// transactions (`Database::submit`). `0` means auto: one worker per
    /// available core, clamped to [2, 64].
    pub exec_workers: usize,
    /// How long the group-commit log flusher waits after the first commit
    /// record of a window before issuing the window's single write+fsync,
    /// letting concurrent committers coalesce. `Duration::ZERO` (the
    /// default) flushes as soon as the flusher thread runs — whatever has
    /// queued by then still shares one sync.
    pub commit_flush_window: Duration,
    /// Fault-injection registry consulted by the failpoints compiled into
    /// the storage and core layers. Share one registry between a test
    /// harness and the database it drives to script failures; the default
    /// registry is fully disarmed. Only present with the `faults` feature.
    #[cfg(feature = "faults")]
    pub faults: std::sync::Arc<asset_faults::FaultRegistry>,
}

/// Round a shard-count request to a usable value: `0` selects
/// `next_power_of_two(4 × cores)`, everything else is rounded up to a
/// power of two; the result is clamped to `[1, 1024]`.
pub fn resolve_shards(requested: usize) -> usize {
    let n = if requested == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
            * 4
    } else {
        requested
    };
    n.clamp(1, 1024).next_power_of_two().min(1024)
}

impl Config {
    /// A fully in-memory configuration — the default for examples and tests.
    pub fn in_memory() -> Config {
        Config {
            max_transactions: 4096,
            lock_wait_timeout: Some(Duration::from_secs(10)),
            deadlock_check_interval: Duration::from_millis(50),
            page_size: 4096,
            buffer_pool_pages: 1024,
            data_dir: None,
            durability: Durability::InMemory,
            latch_spin_limit: 64,
            lock_shards: 0,
            txn_shards: 0,
            flush_watermark: 64 * 1024,
            exec_workers: 0,
            commit_flush_window: Duration::ZERO,
            #[cfg(feature = "faults")]
            faults: Default::default(),
        }
        .validate()
    }

    /// An on-disk configuration rooted at `dir`.
    pub fn on_disk(dir: impl Into<PathBuf>) -> Config {
        Config {
            data_dir: Some(dir.into()),
            durability: Durability::Strict,
            ..Config::in_memory()
        }
        .validate()
    }

    /// Clamp/verify invariants; panics on nonsensical values so that a bad
    /// configuration fails loudly at startup rather than corrupting pages.
    fn validate(self) -> Config {
        assert!(
            self.page_size.is_power_of_two(),
            "page_size must be a power of two"
        );
        assert!(self.page_size >= 512, "page_size must be >= 512");
        assert!(self.max_transactions >= 1, "max_transactions must be >= 1");
        assert!(
            self.buffer_pool_pages >= 8,
            "buffer_pool_pages must be >= 8"
        );
        self
    }

    /// Builder-style: set the transaction cap.
    #[must_use]
    pub fn with_max_transactions(mut self, n: usize) -> Config {
        self.max_transactions = n;
        self.validate()
    }

    /// Builder-style: set the lock-wait timeout.
    #[must_use]
    pub fn with_lock_timeout(mut self, d: Option<Duration>) -> Config {
        self.lock_wait_timeout = d;
        self
    }

    /// Builder-style: set durability.
    #[must_use]
    pub fn with_durability(mut self, d: Durability) -> Config {
        self.durability = d;
        self
    }

    /// Builder-style: set the lock-manager shard count (`0` = auto).
    #[must_use]
    pub fn with_lock_shards(mut self, n: usize) -> Config {
        self.lock_shards = n;
        self
    }

    /// Builder-style: set the transaction-table shard count (`0` = auto).
    #[must_use]
    pub fn with_txn_shards(mut self, n: usize) -> Config {
        self.txn_shards = n;
        self
    }

    /// Builder-style: set the buffered-log flush watermark in bytes.
    #[must_use]
    pub fn with_flush_watermark(mut self, bytes: usize) -> Config {
        self.flush_watermark = bytes;
        self
    }

    /// Builder-style: set the executor worker-pool size (`0` = auto).
    #[must_use]
    pub fn with_exec_workers(mut self, n: usize) -> Config {
        self.exec_workers = n;
        self
    }

    /// Builder-style: set the group-commit flush window.
    #[must_use]
    pub fn with_commit_flush_window(mut self, window: Duration) -> Config {
        self.commit_flush_window = window;
        self
    }

    /// The effective executor worker count: one per core when `0`, clamped
    /// to `[2, 64]`.
    pub fn resolved_exec_workers(&self) -> usize {
        let n = if self.exec_workers == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
        } else {
            self.exec_workers
        };
        n.clamp(2, 64)
    }

    /// Builder-style: install a fault-injection registry. Keep a clone of
    /// the `Arc` to arm failpoints while the database runs.
    #[cfg(feature = "faults")]
    #[must_use]
    pub fn with_faults(mut self, faults: std::sync::Arc<asset_faults::FaultRegistry>) -> Config {
        self.faults = faults;
        self
    }

    /// The effective lock-manager shard count.
    pub fn resolved_lock_shards(&self) -> usize {
        resolve_shards(self.lock_shards)
    }

    /// The effective transaction-table shard count.
    pub fn resolved_txn_shards(&self) -> usize {
        resolve_shards(self.txn_shards)
    }
}

impl Default for Config {
    fn default() -> Self {
        Config::in_memory()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_memory_defaults() {
        let c = Config::in_memory();
        assert!(c.data_dir.is_none());
        assert_eq!(c.durability, Durability::InMemory);
        assert!(c.page_size.is_power_of_two());
    }

    #[test]
    fn on_disk_defaults() {
        let c = Config::on_disk("/tmp/x");
        assert!(c.data_dir.is_some());
        assert_eq!(c.durability, Durability::Strict);
    }

    #[test]
    fn builders() {
        let c = Config::in_memory()
            .with_max_transactions(10)
            .with_lock_timeout(None)
            .with_durability(Durability::Buffered);
        assert_eq!(c.max_transactions, 10);
        assert!(c.lock_wait_timeout.is_none());
        assert_eq!(c.durability, Durability::Buffered);
    }

    #[test]
    fn shard_resolution() {
        assert_eq!(resolve_shards(1), 1);
        assert_eq!(resolve_shards(2), 2);
        assert_eq!(resolve_shards(3), 4);
        assert_eq!(resolve_shards(64), 64);
        assert_eq!(resolve_shards(100_000), 1024);
        let auto = resolve_shards(0);
        assert!(auto.is_power_of_two() && (1..=1024).contains(&auto));
        assert_eq!(
            Config::in_memory()
                .with_lock_shards(5)
                .resolved_lock_shards(),
            8
        );
        assert_eq!(
            Config::in_memory().with_txn_shards(1).resolved_txn_shards(),
            1
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_page_size_panics() {
        let mut c = Config::in_memory();
        c.page_size = 1000;
        let _ = c.validate();
    }
}

//! Lock modes, operations, operation/object sets, and dependency types.

use crate::ids::Oid;
use std::collections::BTreeSet;
use std::fmt;

/// An elementary operation a transaction may perform on an object.
///
/// The paper's lock-request descriptor records a mode of `read`, `write` or
/// `none`; permits name the *operations* they allow. With object-granularity
/// locking the two coincide, so [`Operation`] and [`LockMode`] convert into
/// each other.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Operation {
    /// Read the object.
    Read,
    /// Update the object.
    Write,
}

impl Operation {
    /// The lock mode required to perform this operation.
    #[inline]
    pub fn required_mode(self) -> LockMode {
        match self {
            Operation::Read => LockMode::Read,
            Operation::Write => LockMode::Write,
        }
    }
}

/// The mode of a lock request on an object.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum LockMode {
    /// No lock (a placeholder request; never granted as a real lock).
    None,
    /// Shared (read) lock.
    Read,
    /// Exclusive (write) lock.
    Write,
}

impl LockMode {
    /// Does a granted lock in mode `self` *cover* a request for `req`?
    ///
    /// A lock covers a request when no additional locking work is needed:
    /// write covers read and write; read covers read.
    #[inline]
    #[allow(clippy::match_like_matches_macro)] // the match reads as a truth table
    pub fn covers(self, req: LockMode) -> bool {
        match (self, req) {
            (_, LockMode::None) => true,
            (LockMode::Write, _) => true,
            (LockMode::Read, LockMode::Read) => true,
            _ => false,
        }
    }

    /// Do two locks held by *different* transactions conflict?
    #[inline]
    #[allow(clippy::match_like_matches_macro)] // the match reads as a truth table
    pub fn conflicts(self, other: LockMode) -> bool {
        match (self, other) {
            (LockMode::None, _) | (_, LockMode::None) => false,
            (LockMode::Read, LockMode::Read) => false,
            _ => true,
        }
    }

    /// The least upper bound of two modes (used when delegation merges two
    /// lock-request descriptors for the same object).
    #[inline]
    pub fn max(self, other: LockMode) -> LockMode {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The operation set a lock of this mode makes conflicting for others.
    #[inline]
    pub fn as_opset(self) -> OpSet {
        match self {
            LockMode::None => OpSet::NONE,
            LockMode::Read => OpSet::READ,
            LockMode::Write => OpSet::WRITE,
        }
    }
}

impl fmt::Display for LockMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LockMode::None => "none",
            LockMode::Read => "read",
            LockMode::Write => "write",
        };
        f.write_str(s)
    }
}

/// A set of operations, used as the `operations` argument of `permit`.
///
/// The paper allows a *null* operations argument meaning "all operations";
/// [`OpSet::ALL`] is that value.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpSet(u8);

impl OpSet {
    const READ_BIT: u8 = 0b01;
    const WRITE_BIT: u8 = 0b10;

    /// The empty operation set.
    pub const NONE: OpSet = OpSet(0);
    /// Just reads.
    pub const READ: OpSet = OpSet(Self::READ_BIT);
    /// Just writes.
    pub const WRITE: OpSet = OpSet(Self::WRITE_BIT);
    /// All operations (the paper's null `operations` argument).
    pub const ALL: OpSet = OpSet(Self::READ_BIT | Self::WRITE_BIT);

    /// Build a set from a list of operations.
    pub fn from_ops(ops: &[Operation]) -> OpSet {
        let mut s = OpSet::NONE;
        for &op in ops {
            s = s.insert(op);
        }
        s
    }

    /// Insert an operation.
    #[inline]
    #[must_use]
    pub fn insert(self, op: Operation) -> OpSet {
        match op {
            Operation::Read => OpSet(self.0 | Self::READ_BIT),
            Operation::Write => OpSet(self.0 | Self::WRITE_BIT),
        }
    }

    /// Does the set contain `op`?
    #[inline]
    pub fn contains(self, op: Operation) -> bool {
        match op {
            Operation::Read => self.0 & Self::READ_BIT != 0,
            Operation::Write => self.0 & Self::WRITE_BIT != 0,
        }
    }

    /// Set intersection — the semantics of chained (transitive) permits:
    /// `permit(ti,tj,S,ops)` then `permit(tj,tk,S',ops')` acts as
    /// `permit(ti,tk,S∩S',ops∩ops')`.
    #[inline]
    #[must_use]
    pub fn intersect(self, other: OpSet) -> OpSet {
        OpSet(self.0 & other.0)
    }

    /// Set union.
    #[inline]
    #[must_use]
    pub fn union(self, other: OpSet) -> OpSet {
        OpSet(self.0 | other.0)
    }

    /// Is the set empty?
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for OpSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            OpSet::NONE => write!(f, "{{}}"),
            OpSet::READ => write!(f, "{{read}}"),
            OpSet::WRITE => write!(f, "{{write}}"),
            _ => write!(f, "{{read,write}}"),
        }
    }
}

impl Default for OpSet {
    fn default() -> Self {
        OpSet::ALL
    }
}

/// A set of objects, used as the `ob_set` argument of `permit` and
/// `delegate`.
///
/// The paper allows a *null* object-set argument meaning "all objects";
/// [`ObSet::All`] is that value.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ObSet {
    /// Every object (the paper's null `ob_set`).
    All,
    /// An explicit set of objects.
    Objects(BTreeSet<Oid>),
}

impl ObSet {
    /// The empty object set.
    pub fn empty() -> ObSet {
        ObSet::Objects(BTreeSet::new())
    }

    /// A singleton set.
    pub fn one(ob: Oid) -> ObSet {
        let mut s = BTreeSet::new();
        s.insert(ob);
        ObSet::Objects(s)
    }

    /// Build from a slice of oids.
    pub fn from_slice(obs: &[Oid]) -> ObSet {
        ObSet::Objects(obs.iter().copied().collect())
    }

    /// Does the set contain `ob`?
    #[inline]
    pub fn contains(&self, ob: Oid) -> bool {
        match self {
            ObSet::All => true,
            ObSet::Objects(s) => s.contains(&ob),
        }
    }

    /// Set intersection (transitive-permit semantics).
    #[must_use]
    pub fn intersect(&self, other: &ObSet) -> ObSet {
        match (self, other) {
            (ObSet::All, o) => o.clone(),
            (s, ObSet::All) => s.clone(),
            (ObSet::Objects(a), ObSet::Objects(b)) => {
                ObSet::Objects(a.intersection(b).copied().collect())
            }
        }
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        match self {
            ObSet::All => false,
            ObSet::Objects(s) => s.is_empty(),
        }
    }

    /// Number of explicit objects; `None` for [`ObSet::All`].
    pub fn len(&self) -> Option<usize> {
        match self {
            ObSet::All => None,
            ObSet::Objects(s) => Some(s.len()),
        }
    }
}

impl From<Oid> for ObSet {
    fn from(ob: Oid) -> Self {
        ObSet::one(ob)
    }
}

impl FromIterator<Oid> for ObSet {
    fn from_iter<I: IntoIterator<Item = Oid>>(iter: I) -> Self {
        ObSet::Objects(iter.into_iter().collect())
    }
}

/// The type of an inter-transaction dependency formed with
/// `form_dependency(type, ti, tj)`.
///
/// The paper's reading of `form_dependency(type, ti, tj)`:
///
/// * **CD** (commit dependency): if both commit, `tj` cannot commit before
///   `ti`; if `ti` aborts, `tj` may still commit.
/// * **AD** (abort dependency): if `ti` aborts, `tj` must abort. AD covers
///   CD (an abort dependency implies a commit dependency).
/// * **GC** (group commit): either both commit or neither.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DepType {
    /// Commit dependency.
    CD,
    /// Abort dependency (implies CD).
    AD,
    /// Group commit.
    GC,
}

impl fmt::Display for DepType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DepType::CD => "CD",
            DepType::AD => "AD",
            DepType::GC => "GC",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_matrix() {
        use LockMode::*;
        assert!(Write.covers(Write));
        assert!(Write.covers(Read));
        assert!(Read.covers(Read));
        assert!(!Read.covers(Write));
        assert!(Read.covers(None));
        assert!(!None.covers(Read));
        assert!(None.covers(None));
    }

    #[test]
    fn conflicts_matrix() {
        use LockMode::*;
        assert!(!Read.conflicts(Read));
        assert!(Read.conflicts(Write));
        assert!(Write.conflicts(Read));
        assert!(Write.conflicts(Write));
        assert!(!None.conflicts(Write));
        assert!(!Write.conflicts(None));
    }

    #[test]
    fn mode_max() {
        use LockMode::*;
        assert_eq!(Read.max(Write), Write);
        assert_eq!(Write.max(Read), Write);
        assert_eq!(Read.max(Read), Read);
        assert_eq!(None.max(Read), Read);
    }

    #[test]
    fn opset_basics() {
        assert!(OpSet::ALL.contains(Operation::Read));
        assert!(OpSet::ALL.contains(Operation::Write));
        assert!(OpSet::READ.contains(Operation::Read));
        assert!(!OpSet::READ.contains(Operation::Write));
        assert!(OpSet::NONE.is_empty());
        assert_eq!(OpSet::READ.union(OpSet::WRITE), OpSet::ALL);
        assert_eq!(OpSet::READ.intersect(OpSet::WRITE), OpSet::NONE);
        assert_eq!(OpSet::ALL.intersect(OpSet::WRITE), OpSet::WRITE);
        assert_eq!(
            OpSet::from_ops(&[Operation::Read, Operation::Write]),
            OpSet::ALL
        );
    }

    #[test]
    fn obset_wildcards_and_intersection() {
        let a = ObSet::from_slice(&[Oid(1), Oid(2), Oid(3)]);
        let b = ObSet::from_slice(&[Oid(2), Oid(3), Oid(4)]);
        let i = a.intersect(&b);
        assert!(i.contains(Oid(2)) && i.contains(Oid(3)));
        assert!(!i.contains(Oid(1)) && !i.contains(Oid(4)));

        assert!(ObSet::All.contains(Oid(999)));
        assert_eq!(ObSet::All.intersect(&a), a);
        assert_eq!(a.intersect(&ObSet::All), a);
        assert_eq!(ObSet::All.intersect(&ObSet::All), ObSet::All);

        assert!(ObSet::empty().is_empty());
        assert!(!ObSet::All.is_empty());
        assert_eq!(ObSet::All.len(), None);
        assert_eq!(a.len(), Some(3));
    }

    #[test]
    fn operation_required_mode() {
        assert_eq!(Operation::Read.required_mode(), LockMode::Read);
        assert_eq!(Operation::Write.required_mode(), LockMode::Write);
    }

    #[test]
    fn obset_from_iter() {
        let s: ObSet = (1..=3).map(Oid).collect();
        assert!(s.contains(Oid(1)) && s.contains(Oid(3)));
        assert!(!s.contains(Oid(4)));
    }
}

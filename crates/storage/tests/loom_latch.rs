#![cfg(loom)]
//! Loom model checks for the EOS-style latch (`crates/storage/src/latch.rs`).
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p asset-storage --test
//! loom_latch --release`. Loom explores every interleaving of the atomic
//! operations; `loom::cell::UnsafeCell` panics the model if two threads
//! ever access the protected data concurrently in incompatible modes, so
//! these tests prove the latch protocol itself, not one lucky schedule.

use asset_storage::Latch;
use loom::cell::UnsafeCell;
use loom::sync::Arc;
use loom::thread;

#[test]
fn exclusive_holders_are_mutually_exclusive() {
    loom::model(|| {
        let latch = Arc::new(Latch::new());
        let data = Arc::new(UnsafeCell::new(0u32));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let latch = Arc::clone(&latch);
                let data = Arc::clone(&data);
                thread::spawn(move || {
                    let _g = latch.exclusive();
                    // SAFETY: X latch held — loom verifies no concurrent
                    // access to the cell ever happens.
                    data.with_mut(|p| unsafe { *p += 1 });
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let _g = latch.exclusive();
        // SAFETY: X latch held; both writers have joined.
        data.with(|p| unsafe { assert_eq!(*p, 2) });
    });
}

#[test]
fn shared_reader_never_overlaps_a_writer() {
    loom::model(|| {
        let latch = Arc::new(Latch::new());
        let data = Arc::new(UnsafeCell::new(0u32));
        let reader = {
            let latch = Arc::clone(&latch);
            let data = Arc::clone(&data);
            thread::spawn(move || {
                let _g = latch.shared();
                // SAFETY: S latch held — the model panics if the writer's
                // mutable access overlaps this immutable one.
                data.with(|p| unsafe { *p })
            })
        };
        {
            let _g = latch.exclusive();
            // SAFETY: X latch held.
            data.with_mut(|p| unsafe { *p = 7 });
        }
        let seen = reader.join().unwrap();
        assert!(seen == 0 || seen == 7);
    });
}

#[test]
fn try_exclusive_fails_under_any_holder() {
    loom::model(|| {
        let latch = Arc::new(Latch::new());
        let holder = {
            let latch = Arc::clone(&latch);
            thread::spawn(move || {
                let _g = latch.shared();
            })
        };
        // Either the holder is inside its S section (try fails) or it has
        // finished (try succeeds); both are legal, the model only checks
        // that state transitions stay consistent.
        if let Some(g) = latch.try_exclusive() {
            assert_eq!(latch.s_count(), 0);
            drop(g);
        }
        holder.join().unwrap();
    });
}

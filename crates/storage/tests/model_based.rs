//! Model-based property tests: the slotted page and the object store are
//! driven with random operation sequences and checked against a trivially
//! correct in-memory model (`HashMap`).

use asset_common::Oid;
use asset_storage::heapfile::MemPageStore;
use asset_storage::page::Page;
use asset_storage::slotted::SlottedPage;
use asset_storage::store::ObjectStore;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// Operations the model covers.
#[derive(Clone, Debug)]
enum Op {
    Put(u64, Vec<u8>),
    Delete(u64),
    Get(u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..40, proptest::collection::vec(any::<u8>(), 0..60)).prop_map(|(k, v)| Op::Put(k, v)),
        (1u64..40).prop_map(Op::Delete),
        (1u64..40).prop_map(Op::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The object store behaves exactly like a HashMap<Oid, Vec<u8>> for
    /// any sequence of put/delete/get.
    #[test]
    fn object_store_matches_model(ops in proptest::collection::vec(arb_op(), 0..120)) {
        let store = ObjectStore::open(Arc::new(MemPageStore::new(512)), 32).unwrap();
        let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
        for op in ops {
            match op {
                Op::Put(k, v) => {
                    store.put(Oid(k), &v).unwrap();
                    model.insert(k, v);
                }
                Op::Delete(k) => {
                    let existed = store.delete(Oid(k)).unwrap();
                    prop_assert_eq!(existed, model.remove(&k).is_some());
                }
                Op::Get(k) => {
                    prop_assert_eq!(store.get(Oid(k)).unwrap(), model.get(&k).cloned());
                }
            }
            prop_assert_eq!(store.len(), model.len());
        }
        // final full sweep
        for (k, v) in &model {
            prop_assert_eq!(store.get(Oid(*k)).unwrap(), Some(v.clone()));
        }
    }

    /// A single slotted page matches the model while it has room; inserts
    /// may fail only when the page is genuinely full, and the page stays
    /// internally consistent (live_records == model).
    #[test]
    fn slotted_page_matches_model(ops in proptest::collection::vec(arb_op(), 0..80)) {
        let mut page = SlottedPage::format(Page::zeroed(1024), 1);
        // slot bookkeeping: oid -> slot
        let mut slots: HashMap<u64, u16> = HashMap::new();
        let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
        for op in ops {
            match op {
                Op::Put(k, v) => {
                    if let Some(&slot) = slots.get(&k) {
                        match page.update(slot, &v) {
                            Some(new_slot) => {
                                slots.insert(k, new_slot);
                                model.insert(k, v);
                            }
                            None => {
                                // page could not host the grown record; it
                                // was removed — mirror that
                                slots.remove(&k);
                                model.remove(&k);
                            }
                        }
                    } else if let Some(slot) = page.insert(Oid(k), &v) {
                        slots.insert(k, slot);
                        model.insert(k, v);
                    }
                    // insert returning None (page full) leaves the model
                    // unchanged — verified by the sweep below
                }
                Op::Delete(k) => {
                    if let Some(slot) = slots.remove(&k) {
                        prop_assert!(page.delete(slot));
                        model.remove(&k);
                    }
                }
                Op::Get(k) => {
                    match slots.get(&k) {
                        Some(&slot) => {
                            let (oid, bytes) = page.get(slot).expect("live slot");
                            prop_assert_eq!(oid, Oid(k));
                            prop_assert_eq!(bytes, &model[&k][..]);
                        }
                        None => prop_assert!(!model.contains_key(&k)),
                    }
                }
            }
            // page-wide consistency: live records == model
            let mut live: Vec<(u64, Vec<u8>)> = page
                .live_records()
                .map(|(_, oid, b)| (oid.raw(), b.to_vec()))
                .collect();
            live.sort();
            let mut expect: Vec<(u64, Vec<u8>)> =
                model.iter().map(|(k, v)| (*k, v.clone())).collect();
            expect.sort();
            prop_assert_eq!(live, expect);
        }
    }

    /// Page checksum detects any single corrupted byte outside the
    /// checksum's own field.
    #[test]
    fn checksum_detects_corruption(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..40), 1..6),
        corrupt_at in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let mut sp = SlottedPage::format(Page::zeroed(512), 3);
        for (i, p) in payloads.iter().enumerate() {
            let _ = sp.insert(Oid(i as u64 + 1), p);
        }
        let mut page = sp.into_page();
        let n = page.size();
        let idx = corrupt_at.index(n);
        // skip the checksum field itself (bytes 16..24)
        prop_assume!(!(16..24).contains(&idx));
        page.bytes_mut()[idx] ^= flip;
        prop_assert!(SlottedPage::open(page).is_err());
    }

    /// Store round-trips across a flush + reopen (directory rebuild).
    #[test]
    fn store_reopen_preserves_contents(
        entries in proptest::collection::hash_map(1u64..100, proptest::collection::vec(any::<u8>(), 0..50), 0..30)
    ) {
        let backing = Arc::new(MemPageStore::new(512));
        {
            let store = ObjectStore::open(Arc::clone(&backing) as _, 32).unwrap();
            for (k, v) in &entries {
                store.put(Oid(*k), v).unwrap();
            }
            store.flush().unwrap();
        }
        let store = ObjectStore::open(backing as _, 32).unwrap();
        prop_assert_eq!(store.len(), entries.len());
        for (k, v) in &entries {
            prop_assert_eq!(store.get(Oid(*k)).unwrap(), Some(v.clone()));
        }
    }
}

//! # asset-storage
//!
//! An EOS-style storage substrate for the ASSET transaction facility
//! (Biliris et al., SIGMOD 1994), re-implementing the mode of operation the
//! paper describes in §4: applications operate directly on objects in a
//! **shared cache**; short-duration **latches** (S/X, test-and-set with an
//! S-counter and writer-starvation avoidance) protect individual accesses;
//! a **write-ahead log** records before/after images for undo/redo; pages
//! live in a **heap file** behind a **buffer pool**.
//!
//! Layering, bottom-up:
//!
//! * [`failpoints`] — named fault-injection sites (active only with the
//!   `faults` feature);
//! * [`page`] / [`slotted`] — raw pages and the slotted-record layout;
//! * [`heapfile`] — page stores (in-memory and file-backed);
//! * [`buffer`] — a clock-eviction buffer pool;
//! * [`store`] — the persistent object store (oid → record);
//! * [`latch`] — the EOS latch (§4.1);
//! * [`cache`] — the shared object cache with per-object latches;
//! * [`log`] — WAL records and the log manager;
//! * [`recovery`] — restart recovery honoring delegation records;
//! * [`engine`] — the assembled [`StorageEngine`] facade.

#![warn(missing_docs)]

pub mod buffer;
pub mod cache;
pub mod engine;
pub mod failpoints;
pub mod heapfile;
pub mod latch;
pub mod log;
pub mod page;
pub mod recovery;
pub mod slotted;
pub mod store;

pub use cache::{CachedObject, ObjectCache};
pub use engine::{CompactionReport, StorageEngine};
pub use latch::Latch;
pub use log::{FlushCallback, GroupFlusher, LogManager, LogRecord, LogWatermarks};
pub use recovery::{analyze, recover, InDoubt, LogAnalysis, PendingUpdate, RecoveryReport};
pub use store::ObjectStore;

//! Named failpoints compiled into the storage layer.
//!
//! Each constant names a site where the `faults` feature lets a test
//! harness inject a failure (see `asset-faults`): an I/O error, a torn
//! write, an elided `sync_data`, or a process-local crash. With the
//! feature off the sites expand to nothing; the constants remain so that
//! harness code can enumerate them unconditionally.
//!
//! The crash-recovery matrix (`tests/crash_matrix.rs` at the workspace
//! root) crashes a scripted workload at every point in [`ALL`] and asserts
//! the §4 recovery invariants after reopening.

/// In [`LogManager::append_inner`](crate::LogManager): before the frame's
/// bytes reach the backend. `Torn` writes a prefix of the frame to the
/// file, then crashes.
pub const LOG_APPEND: &str = "log.append.write";

/// Guarding every `sync_data` on the log file (forced appends under strict
/// durability, and [`LogManager::flush`](crate::LogManager::flush)).
/// `ElideSync` skips the sync while reporting success.
pub const LOG_SYNC: &str = "log.sync";

/// In [`LogManager::flush`](crate::LogManager::flush): before the pending
/// user-space buffer is drained to the OS.
pub const LOG_FLUSH: &str = "log.flush.write";

/// In `FilePageStore::{write_page, allocate}`: before the page's bytes
/// reach the heap file. `Torn` writes a prefix of the page, then crashes.
pub const STORE_PAGE_WRITE: &str = "store.page.write";

/// Guarding `sync_data` on the heap file (`FilePageStore::sync`).
pub const STORE_SYNC: &str = "store.sync";

/// In [`StorageEngine::checkpoint`](crate::StorageEngine::checkpoint):
/// after cache and store are flushed, before the log is truncated.
pub const CHECKPOINT_BEFORE_TRUNCATE: &str = "checkpoint.before_truncate";

/// In [`StorageEngine::checkpoint`](crate::StorageEngine::checkpoint):
/// after the log is truncated, before the checkpoint marker is appended.
pub const CHECKPOINT_AFTER_TRUNCATE: &str = "checkpoint.after_truncate";

/// In [`GroupFlusher`](crate::log::GroupFlusher): while the flusher thread
/// assembles a flush window, before any of the window's commit records is
/// appended. `Torn` appends a prefix of the window's records (tickets, not
/// bytes), then crashes — modelling a crash with the window half-written.
pub const FLUSH_WINDOW_ASSEMBLE: &str = "flush.window.assemble";

/// In [`GroupFlusher`](crate::log::GroupFlusher): guarding the single
/// forced sync that makes a whole flush window durable. `ElideSync` skips
/// the sync while acknowledging every commit in the window.
pub const FLUSH_WINDOW_SYNC: &str = "flush.window.sync";

/// Every failpoint the storage layer registers, for matrix sweeps.
pub const ALL: &[&str] = &[
    LOG_APPEND,
    LOG_SYNC,
    LOG_FLUSH,
    STORE_PAGE_WRITE,
    STORE_SYNC,
    CHECKPOINT_BEFORE_TRUNCATE,
    CHECKPOINT_AFTER_TRUNCATE,
    FLUSH_WINDOW_ASSEMBLE,
    FLUSH_WINDOW_SYNC,
];

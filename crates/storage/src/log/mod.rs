//! The write-ahead log manager.
//!
//! Append-only; each record's [`Lsn`] is its byte offset. Backends: an
//! in-memory byte buffer (tests/benchmarks; survives within the process so
//! the recovery *algorithms* are still exercised) and an append-only file
//! with configurable durability.
//!
//! Under [`Durability::Buffered`], appended frames accumulate in a
//! user-space buffer and reach the OS in one `write` per
//! [`flush watermark`](LogManager::open_with) instead of one syscall per
//! append; forced appends (commit records) and [`flush`](LogManager::flush)
//! drain the buffer. `Strict` writes through on every append and syncs on
//! force, as before — the coalescing only widens the crash window of a mode
//! whose contract already tolerates losing the tail.

mod flusher;
mod record;

pub use flusher::{FlushCallback, GroupFlusher};
pub use record::LogRecord;

use asset_annot::{verify_allow, wal};
use asset_common::{Durability, Lsn, Result};
use asset_obs::{bump, EventKind, Obs};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Default user-space buffer watermark (bytes) for `Buffered` durability.
pub const DEFAULT_FLUSH_WATERMARK: usize = 64 * 1024;

/// Point-in-time durability watermarks of the log, read in one critical
/// section by [`LogManager::watermarks`] so the fields are mutually
/// consistent (unlike calling the individual accessors back to back).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LogWatermarks {
    /// The LSN the next record will get (= bytes accepted so far).
    pub tail: Lsn,
    /// Records appended through this manager instance.
    pub records_appended: u64,
    /// Bytes in the user-space buffer, not yet handed to the OS.
    pub pending_bytes: usize,
    /// Bytes handed to the OS but not yet synced — the window a power
    /// failure can erase.
    pub unsynced_bytes: usize,
}

enum Backend {
    Mem(Vec<u8>),
    File {
        file: File,
        path: PathBuf,
        /// Frames accepted but not yet handed to the OS (`Buffered` only).
        pending: Vec<u8>,
        /// Bytes written to the OS since the last sync.
        buffered_bytes: usize,
    },
}

struct Inner {
    backend: Backend,
    tail: u64,
    records_appended: u64,
}

/// The log manager.
pub struct LogManager {
    inner: Mutex<Inner>,
    durability: Durability,
    flush_watermark: usize,
    obs: Arc<Obs>,
    #[cfg(feature = "faults")]
    faults: Arc<asset_faults::FaultRegistry>,
}

impl LogManager {
    /// A purely in-memory log.
    pub fn in_memory() -> LogManager {
        LogManager {
            inner: Mutex::new(Inner {
                backend: Backend::Mem(Vec::new()),
                tail: 0,
                records_appended: 0,
            }),
            durability: Durability::InMemory,
            flush_watermark: DEFAULT_FLUSH_WATERMARK,
            obs: Obs::shared(),
            #[cfg(feature = "faults")]
            faults: Default::default(),
        }
    }

    /// Report into `obs` instead of this manager's private hub (append/
    /// flush counters, coalescing counts, and — while tracing is enabled —
    /// append/flush latency histograms).
    pub fn set_obs(&mut self, obs: Arc<Obs>) {
        self.obs = obs;
    }

    /// Consult `faults` at this manager's failpoints (see
    /// [`failpoints`](crate::failpoints)).
    #[cfg(feature = "faults")]
    pub fn set_faults(&mut self, faults: Arc<asset_faults::FaultRegistry>) {
        self.faults = faults;
    }

    /// The observability hub this log reports into.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// Open (creating if absent) the log file at `path` with the default
    /// flush watermark.
    pub fn open(path: &Path, durability: Durability) -> Result<LogManager> {
        Self::open_with(path, durability, DEFAULT_FLUSH_WATERMARK)
    }

    /// Open (creating if absent) the log file at `path`; under `Buffered`
    /// durability, appends coalesce in user space until `flush_watermark`
    /// bytes are pending.
    pub fn open_with(
        path: &Path,
        durability: Durability,
        flush_watermark: usize,
    ) -> Result<LogManager> {
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)?;
        let tail = file.seek(SeekFrom::End(0))?;
        Ok(LogManager {
            inner: Mutex::new(Inner {
                backend: Backend::File {
                    file,
                    path: path.to_path_buf(),
                    pending: Vec::new(),
                    buffered_bytes: 0,
                },
                tail,
                records_appended: 0,
            }),
            durability,
            flush_watermark: flush_watermark.max(1),
            obs: Obs::shared(),
            #[cfg(feature = "faults")]
            faults: Default::default(),
        })
    }

    /// Append a record; returns its LSN. Durability of the append follows
    /// the configured mode (`Strict` forces commit-critical records — see
    /// [`append_forced`](Self::append_forced)); plain appends are buffered.
    pub fn append(&self, rec: &LogRecord) -> Result<Lsn> {
        self.append_inner(rec, false)
    }

    /// Append and, under `Strict` durability, force the log to stable
    /// storage before returning. Used for commit records (WAL rule). Under
    /// `Buffered`, a forced append drains the user-space buffer to the OS
    /// (commit-path write-out) without syncing.
    pub fn append_forced(&self, rec: &LogRecord) -> Result<Lsn> {
        self.append_inner(rec, true)
    }

    #[wal(logs = "write_all", mutates = "inner.tail +=")]
    fn append_inner(&self, rec: &LogRecord, force: bool) -> Result<Lsn> {
        // Timing is gated on tracing so the default append path never pays
        // for a clock read; the counters below are always on.
        let t0 = self.obs.tracing_enabled().then(Instant::now);
        let frame = rec.encode_frame();
        bump(&self.obs.counters.log_appends);
        let mut inner = self.inner.lock();
        // The record's LSN is staged here, but `tail`/`records_appended`
        // advance only once the backend has accepted the bytes: a failed
        // write that advanced them would permanently desynchronize LSNs
        // from file offsets and corrupt every later frame boundary.
        let lsn = Lsn(inner.tail);
        let tail = inner.tail;
        match &mut inner.backend {
            Backend::Mem(buf) => {
                asset_faults::failpoint!(&self.faults, crate::failpoints::LOG_APPEND, |act| {
                    match act {
                        asset_faults::FaultAction::Torn { keep_per_mille } => {
                            let keep = frame.len() * keep_per_mille as usize / 1000;
                            buf.extend_from_slice(&frame[..keep]);
                            self.faults.crash_now(crate::failpoints::LOG_APPEND);
                        }
                        other => {
                            return Err(self
                                .faults
                                .realize_plain(crate::failpoints::LOG_APPEND, other)
                                .into())
                        }
                    }
                });
                buf.extend_from_slice(&frame);
            }
            Backend::File {
                file,
                pending,
                buffered_bytes,
                ..
            } => {
                asset_faults::failpoint!(&self.faults, crate::failpoints::LOG_APPEND, |act| {
                    match act {
                        asset_faults::FaultAction::Torn { keep_per_mille } => {
                            // A torn write at the file tail; under Buffered
                            // the user-space `pending` bytes are lost with
                            // the crash, so only a prefix of this frame
                            // lands past the last drain point. `scan()`
                            // must treat it as a torn tail.
                            let keep = frame.len() * keep_per_mille as usize / 1000;
                            let _ = file.write_all(&frame[..keep]);
                            self.faults.crash_now(crate::failpoints::LOG_APPEND);
                        }
                        other => {
                            return Err(self
                                .faults
                                .realize_plain(crate::failpoints::LOG_APPEND, other)
                                .into())
                        }
                    }
                });
                if self.durability == Durability::Buffered {
                    let pre_pending = pending.len();
                    pending.extend_from_slice(&frame);
                    if force || pending.len() >= self.flush_watermark {
                        if let Err(e) = file.write_all(pending) {
                            // `write_all` may have landed a partial drain;
                            // chop the file back to the last accepted
                            // record and put the manager exactly where it
                            // was before this append.
                            let _ = file.set_len(tail - pre_pending as u64);
                            pending.truncate(pre_pending);
                            return Err(e.into());
                        }
                        *buffered_bytes += pending.len();
                        pending.clear();
                        bump(&self.obs.counters.log_flushes);
                    } else {
                        // stayed in user space: the coalescing the watermark
                        // exists to produce
                        bump(&self.obs.counters.log_coalesced);
                    }
                } else {
                    if let Err(e) = file.write_all(&frame) {
                        // chop any partial frame off the file tail
                        let _ = file.set_len(tail);
                        return Err(e.into());
                    }
                    *buffered_bytes += frame.len();
                    bump(&self.obs.counters.log_flushes);
                }
            }
        }
        // The bytes are accepted: the record now exists at `lsn` whatever
        // happens below (a failed sync leaves it written but not durable).
        inner.tail += frame.len() as u64;
        inner.records_appended += 1;
        if force && self.durability == Durability::Strict {
            if let Backend::File {
                file,
                buffered_bytes,
                ..
            } = &mut inner.backend
            {
                let elide =
                    asset_faults::failpoint_sync!(&self.faults, crate::failpoints::LOG_SYNC);
                if !elide {
                    file.sync_data()?;
                    *buffered_bytes = 0;
                }
            }
        }
        drop(inner);
        if let Some(t0) = t0 {
            self.obs
                .log_append_ns
                .record(t0.elapsed().as_nanos() as u64);
        }
        Ok(lsn)
    }

    /// Force everything appended so far to stable storage.
    pub fn flush(&self) -> Result<()> {
        let t0 = self.obs.tracing_enabled().then(Instant::now);
        let mut drained_bytes = 0u64;
        let mut inner = self.inner.lock();
        let tail = inner.tail;
        if let Backend::File {
            file,
            pending,
            buffered_bytes,
            ..
        } = &mut inner.backend
        {
            if !pending.is_empty() {
                asset_faults::failpoint!(&self.faults, crate::failpoints::LOG_FLUSH, |act| {
                    match act {
                        asset_faults::FaultAction::Torn { keep_per_mille } => {
                            let keep = pending.len() * keep_per_mille as usize / 1000;
                            let _ = file.write_all(&pending[..keep]);
                            self.faults.crash_now(crate::failpoints::LOG_FLUSH);
                        }
                        other => {
                            return Err(self
                                .faults
                                .realize_plain(crate::failpoints::LOG_FLUSH, other)
                                .into())
                        }
                    }
                });
                let drained = pending.len();
                if let Err(e) = file.write_all(pending) {
                    let _ = file.set_len(tail - drained as u64);
                    return Err(e.into());
                }
                drained_bytes = drained as u64;
                // These bytes are written but not yet synced; they join the
                // unsynced count until the sync below actually happens (it
                // may fail, or a fault may elide it).
                *buffered_bytes += drained;
                pending.clear();
            }
            let elide = asset_faults::failpoint_sync!(&self.faults, crate::failpoints::LOG_SYNC);
            if !elide {
                file.sync_data()?;
                *buffered_bytes = 0;
            }
            bump(&self.obs.counters.log_flushes);
        }
        drop(inner);
        if let Some(t0) = t0 {
            let dur_ns = t0.elapsed().as_nanos() as u64;
            self.obs.log_flush_ns.record(dur_ns);
            // The flush sub-span on the storage track: recorded after the
            // log mutex is dropped, same discipline as the latency gauge.
            self.obs.record(EventKind::LogFlush {
                bytes: drained_bytes,
                dur_ns,
            });
        }
        Ok(())
    }

    /// The log's durability watermarks in one point-in-time view (feeds
    /// `Database::introspect()` and the `asset-top` display).
    pub fn watermarks(&self) -> LogWatermarks {
        let inner = self.inner.lock();
        let (pending, unsynced) = match &inner.backend {
            Backend::Mem(_) => (0, 0),
            Backend::File {
                pending,
                buffered_bytes,
                ..
            } => (pending.len(), *buffered_bytes),
        };
        LogWatermarks {
            tail: Lsn(inner.tail),
            records_appended: inner.records_appended,
            pending_bytes: pending,
            unsynced_bytes: unsynced,
        }
    }

    /// Current tail LSN (the LSN the next record will get).
    pub fn tail(&self) -> Lsn {
        Lsn(self.inner.lock().tail)
    }

    /// Number of records appended through this manager instance.
    pub fn records_appended(&self) -> u64 {
        self.inner.lock().records_appended
    }

    /// Bytes currently held in the user-space buffer (diagnostics; always
    /// zero outside `Buffered` durability).
    pub fn pending_bytes(&self) -> usize {
        match &self.inner.lock().backend {
            Backend::Mem(_) => 0,
            Backend::File { pending, .. } => pending.len(),
        }
    }

    /// Bytes handed to the OS but not yet `sync_data`'d — the window a
    /// power failure can erase. Zero for the in-memory backend. Under
    /// `Strict`, unforced appends accumulate here until the next forced
    /// (commit) append or [`flush`](Self::flush) syncs them; under
    /// `Buffered`, drained watermark batches accumulate until `flush`.
    pub fn unsynced_bytes(&self) -> usize {
        match &self.inner.lock().backend {
            Backend::Mem(_) => 0,
            Backend::File { buffered_bytes, .. } => *buffered_bytes,
        }
    }

    /// Read the whole log and decode it into `(lsn, record)` pairs. A torn
    /// tail is tolerated (crash consistency); corruption before the tail is
    /// an error.
    pub fn scan(&self) -> Result<Vec<(Lsn, LogRecord)>> {
        let mut inner = self.inner.lock();
        let buf: Vec<u8> = match &mut inner.backend {
            Backend::Mem(b) => b.clone(),
            Backend::File { path, pending, .. } => {
                let mut f = File::open(&*path)?;
                let mut buf = Vec::new();
                f.read_to_end(&mut buf)?;
                // records not yet handed to the OS are still part of the
                // in-process log
                buf.extend_from_slice(pending);
                buf
            }
        };
        drop(inner);
        let mut out = Vec::new();
        let mut off = 0usize;
        while let Some((rec, next)) = LogRecord::decode_frame(&buf, off)? {
            out.push((Lsn(off as u64), rec));
            off = next;
        }
        Ok(out)
    }

    /// Truncate the log to empty. Only legal at a quiescent checkpoint,
    /// after every page has been flushed; the caller (checkpointing code)
    /// guarantees that.
    #[verify_allow(
        failpoint_coverage,
        reason = "checkpoint-only path; the checkpoint.* failpoints upstream already crash-test every ordering around this truncation"
    )]
    pub fn truncate(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.tail = 0;
        match &mut inner.backend {
            Backend::Mem(b) => b.clear(),
            Backend::File {
                file,
                path,
                pending,
                buffered_bytes,
            } => {
                pending.clear();
                // Recreate the file: truncate + rewind append cursor.
                file.sync_data().ok();
                let new = OpenOptions::new()
                    .read(true)
                    .write(true)
                    .truncate(true)
                    .open(&*path)?;
                new.sync_data()?;
                drop(std::mem::replace(
                    file,
                    OpenOptions::new().read(true).append(true).open(&*path)?,
                ));
                let _ = new;
                *buffered_bytes = 0;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asset_common::{Oid, Tid};

    fn sample_records() -> Vec<LogRecord> {
        vec![
            LogRecord::Begin { tid: Tid(1) },
            LogRecord::Update {
                tid: Tid(1),
                oid: Oid(10),
                before: None,
                after: Some(b"hello".to_vec()),
            },
            LogRecord::Commit { tids: vec![Tid(1)] },
        ]
    }

    #[test]
    fn mem_append_scan() {
        let log = LogManager::in_memory();
        let mut lsns = vec![];
        for r in sample_records() {
            lsns.push(log.append(&r).unwrap());
        }
        assert!(lsns.windows(2).all(|w| w[0] < w[1]), "LSNs increase");
        let scanned = log.scan().unwrap();
        assert_eq!(scanned.len(), 3);
        assert_eq!(scanned.iter().map(|(l, _)| *l).collect::<Vec<_>>(), lsns);
        assert_eq!(
            scanned.into_iter().map(|(_, r)| r).collect::<Vec<_>>(),
            sample_records()
        );
    }

    #[test]
    fn file_append_scan_reopen() {
        let dir = std::env::temp_dir().join(format!("asset-log-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);
        {
            let log = LogManager::open(&path, Durability::Strict).unwrap();
            for r in sample_records() {
                log.append_forced(&r).unwrap();
            }
        }
        let log = LogManager::open(&path, Durability::Strict).unwrap();
        let scanned = log.scan().unwrap();
        assert_eq!(
            scanned.into_iter().map(|(_, r)| r).collect::<Vec<_>>(),
            sample_records()
        );
        // appends continue after the recovered tail
        let lsn = log.append(&LogRecord::Checkpoint).unwrap();
        assert!(lsn.0 > 0);
        assert_eq!(log.scan().unwrap().len(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_ignored_on_scan() {
        let dir = std::env::temp_dir().join(format!("asset-log-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);
        {
            let log = LogManager::open(&path, Durability::Buffered).unwrap();
            for r in sample_records() {
                log.append(&r).unwrap();
            }
            log.flush().unwrap();
        }
        // simulate a torn write: append half a frame
        {
            use std::fs::OpenOptions;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            let frame = LogRecord::Abort { tid: Tid(9) }.encode_frame();
            f.write_all(&frame[..frame.len() / 2]).unwrap();
        }
        let log = LogManager::open(&path, Durability::Buffered).unwrap();
        assert_eq!(log.scan().unwrap().len(), 3, "torn tail dropped");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn buffered_appends_coalesce_until_watermark() {
        let dir = std::env::temp_dir().join(format!("asset-log-coal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);
        let log = LogManager::open_with(&path, Durability::Buffered, 1 << 20).unwrap();
        for r in sample_records() {
            log.append(&r).unwrap();
        }
        // nothing reached the OS yet...
        assert!(log.pending_bytes() > 0);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        // ...but the in-process log is complete
        assert_eq!(log.scan().unwrap().len(), 3);
        // a forced append (commit path) drains the buffer
        log.append_forced(&LogRecord::Commit { tids: vec![Tid(1)] })
            .unwrap();
        assert_eq!(log.pending_bytes(), 0);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            log.tail().0,
            "everything written out"
        );
        assert_eq!(log.scan().unwrap().len(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tiny_watermark_writes_through() {
        let dir = std::env::temp_dir().join(format!("asset-log-tw-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);
        let log = LogManager::open_with(&path, Durability::Buffered, 1).unwrap();
        for r in sample_records() {
            log.append(&r).unwrap();
        }
        assert_eq!(log.pending_bytes(), 0);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), log.tail().0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_empties_log() {
        let log = LogManager::in_memory();
        for r in sample_records() {
            log.append(&r).unwrap();
        }
        log.truncate().unwrap();
        assert_eq!(log.scan().unwrap().len(), 0);
        assert_eq!(log.tail(), Lsn::ZERO);
        // usable after truncation
        log.append(&LogRecord::Checkpoint).unwrap();
        assert_eq!(log.scan().unwrap().len(), 1);
    }

    #[test]
    fn file_truncate() {
        let dir = std::env::temp_dir().join(format!("asset-log-trunc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);
        let log = LogManager::open(&path, Durability::Buffered).unwrap();
        for r in sample_records() {
            log.append(&r).unwrap();
        }
        log.truncate().unwrap();
        assert_eq!(log.scan().unwrap().len(), 0);
        log.append(&LogRecord::Begin { tid: Tid(2) }).unwrap();
        log.flush().unwrap();
        let scanned = log.scan().unwrap();
        assert_eq!(scanned.len(), 1);
        assert_eq!(scanned[0].1, LogRecord::Begin { tid: Tid(2) });
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn coalesced_appends_and_drains_are_counted() {
        let dir = std::env::temp_dir().join(format!("asset-log-obs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);
        let log = LogManager::open_with(&path, Durability::Buffered, 1 << 20).unwrap();
        for r in sample_records() {
            log.append(&r).unwrap();
        }
        let snap = log.obs().snapshot();
        assert_eq!(snap.counters.log_appends, 3);
        assert_eq!(snap.counters.log_coalesced, 3, "all stayed in user space");
        assert_eq!(snap.counters.log_flushes, 0);
        log.append_forced(&LogRecord::Commit { tids: vec![Tid(1)] })
            .unwrap();
        let snap = log.obs().snapshot();
        assert_eq!(snap.counters.log_flushes, 1, "forced append drained");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_latency_recorded_only_under_tracing() {
        let log = LogManager::in_memory();
        log.append(&LogRecord::Checkpoint).unwrap();
        assert_eq!(log.obs().snapshot().log_append_ns.count, 0);
        log.obs().enable_tracing(64);
        log.append(&LogRecord::Checkpoint).unwrap();
        assert_eq!(log.obs().snapshot().log_append_ns.count, 1);
    }

    #[test]
    fn records_counter() {
        let log = LogManager::in_memory();
        assert_eq!(log.records_appended(), 0);
        log.append(&LogRecord::Checkpoint).unwrap();
        log.append(&LogRecord::Checkpoint).unwrap();
        assert_eq!(log.records_appended(), 2);
    }

    #[test]
    fn unsynced_bytes_means_written_but_not_synced() {
        let dir = std::env::temp_dir().join(format!("asset-log-unsync-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        // Strict: unforced appends write through and stay unsynced until a
        // forced (commit) append syncs the file.
        let path = dir.join("strict.log");
        let _ = std::fs::remove_file(&path);
        let log = LogManager::open(&path, Durability::Strict).unwrap();
        log.append(&LogRecord::Begin { tid: Tid(1) }).unwrap();
        log.append(&LogRecord::Begin { tid: Tid(2) }).unwrap();
        assert_eq!(log.unsynced_bytes() as u64, log.tail().0);
        log.append_forced(&LogRecord::Commit { tids: vec![Tid(1)] })
            .unwrap();
        assert_eq!(log.unsynced_bytes(), 0, "forced append synced");
        log.append(&LogRecord::Abort { tid: Tid(2) }).unwrap();
        assert!(log.unsynced_bytes() > 0);
        log.flush().unwrap();
        assert_eq!(log.unsynced_bytes(), 0, "flush synced");

        // Buffered: bytes in the user-space buffer are *pending*, not
        // unsynced; they join the unsynced count at drain and leave it
        // only on an actual sync.
        let path = dir.join("buffered.log");
        let _ = std::fs::remove_file(&path);
        let log = LogManager::open_with(&path, Durability::Buffered, 1 << 20).unwrap();
        log.append(&LogRecord::Begin { tid: Tid(1) }).unwrap();
        assert_eq!(log.unsynced_bytes(), 0, "still in user space");
        assert!(log.pending_bytes() > 0);
        log.append_forced(&LogRecord::Commit { tids: vec![Tid(1)] })
            .unwrap();
        assert_eq!(log.pending_bytes(), 0);
        assert_eq!(
            log.unsynced_bytes() as u64,
            log.tail().0,
            "drained but buffered durability never syncs on force"
        );
        log.flush().unwrap();
        assert_eq!(log.unsynced_bytes(), 0);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Regression (LSN-desync bug): `append_inner` used to advance `tail`
    /// and `records_appended` before the backend write, so a failed write
    /// desynchronized every later LSN from its file offset.
    #[cfg(feature = "faults")]
    #[test]
    fn failed_append_leaves_lsns_aligned_with_offsets() {
        use asset_faults::{FaultAction, FaultRegistry, Trigger};
        let dir = std::env::temp_dir().join(format!("asset-log-desync-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);
        let faults = Arc::new(FaultRegistry::new());
        let mut log = LogManager::open(&path, Durability::Strict).unwrap();
        log.set_faults(Arc::clone(&faults));
        let recs = sample_records();
        log.append(&recs[0]).unwrap();
        let tail_before = log.tail();
        faults.arm(
            crate::failpoints::LOG_APPEND,
            Trigger::Once,
            FaultAction::Error,
        );
        let err = log.append(&recs[1]).unwrap_err();
        assert!(err.to_string().contains("log.append.write"));
        assert_eq!(
            log.tail(),
            tail_before,
            "failed append must not move the tail"
        );
        assert_eq!(log.records_appended(), 1);
        // the next append lands exactly at the old tail and the whole log
        // still parses — offsets never diverged from LSNs
        let lsn = log.append(&recs[1]).unwrap();
        assert_eq!(lsn, tail_before);
        let scanned = log.scan().unwrap();
        assert_eq!(scanned.len(), 2);
        assert_eq!(scanned[1].0, lsn);
        assert_eq!(log.records_appended(), 2);
        // and the file agrees after a reopen
        let log2 = LogManager::open(&path, Durability::Strict).unwrap();
        assert_eq!(log2.scan().unwrap().len(), 2);
        assert_eq!(log2.tail(), log.tail());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[cfg(feature = "faults")]
    #[test]
    fn torn_append_crashes_and_leaves_a_parseable_prefix() {
        use asset_faults::{FaultAction, FaultRegistry, Trigger};
        let dir = std::env::temp_dir().join(format!("asset-log-tornfp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);
        asset_faults::silence_crash_panics();
        let faults = Arc::new(FaultRegistry::new());
        let mut log = LogManager::open(&path, Durability::Strict).unwrap();
        log.set_faults(Arc::clone(&faults));
        let recs = sample_records();
        log.append(&recs[0]).unwrap();
        log.append(&recs[1]).unwrap();
        faults.arm(
            crate::failpoints::LOG_APPEND,
            Trigger::Once,
            FaultAction::Torn {
                keep_per_mille: 500,
            },
        );
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = log.append(&recs[2]);
        }));
        assert!(unwound.is_err(), "torn write crashes");
        assert!(faults.is_crashed());
        faults.reset();
        // the file holds two whole frames plus a torn third; scan drops it
        let log2 = LogManager::open(&path, Durability::Strict).unwrap();
        assert_eq!(log2.scan().unwrap().len(), 2, "torn tail dropped");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[cfg(feature = "faults")]
    #[test]
    fn elided_sync_reports_success_but_leaves_bytes_unsynced() {
        use asset_faults::{FaultAction, FaultRegistry, Trigger};
        let dir = std::env::temp_dir().join(format!("asset-log-elide-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);
        let faults = Arc::new(FaultRegistry::new());
        let mut log = LogManager::open(&path, Durability::Strict).unwrap();
        log.set_faults(Arc::clone(&faults));
        faults.arm(
            crate::failpoints::LOG_SYNC,
            Trigger::Always,
            FaultAction::ElideSync,
        );
        log.append_forced(&LogRecord::Commit { tids: vec![Tid(1)] })
            .unwrap();
        assert!(
            log.unsynced_bytes() > 0,
            "the device lied: written, reported durable, never synced"
        );
        faults.reset();
        log.flush().unwrap();
        assert_eq!(log.unsynced_bytes(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

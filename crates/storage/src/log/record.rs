//! Log record types and their binary encoding.
//!
//! The paper's recovery story (§4.2) is physical before/after-image
//! logging: `write` logs the before image, performs the update, then logs
//! the after image; `commit` places a commit record; `abort` installs
//! before images. We fold before and after images of one update into a
//! single [`LogRecord::Update`] record (logically equivalent, and atomic
//! under the object latch that EOS holds across the write).
//!
//! Delegation transfers *responsibility* for uncommitted operations, so it
//! must be visible to restart recovery: a [`LogRecord::Delegate`] record
//! reassigns earlier updates to the delegatee.
//!
//! Wire format of one record:
//!
//! ```text
//! [body_len u32][checksum u64][body: kind u8 + payload]
//! ```
//!
//! The checksum covers the body; a mismatch or truncated tail ends the scan
//! (crash-consistent: the tail record of a torn write is discarded).

use crate::page::{checksum, get_u32, get_u64, put_u32, put_u64};
use asset_common::{AssetError, Oid, Result, Tid};

/// One write-ahead-log record.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LogRecord {
    /// Transaction `tid` began executing.
    Begin {
        /// The transaction.
        tid: Tid,
    },
    /// `tid` updated `oid`. `before == None` means the update created the
    /// object; `after == None` means it deleted it.
    Update {
        /// The responsible transaction at the time of the write.
        tid: Tid,
        /// The object.
        oid: Oid,
        /// Before image (`None` = object did not exist).
        before: Option<Vec<u8>>,
        /// After image (`None` = object deleted).
        after: Option<Vec<u8>>,
    },
    /// The listed transactions committed together (a group-commit resolves
    /// to a single record; the common case is a singleton list).
    Commit {
        /// The committing group.
        tids: Vec<Tid>,
    },
    /// `tid` aborted; its updates were undone.
    Abort {
        /// The transaction.
        tid: Tid,
    },
    /// `from` delegated responsibility for its operations on `obs` to `to`
    /// (`None` = all objects).
    Delegate {
        /// Delegating transaction.
        from: Tid,
        /// Receiving transaction.
        to: Tid,
        /// The delegated objects; `None` is the paper's "all operations
        /// `from` is currently responsible for".
        obs: Option<Vec<Oid>>,
    },
    /// Quiescent checkpoint: no transaction was active and all pages were
    /// flushed when this record was written. Recovery may start here.
    Checkpoint,
    /// Compensation log record: the runtime abort of a transaction
    /// installed `image` over `oid` (one before-image undo step). Redo-only
    /// — recovery replays it in log order and never undoes it, so an abort
    /// that completed before the crash stays exactly where the runtime left
    /// it, even if later committed transactions overwrote the object.
    Clr {
        /// The object whose image was restored.
        oid: Oid,
        /// The restored image (`None` = the undo deleted the object).
        image: Option<Vec<u8>>,
    },
    /// The listed transactions (a local GC group acting as one distributed-
    /// commit participant) are **prepared**: durable but undecided. Their
    /// updates must survive a restart — redone, never undone — until a
    /// `Commit` or `Abort` record resolves them. A prepared group with no
    /// later resolution is reported as *in-doubt* by recovery (DESIGN.md
    /// §14.3); the decision belongs to the commit coordinator.
    Prepared {
        /// The prepared group.
        tids: Vec<Tid>,
    },
}

const KIND_BEGIN: u8 = 1;
const KIND_UPDATE: u8 = 2;
const KIND_COMMIT: u8 = 3;
const KIND_ABORT: u8 = 4;
const KIND_DELEGATE: u8 = 5;
const KIND_CHECKPOINT: u8 = 6;
const KIND_CLR: u8 = 7;
const KIND_PREPARED: u8 = 8;

fn put_opt_bytes(out: &mut Vec<u8>, v: &Option<Vec<u8>>) {
    match v {
        None => out.push(0),
        Some(b) => {
            out.push(1);
            let mut len = [0u8; 4];
            put_u32(&mut len, 0, b.len() as u32);
            out.extend_from_slice(&len);
            out.extend_from_slice(b);
        }
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| AssetError::Corrupt("log record truncated (u8)".into()))?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32> {
        if self.pos + 4 > self.buf.len() {
            return Err(AssetError::Corrupt("log record truncated (u32)".into()));
        }
        let v = get_u32(self.buf, self.pos);
        self.pos += 4;
        Ok(v)
    }

    fn u64(&mut self) -> Result<u64> {
        if self.pos + 8 > self.buf.len() {
            return Err(AssetError::Corrupt("log record truncated (u64)".into()));
        }
        let v = get_u64(self.buf, self.pos);
        self.pos += 8;
        Ok(v)
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(AssetError::Corrupt("log record truncated (bytes)".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn opt_bytes(&mut self) -> Result<Option<Vec<u8>>> {
        match self.u8()? {
            0 => Ok(None),
            1 => {
                let len = self.u32()? as usize;
                Ok(Some(self.bytes(len)?.to_vec()))
            }
            k => Err(AssetError::Corrupt(format!("bad option tag {k}"))),
        }
    }

    fn done(&self) -> Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(AssetError::Corrupt(format!(
                "log record has {} trailing bytes",
                self.buf.len() - self.pos
            )))
        }
    }
}

impl LogRecord {
    /// Encode the record body (kind byte + payload).
    pub fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            LogRecord::Begin { tid } => {
                out.push(KIND_BEGIN);
                let mut b = [0u8; 8];
                put_u64(&mut b, 0, tid.raw());
                out.extend_from_slice(&b);
            }
            LogRecord::Update {
                tid,
                oid,
                before,
                after,
            } => {
                out.push(KIND_UPDATE);
                let mut b = [0u8; 16];
                put_u64(&mut b, 0, tid.raw());
                put_u64(&mut b, 8, oid.raw());
                out.extend_from_slice(&b);
                put_opt_bytes(&mut out, before);
                put_opt_bytes(&mut out, after);
            }
            LogRecord::Commit { tids } => {
                out.push(KIND_COMMIT);
                let mut b = [0u8; 4];
                put_u32(&mut b, 0, tids.len() as u32);
                out.extend_from_slice(&b);
                for t in tids {
                    let mut b = [0u8; 8];
                    put_u64(&mut b, 0, t.raw());
                    out.extend_from_slice(&b);
                }
            }
            LogRecord::Abort { tid } => {
                out.push(KIND_ABORT);
                let mut b = [0u8; 8];
                put_u64(&mut b, 0, tid.raw());
                out.extend_from_slice(&b);
            }
            LogRecord::Delegate { from, to, obs } => {
                out.push(KIND_DELEGATE);
                let mut b = [0u8; 16];
                put_u64(&mut b, 0, from.raw());
                put_u64(&mut b, 8, to.raw());
                out.extend_from_slice(&b);
                match obs {
                    None => out.push(0),
                    Some(list) => {
                        out.push(1);
                        let mut b = [0u8; 4];
                        put_u32(&mut b, 0, list.len() as u32);
                        out.extend_from_slice(&b);
                        for ob in list {
                            let mut b = [0u8; 8];
                            put_u64(&mut b, 0, ob.raw());
                            out.extend_from_slice(&b);
                        }
                    }
                }
            }
            LogRecord::Checkpoint => out.push(KIND_CHECKPOINT),
            LogRecord::Prepared { tids } => {
                out.push(KIND_PREPARED);
                let mut b = [0u8; 4];
                put_u32(&mut b, 0, tids.len() as u32);
                out.extend_from_slice(&b);
                for t in tids {
                    let mut b = [0u8; 8];
                    put_u64(&mut b, 0, t.raw());
                    out.extend_from_slice(&b);
                }
            }
            LogRecord::Clr { oid, image } => {
                out.push(KIND_CLR);
                let mut b = [0u8; 8];
                put_u64(&mut b, 0, oid.raw());
                out.extend_from_slice(&b);
                put_opt_bytes(&mut out, image);
            }
        }
        out
    }

    /// Decode a record body produced by [`encode_body`](Self::encode_body).
    pub fn decode_body(body: &[u8]) -> Result<LogRecord> {
        let mut c = Cursor { buf: body, pos: 0 };
        let rec = match c.u8()? {
            KIND_BEGIN => LogRecord::Begin { tid: Tid(c.u64()?) },
            KIND_UPDATE => LogRecord::Update {
                tid: Tid(c.u64()?),
                oid: Oid(c.u64()?),
                before: c.opt_bytes()?,
                after: c.opt_bytes()?,
            },
            KIND_COMMIT => {
                let n = c.u32()? as usize;
                let mut tids = Vec::with_capacity(n);
                for _ in 0..n {
                    tids.push(Tid(c.u64()?));
                }
                LogRecord::Commit { tids }
            }
            KIND_ABORT => LogRecord::Abort { tid: Tid(c.u64()?) },
            KIND_DELEGATE => {
                let from = Tid(c.u64()?);
                let to = Tid(c.u64()?);
                let obs = match c.u8()? {
                    0 => None,
                    1 => {
                        let n = c.u32()? as usize;
                        let mut obs = Vec::with_capacity(n);
                        for _ in 0..n {
                            obs.push(Oid(c.u64()?));
                        }
                        Some(obs)
                    }
                    k => return Err(AssetError::Corrupt(format!("bad obs tag {k}"))),
                };
                LogRecord::Delegate { from, to, obs }
            }
            KIND_CHECKPOINT => LogRecord::Checkpoint,
            KIND_PREPARED => {
                let n = c.u32()? as usize;
                let mut tids = Vec::with_capacity(n);
                for _ in 0..n {
                    tids.push(Tid(c.u64()?));
                }
                LogRecord::Prepared { tids }
            }
            KIND_CLR => LogRecord::Clr {
                oid: Oid(c.u64()?),
                image: c.opt_bytes()?,
            },
            k => return Err(AssetError::Corrupt(format!("unknown log record kind {k}"))),
        };
        c.done()?;
        Ok(rec)
    }

    /// Encode the full on-disk frame: length + checksum + body.
    pub fn encode_frame(&self) -> Vec<u8> {
        let body = self.encode_body();
        let mut out = Vec::with_capacity(12 + body.len());
        let mut len = [0u8; 4];
        put_u32(&mut len, 0, body.len() as u32);
        out.extend_from_slice(&len);
        let mut ck = [0u8; 8];
        put_u64(&mut ck, 0, checksum(&body));
        out.extend_from_slice(&ck);
        out.extend_from_slice(&body);
        out
    }

    /// Decode one frame starting at `buf[off]`.
    ///
    /// Returns `Ok(Some((record, next_off)))`, `Ok(None)` for a clean or
    /// torn end of log (truncated tail), or `Err` for a checksum mismatch
    /// mid-log.
    pub fn decode_frame(buf: &[u8], off: usize) -> Result<Option<(LogRecord, usize)>> {
        if off == buf.len() {
            return Ok(None);
        }
        if off + 12 > buf.len() {
            return Ok(None); // torn header at tail
        }
        let body_len = get_u32(buf, off) as usize;
        let stored_ck = get_u64(buf, off + 4);
        let body_start = off + 12;
        if body_start + body_len > buf.len() {
            return Ok(None); // torn body at tail
        }
        let body = &buf[body_start..body_start + body_len];
        if checksum(body) != stored_ck {
            return Err(AssetError::Corrupt(format!(
                "log checksum mismatch at offset {off}"
            )));
        }
        let rec = LogRecord::decode_body(body)?;
        Ok(Some((rec, body_start + body_len)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(rec: LogRecord) {
        let body = rec.encode_body();
        let back = LogRecord::decode_body(&body).unwrap();
        assert_eq!(rec, back);
        let frame = rec.encode_frame();
        let (back2, next) = LogRecord::decode_frame(&frame, 0).unwrap().unwrap();
        assert_eq!(rec, back2);
        assert_eq!(next, frame.len());
    }

    #[test]
    fn roundtrip_all_kinds() {
        roundtrip(LogRecord::Begin { tid: Tid(7) });
        roundtrip(LogRecord::Update {
            tid: Tid(1),
            oid: Oid(2),
            before: Some(vec![1, 2, 3]),
            after: Some(vec![4, 5]),
        });
        roundtrip(LogRecord::Update {
            tid: Tid(1),
            oid: Oid(2),
            before: None,
            after: Some(vec![]),
        });
        roundtrip(LogRecord::Update {
            tid: Tid(1),
            oid: Oid(2),
            before: Some(vec![9]),
            after: None,
        });
        roundtrip(LogRecord::Commit { tids: vec![Tid(1)] });
        roundtrip(LogRecord::Commit {
            tids: vec![Tid(1), Tid(2), Tid(3)],
        });
        roundtrip(LogRecord::Abort { tid: Tid(4) });
        roundtrip(LogRecord::Delegate {
            from: Tid(1),
            to: Tid(2),
            obs: None,
        });
        roundtrip(LogRecord::Delegate {
            from: Tid(1),
            to: Tid(2),
            obs: Some(vec![Oid(5), Oid(6)]),
        });
        roundtrip(LogRecord::Checkpoint);
        roundtrip(LogRecord::Prepared { tids: vec![Tid(8)] });
        roundtrip(LogRecord::Prepared {
            tids: vec![Tid(8), Tid(9)],
        });
        roundtrip(LogRecord::Clr {
            oid: Oid(9),
            image: Some(vec![1, 2]),
        });
        roundtrip(LogRecord::Clr {
            oid: Oid(9),
            image: None,
        });
    }

    #[test]
    fn torn_tail_is_clean_eof() {
        let frame = LogRecord::Begin { tid: Tid(1) }.encode_frame();
        // cut the frame short at every possible point: all must read as EOF
        for cut in 0..frame.len() {
            let r = LogRecord::decode_frame(&frame[..cut], 0).unwrap();
            assert!(r.is_none(), "cut at {cut} should be torn-tail EOF");
        }
    }

    #[test]
    fn corrupt_body_is_an_error() {
        let mut frame = LogRecord::Commit {
            tids: vec![Tid(1), Tid(2)],
        }
        .encode_frame();
        let n = frame.len();
        frame[n - 1] ^= 0xFF;
        assert!(LogRecord::decode_frame(&frame, 0).is_err());
    }

    #[test]
    fn sequential_frames() {
        let mut buf = vec![];
        let recs = vec![
            LogRecord::Begin { tid: Tid(1) },
            LogRecord::Update {
                tid: Tid(1),
                oid: Oid(9),
                before: None,
                after: Some(b"v1".to_vec()),
            },
            LogRecord::Commit { tids: vec![Tid(1)] },
        ];
        for r in &recs {
            buf.extend_from_slice(&r.encode_frame());
        }
        let mut off = 0;
        let mut out = vec![];
        while let Some((r, next)) = LogRecord::decode_frame(&buf, off).unwrap() {
            out.push(r);
            off = next;
        }
        assert_eq!(out, recs);
    }

    #[test]
    fn trailing_garbage_with_bad_checksum_errors() {
        let mut buf = LogRecord::Checkpoint.encode_frame();
        // a full-size but corrupt "record" after the good one
        buf.extend_from_slice(&[5u8, 0, 0, 0]); // len = 5
        buf.extend_from_slice(&[0u8; 8]); // bogus checksum
        buf.extend_from_slice(&[1, 2, 3, 4, 5]); // body
        let (_, off) = LogRecord::decode_frame(&buf, 0).unwrap().unwrap();
        assert!(LogRecord::decode_frame(&buf, off).is_err());
    }
}

//! The group-commit log flusher.
//!
//! The paper's GC construction (§3.1.2) already expresses "many
//! transactions, one forced log record"; this module generalizes it across
//! *unrelated* transactions: every commit record submitted while a flush
//! window is open is appended by one dedicated thread and made durable by a
//! **single** write+sync, and each committer is acknowledged only after the
//! window's sync completes. Durability semantics are therefore unchanged —
//! a commit acknowledged to the application has a synced record (under
//! [`Durability::Strict`]), exactly as when each commit forced its own
//! append — only the number of `sync_data` calls per acknowledged commit
//! drops from one to `1/N` for an `N`-record window.
//!
//! Two failpoints make the window crash-testable
//! ([`FLUSH_WINDOW_ASSEMBLE`](crate::failpoints::FLUSH_WINDOW_ASSEMBLE),
//! [`FLUSH_WINDOW_SYNC`](crate::failpoints::FLUSH_WINDOW_SYNC)): a crash
//! while a window is half-written must leave every *unacknowledged* commit
//! in it undone at recovery, and every previously acknowledged one intact.
//! A [`asset_faults::CrashPoint`] unwind on the flusher thread is re-raised
//! on each submitting thread, so crash-matrix harnesses observe exactly the
//! panic they would have seen from a direct forced append.

use super::{LogManager, LogRecord};
use asset_common::{Durability, Lsn, Result};
use asset_obs::{bump, EventKind, Obs};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A commit acknowledgement callback (executor path): invoked exactly once,
/// on the flusher thread, after the record's window succeeded or failed.
pub type FlushCallback = Box<dyn FnOnce(Result<Lsn>) + Send + 'static>;

enum Waiter {
    /// A blocked [`GroupFlusher::submit_and_wait`] caller.
    Sync,
    /// An asynchronous acknowledgement (state-machine executor).
    Callback(FlushCallback),
}

struct Pending {
    ticket: u64,
    rec: LogRecord,
    waiter: Waiter,
}

enum Outcome {
    Flushed(Lsn),
    Failed(String),
    /// The window crashed at a failpoint; re-raise the [`CrashPoint`]
    /// unwind (by site name) on the submitting thread.
    Crashed(&'static str),
}

#[derive(Default)]
struct State {
    queue: Vec<Pending>,
    done: HashMap<u64, Outcome>,
    next_ticket: u64,
    windows: u64,
    shutdown: bool,
}

struct Shared {
    log: Arc<LogManager>,
    durability: Durability,
    window: Duration,
    obs: Arc<Obs>,
    state: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
    #[cfg(feature = "faults")]
    faults: Arc<asset_faults::FaultRegistry>,
}

/// The dedicated log-flusher: owns the only thread that appends commit
/// records, batching everything submitted within one flush window into a
/// single write+sync.
pub struct GroupFlusher {
    shared: Arc<Shared>,
    handle: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl GroupFlusher {
    /// Spawn the flusher thread. `window` is how long the thread lingers
    /// after the first record of a window to let concurrent committers
    /// coalesce; `Duration::ZERO` flushes as soon as the thread runs
    /// (whatever queued by then still shares one sync).
    pub fn spawn(
        log: Arc<LogManager>,
        durability: Durability,
        window: Duration,
        obs: Arc<Obs>,
        #[cfg(feature = "faults")] faults: Arc<asset_faults::FaultRegistry>,
    ) -> GroupFlusher {
        let shared = Arc::new(Shared {
            log,
            durability,
            window,
            obs,
            state: Mutex::new(State::default()),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            #[cfg(feature = "faults")]
            faults,
        });
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("asset-flush".into())
            .spawn(move || run(thread_shared))
            .ok();
        GroupFlusher {
            shared,
            handle: Mutex::new(handle),
        }
    }

    /// Submit a commit record and block until its flush window is durable.
    /// Returns the record's LSN; a window that crashed at a failpoint
    /// re-raises the [`asset_faults::CrashPoint`] unwind here, on the
    /// submitting thread, mirroring a direct forced append.
    pub fn submit_and_wait(&self, rec: LogRecord) -> Result<Lsn> {
        // Degraded mode: if the flusher thread could not be spawned, fall
        // back to the pre-flusher forced append on the caller thread.
        if self.handle.lock().is_none() {
            return self.shared.log.append_forced(&rec);
        }
        let ticket = self.enqueue(rec, Waiter::Sync)?;
        let mut st = self.shared.state.lock();
        loop {
            if let Some(out) = st.done.remove(&ticket) {
                drop(st);
                return realize(out);
            }
            self.shared.done_cv.wait(&mut st);
        }
    }

    /// Submit a commit record with an asynchronous acknowledgement: `ack`
    /// runs exactly once, on the flusher thread, after the record's window
    /// succeeded or failed (a crashed window acknowledges with an error).
    /// The executor's `WaitFlush` arm parks on this.
    pub fn submit_with_callback(&self, rec: LogRecord, ack: FlushCallback) -> Result<()> {
        if self.handle.lock().is_none() {
            ack(self.shared.log.append_forced(&rec));
            return Ok(());
        }
        self.enqueue(rec, Waiter::Callback(ack))?;
        Ok(())
    }

    fn enqueue(&self, rec: LogRecord, waiter: Waiter) -> Result<u64> {
        let mut st = self.shared.state.lock();
        if st.shutdown {
            return Err(std::io::Error::other("log flusher shut down").into());
        }
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.queue.push(Pending {
            ticket,
            rec,
            waiter,
        });
        drop(st);
        self.shared.work_cv.notify_one();
        Ok(ticket)
    }

    /// Flush windows made durable so far (diagnostics).
    pub fn windows_flushed(&self) -> u64 {
        self.shared.state.lock().windows
    }
}

impl Drop for GroupFlusher {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        let handle = self.handle.lock().take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}

/// Turn a window outcome into the submitting caller's result — crashed
/// windows re-unwind with the original site's [`asset_faults::CrashPoint`].
fn realize(out: Outcome) -> Result<Lsn> {
    match out {
        Outcome::Flushed(lsn) => Ok(lsn),
        Outcome::Failed(msg) => Err(std::io::Error::other(msg).into()),
        Outcome::Crashed(site) => std::panic::panic_any(asset_faults::CrashPoint(site)),
    }
}

/// The flusher thread: collect a window, flush it, acknowledge everyone.
fn run(shared: Arc<Shared>) {
    loop {
        let (batch, window) = {
            let mut st = shared.state.lock();
            while st.queue.is_empty() && !st.shutdown {
                shared.work_cv.wait(&mut st);
            }
            if st.queue.is_empty() {
                return; // shutdown with the queue drained
            }
            if !shared.window.is_zero() && !st.shutdown {
                // Hold the window open so concurrent committers coalesce.
                let deadline = Instant::now() + shared.window;
                while !st.shutdown {
                    if shared.work_cv.wait_until(&mut st, deadline).timed_out() {
                        break;
                    }
                }
            }
            st.windows += 1;
            let window = st.windows;
            (std::mem::take(&mut st.queue), window)
        };
        flush_window(&shared, batch, window);
    }
}

fn flush_window(shared: &Shared, batch: Vec<Pending>, window: u64) {
    let t0 = shared.obs.tracing_enabled().then(Instant::now);
    let tail0 = shared.log.tail().0;
    let flushed =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| flush_batch(shared, &batch)));
    shared.obs.flush_batch_len.record(batch.len() as u64);
    bump(&shared.obs.counters.flush_windows);
    if let (Some(t0), Ok(Ok(_))) = (t0, &flushed) {
        shared.obs.record(EventKind::FlushWindow {
            window,
            records: batch.len() as u32,
            bytes: shared.log.tail().0.saturating_sub(tail0),
            dur_ns: t0.elapsed().as_nanos() as u64,
        });
    }
    // Acknowledge: sync waiters through the done map, callbacks invoked
    // here on the flusher thread — after the state lock is released, since
    // a callback re-enters the transaction layer.
    let mut callbacks: Vec<(FlushCallback, Result<Lsn>)> = Vec::new();
    let mut st = shared.state.lock();
    for (idx, p) in batch.into_iter().enumerate() {
        let out = match &flushed {
            Ok(Ok(lsns)) => Outcome::Flushed(lsns[idx]),
            Ok(Err(e)) => Outcome::Failed(e.to_string()),
            Err(payload) => match payload.downcast_ref::<asset_faults::CrashPoint>() {
                Some(cp) => Outcome::Crashed(cp.0),
                None => Outcome::Failed("log flusher panicked".into()),
            },
        };
        if t0.is_some() {
            if let (Outcome::Flushed(_), LogRecord::Commit { tids }) = (&out, &p.rec) {
                for tid in tids {
                    shared
                        .obs
                        .record(EventKind::CommitFlushed { tid: *tid, window });
                }
            }
        }
        match p.waiter {
            Waiter::Sync => {
                st.done.insert(p.ticket, out);
            }
            Waiter::Callback(ack) => callbacks.push((ack, realize_nonpanicking(out))),
        }
    }
    drop(st);
    shared.done_cv.notify_all();
    for (ack, res) in callbacks {
        ack(res);
    }
}

/// [`realize`] for the callback path: a crashed window becomes an error
/// (the unwind already happened on the flusher thread and was recorded in
/// the fault registry; the executor resolves the ambiguity through abort).
fn realize_nonpanicking(out: Outcome) -> Result<Lsn> {
    match out {
        Outcome::Flushed(lsn) => Ok(lsn),
        Outcome::Failed(msg) => Err(std::io::Error::other(msg).into()),
        Outcome::Crashed(site) => {
            Err(std::io::Error::other(format!("crashed at failpoint `{site}`")).into())
        }
    }
}

/// Append every record of the window, then force once. Under
/// [`Durability::Strict`] the appends are unforced and one
/// [`LogManager::flush`] syncs the whole window; under
/// [`Durability::Buffered`] the last append is forced, draining the
/// user-space buffer to the OS without a sync — exactly the durability the
/// mode always had; in-memory appends need neither.
fn flush_batch(shared: &Shared, batch: &[Pending]) -> Result<Vec<Lsn>> {
    asset_faults::failpoint!(
        &shared.faults,
        crate::failpoints::FLUSH_WINDOW_ASSEMBLE,
        |act| {
            match act {
                asset_faults::FaultAction::Torn { keep_per_mille } => {
                    // A torn window: a prefix of the batch's records lands
                    // (unsynced), then the process crashes. Recovery must
                    // undo every commit in the window — none was
                    // acknowledged.
                    let keep = batch.len() * keep_per_mille as usize / 1000;
                    for p in &batch[..keep] {
                        let _ = shared.log.append(&p.rec);
                    }
                    shared
                        .faults
                        .crash_now(crate::failpoints::FLUSH_WINDOW_ASSEMBLE);
                }
                other => {
                    return Err(shared
                        .faults
                        .realize_plain(crate::failpoints::FLUSH_WINDOW_ASSEMBLE, other)
                        .into())
                }
            }
        }
    );
    let mut lsns = Vec::with_capacity(batch.len());
    for (i, p) in batch.iter().enumerate() {
        let last = i + 1 == batch.len();
        let lsn = if shared.durability == Durability::Buffered && last {
            shared.log.append_forced(&p.rec)?
        } else {
            shared.log.append(&p.rec)?
        };
        lsns.push(lsn);
    }
    let elide = asset_faults::failpoint_sync!(&shared.faults, crate::failpoints::FLUSH_WINDOW_SYNC);
    if !elide && shared.durability == Durability::Strict {
        shared.log.flush()?;
    }
    Ok(lsns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asset_common::Tid;

    fn mem_flusher(window: Duration) -> (Arc<LogManager>, GroupFlusher) {
        let log = Arc::new(LogManager::in_memory());
        let f = GroupFlusher::spawn(
            Arc::clone(&log),
            Durability::InMemory,
            window,
            Obs::shared(),
            #[cfg(feature = "faults")]
            Default::default(),
        );
        (log, f)
    }

    #[test]
    fn submit_and_wait_appends_and_acks() {
        let (log, f) = mem_flusher(Duration::ZERO);
        let lsn = f
            .submit_and_wait(LogRecord::Commit { tids: vec![Tid(1)] })
            .unwrap();
        assert_eq!(lsn, Lsn(0));
        assert_eq!(log.records_appended(), 1);
        let records = log.scan().unwrap();
        assert!(matches!(records[0].1, LogRecord::Commit { .. }));
    }

    #[test]
    fn concurrent_commits_coalesce_into_few_windows() {
        let (log, f) = mem_flusher(Duration::from_millis(5));
        let f = Arc::new(f);
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let f = Arc::clone(&f);
                std::thread::spawn(move || {
                    f.submit_and_wait(LogRecord::Commit {
                        tids: vec![Tid(i + 1)],
                    })
                    .unwrap()
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.records_appended(), 8);
        assert!(
            f.windows_flushed() < 8,
            "8 commits in a 5ms window should share flushes, got {} windows",
            f.windows_flushed()
        );
    }

    #[test]
    fn callback_ack_runs_with_the_lsn() {
        let (_log, f) = mem_flusher(Duration::ZERO);
        let (tx, rx) = std::sync::mpsc::channel();
        f.submit_with_callback(
            LogRecord::Commit { tids: vec![Tid(9)] },
            Box::new(move |res| {
                tx.send(res.map(|l| l.0)).unwrap();
            }),
        )
        .unwrap();
        let got = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got.unwrap(), 0);
    }

    #[test]
    fn drop_drains_queued_records() {
        let (log, f) = mem_flusher(Duration::from_millis(50));
        let f = Arc::new(f);
        let h = {
            let f = Arc::clone(&f);
            std::thread::spawn(move || {
                f.submit_and_wait(LogRecord::Commit { tids: vec![Tid(3)] })
                    .unwrap()
            })
        };
        h.join().unwrap();
        drop(f);
        assert_eq!(log.records_appended(), 1);
    }
}

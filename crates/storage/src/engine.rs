//! The storage engine facade: shared cache + object store + WAL, assembled
//! per a [`Config`]. This is the substrate `asset-core` builds the
//! transaction primitives on.

use crate::cache::ObjectCache;
use crate::heapfile::{FilePageStore, MemPageStore, PageStore};
use crate::log::{GroupFlusher, LogManager, LogRecord};
use crate::recovery::{recover, RecoveryReport};
use crate::store::ObjectStore;
use asset_common::{Config, Durability, Lsn, Oid, Result, Tid};
use asset_obs::Obs;
use std::sync::Arc;

/// The assembled storage substrate.
///
/// All object access during normal operation goes through the shared cache
/// (the paper's mode of operation); the store is the persistent home,
/// written at checkpoints, flushes and recovery. Commit records are routed
/// through the [`GroupFlusher`], which batches every commit submitted
/// within one flush window into a single write+sync.
pub struct StorageEngine {
    cache: ObjectCache,
    store: ObjectStore,
    log: Arc<LogManager>,
    flusher: GroupFlusher,
    durability: Durability,
    obs: Arc<Obs>,
    #[cfg(feature = "faults")]
    faults: Arc<asset_faults::FaultRegistry>,
}

impl StorageEngine {
    /// Build an engine from `config`, running restart recovery if a log
    /// with records exists. The engine gets its own observability hub; use
    /// [`open_with_obs`](Self::open_with_obs) to share one.
    pub fn open(config: &Config) -> Result<(StorageEngine, RecoveryReport)> {
        Self::open_with_obs(config, Obs::shared())
    }

    /// [`open`](Self::open), reporting cache hit/miss, latch profiles, and
    /// log append/flush metrics into the shared `obs`.
    pub fn open_with_obs(
        config: &Config,
        obs: Arc<Obs>,
    ) -> Result<(StorageEngine, RecoveryReport)> {
        let (page_store, mut log): (Arc<dyn PageStore>, LogManager) = match &config.data_dir {
            None => (
                Arc::new(MemPageStore::new(config.page_size)),
                LogManager::in_memory(),
            ),
            Some(dir) => {
                std::fs::create_dir_all(dir)?;
                #[allow(unused_mut)]
                let mut heap = FilePageStore::open(&dir.join("heap.db"), config.page_size)?;
                #[cfg(feature = "faults")]
                heap.set_faults(Arc::clone(&config.faults));
                let log = LogManager::open_with(
                    &dir.join("wal.log"),
                    config.durability,
                    config.flush_watermark,
                )?;
                (Arc::new(heap), log)
            }
        };
        log.set_obs(Arc::clone(&obs));
        #[cfg(feature = "faults")]
        log.set_faults(Arc::clone(&config.faults));
        let log = Arc::new(log);
        let flusher = GroupFlusher::spawn(
            Arc::clone(&log),
            config.durability,
            config.commit_flush_window,
            Arc::clone(&obs),
            #[cfg(feature = "faults")]
            Arc::clone(&config.faults),
        );
        let store = ObjectStore::open(page_store, config.buffer_pool_pages)?;
        let cache = ObjectCache::with_obs(Arc::clone(&obs));
        let engine = StorageEngine {
            cache,
            store,
            log,
            flusher,
            durability: config.durability,
            obs,
            #[cfg(feature = "faults")]
            faults: Arc::clone(&config.faults),
        };
        let report = recover(&engine.log, &engine.cache, &engine.store)?;
        Ok((engine, report))
    }

    /// The observability hub this engine reports into.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// The shared object cache.
    pub fn cache(&self) -> &ObjectCache {
        &self.cache
    }

    /// The persistent object store.
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    /// The write-ahead log.
    pub fn log(&self) -> &LogManager {
        &self.log
    }

    /// Read `oid` through the cache (S-latched read; paper `read` algorithm
    /// steps 2–4 — locking is the caller's responsibility, step 1).
    pub fn read_object(&self, oid: Oid) -> Result<Option<Vec<u8>>> {
        let entry = self.cache.entry(oid, &self.store)?;
        Ok(entry.read_with(|b| b.map(|s| s.to_vec())))
    }

    /// Write `oid` through the cache on behalf of `tid`, logging before and
    /// after images (paper `write` algorithm steps 2–6). Returns the before
    /// image.
    pub fn write_object(
        &self,
        tid: Tid,
        oid: Oid,
        after: Option<Vec<u8>>,
    ) -> Result<Option<Vec<u8>>> {
        let entry = self.cache.entry(oid, &self.store)?;
        // The X latch inside `install` makes read-before + write atomic
        // with respect to other accessors; the log record is written after
        // the update, before the latch effects become commit-relevant (the
        // commit record is what matters for WAL, and it is forced).
        let before = entry.install(after.clone());
        self.log.append(&LogRecord::Update {
            tid,
            oid,
            before: before.clone(),
            after,
        })?;
        Ok(before)
    }

    /// Install an image without logging (undo during abort; recovery).
    pub fn install_image(&self, oid: Oid, image: Option<Vec<u8>>) -> Result<()> {
        let entry = self.cache.entry(oid, &self.store)?;
        entry.install(image);
        Ok(())
    }

    /// Log a record (commit/abort/delegate/begin). Commit and Prepared
    /// records go through the [`GroupFlusher`]: the call blocks until the
    /// record's flush window is durable, so acknowledgement semantics match
    /// the old per-commit forced append while concurrent committers share
    /// one sync. (A Prepared record is a participant's vote — it must be
    /// durable before the vote rides back to the coordinator, §14.2.)
    pub fn log_record(&self, rec: &LogRecord) -> Result<Lsn> {
        match rec {
            LogRecord::Commit { .. } | LogRecord::Prepared { .. } => {
                self.flusher.submit_and_wait(rec.clone())
            }
            _ => self.log.append(rec),
        }
    }

    /// The group-commit flusher (asynchronous acknowledgement path for the
    /// state-machine executor).
    pub fn flusher(&self) -> &GroupFlusher {
        &self.flusher
    }

    /// Quiescent checkpoint: flush the cache and pool, truncate the log,
    /// and write a checkpoint marker. The caller must guarantee no
    /// transaction is active.
    pub fn checkpoint(&self) -> Result<()> {
        self.cache.flush(&self.store)?;
        self.store.flush()?;
        asset_faults::failpoint!(
            &self.faults,
            crate::failpoints::CHECKPOINT_BEFORE_TRUNCATE,
            |act| {
                return Err(self
                    .faults
                    .realize_plain(crate::failpoints::CHECKPOINT_BEFORE_TRUNCATE, act)
                    .into());
            }
        );
        self.log.truncate()?;
        asset_faults::failpoint!(
            &self.faults,
            crate::failpoints::CHECKPOINT_AFTER_TRUNCATE,
            |act| {
                return Err(self
                    .faults
                    .realize_plain(crate::failpoints::CHECKPOINT_AFTER_TRUNCATE, act)
                    .into());
            }
        );
        self.log.append(&LogRecord::Checkpoint)?;
        if self.durability == Durability::Strict {
            self.log.flush()?;
        }
        Ok(())
    }

    /// Re-run restart recovery (test hook: simulates a crash by discarding
    /// the cache and rebuilding from log + store).
    pub fn simulate_crash_and_recover(&mut self) -> Result<RecoveryReport> {
        self.cache = ObjectCache::with_obs(Arc::clone(&self.obs));
        recover(&self.log, &self.cache, &self.store)
    }

    /// Compact the log while transactions in `live` are still in flight —
    /// the fuzzy-checkpoint counterpart to [`checkpoint`](Self::checkpoint):
    ///
    /// 1. flush the cache and pool (all current images are in the store);
    /// 2. analyze the log (applying delegations) to find the pending
    ///    updates each live transaction is responsible for;
    /// 3. rewrite the log as: `Checkpoint` marker, then for each live
    ///    transaction a fresh `Begin` and its pending updates (attributed
    ///    to the *current* owner — delegation records become unnecessary).
    ///
    /// The caller must guarantee no transaction appends concurrently
    /// (the transaction manager holds its table lock and checks that no
    /// transaction is `Running`).
    pub fn compact_log(&self, live: &std::collections::HashSet<Tid>) -> Result<CompactionReport> {
        self.cache.flush(&self.store)?;
        self.store.flush()?;
        let records = self.log.scan()?;
        let before = records.len();
        let analysis = crate::recovery::analyze(&records);
        self.log.truncate()?;
        self.log.append(&LogRecord::Checkpoint)?;
        let mut after = 1usize;
        let mut owners: Vec<Tid> = analysis
            .pending
            .keys()
            .copied()
            .filter(|t| live.contains(t))
            .collect();
        owners.sort_unstable();
        for owner in owners {
            self.log.append(&LogRecord::Begin { tid: owner })?;
            after += 1;
            for u in &analysis.pending[&owner] {
                self.log.append(&LogRecord::Update {
                    tid: owner,
                    oid: u.oid,
                    before: u.before.clone(),
                    after: u.after.clone(),
                })?;
                after += 1;
            }
        }
        // Re-log one Prepared record per in-doubt group so prepared-but-
        // undecided participants stay in-doubt across compaction (§14.3).
        let mut groups: Vec<Vec<Tid>> = analysis.prepared.values().cloned().collect();
        groups.sort_unstable();
        groups.dedup();
        for tids in groups {
            self.log.append(&LogRecord::Prepared { tids })?;
            after += 1;
        }
        if self.durability == Durability::Strict {
            self.log.flush()?;
        }
        Ok(CompactionReport {
            records_before: before,
            records_after: after,
        })
    }
}

/// Result of a [`StorageEngine::compact_log`] run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompactionReport {
    /// Log records before compaction.
    pub records_before: usize,
    /// Log records after (checkpoint marker + live transactions' state).
    pub records_after: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem_engine() -> StorageEngine {
        StorageEngine::open(&Config::in_memory()).unwrap().0
    }

    #[test]
    fn read_write_roundtrip() {
        let e = mem_engine();
        assert_eq!(e.read_object(Oid(1)).unwrap(), None);
        let before = e
            .write_object(Tid(1), Oid(1), Some(b"v1".to_vec()))
            .unwrap();
        assert_eq!(before, None);
        assert_eq!(e.read_object(Oid(1)).unwrap().unwrap(), b"v1");
        let before = e
            .write_object(Tid(1), Oid(1), Some(b"v2".to_vec()))
            .unwrap();
        assert_eq!(before.unwrap(), b"v1");
    }

    #[test]
    fn crash_without_commit_rolls_back() {
        let mut e = mem_engine();
        e.write_object(Tid(1), Oid(1), Some(b"dirty".to_vec()))
            .unwrap();
        let report = e.simulate_crash_and_recover().unwrap();
        assert_eq!(report.losers, 1);
        assert_eq!(e.read_object(Oid(1)).unwrap(), None);
    }

    #[test]
    fn crash_after_commit_record_replays() {
        let mut e = mem_engine();
        e.write_object(Tid(1), Oid(1), Some(b"durable".to_vec()))
            .unwrap();
        e.log_record(&LogRecord::Commit { tids: vec![Tid(1)] })
            .unwrap();
        let report = e.simulate_crash_and_recover().unwrap();
        assert_eq!(report.winners, 1);
        assert_eq!(e.read_object(Oid(1)).unwrap().unwrap(), b"durable");
    }

    #[test]
    fn checkpoint_then_recover_is_clean() {
        let mut e = mem_engine();
        e.write_object(Tid(1), Oid(1), Some(b"x".to_vec())).unwrap();
        e.log_record(&LogRecord::Commit { tids: vec![Tid(1)] })
            .unwrap();
        e.checkpoint().unwrap();
        let report = e.simulate_crash_and_recover().unwrap();
        assert_eq!(report.redone, 0, "checkpoint settled everything");
        assert_eq!(e.read_object(Oid(1)).unwrap().unwrap(), b"x");
    }

    #[test]
    fn on_disk_engine_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("asset-eng-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = Config::on_disk(&dir);
        {
            let (e, _) = StorageEngine::open(&config).unwrap();
            e.write_object(Tid(1), Oid(42), Some(b"persists".to_vec()))
                .unwrap();
            e.log_record(&LogRecord::Commit { tids: vec![Tid(1)] })
                .unwrap();
            // no checkpoint, no flush: recovery must rebuild from the log
        }
        let (e, report) = StorageEngine::open(&config).unwrap();
        assert_eq!(report.winners, 1);
        assert_eq!(e.read_object(Oid(42)).unwrap().unwrap(), b"persists");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn on_disk_uncommitted_rolls_back_on_reopen() {
        let dir = std::env::temp_dir().join(format!("asset-eng2-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = Config::on_disk(&dir);
        {
            let (e, _) = StorageEngine::open(&config).unwrap();
            e.write_object(Tid(1), Oid(1), Some(b"committed".to_vec()))
                .unwrap();
            e.log_record(&LogRecord::Commit { tids: vec![Tid(1)] })
                .unwrap();
            e.write_object(Tid(2), Oid(1), Some(b"uncommitted".to_vec()))
                .unwrap();
            e.log.flush().unwrap();
        }
        let (e, _) = StorageEngine::open(&config).unwrap();
        assert_eq!(e.read_object(Oid(1)).unwrap().unwrap(), b"committed");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn install_image_is_not_logged() {
        let e = mem_engine();
        let n0 = e.log.records_appended();
        e.install_image(Oid(1), Some(b"quiet".to_vec())).unwrap();
        assert_eq!(e.log.records_appended(), n0);
        assert_eq!(e.read_object(Oid(1)).unwrap().unwrap(), b"quiet");
    }
}

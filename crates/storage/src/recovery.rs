//! Restart recovery from the write-ahead log.
//!
//! The paper logs physical before/after images and undoes an aborted
//! transaction by installing before images (§4.2, `abort` step 2 — with the
//! explicit caveat that later cooperative updates are lost). Restart
//! recovery replays exactly that policy:
//!
//! 1. **Analysis** — scan the log once. Track, per transaction, the updates
//!    it is *currently responsible for*; a `Delegate` record moves matching
//!    updates from delegator to delegatee (this is what makes delegation
//!    crash-safe). Collect the commit and abort sets.
//! 2. **Redo** — reinstall every update's after image in LSN order,
//!    reconstructing the pre-crash cache state.
//! 3. **Undo** — for every *loser* (a transaction still responsible for
//!    updates with neither a commit nor a completed logged abort), install
//!    its before images in reverse LSN order — the runtime abort replayed.
//!
//! A runtime abort logs a **CLR** (compensation log record) for every undo
//! step before its `Abort` record, so completed aborts replay through the
//! redo pass in their original position and are *not* re-undone — a later
//! committed overwrite of the same object survives recovery exactly as it
//! survived at runtime.

use crate::cache::ObjectCache;
use crate::log::{LogManager, LogRecord};
use crate::store::ObjectStore;
use asset_common::{Lsn, Oid, Result, Tid};
use std::collections::{HashMap, HashSet};

/// Summary of a recovery pass.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Updates whose after images were reinstalled.
    pub redone: usize,
    /// Updates undone via before images.
    pub undone: usize,
    /// Transactions that committed.
    pub winners: usize,
    /// Transactions rolled back.
    pub losers: usize,
    /// Highest transaction id seen in the log (new tids must exceed it).
    pub max_tid: u64,
    /// Prepared transactions with no later decision: durable but undecided
    /// (DESIGN.md §14.3). Their updates were redone, not undone; the caller
    /// must restore them as `Prepared` and await the coordinator's decision.
    pub in_doubt: Vec<InDoubt>,
}

/// A prepared-but-undecided transaction surfaced by recovery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InDoubt {
    /// The in-doubt transaction.
    pub tid: Tid,
    /// Its full prepared group (every tid in the `Prepared` record).
    pub group: Vec<Tid>,
    /// The updates it is responsible for, in LSN order — the undo set a
    /// later `decide abort` must install, and the lock set to reacquire.
    pub updates: Vec<PendingUpdate>,
}

/// One uncommitted update a transaction is currently responsible for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PendingUpdate {
    /// Original position in the log (ordering key).
    pub lsn: Lsn,
    /// The updated object.
    pub oid: Oid,
    /// Before image (for undo).
    pub before: Option<Vec<u8>>,
    /// After image (for redo / log compaction).
    pub after: Option<Vec<u8>>,
}

/// The outcome of the analysis pass over a log: who committed, who
/// aborted, and which uncommitted updates each transaction is responsible
/// for after all delegations are applied.
#[derive(Default, Debug)]
pub struct LogAnalysis {
    /// tid → pending updates in LSN order, post-delegation.
    pub pending: HashMap<Tid, Vec<PendingUpdate>>,
    /// Committed transactions.
    pub committed: HashSet<Tid>,
    /// Transactions with a logged abort.
    pub aborted: HashSet<Tid>,
    /// Every update in log order (redo list), across all transactions.
    pub redo: Vec<(Lsn, Oid, Option<Vec<u8>>)>,
    /// tid → its prepared group, for transactions with a `Prepared` record
    /// and no later `Commit`/`Abort` (in-doubt at this point in the log).
    pub prepared: HashMap<Tid, Vec<Tid>>,
    /// Highest tid mentioned anywhere.
    pub max_tid: u64,
}

/// Analysis pass (paper §4.2 bookkeeping, shared by restart recovery and
/// log compaction).
pub fn analyze(records: &[(Lsn, LogRecord)]) -> LogAnalysis {
    let mut a = LogAnalysis::default();
    for (lsn, rec) in records {
        match rec {
            LogRecord::Begin { tid } => {
                a.max_tid = a.max_tid.max(tid.raw());
            }
            LogRecord::Update {
                tid,
                oid,
                before,
                after,
            } => {
                a.max_tid = a.max_tid.max(tid.raw());
                a.pending.entry(*tid).or_default().push(PendingUpdate {
                    lsn: *lsn,
                    oid: *oid,
                    before: before.clone(),
                    after: after.clone(),
                });
                a.redo.push((*lsn, *oid, after.clone()));
            }
            LogRecord::Commit { tids } => {
                for t in tids {
                    a.max_tid = a.max_tid.max(t.raw());
                    a.committed.insert(*t);
                    // a committed transaction's pending updates are winners
                    a.pending.remove(t);
                    a.prepared.remove(t);
                }
            }
            LogRecord::Abort { tid } => {
                a.max_tid = a.max_tid.max(tid.raw());
                a.aborted.insert(*tid);
                // the runtime abort logged a CLR for every undo step, so
                // this transaction's rollback replays via the redo pass;
                // it is not a loser and must not be re-undone (that would
                // clobber later committed overwrites).
                a.pending.remove(tid);
                a.prepared.remove(tid);
            }
            LogRecord::Prepared { tids } => {
                for t in tids {
                    a.max_tid = a.max_tid.max(t.raw());
                    a.prepared.insert(*t, tids.clone());
                }
            }
            LogRecord::Delegate { from, to, obs } => {
                a.max_tid = a.max_tid.max(from.raw().max(to.raw()));
                let moved: Vec<PendingUpdate> = match a.pending.get_mut(from) {
                    None => Vec::new(),
                    Some(list) => match obs {
                        None => std::mem::take(list),
                        Some(set) => {
                            let set: HashSet<Oid> = set.iter().copied().collect();
                            let (take, keep): (Vec<_>, Vec<_>) =
                                list.drain(..).partition(|u| set.contains(&u.oid));
                            *list = keep;
                            take
                        }
                    },
                };
                if !moved.is_empty() {
                    let dst = a.pending.entry(*to).or_default();
                    dst.extend(moved);
                    dst.sort_by_key(|u| u.lsn);
                }
            }
            LogRecord::Clr { oid, image } => {
                // redo-only: replayed in order, never undone
                a.redo.push((*lsn, *oid, image.clone()));
            }
            LogRecord::Checkpoint => {
                // Checkpoint: everything settled at this point is already
                // in the store. Analysis state resets; records re-logged by
                // compaction for live transactions follow the checkpoint.
                a.pending.clear();
                a.committed.clear();
                a.aborted.clear();
                a.redo.clear();
                a.prepared.clear();
            }
        }
    }
    a
}

/// Replay `log` into `cache`, then flush the cache to `store`.
pub fn recover(
    log: &LogManager,
    cache: &ObjectCache,
    store: &ObjectStore,
) -> Result<RecoveryReport> {
    let records = log.scan()?;
    let mut report = RecoveryReport::default();

    let analysis = analyze(&records);
    let LogAnalysis {
        mut pending,
        committed,
        aborted: _aborted,
        redo,
        prepared,
        max_tid,
    } = analysis;
    report.max_tid = max_tid;

    // --- Redo -------------------------------------------------------------
    for (_, oid, after) in &redo {
        cache.install(*oid, after.clone());
        report.redone += 1;
    }

    // --- In-doubt ---------------------------------------------------------
    // A prepared transaction with no later decision is neither winner nor
    // loser: its updates stay redone (durable-but-undecided) and the caller
    // resolves it when the coordinator's decision arrives (DESIGN.md §14.3).
    let mut in_doubt: Vec<InDoubt> = prepared
        .iter()
        .map(|(tid, group)| InDoubt {
            tid: *tid,
            group: group.clone(),
            updates: pending.remove(tid).unwrap_or_default(),
        })
        .collect();
    in_doubt.sort_by_key(|d| d.tid.raw());
    report.in_doubt = in_doubt;

    // --- Undo -------------------------------------------------------------
    // Losers: any transaction still responsible for updates and not in the
    // committed set (including logged aborts: re-undo is idempotent).
    let mut undo: Vec<PendingUpdate> = Vec::new();
    let mut loser_set: HashSet<Tid> = HashSet::new();
    for (tid, ups) in &pending {
        if !committed.contains(tid) {
            loser_set.insert(*tid);
            undo.extend(ups.iter().cloned());
        }
    }
    undo.sort_by_key(|u| std::cmp::Reverse(u.lsn));
    for u in &undo {
        cache.install(u.oid, u.before.clone());
        report.undone += 1;
    }

    report.winners = committed.len();
    report.losers = loser_set.len();

    // --- Make it durable --------------------------------------------------
    cache.flush(store)?;
    store.flush()?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heapfile::MemPageStore;
    use std::sync::Arc;

    fn setup() -> (LogManager, ObjectCache, ObjectStore) {
        let log = LogManager::in_memory();
        let cache = ObjectCache::new();
        let store = ObjectStore::open(Arc::new(MemPageStore::new(512)), 16).unwrap();
        (log, cache, store)
    }

    fn get(store: &ObjectStore, oid: Oid) -> Option<Vec<u8>> {
        store.get(oid).unwrap()
    }

    #[test]
    fn committed_updates_are_redone() {
        let (log, cache, store) = setup();
        log.append(&LogRecord::Begin { tid: Tid(1) }).unwrap();
        log.append(&LogRecord::Update {
            tid: Tid(1),
            oid: Oid(10),
            before: None,
            after: Some(b"v1".to_vec()),
        })
        .unwrap();
        log.append(&LogRecord::Commit { tids: vec![Tid(1)] })
            .unwrap();

        let report = recover(&log, &cache, &store).unwrap();
        assert_eq!(report.winners, 1);
        assert_eq!(report.losers, 0);
        assert_eq!(report.redone, 1);
        assert_eq!(get(&store, Oid(10)).unwrap(), b"v1");
        assert_eq!(report.max_tid, 1);
    }

    #[test]
    fn uncommitted_updates_are_undone() {
        let (log, cache, store) = setup();
        store.put(Oid(10), b"orig").unwrap();
        log.append(&LogRecord::Begin { tid: Tid(1) }).unwrap();
        log.append(&LogRecord::Update {
            tid: Tid(1),
            oid: Oid(10),
            before: Some(b"orig".to_vec()),
            after: Some(b"dirty".to_vec()),
        })
        .unwrap();
        // crash: no commit record

        let report = recover(&log, &cache, &store).unwrap();
        assert_eq!(report.losers, 1);
        assert_eq!(get(&store, Oid(10)).unwrap(), b"orig");
    }

    #[test]
    fn creation_by_loser_is_deleted() {
        let (log, cache, store) = setup();
        log.append(&LogRecord::Update {
            tid: Tid(1),
            oid: Oid(5),
            before: None,
            after: Some(b"new".to_vec()),
        })
        .unwrap();
        recover(&log, &cache, &store).unwrap();
        assert_eq!(get(&store, Oid(5)), None);
    }

    #[test]
    fn delegated_updates_follow_the_delegatee() {
        let (log, cache, store) = setup();
        store.put(Oid(1), b"orig1").unwrap();
        store.put(Oid(2), b"orig2").unwrap();
        // t1 updates both objects, delegates ob1 to t2; t2 commits, t1 does
        // not. ob1's update must survive (t2 is responsible and committed),
        // ob2's must be undone.
        log.append(&LogRecord::Update {
            tid: Tid(1),
            oid: Oid(1),
            before: Some(b"orig1".to_vec()),
            after: Some(b"new1".to_vec()),
        })
        .unwrap();
        log.append(&LogRecord::Update {
            tid: Tid(1),
            oid: Oid(2),
            before: Some(b"orig2".to_vec()),
            after: Some(b"new2".to_vec()),
        })
        .unwrap();
        log.append(&LogRecord::Delegate {
            from: Tid(1),
            to: Tid(2),
            obs: Some(vec![Oid(1)]),
        })
        .unwrap();
        log.append(&LogRecord::Commit { tids: vec![Tid(2)] })
            .unwrap();

        let report = recover(&log, &cache, &store).unwrap();
        assert_eq!(get(&store, Oid(1)).unwrap(), b"new1");
        assert_eq!(get(&store, Oid(2)).unwrap(), b"orig2");
        assert_eq!(report.winners, 1);
        assert_eq!(report.losers, 1);
    }

    #[test]
    fn delegate_all_moves_everything() {
        let (log, cache, store) = setup();
        log.append(&LogRecord::Update {
            tid: Tid(1),
            oid: Oid(1),
            before: None,
            after: Some(b"a".to_vec()),
        })
        .unwrap();
        log.append(&LogRecord::Update {
            tid: Tid(1),
            oid: Oid(2),
            before: None,
            after: Some(b"b".to_vec()),
        })
        .unwrap();
        log.append(&LogRecord::Delegate {
            from: Tid(1),
            to: Tid(2),
            obs: None,
        })
        .unwrap();
        log.append(&LogRecord::Commit { tids: vec![Tid(2)] })
            .unwrap();
        recover(&log, &cache, &store).unwrap();
        assert_eq!(get(&store, Oid(1)).unwrap(), b"a");
        assert_eq!(get(&store, Oid(2)).unwrap(), b"b");
    }

    #[test]
    fn logged_abort_replays_via_clrs() {
        // the runtime abort protocol: Update, then a CLR per undo step,
        // then Abort — recovery replays the rollback in order and counts
        // no loser
        let (log, cache, store) = setup();
        store.put(Oid(1), b"orig").unwrap();
        log.append(&LogRecord::Update {
            tid: Tid(1),
            oid: Oid(1),
            before: Some(b"orig".to_vec()),
            after: Some(b"x".to_vec()),
        })
        .unwrap();
        log.append(&LogRecord::Clr {
            oid: Oid(1),
            image: Some(b"orig".to_vec()),
        })
        .unwrap();
        log.append(&LogRecord::Abort { tid: Tid(1) }).unwrap();
        let report = recover(&log, &cache, &store).unwrap();
        assert_eq!(get(&store, Oid(1)).unwrap(), b"orig");
        assert_eq!(report.losers, 0, "a completed abort is not a loser");
    }

    #[test]
    fn committed_overwrite_after_abort_survives_recovery() {
        // the regression the CLR design exists for: t1 aborts (undo logged
        // as CLR), then t2 commits an overwrite; recovery must keep t2's
        // value rather than replaying t1's before image last
        let (log, cache, store) = setup();
        store.put(Oid(1), b"v0").unwrap();
        log.append(&LogRecord::Update {
            tid: Tid(1),
            oid: Oid(1),
            before: Some(b"v0".to_vec()),
            after: Some(b"t1".to_vec()),
        })
        .unwrap();
        log.append(&LogRecord::Clr {
            oid: Oid(1),
            image: Some(b"v0".to_vec()),
        })
        .unwrap();
        log.append(&LogRecord::Abort { tid: Tid(1) }).unwrap();
        log.append(&LogRecord::Update {
            tid: Tid(2),
            oid: Oid(1),
            before: Some(b"v0".to_vec()),
            after: Some(b"t2-committed".to_vec()),
        })
        .unwrap();
        log.append(&LogRecord::Commit { tids: vec![Tid(2)] })
            .unwrap();
        recover(&log, &cache, &store).unwrap();
        assert_eq!(get(&store, Oid(1)).unwrap(), b"t2-committed");
    }

    #[test]
    fn crash_mid_abort_still_rolls_back() {
        // some CLRs logged but no Abort record: the transaction is a loser
        // and the undo pass finishes the rollback
        let (log, cache, store) = setup();
        store.put(Oid(1), b"a0").unwrap();
        store.put(Oid(2), b"b0").unwrap();
        log.append(&LogRecord::Update {
            tid: Tid(1),
            oid: Oid(1),
            before: Some(b"a0".to_vec()),
            after: Some(b"a1".to_vec()),
        })
        .unwrap();
        log.append(&LogRecord::Update {
            tid: Tid(1),
            oid: Oid(2),
            before: Some(b"b0".to_vec()),
            after: Some(b"b1".to_vec()),
        })
        .unwrap();
        // runtime undid ob2 (newest first) and crashed before ob1's CLR
        log.append(&LogRecord::Clr {
            oid: Oid(2),
            image: Some(b"b0".to_vec()),
        })
        .unwrap();
        let report = recover(&log, &cache, &store).unwrap();
        assert_eq!(report.losers, 1);
        assert_eq!(get(&store, Oid(1)).unwrap(), b"a0");
        assert_eq!(get(&store, Oid(2)).unwrap(), b"b0");
    }

    #[test]
    fn recovery_is_idempotent() {
        let (log, cache, store) = setup();
        store.put(Oid(1), b"orig").unwrap();
        log.append(&LogRecord::Update {
            tid: Tid(1),
            oid: Oid(1),
            before: Some(b"orig".to_vec()),
            after: Some(b"committed".to_vec()),
        })
        .unwrap();
        log.append(&LogRecord::Commit { tids: vec![Tid(1)] })
            .unwrap();
        log.append(&LogRecord::Update {
            tid: Tid(2),
            oid: Oid(1),
            before: Some(b"committed".to_vec()),
            after: Some(b"uncommitted".to_vec()),
        })
        .unwrap();
        let r1 = recover(&log, &cache, &store).unwrap();
        let r2 = recover(&log, &ObjectCache::new(), &store).unwrap();
        assert_eq!(r1.redone, r2.redone);
        assert_eq!(get(&store, Oid(1)).unwrap(), b"committed");
    }

    #[test]
    fn checkpoint_resets_analysis() {
        let (log, cache, store) = setup();
        store.put(Oid(1), b"settled").unwrap();
        // pre-checkpoint garbage that must not be replayed
        log.append(&LogRecord::Update {
            tid: Tid(1),
            oid: Oid(1),
            before: Some(b"old".to_vec()),
            after: Some(b"never".to_vec()),
        })
        .unwrap();
        log.append(&LogRecord::Checkpoint).unwrap();
        let report = recover(&log, &cache, &store).unwrap();
        assert_eq!(report.redone, 0);
        assert_eq!(get(&store, Oid(1)).unwrap(), b"settled");
    }

    #[test]
    fn interleaved_winner_and_loser_on_same_object() {
        let (log, cache, store) = setup();
        store.put(Oid(1), b"v0").unwrap();
        // t1 (loser) writes v1 over v0; then t2 — cooperating via permit at
        // runtime — writes v2 over v1 and commits. The paper's abort policy
        // installs t1's before image, losing t2's update. Recovery must
        // reproduce exactly that: final value v0.
        log.append(&LogRecord::Update {
            tid: Tid(1),
            oid: Oid(1),
            before: Some(b"v0".to_vec()),
            after: Some(b"v1".to_vec()),
        })
        .unwrap();
        log.append(&LogRecord::Update {
            tid: Tid(2),
            oid: Oid(1),
            before: Some(b"v1".to_vec()),
            after: Some(b"v2".to_vec()),
        })
        .unwrap();
        log.append(&LogRecord::Commit { tids: vec![Tid(2)] })
            .unwrap();
        recover(&log, &cache, &store).unwrap();
        assert_eq!(get(&store, Oid(1)).unwrap(), b"v0");
    }

    #[test]
    fn prepared_without_decision_is_in_doubt_not_undone() {
        let (log, cache, store) = setup();
        store.put(Oid(1), b"v0").unwrap();
        log.append(&LogRecord::Update {
            tid: Tid(1),
            oid: Oid(1),
            before: Some(b"v0".to_vec()),
            after: Some(b"prepared".to_vec()),
        })
        .unwrap();
        log.append(&LogRecord::Prepared {
            tids: vec![Tid(1), Tid(2)],
        })
        .unwrap();
        // crash: no Commit/Abort — the decision belongs to the coordinator
        let report = recover(&log, &cache, &store).unwrap();
        assert_eq!(report.losers, 0, "prepared is not a loser");
        assert_eq!(report.undone, 0);
        assert_eq!(
            get(&store, Oid(1)).unwrap(),
            b"prepared",
            "in-doubt updates stay redone"
        );
        assert_eq!(report.in_doubt.len(), 2);
        let d = &report.in_doubt[0];
        assert_eq!(d.tid, Tid(1));
        assert_eq!(d.group, vec![Tid(1), Tid(2)]);
        assert_eq!(d.updates.len(), 1);
        assert_eq!(d.updates[0].oid, Oid(1));
        assert_eq!(d.updates[0].before, Some(b"v0".to_vec()));
        // Tid(2) prepared without updates: still in-doubt, empty undo set
        assert_eq!(report.in_doubt[1].tid, Tid(2));
        assert!(report.in_doubt[1].updates.is_empty());
    }

    #[test]
    fn prepared_then_committed_is_a_winner() {
        let (log, cache, store) = setup();
        log.append(&LogRecord::Update {
            tid: Tid(1),
            oid: Oid(1),
            before: None,
            after: Some(b"v".to_vec()),
        })
        .unwrap();
        log.append(&LogRecord::Prepared { tids: vec![Tid(1)] })
            .unwrap();
        log.append(&LogRecord::Commit { tids: vec![Tid(1)] })
            .unwrap();
        let report = recover(&log, &cache, &store).unwrap();
        assert!(report.in_doubt.is_empty());
        assert_eq!(report.winners, 1);
        assert_eq!(get(&store, Oid(1)).unwrap(), b"v");
    }

    #[test]
    fn prepared_then_aborted_replays_clean() {
        // decide-abort at runtime logs CLRs + Abort, like any abort
        let (log, cache, store) = setup();
        store.put(Oid(1), b"v0").unwrap();
        log.append(&LogRecord::Update {
            tid: Tid(1),
            oid: Oid(1),
            before: Some(b"v0".to_vec()),
            after: Some(b"x".to_vec()),
        })
        .unwrap();
        log.append(&LogRecord::Prepared { tids: vec![Tid(1)] })
            .unwrap();
        log.append(&LogRecord::Clr {
            oid: Oid(1),
            image: Some(b"v0".to_vec()),
        })
        .unwrap();
        log.append(&LogRecord::Abort { tid: Tid(1) }).unwrap();
        let report = recover(&log, &cache, &store).unwrap();
        assert!(report.in_doubt.is_empty());
        assert_eq!(report.losers, 0);
        assert_eq!(get(&store, Oid(1)).unwrap(), b"v0");
    }

    #[test]
    fn in_doubt_recovery_is_idempotent() {
        let (log, cache, store) = setup();
        log.append(&LogRecord::Update {
            tid: Tid(1),
            oid: Oid(1),
            before: None,
            after: Some(b"p".to_vec()),
        })
        .unwrap();
        log.append(&LogRecord::Prepared { tids: vec![Tid(1)] })
            .unwrap();
        let r1 = recover(&log, &cache, &store).unwrap();
        let r2 = recover(&log, &ObjectCache::new(), &store).unwrap();
        assert_eq!(r1.in_doubt, r2.in_doubt);
        assert_eq!(get(&store, Oid(1)).unwrap(), b"p");
    }

    #[test]
    fn group_commit_record_commits_all_members() {
        let (log, cache, store) = setup();
        log.append(&LogRecord::Update {
            tid: Tid(1),
            oid: Oid(1),
            before: None,
            after: Some(b"a".to_vec()),
        })
        .unwrap();
        log.append(&LogRecord::Update {
            tid: Tid(2),
            oid: Oid(2),
            before: None,
            after: Some(b"b".to_vec()),
        })
        .unwrap();
        log.append(&LogRecord::Commit {
            tids: vec![Tid(1), Tid(2)],
        })
        .unwrap();
        let report = recover(&log, &cache, &store).unwrap();
        assert_eq!(report.winners, 2);
        assert_eq!(get(&store, Oid(1)).unwrap(), b"a");
        assert_eq!(get(&store, Oid(2)).unwrap(), b"b");
    }
}

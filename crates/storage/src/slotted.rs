//! Slotted-page layout for variable-length objects.
//!
//! ```text
//! +--------------------------------------------------------------+
//! | header (24 B) | slot 0 | slot 1 | ...  ->   free   <- records|
//! +--------------------------------------------------------------+
//! ```
//!
//! * Header: magic (u32), page id (u32), slot count (u16), heap offset
//!   (u16, start of the record heap growing down from the page end),
//!   live bytes (u32, for compaction decisions), checksum (u64).
//! * Slot (16 B): oid (u64), record offset (u16), record length (u16),
//!   flags (u16: bit0 = live), pad (u16).
//!
//! Records are raw object payloads. Deleting marks the slot dead; the space
//! is reclaimed by [`SlottedPage::compact`], which is invoked automatically
//! when an insert would fail but enough dead space exists.

use crate::page::{checksum, get_u16, get_u32, get_u64, put_u16, put_u32, put_u64, Page, PageId};
use asset_common::{AssetError, Oid, Result};

const MAGIC: u32 = 0xA55E_7001;

const H_MAGIC: usize = 0; // u32
const H_PAGE_ID: usize = 4; // u32
const H_SLOT_COUNT: usize = 8; // u16
const H_HEAP_OFF: usize = 10; // u16
const H_LIVE_BYTES: usize = 12; // u32
const H_CHECKSUM: usize = 16; // u64
const HEADER_SIZE: usize = 24;

const SLOT_SIZE: usize = 16;
const S_OID: usize = 0; // u64
const S_OFF: usize = 8; // u16
const S_LEN: usize = 10; // u16
const S_FLAGS: usize = 12; // u16

const FLAG_LIVE: u16 = 1;

/// A view over a [`Page`] imposing the slotted layout.
///
/// The view owns the page; callers move pages in and out (the buffer pool
/// hands out clones of frame contents under its own synchronization).
pub struct SlottedPage {
    page: Page,
}

/// Index of a slot within a page.
pub type SlotId = u16;

impl SlottedPage {
    /// Format a fresh page.
    pub fn format(mut page: Page, page_id: PageId) -> SlottedPage {
        let size = page.size();
        assert!(size >= 256, "page too small for slotted layout");
        assert!(
            size - 1 <= u16::MAX as usize,
            "page too large for u16 offsets"
        );
        let buf = page.bytes_mut();
        buf.fill(0);
        put_u32(buf, H_MAGIC, MAGIC);
        put_u32(buf, H_PAGE_ID, page_id);
        put_u16(buf, H_SLOT_COUNT, 0);
        // heap_off is the offset of the last free byte; records occupy
        // [heap_off + 1, size). Empty page: heap_off = size - 1, which fits
        // in u16 for pages up to 64 KiB (asserted above).
        put_u16(buf, H_HEAP_OFF, (size - 1) as u16);
        put_u32(buf, H_LIVE_BYTES, 0);
        let mut sp = SlottedPage { page };
        sp.update_checksum();
        sp
    }

    /// Interpret an existing buffer as a slotted page, verifying magic and
    /// checksum.
    pub fn open(page: Page) -> Result<SlottedPage> {
        let buf = page.bytes();
        if buf.len() < HEADER_SIZE {
            return Err(AssetError::Corrupt("page smaller than header".into()));
        }
        if get_u32(buf, H_MAGIC) != MAGIC {
            return Err(AssetError::Corrupt("bad page magic".into()));
        }
        let stored = get_u64(buf, H_CHECKSUM);
        let actual = Self::compute_checksum(buf);
        if stored != actual {
            return Err(AssetError::Corrupt(format!(
                "page {} checksum mismatch",
                get_u32(buf, H_PAGE_ID)
            )));
        }
        Ok(SlottedPage { page })
    }

    /// Is this buffer a formatted slotted page (magic check only)?
    pub fn is_formatted(buf: &[u8]) -> bool {
        buf.len() >= HEADER_SIZE && get_u32(buf, H_MAGIC) == MAGIC
    }

    fn compute_checksum(buf: &[u8]) -> u64 {
        // checksum covers everything except the checksum field itself
        let mut h = checksum(&buf[..H_CHECKSUM]);
        h ^= checksum(&buf[H_CHECKSUM + 8..]).rotate_left(17);
        h
    }

    fn update_checksum(&mut self) {
        let h = Self::compute_checksum(self.page.bytes());
        put_u64(self.page.bytes_mut(), H_CHECKSUM, h);
    }

    /// Yield the underlying page (checksum refreshed).
    pub fn into_page(mut self) -> Page {
        self.update_checksum();
        self.page
    }

    /// The page id recorded in the header.
    pub fn page_id(&self) -> PageId {
        get_u32(self.page.bytes(), H_PAGE_ID)
    }

    /// Number of slots (live and dead).
    pub fn slot_count(&self) -> u16 {
        get_u16(self.page.bytes(), H_SLOT_COUNT)
    }

    fn heap_off(&self) -> usize {
        // stored as "offset of last free byte"; records occupy
        // [heap_off+1 .. size)
        get_u16(self.page.bytes(), H_HEAP_OFF) as usize
    }

    fn set_heap_off(&mut self, off: usize) {
        put_u16(self.page.bytes_mut(), H_HEAP_OFF, off as u16);
    }

    fn live_bytes(&self) -> u32 {
        get_u32(self.page.bytes(), H_LIVE_BYTES)
    }

    fn set_live_bytes(&mut self, v: u32) {
        put_u32(self.page.bytes_mut(), H_LIVE_BYTES, v);
    }

    fn slot_base(slot: SlotId) -> usize {
        HEADER_SIZE + slot as usize * SLOT_SIZE
    }

    fn slot_oid(&self, slot: SlotId) -> Oid {
        Oid(get_u64(self.page.bytes(), Self::slot_base(slot) + S_OID))
    }

    fn slot_off(&self, slot: SlotId) -> usize {
        get_u16(self.page.bytes(), Self::slot_base(slot) + S_OFF) as usize
    }

    fn slot_len(&self, slot: SlotId) -> usize {
        get_u16(self.page.bytes(), Self::slot_base(slot) + S_LEN) as usize
    }

    fn slot_live(&self, slot: SlotId) -> bool {
        get_u16(self.page.bytes(), Self::slot_base(slot) + S_FLAGS) & FLAG_LIVE != 0
    }

    fn write_slot(&mut self, slot: SlotId, oid: Oid, off: usize, len: usize, live: bool) {
        let base = Self::slot_base(slot);
        let buf = self.page.bytes_mut();
        put_u64(buf, base + S_OID, oid.raw());
        put_u16(buf, base + S_OFF, off as u16);
        put_u16(buf, base + S_LEN, len as u16);
        put_u16(buf, base + S_FLAGS, if live { FLAG_LIVE } else { 0 });
        put_u16(buf, base + S_FLAGS + 2, 0);
    }

    /// Contiguous free space between the slot array and the record heap.
    pub fn contiguous_free(&self) -> usize {
        let slots_end = Self::slot_base(self.slot_count());
        let heap_start = self.heap_off() + 1;
        heap_start.saturating_sub(slots_end)
    }

    /// Free space counting dead records reclaimable by compaction
    /// (but not dead slot entries, which are reused in place).
    pub fn usable_free(&self) -> usize {
        let size = self.page.size();
        let slots_end = Self::slot_base(self.slot_count());
        let live = self.live_bytes() as usize;
        (size - slots_end).saturating_sub(live)
    }

    /// The maximum record length this page could ever hold (single record,
    /// empty page).
    pub fn max_record_len(page_size: usize) -> usize {
        (page_size - HEADER_SIZE - SLOT_SIZE).min(u16::MAX as usize)
    }

    fn find_dead_slot(&self) -> Option<SlotId> {
        (0..self.slot_count()).find(|&s| !self.slot_live(s))
    }

    /// Insert `bytes` as the record for `oid`. Returns the slot id, or
    /// `None` if the page cannot fit the record even after compaction.
    /// `oid` must not already live on this page (the store enforces that).
    pub fn insert(&mut self, oid: Oid, bytes: &[u8]) -> Option<SlotId> {
        if bytes.len() > u16::MAX as usize {
            return None;
        }
        let reuse = self.find_dead_slot();
        let slot_cost = if reuse.is_some() { 0 } else { SLOT_SIZE };
        if self.contiguous_free() < bytes.len() + slot_cost {
            if self.usable_free() >= bytes.len() + slot_cost {
                self.compact();
            }
            if self.contiguous_free() < bytes.len() + slot_cost {
                return None;
            }
        }
        let heap_off = self.heap_off();
        let new_heap_off = heap_off - bytes.len();
        let rec_start = new_heap_off + 1;
        self.page.bytes_mut()[rec_start..rec_start + bytes.len()].copy_from_slice(bytes);
        self.set_heap_off(new_heap_off);
        let slot = match reuse {
            Some(s) => s,
            None => {
                let s = self.slot_count();
                put_u16(self.page.bytes_mut(), H_SLOT_COUNT, s + 1);
                s
            }
        };
        self.write_slot(slot, oid, rec_start, bytes.len(), true);
        self.set_live_bytes(self.live_bytes() + bytes.len() as u32);
        self.update_checksum();
        Some(slot)
    }

    /// Read the record in `slot`. Returns `None` for a dead or out-of-range
    /// slot.
    pub fn get(&self, slot: SlotId) -> Option<(Oid, &[u8])> {
        if slot >= self.slot_count() || !self.slot_live(slot) {
            return None;
        }
        let off = self.slot_off(slot);
        let len = self.slot_len(slot);
        Some((self.slot_oid(slot), &self.page.bytes()[off..off + len]))
    }

    /// Overwrite the record in `slot` with `bytes`.
    ///
    /// Succeeds in place when the new payload is no longer than the old;
    /// otherwise deletes and re-inserts within the page if space allows.
    /// Returns the (possibly new) slot, or `None` if the page cannot hold
    /// the new payload (the caller must relocate the object).
    pub fn update(&mut self, slot: SlotId, bytes: &[u8]) -> Option<SlotId> {
        if slot >= self.slot_count() || !self.slot_live(slot) {
            return None;
        }
        let old_len = self.slot_len(slot);
        let oid = self.slot_oid(slot);
        if bytes.len() <= old_len {
            let off = self.slot_off(slot);
            self.page.bytes_mut()[off..off + bytes.len()].copy_from_slice(bytes);
            self.write_slot(slot, oid, off, bytes.len(), true);
            self.set_live_bytes(self.live_bytes() - (old_len - bytes.len()) as u32);
            self.update_checksum();
            Some(slot)
        } else {
            self.delete(slot);
            self.insert(oid, bytes)
        }
    }

    /// Mark `slot` dead. Space is reclaimed lazily by compaction.
    pub fn delete(&mut self, slot: SlotId) -> bool {
        if slot >= self.slot_count() || !self.slot_live(slot) {
            return false;
        }
        let len = self.slot_len(slot);
        let oid = self.slot_oid(slot);
        let off = self.slot_off(slot);
        self.write_slot(slot, oid, off, len, false);
        self.set_live_bytes(self.live_bytes() - len as u32);
        self.update_checksum();
        true
    }

    /// Rewrite the record heap so all live records are contiguous at the
    /// end of the page, maximizing contiguous free space.
    pub fn compact(&mut self) {
        let size = self.page.size();
        let count = self.slot_count();
        // Collect live records (slot, bytes) — copies; pages are small.
        let mut live: Vec<(SlotId, Oid, Vec<u8>)> = Vec::new();
        for s in 0..count {
            if self.slot_live(s) {
                let off = self.slot_off(s);
                let len = self.slot_len(s);
                live.push((
                    s,
                    self.slot_oid(s),
                    self.page.bytes()[off..off + len].to_vec(),
                ));
            }
        }
        let mut write_end = size; // exclusive
        for (s, oid, bytes) in &live {
            let start = write_end - bytes.len();
            self.page.bytes_mut()[start..write_end].copy_from_slice(bytes);
            self.write_slot(*s, *oid, start, bytes.len(), true);
            write_end = start;
        }
        self.set_heap_off(write_end - 1);
        self.update_checksum();
    }

    /// Iterate over `(slot, oid, record)` for all live slots.
    pub fn live_records(&self) -> impl Iterator<Item = (SlotId, Oid, &[u8])> + '_ {
        (0..self.slot_count()).filter_map(move |s| self.get(s).map(|(oid, b)| (s, oid, b)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh(size: usize) -> SlottedPage {
        SlottedPage::format(Page::zeroed(size), 7)
    }

    #[test]
    fn format_and_open_roundtrip() {
        let sp = fresh(1024);
        assert_eq!(sp.page_id(), 7);
        assert_eq!(sp.slot_count(), 0);
        let page = sp.into_page();
        let sp2 = SlottedPage::open(page).unwrap();
        assert_eq!(sp2.page_id(), 7);
    }

    #[test]
    fn open_rejects_garbage() {
        let err = SlottedPage::open(Page::zeroed(1024));
        assert!(err.is_err());
    }

    #[test]
    fn open_rejects_bit_flip() {
        let sp = fresh(1024);
        let mut page = sp.into_page();
        let n = page.size();
        page.bytes_mut()[n - 3] ^= 0x40;
        assert!(SlottedPage::open(page).is_err());
    }

    #[test]
    fn insert_get() {
        let mut sp = fresh(1024);
        let s = sp.insert(Oid(1), b"hello").unwrap();
        let (oid, bytes) = sp.get(s).unwrap();
        assert_eq!(oid, Oid(1));
        assert_eq!(bytes, b"hello");
    }

    #[test]
    fn multiple_inserts_distinct_slots() {
        let mut sp = fresh(1024);
        let a = sp.insert(Oid(1), b"aaaa").unwrap();
        let b = sp.insert(Oid(2), b"bbbbbb").unwrap();
        assert_ne!(a, b);
        assert_eq!(sp.get(a).unwrap().1, b"aaaa");
        assert_eq!(sp.get(b).unwrap().1, b"bbbbbb");
    }

    #[test]
    fn delete_then_slot_reuse() {
        let mut sp = fresh(1024);
        let a = sp.insert(Oid(1), b"aaaa").unwrap();
        assert!(sp.delete(a));
        assert!(sp.get(a).is_none());
        assert!(!sp.delete(a), "double delete is a no-op");
        let b = sp.insert(Oid(2), b"bb").unwrap();
        assert_eq!(a, b, "dead slot is reused");
    }

    #[test]
    fn update_in_place_and_grow() {
        let mut sp = fresh(1024);
        let s = sp.insert(Oid(1), b"0123456789").unwrap();
        // shrink in place
        let s2 = sp.update(s, b"abc").unwrap();
        assert_eq!(s2, s);
        assert_eq!(sp.get(s).unwrap().1, b"abc");
        // grow: relocates within page
        let s3 = sp.update(s2, b"ABCDEFGHIJKLMNOP").unwrap();
        assert_eq!(sp.get(s3).unwrap().1, b"ABCDEFGHIJKLMNOP");
    }

    #[test]
    fn fill_until_full_then_compact_recovers_space() {
        let mut sp = fresh(512);
        let payload = [0xABu8; 40];
        let mut slots = vec![];
        while let Some(s) = sp.insert(Oid(slots.len() as u64 + 1), &payload) {
            slots.push(s);
        }
        assert!(slots.len() >= 5);
        // delete every other record; dead space is fragmented
        for (i, s) in slots.iter().enumerate() {
            if i % 2 == 0 {
                sp.delete(*s);
            }
        }
        // a larger record fits only after compaction, which insert() does
        // automatically
        let big = vec![0xCDu8; 60];
        assert!(sp.insert(Oid(999), &big).is_some());
        let rec = sp
            .live_records()
            .find(|(_, oid, _)| *oid == Oid(999))
            .map(|(_, _, b)| b.to_vec())
            .unwrap();
        assert_eq!(rec, big);
    }

    #[test]
    fn live_records_iterates_only_live() {
        let mut sp = fresh(1024);
        let a = sp.insert(Oid(1), b"a").unwrap();
        let _b = sp.insert(Oid(2), b"b").unwrap();
        sp.delete(a);
        let oids: Vec<Oid> = sp.live_records().map(|(_, o, _)| o).collect();
        assert_eq!(oids, vec![Oid(2)]);
    }

    #[test]
    fn reject_oversized() {
        let mut sp = fresh(512);
        assert!(sp.insert(Oid(1), &vec![0u8; 600]).is_none());
    }

    #[test]
    fn checksum_survives_roundtrip_after_mutation() {
        let mut sp = fresh(1024);
        sp.insert(Oid(5), b"payload").unwrap();
        sp.delete(0);
        sp.insert(Oid(6), b"other").unwrap();
        let page = sp.into_page();
        let sp2 = SlottedPage::open(page).unwrap();
        let oids: Vec<Oid> = sp2.live_records().map(|(_, o, _)| o).collect();
        assert_eq!(oids, vec![Oid(6)]);
    }

    #[test]
    fn max_record_len_fits() {
        let n = SlottedPage::max_record_len(512);
        let mut sp = fresh(512);
        assert!(sp.insert(Oid(1), &vec![1u8; n]).is_some());
        assert!(sp.insert(Oid(2), b"x").is_none());
    }
}

//! Raw page buffers and little-endian field access.
//!
//! A page is a fixed-size byte buffer. [`slotted`](crate::slotted) imposes a
//! slotted-record structure on top; this module provides the buffer itself
//! and checked little-endian accessors used by both the slotted layout and
//! the log encoding.

use asset_common::{AssetError, Result};

/// Identifier of a page within the heap file.
pub type PageId = u32;

/// A fixed-size page buffer.
#[derive(Clone)]
pub struct Page {
    data: Box<[u8]>,
}

impl Page {
    /// A zeroed page of `size` bytes.
    pub fn zeroed(size: usize) -> Page {
        Page {
            data: vec![0u8; size].into_boxed_slice(),
        }
    }

    /// Wrap an existing buffer.
    pub fn from_bytes(data: Vec<u8>) -> Page {
        Page {
            data: data.into_boxed_slice(),
        }
    }

    /// Page size in bytes.
    #[inline]
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Borrow the raw bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Borrow the raw bytes mutably.
    #[inline]
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Page({} bytes)", self.data.len())
    }
}

/// Read a `u16` at `off` (little endian).
#[inline]
pub fn get_u16(buf: &[u8], off: usize) -> u16 {
    u16::from_le_bytes([buf[off], buf[off + 1]])
}

/// Write a `u16` at `off` (little endian).
#[inline]
pub fn put_u16(buf: &mut [u8], off: usize, v: u16) {
    buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
}

/// Read a `u32` at `off` (little endian).
#[inline]
pub fn get_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
}

/// Write a `u32` at `off` (little endian).
#[inline]
pub fn put_u32(buf: &mut [u8], off: usize, v: u32) {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

/// Read a `u64` at `off` (little endian).
#[inline]
pub fn get_u64(buf: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[off..off + 8]);
    u64::from_le_bytes(b)
}

/// Write a `u64` at `off` (little endian).
#[inline]
pub fn put_u64(buf: &mut [u8], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

/// Checked variant of [`get_u32`] for decoding possibly-corrupt input.
pub fn try_get_u32(buf: &[u8], off: usize) -> Result<u32> {
    if off + 4 > buf.len() {
        return Err(AssetError::Corrupt(format!(
            "u32 read at {off} past end ({})",
            buf.len()
        )));
    }
    Ok(get_u32(buf, off))
}

/// Checked variant of [`get_u64`].
pub fn try_get_u64(buf: &[u8], off: usize) -> Result<u64> {
    if off + 8 > buf.len() {
        return Err(AssetError::Corrupt(format!(
            "u64 read at {off} past end ({})",
            buf.len()
        )));
    }
    Ok(get_u64(buf, off))
}

/// FNV-1a 64-bit checksum used by pages and log records.
///
/// Not cryptographic; it detects torn writes and truncation, which is all a
/// single-node log needs.
pub fn checksum(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut buf = vec![0u8; 32];
        put_u16(&mut buf, 0, 0xBEEF);
        put_u32(&mut buf, 2, 0xDEADBEEF);
        put_u64(&mut buf, 6, 0x0123_4567_89AB_CDEF);
        assert_eq!(get_u16(&buf, 0), 0xBEEF);
        assert_eq!(get_u32(&buf, 2), 0xDEADBEEF);
        assert_eq!(get_u64(&buf, 6), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn checked_reads() {
        let buf = vec![1u8; 8];
        assert!(try_get_u32(&buf, 4).is_ok());
        assert!(try_get_u32(&buf, 5).is_err());
        assert!(try_get_u64(&buf, 0).is_ok());
        assert!(try_get_u64(&buf, 1).is_err());
    }

    #[test]
    fn checksum_changes_with_content() {
        assert_ne!(checksum(b"hello"), checksum(b"hellp"));
        assert_eq!(checksum(b""), checksum(b""));
        assert_ne!(checksum(b"a"), checksum(b"aa"));
    }

    #[test]
    fn page_basics() {
        let mut p = Page::zeroed(512);
        assert_eq!(p.size(), 512);
        p.bytes_mut()[0] = 42;
        assert_eq!(p.bytes()[0], 42);
        let q = Page::from_bytes(vec![7; 64]);
        assert_eq!(q.size(), 64);
        assert_eq!(q.bytes()[63], 7);
    }
}

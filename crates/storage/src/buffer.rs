//! A buffer pool with clock (second-chance) eviction.
//!
//! The pool caches pages of a [`PageStore`] in a fixed number of frames.
//! Callers fetch pages, mutate them through [`FrameGuard`], and mark them
//! dirty; dirty frames are written back on eviction and on
//! [`BufferPool::flush_all`].

use crate::heapfile::PageStore;
use crate::page::{Page, PageId};
use asset_common::{AssetError, Result};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

struct Frame {
    /// Page currently cached, `None` for a free frame.
    page_id: Mutex<Option<PageId>>,
    data: RwLock<Page>,
    dirty: AtomicBool,
    pin_count: AtomicU32,
    ref_bit: AtomicBool,
}

/// A fixed-capacity page cache over a [`PageStore`].
pub struct BufferPool {
    store: Arc<dyn PageStore>,
    frames: Vec<Frame>,
    /// page id -> frame index
    table: Mutex<HashMap<PageId, usize>>,
    clock_hand: AtomicU32,
    hits: AtomicU32,
    misses: AtomicU32,
}

/// RAII pin on a frame; unpins on drop.
pub struct FrameGuard<'a> {
    pool: &'a BufferPool,
    frame: usize,
}

impl BufferPool {
    /// Build a pool of `capacity` frames over `store`.
    pub fn new(store: Arc<dyn PageStore>, capacity: usize) -> BufferPool {
        assert!(capacity >= 1);
        let page_size = store.page_size();
        let frames = (0..capacity)
            .map(|_| Frame {
                page_id: Mutex::new(None),
                data: RwLock::new(Page::zeroed(page_size)),
                dirty: AtomicBool::new(false),
                pin_count: AtomicU32::new(0),
                ref_bit: AtomicBool::new(false),
            })
            .collect();
        BufferPool {
            store,
            frames,
            table: Mutex::new(HashMap::new()),
            clock_hand: AtomicU32::new(0),
            hits: AtomicU32::new(0),
            misses: AtomicU32::new(0),
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<dyn PageStore> {
        &self.store
    }

    /// Cache hit/miss counters (diagnostics and benches).
    pub fn stats(&self) -> (u32, u32) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Allocate a fresh page in the store and pin it.
    pub fn allocate(&self) -> Result<(PageId, FrameGuard<'_>)> {
        let pid = self.store.allocate()?;
        let guard = self.fetch(pid)?;
        Ok((pid, guard))
    }

    /// Fetch page `pid`, pinning its frame.
    pub fn fetch(&self, pid: PageId) -> Result<FrameGuard<'_>> {
        // Fast path: already resident. The table lock is held while pinning
        // so the frame cannot be evicted in between.
        {
            let table = self.table.lock();
            if let Some(&idx) = table.get(&pid) {
                let f = &self.frames[idx];
                f.pin_count.fetch_add(1, Ordering::AcqRel);
                f.ref_bit.store(true, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(FrameGuard {
                    pool: self,
                    frame: idx,
                });
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Slow path: pick a victim, evict, load.
        let idx = self.evict_victim()?;
        let frame = &self.frames[idx];
        let page = self.store.read_page(pid)?;
        {
            let mut data = frame.data.write();
            *data = page;
        }
        *frame.page_id.lock() = Some(pid);
        frame.dirty.store(false, Ordering::Relaxed);
        frame.ref_bit.store(true, Ordering::Relaxed);
        {
            let mut table = self.table.lock();
            table.insert(pid, idx);
        }
        Ok(FrameGuard {
            pool: self,
            frame: idx,
        })
    }

    /// Choose a victim frame with the clock algorithm, flush it if dirty,
    /// and return its index with pin_count already set to 1 (reserved for
    /// the caller).
    #[allow(clippy::if_same_then_else)] // pinned and referenced frames both just advance the hand
    fn evict_victim(&self) -> Result<usize> {
        let n = self.frames.len();
        let mut sweeps = 0usize;
        loop {
            let hand = self.clock_hand.fetch_add(1, Ordering::Relaxed) as usize % n;
            let f = &self.frames[hand];
            if f.pin_count.load(Ordering::Acquire) != 0 {
                sweeps += 1;
            } else if f.ref_bit.swap(false, Ordering::Relaxed) {
                sweeps += 1;
            } else {
                // try to claim: pin it; if someone pinned first, move on
                if f.pin_count
                    .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    sweeps += 1;
                    continue;
                }
                // remove old mapping and write back
                let old = {
                    let mut table = self.table.lock();
                    let old = *f.page_id.lock();
                    if let Some(old_pid) = old {
                        table.remove(&old_pid);
                    }
                    old
                };
                if let Some(old_pid) = old {
                    if f.dirty.swap(false, Ordering::AcqRel) {
                        let data = f.data.read();
                        self.store.write_page(old_pid, &data)?;
                    }
                }
                *f.page_id.lock() = None;
                return Ok(hand);
            }
            if sweeps > 2 * n {
                return Err(AssetError::Corrupt(
                    "buffer pool exhausted: all frames pinned".into(),
                ));
            }
        }
    }

    /// Write all dirty frames back and sync the store.
    pub fn flush_all(&self) -> Result<()> {
        for f in &self.frames {
            let pid = *f.page_id.lock();
            if let Some(pid) = pid {
                if f.dirty.swap(false, Ordering::AcqRel) {
                    let data = f.data.read();
                    self.store.write_page(pid, &data)?;
                }
            }
        }
        self.store.sync()
    }
}

impl<'a> FrameGuard<'a> {
    /// Read the page contents under the frame's shared lock.
    pub fn with_read<R>(&self, f: impl FnOnce(&Page) -> R) -> R {
        let data = self.pool.frames[self.frame].data.read();
        f(&data)
    }

    /// Mutate the page contents under the frame's exclusive lock; marks the
    /// frame dirty.
    pub fn with_write<R>(&self, f: impl FnOnce(&mut Page) -> R) -> R {
        let mut data = self.pool.frames[self.frame].data.write();
        self.pool.frames[self.frame]
            .dirty
            .store(true, Ordering::Release);
        f(&mut data)
    }
}

impl Drop for FrameGuard<'_> {
    fn drop(&mut self) {
        self.pool.frames[self.frame]
            .pin_count
            .fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heapfile::MemPageStore;

    fn pool(frames: usize) -> BufferPool {
        BufferPool::new(Arc::new(MemPageStore::new(256)), frames)
    }

    #[test]
    fn fetch_allocated_page() {
        let p = pool(4);
        let (pid, g) = p.allocate().unwrap();
        g.with_write(|page| page.bytes_mut()[0] = 9);
        drop(g);
        let g2 = p.fetch(pid).unwrap();
        assert_eq!(g2.with_read(|page| page.bytes()[0]), 9);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let p = pool(2);
        let mut pids = vec![];
        for i in 0..5u8 {
            let (pid, g) = p.allocate().unwrap();
            g.with_write(|page| page.bytes_mut()[0] = i + 1);
            pids.push(pid);
        }
        // All five pages were dirtied through a 2-frame pool; re-reading
        // them must show the writes survived eviction.
        for (i, pid) in pids.iter().enumerate() {
            let g = p.fetch(*pid).unwrap();
            assert_eq!(g.with_read(|page| page.bytes()[0]), i as u8 + 1);
        }
    }

    #[test]
    fn pinned_frames_are_not_evicted() {
        let p = pool(2);
        let (pid_a, ga) = p.allocate().unwrap();
        ga.with_write(|page| page.bytes_mut()[0] = 0xAA);
        // churn through other pages while A stays pinned
        for _ in 0..4 {
            let (_, g) = p.allocate().unwrap();
            g.with_write(|page| page.bytes_mut()[0] = 1);
        }
        assert_eq!(ga.with_read(|page| page.bytes()[0]), 0xAA);
        drop(ga);
        let g = p.fetch(pid_a).unwrap();
        assert_eq!(g.with_read(|page| page.bytes()[0]), 0xAA);
    }

    #[test]
    fn all_pinned_is_an_error() {
        let p = pool(2);
        let (_, _g1) = p.allocate().unwrap();
        let (_, _g2) = p.allocate().unwrap();
        assert!(p.allocate().is_err());
    }

    #[test]
    fn flush_all_persists() {
        let store = Arc::new(MemPageStore::new(256));
        let p = BufferPool::new(store.clone(), 4);
        let (pid, g) = p.allocate().unwrap();
        g.with_write(|page| page.bytes_mut()[10] = 77);
        drop(g);
        p.flush_all().unwrap();
        assert_eq!(store.read_page(pid).unwrap().bytes()[10], 77);
    }

    #[test]
    fn hit_miss_stats() {
        let p = pool(4);
        let (pid, g) = p.allocate().unwrap();
        drop(g);
        let before = p.stats();
        let _ = p.fetch(pid).unwrap();
        let after = p.stats();
        assert_eq!(after.0, before.0 + 1, "resident fetch is a hit");
    }

    #[test]
    fn concurrent_fetches() {
        let p = Arc::new(pool(8));
        let mut pids = vec![];
        for i in 0..16u8 {
            let (pid, g) = p.allocate().unwrap();
            g.with_write(|page| page.bytes_mut()[0] = i);
            pids.push(pid);
        }
        p.flush_all().unwrap();
        let mut handles = vec![];
        for t in 0..4 {
            let p = Arc::clone(&p);
            let pids = pids.clone();
            handles.push(std::thread::spawn(move || {
                for round in 0..200 {
                    let i = (t * 7 + round) % pids.len();
                    let g = p.fetch(pids[i]).unwrap();
                    assert_eq!(g.with_read(|page| page.bytes()[0]), i as u8);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}

//! EOS-style latches (paper §4.1).
//!
//! > "Latches in EOS are implemented by an atomic test-and-set operation. If
//! > a process cannot (test-and-)set a latch it 'spins' on it (perhaps with
//! > some time-varying delay) until the latch is unset. Each latch, in
//! > addition to the value that can be set or unset atomically, contains an
//! > S-counter indicating the number of processes holding the latch in S
//! > mode and an X-bit indicating whether a process is waiting to get the
//! > latch in X mode. The X-bit blocks new readers from setting the latch,
//! > thus preventing starvation of update transactions."
//!
//! This implementation packs the whole latch into one `AtomicU32`:
//!
//! ```text
//!  bit 31        bits 30..16             bits 15..0
//!  X-held        X-waiter count          S-counter
//! ```
//!
//! A non-zero waiter count plays the role of the paper's X-bit: it blocks
//! *new* readers, so writers cannot starve. Waiters spin with an
//! exponentially growing backoff, yielding to the scheduler once the spin
//! budget is exhausted (the paper's "time-varying delay").

#[cfg(loom)]
use loom::sync::atomic::{AtomicU32, Ordering};
#[cfg(not(loom))]
use std::sync::atomic::{AtomicU32, Ordering};

const X_HELD: u32 = 1 << 31;
const X_WAIT_UNIT: u32 = 1 << 16;
const X_WAIT_MASK: u32 = ((1 << 15) - 1) << 16;
const S_MASK: u32 = (1 << 16) - 1;

/// A shared/exclusive spin latch.
///
/// Latches protect short critical sections (an object read or write in the
/// shared cache); they are never held across blocking operations, unlike
/// *locks*, which are transaction-duration and live in the lock manager.
#[derive(Debug)]
pub struct Latch {
    state: AtomicU32,
    spin_limit: u32,
}

impl Default for Latch {
    fn default() -> Latch {
        Latch::new()
    }
}

/// RAII guard for a shared (S) latch acquisition.
#[must_use = "releasing the guard releases the latch"]
pub struct SharedGuard<'a> {
    latch: &'a Latch,
}

/// RAII guard for an exclusive (X) latch acquisition.
#[must_use = "releasing the guard releases the latch"]
pub struct ExclusiveGuard<'a> {
    latch: &'a Latch,
}

impl Latch {
    /// A new, unheld latch with the default spin budget.
    /// (Non-const under loom: loom's atomics are not const-constructible.)
    #[cfg(not(loom))]
    pub const fn new() -> Latch {
        Latch {
            state: AtomicU32::new(0),
            spin_limit: 64,
        }
    }

    /// A new, unheld latch with the default spin budget.
    #[cfg(loom)]
    pub fn new() -> Latch {
        Latch {
            state: AtomicU32::new(0),
            spin_limit: 64,
        }
    }

    /// A new latch with an explicit spin budget before yielding.
    #[cfg(not(loom))]
    pub const fn with_spin_limit(spin_limit: u32) -> Latch {
        Latch {
            state: AtomicU32::new(0),
            spin_limit,
        }
    }

    /// A new latch with an explicit spin budget before yielding.
    #[cfg(loom)]
    pub fn with_spin_limit(spin_limit: u32) -> Latch {
        Latch {
            state: AtomicU32::new(0),
            spin_limit,
        }
    }

    #[cfg(not(loom))]
    fn backoff(&self, attempt: &mut u32) {
        if *attempt < self.spin_limit {
            for _ in 0..(1u32 << (*attempt).min(6)) {
                std::hint::spin_loop();
            }
            *attempt += 1;
        } else {
            std::thread::yield_now();
        }
    }

    /// Under loom every spin must be a model yield point, or the checker
    /// would explore unbounded spin interleavings.
    #[cfg(loom)]
    fn backoff(&self, attempt: &mut u32) {
        *attempt = attempt.saturating_add(1);
        loom::thread::yield_now();
    }

    /// Acquire in S mode. Blocks (spins) while an X holder exists or an X
    /// waiter is queued.
    pub fn shared(&self) -> SharedGuard<'_> {
        self.shared_profiled().0
    }

    /// Acquire in S mode, additionally reporting how many backoff rounds
    /// the acquisition spent (0 = granted on the first attempt).
    pub fn shared_profiled(&self) -> (SharedGuard<'_>, u32) {
        let mut attempt = 0;
        let mut rounds = 0u32;
        loop {
            let v = self.state.load(Ordering::Relaxed);
            if v & (X_HELD | X_WAIT_MASK) == 0 {
                debug_assert!(v & S_MASK < S_MASK, "S-counter overflow");
                if self
                    .state
                    .compare_exchange_weak(v, v + 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
                {
                    return (SharedGuard { latch: self }, rounds);
                }
            }
            self.backoff(&mut attempt);
            rounds = rounds.saturating_add(1);
        }
    }

    /// Try to acquire in S mode without spinning.
    pub fn try_shared(&self) -> Option<SharedGuard<'_>> {
        let v = self.state.load(Ordering::Relaxed);
        if v & (X_HELD | X_WAIT_MASK) == 0
            && self
                .state
                .compare_exchange(v, v + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
        {
            Some(SharedGuard { latch: self })
        } else {
            None
        }
    }

    /// Acquire in X mode. Registers as a waiter first so that new readers
    /// are blocked (starvation avoidance), then spins until the latch is
    /// free of holders.
    pub fn exclusive(&self) -> ExclusiveGuard<'_> {
        self.exclusive_profiled().0
    }

    /// Acquire in X mode, additionally reporting how many backoff rounds
    /// the acquisition spent (0 = granted on the first attempt).
    pub fn exclusive_profiled(&self) -> (ExclusiveGuard<'_>, u32) {
        // Announce intent: blocks new readers.
        let prev = self.state.fetch_add(X_WAIT_UNIT, Ordering::Relaxed);
        debug_assert!(prev & X_WAIT_MASK != X_WAIT_MASK, "X-waiter overflow");
        let mut attempt = 0;
        let mut rounds = 0u32;
        loop {
            let v = self.state.load(Ordering::Relaxed);
            if v & X_HELD == 0 && v & S_MASK == 0 {
                // claim: set X_HELD, drop our waiter slot
                let next = (v - X_WAIT_UNIT) | X_HELD;
                if self
                    .state
                    .compare_exchange_weak(v, next, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
                {
                    return (ExclusiveGuard { latch: self }, rounds);
                }
            }
            self.backoff(&mut attempt);
            rounds = rounds.saturating_add(1);
        }
    }

    /// Try to acquire in X mode without spinning.
    pub fn try_exclusive(&self) -> Option<ExclusiveGuard<'_>> {
        if self
            .state
            .compare_exchange(0, X_HELD, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            Some(ExclusiveGuard { latch: self })
        } else {
            None
        }
    }

    /// Current number of S holders (diagnostic).
    pub fn s_count(&self) -> u32 {
        self.state.load(Ordering::Relaxed) & S_MASK
    }

    /// Is the latch held exclusively (diagnostic)?
    pub fn is_x_held(&self) -> bool {
        self.state.load(Ordering::Relaxed) & X_HELD != 0
    }

    /// Are writers waiting (the paper's X-bit; diagnostic)?
    pub fn x_waiting(&self) -> bool {
        self.state.load(Ordering::Relaxed) & X_WAIT_MASK != 0
    }
}

impl Drop for SharedGuard<'_> {
    fn drop(&mut self) {
        let prev = self.latch.state.fetch_sub(1, Ordering::Release);
        debug_assert!(prev & S_MASK > 0, "S release without hold");
    }
}

impl Drop for ExclusiveGuard<'_> {
    fn drop(&mut self) {
        let prev = self.latch.state.fetch_and(!X_HELD, Ordering::Release);
        debug_assert!(prev & X_HELD != 0, "X release without hold");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn shared_is_reentrant_across_holders() {
        let l = Latch::new();
        let a = l.shared();
        let b = l.shared();
        assert_eq!(l.s_count(), 2);
        drop(a);
        assert_eq!(l.s_count(), 1);
        drop(b);
        assert_eq!(l.s_count(), 0);
    }

    #[test]
    fn exclusive_excludes_shared() {
        let l = Latch::new();
        let g = l.exclusive();
        assert!(l.try_shared().is_none());
        assert!(l.try_exclusive().is_none());
        drop(g);
        assert!(l.try_shared().is_some());
    }

    #[test]
    fn shared_blocks_exclusive() {
        let l = Latch::new();
        let g = l.shared();
        assert!(l.try_exclusive().is_none());
        drop(g);
        assert!(l.try_exclusive().is_some());
    }

    #[test]
    fn waiting_writer_blocks_new_readers() {
        let l = Arc::new(Latch::new());
        let s = l.shared();
        let l2 = Arc::clone(&l);
        let writer = std::thread::spawn(move || {
            let _x = l2.exclusive();
        });
        // Wait for the writer to register.
        while !l.x_waiting() {
            std::hint::spin_loop();
        }
        // A new reader must not slip in front of the waiting writer.
        assert!(l.try_shared().is_none());
        drop(s);
        writer.join().unwrap();
        assert!(l.try_shared().is_some());
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        let l = Arc::new(Latch::new());
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = vec![];
        for _ in 0..8 {
            let l = Arc::clone(&l);
            let c = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    let _g = l.exclusive();
                    // non-atomic read-modify-write protected by the latch
                    let v = c.load(Ordering::Relaxed);
                    c.store(v + 1, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 80_000);
    }

    #[test]
    fn readers_and_writers_interleave_correctly() {
        let l = Arc::new(Latch::new());
        let value = Arc::new(AtomicU64::new(0));
        let mut handles = vec![];
        for i in 0..4 {
            let l = Arc::clone(&l);
            let v = Arc::clone(&value);
            handles.push(std::thread::spawn(move || {
                for _ in 0..2000 {
                    if i % 2 == 0 {
                        let _g = l.exclusive();
                        v.store(v.load(Ordering::Relaxed) + 2, Ordering::Relaxed);
                    } else {
                        let _g = l.shared();
                        // writer keeps the value even; readers must never
                        // observe an odd intermediate (there is none, but the
                        // read must be safe under the latch).
                        assert_eq!(v.load(Ordering::Relaxed) % 2, 0);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(value.load(Ordering::Relaxed), 2 * 2 * 2000);
    }
}

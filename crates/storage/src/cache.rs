//! The shared object cache (paper §4: "the application operates directly on
//! the objects in a shared cache without first copying the object to its
//! private address space").
//!
//! Each cached object carries its own [`Latch`]; reads take it in S mode,
//! writes in X mode, exactly as the paper's `read`/`write` algorithms
//! prescribe. The latch protects the *physical* integrity of one access;
//! transaction-duration isolation is the lock manager's job, layered above.
//!
//! The cache is sharded to keep lookup contention away from the per-object
//! latches it exists to showcase.

use crate::latch::Latch;
use crate::store::ObjectStore;
use asset_common::{Oid, Result};
use asset_obs::{bump, EventKind, Obs};
use parking_lot::Mutex;
use std::cell::UnsafeCell;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const SHARDS: usize = 16;

/// One object resident in the shared cache.
///
/// Payload access goes through [`read_with`](CachedObject::read_with) /
/// [`write_with`](CachedObject::write_with), which acquire the object latch
/// in the appropriate mode. The `UnsafeCell` is sound because every access
/// path holds the latch: S holders only take `&`, the X holder is unique.
/// `None` payload is a tombstone (object absent/deleted).
///
/// The dirty flag lives *outside* the cell as an atomic: eviction and flush
/// scans test it while holding the cache shard mutex, and the object latch
/// ranks **above** that mutex in the lock hierarchy, so they must not latch.
pub struct CachedObject {
    latch: Latch,
    data: UnsafeCell<Option<Vec<u8>>>,
    /// Differs from the store's copy? Relaxed ordering suffices: the flag
    /// only gates whether a reader goes on to latch, and the latch
    /// acquisition is what synchronizes the payload itself.
    dirty: AtomicBool,
    obs: Arc<Obs>,
}

// SAFETY: all access to `data` is mediated by `latch` (S for shared reads,
// X for exclusive writes), implemented in the accessors below; `dirty` is
// atomic and the other fields are Sync themselves.
unsafe impl Sync for CachedObject {}
// SAFETY: the contained payload is an owned `Option<Vec<u8>>` with no
// thread affinity; sending the object moves unique ownership of the cell.
unsafe impl Send for CachedObject {}

impl CachedObject {
    fn new(bytes: Option<Vec<u8>>, dirty: bool, obs: Arc<Obs>) -> CachedObject {
        CachedObject {
            latch: Latch::new(),
            data: UnsafeCell::new(bytes),
            dirty: AtomicBool::new(dirty),
            obs,
        }
    }

    /// Record a latch acquisition outcome: spin counts are atomics-only, so
    /// this is safe on every path the latch itself is.
    fn note_latch(&self, spins: u32) {
        bump(&self.obs.counters.latch_acquires);
        if spins > 0 {
            bump(&self.obs.counters.latch_contended);
            self.obs.latch_spins.record(u64::from(spins));
            // Ring-buffer recording is drop-don't-block (one CAS), so it is
            // safe here even though the latch guard is still held.
            self.obs.record(EventKind::LatchSpin { spins });
        }
    }

    /// Read the payload under an S latch.
    pub fn read_with<R>(&self, f: impl FnOnce(Option<&[u8]>) -> R) -> R {
        let (_g, spins) = self.latch.shared_profiled();
        self.note_latch(spins);
        // SAFETY: S latch held; no X holder exists, so a shared view is safe.
        let data = unsafe { &*self.data.get() };
        f(data.as_deref())
    }

    /// Replace the payload under an X latch; returns the before image.
    /// `None` deletes the object (tombstone).
    pub fn install(&self, after: Option<Vec<u8>>) -> Option<Vec<u8>> {
        let (_g, spins) = self.latch.exclusive_profiled();
        self.note_latch(spins);
        self.dirty.store(true, Ordering::Relaxed);
        // SAFETY: X latch held; we are the unique accessor.
        let data = unsafe { &mut *self.data.get() };
        std::mem::replace(data, after)
    }

    /// Mutate the payload in place under an X latch.
    pub fn write_with<R>(&self, f: impl FnOnce(&mut Option<Vec<u8>>) -> R) -> R {
        let (_g, spins) = self.latch.exclusive_profiled();
        self.note_latch(spins);
        self.dirty.store(true, Ordering::Relaxed);
        // SAFETY: X latch held; we are the unique accessor.
        let data = unsafe { &mut *self.data.get() };
        f(data)
    }

    /// The object latch (exposed for the lock manager's OD linkage and for
    /// diagnostics).
    pub fn latch(&self) -> &Latch {
        &self.latch
    }

    /// Latch-free dirty test — safe to call while holding a cache shard
    /// mutex (the object latch ranks above it and must not be taken there).
    fn is_dirty(&self) -> bool {
        self.dirty.load(Ordering::Relaxed)
    }

    /// Snapshot the payload if the object is dirty. Does not clear the
    /// flag: the caller persists the snapshot first and calls
    /// [`clear_dirty`](Self::clear_dirty) only once that succeeded.
    fn take_if_dirty(&self) -> Option<Option<Vec<u8>>> {
        if !self.is_dirty() {
            return None;
        }
        let _g = self.latch.shared();
        // SAFETY: S latch held; no X holder exists, so a shared view is safe.
        let data = unsafe { &*self.data.get() };
        Some(data.clone())
    }

    fn clear_dirty(&self) {
        self.dirty.store(false, Ordering::Relaxed);
    }
}

/// The shared object cache.
pub struct ObjectCache {
    shards: Vec<Mutex<HashMap<Oid, Arc<CachedObject>>>>,
    obs: Arc<Obs>,
}

impl ObjectCache {
    /// An empty cache with its own private observability hub.
    pub fn new() -> ObjectCache {
        ObjectCache::with_obs(Obs::shared())
    }

    /// An empty cache reporting into `obs` (hit/miss counters and latch
    /// profiles of every resident object).
    pub fn with_obs(obs: Arc<Obs>) -> ObjectCache {
        ObjectCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            obs,
        }
    }

    /// The observability hub this cache reports into.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    fn shard(&self, oid: Oid) -> &Mutex<HashMap<Oid, Arc<CachedObject>>> {
        // Avalanche the oid so sequential ids spread across shards.
        let mut h = oid.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 32;
        &self.shards[(h as usize) % SHARDS]
    }

    /// Fetch (or fault in from `store`) the cache entry for `oid`.
    pub fn entry(&self, oid: Oid, store: &ObjectStore) -> Result<Arc<CachedObject>> {
        {
            let shard = self.shard(oid).lock();
            if let Some(e) = shard.get(&oid) {
                bump(&self.obs.counters.cache_hits);
                return Ok(Arc::clone(e));
            }
        }
        // Miss: load outside the shard lock, then race-insert.
        bump(&self.obs.counters.cache_misses);
        let loaded = store.get(oid)?;
        let mut shard = self.shard(oid).lock();
        let entry = shard
            .entry(oid)
            .or_insert_with(|| Arc::new(CachedObject::new(loaded, false, Arc::clone(&self.obs))));
        Ok(Arc::clone(entry))
    }

    /// Fetch the entry if it is already resident.
    pub fn peek(&self, oid: Oid) -> Option<Arc<CachedObject>> {
        self.shard(oid).lock().get(&oid).cloned()
    }

    /// Insert/overwrite an entry directly (used by recovery, which builds
    /// state from the log rather than the store).
    pub fn install(&self, oid: Oid, bytes: Option<Vec<u8>>) {
        // A vacant slot is filled under the shard mutex alone; an occupied
        // one needs the object latch, which ranks above the shard mutex —
        // so the guard is dropped before latching.
        let existing = {
            let mut shard = self.shard(oid).lock();
            match shard.entry(oid) {
                Entry::Occupied(e) => Arc::clone(e.get()),
                Entry::Vacant(v) => {
                    v.insert(Arc::new(CachedObject::new(
                        bytes,
                        true,
                        Arc::clone(&self.obs),
                    )));
                    return;
                }
            }
        };
        existing.install(bytes);
    }

    /// Write all dirty entries back to `store`; tombstones become deletes.
    pub fn flush(&self, store: &ObjectStore) -> Result<usize> {
        let mut flushed = 0;
        for shard in &self.shards {
            let entries: Vec<(Oid, Arc<CachedObject>)> = {
                let s = shard.lock();
                s.iter().map(|(k, v)| (*k, Arc::clone(v))).collect()
            };
            for (oid, entry) in entries {
                if let Some(bytes) = entry.take_if_dirty() {
                    match bytes {
                        Some(b) => store.put(oid, &b)?,
                        None => {
                            store.delete(oid)?;
                        }
                    }
                    entry.clear_dirty();
                    flushed += 1;
                }
            }
        }
        Ok(flushed)
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop clean entries (cache pressure relief; dirty entries stay).
    /// The dirty test is a latch-free atomic load, so no object latch is
    /// ever taken while the shard mutex is held.
    pub fn evict_clean(&self) {
        for shard in &self.shards {
            shard.lock().retain(|_, e| e.is_dirty());
        }
    }
}

impl Default for ObjectCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heapfile::MemPageStore;

    fn store() -> ObjectStore {
        ObjectStore::open(Arc::new(MemPageStore::new(512)), 16).unwrap()
    }

    #[test]
    fn entry_faults_in_from_store() {
        let s = store();
        s.put(Oid(1), b"persisted").unwrap();
        let c = ObjectCache::new();
        let e = c.entry(Oid(1), &s).unwrap();
        e.read_with(|b| assert_eq!(b.unwrap(), b"persisted"));
        // absent object: tombstone entry
        let e2 = c.entry(Oid(2), &s).unwrap();
        e2.read_with(|b| assert!(b.is_none()));
    }

    #[test]
    fn install_returns_before_image() {
        let s = store();
        let c = ObjectCache::new();
        let e = c.entry(Oid(1), &s).unwrap();
        assert_eq!(e.install(Some(b"v1".to_vec())), None);
        assert_eq!(e.install(Some(b"v2".to_vec())), Some(b"v1".to_vec()));
        assert_eq!(e.install(None), Some(b"v2".to_vec()));
        e.read_with(|b| assert!(b.is_none()));
    }

    #[test]
    fn flush_persists_dirty_entries() {
        let s = store();
        s.put(Oid(3), b"old").unwrap();
        let c = ObjectCache::new();
        c.entry(Oid(1), &s).unwrap().install(Some(b"one".to_vec()));
        c.entry(Oid(2), &s).unwrap().install(Some(b"two".to_vec()));
        c.entry(Oid(3), &s).unwrap().install(None); // delete
        let flushed = c.flush(&s).unwrap();
        assert_eq!(flushed, 3);
        assert_eq!(s.get(Oid(1)).unwrap().unwrap(), b"one");
        assert_eq!(s.get(Oid(2)).unwrap().unwrap(), b"two");
        assert_eq!(s.get(Oid(3)).unwrap(), None);
        // second flush is a no-op
        assert_eq!(c.flush(&s).unwrap(), 0);
    }

    #[test]
    fn peek_only_sees_resident() {
        let s = store();
        s.put(Oid(1), b"x").unwrap();
        let c = ObjectCache::new();
        assert!(c.peek(Oid(1)).is_none());
        c.entry(Oid(1), &s).unwrap();
        assert!(c.peek(Oid(1)).is_some());
    }

    #[test]
    fn concurrent_read_write_with_latches() {
        let s = Arc::new(store());
        let c = Arc::new(ObjectCache::new());
        let e = c.entry(Oid(1), &s).unwrap();
        e.install(Some(vec![0u8; 8]));
        let mut handles = vec![];
        for t in 0..4 {
            let c = Arc::clone(&c);
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                let e = c.entry(Oid(1), &s).unwrap();
                for i in 0..1000u64 {
                    if t % 2 == 0 {
                        e.write_with(|b| {
                            let bytes = b.as_mut().unwrap();
                            // write a self-consistent pattern
                            let v = (i % 250) as u8;
                            bytes.iter_mut().for_each(|x| *x = v);
                        });
                    } else {
                        e.read_with(|b| {
                            let bytes = b.unwrap();
                            let first = bytes[0];
                            assert!(bytes.iter().all(|&x| x == first), "torn read under latches");
                        });
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let s = store();
        s.put(Oid(1), b"x").unwrap();
        let c = ObjectCache::new();
        c.entry(Oid(1), &s).unwrap(); // miss (fault-in)
        c.entry(Oid(1), &s).unwrap(); // hit
        c.entry(Oid(1), &s).unwrap(); // hit
        c.entry(Oid(2), &s).unwrap(); // miss (tombstone fault-in)
        let snap = c.obs().snapshot();
        assert_eq!(snap.counters.cache_misses, 2);
        assert_eq!(snap.counters.cache_hits, 2);
    }

    #[test]
    fn latch_acquisitions_are_counted() {
        let s = store();
        let c = ObjectCache::new();
        let e = c.entry(Oid(1), &s).unwrap();
        e.install(Some(b"v".to_vec()));
        e.read_with(|_| ());
        let snap = c.obs().snapshot();
        assert!(snap.counters.latch_acquires >= 2);
    }

    #[test]
    fn evict_clean_keeps_dirty() {
        let s = store();
        s.put(Oid(1), b"a").unwrap();
        let c = ObjectCache::new();
        c.entry(Oid(1), &s).unwrap(); // clean
        c.entry(Oid(2), &s).unwrap().install(Some(b"b".to_vec())); // dirty
        c.evict_clean();
        assert!(c.peek(Oid(1)).is_none());
        assert!(c.peek(Oid(2)).is_some());
    }
}

//! Page stores: the persistent home of pages.
//!
//! [`PageStore`] abstracts over an in-memory page array (used by tests,
//! examples and benchmarks — the paper's shared-memory cache mode with no
//! disk) and a real file ([`FilePageStore`]) using positioned reads/writes.

use crate::page::{Page, PageId};
use asset_annot::verify_allow;
use asset_common::{AssetError, Result};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::Path;

/// The persistent home of fixed-size pages.
pub trait PageStore: Send + Sync {
    /// Page size in bytes.
    fn page_size(&self) -> usize;
    /// Number of allocated pages.
    fn num_pages(&self) -> u32;
    /// Read page `pid` into a fresh buffer.
    fn read_page(&self, pid: PageId) -> Result<Page>;
    /// Write `page` as page `pid`.
    fn write_page(&self, pid: PageId, page: &Page) -> Result<()>;
    /// Allocate a new zeroed page; returns its id.
    fn allocate(&self) -> Result<PageId>;
    /// Flush to stable storage.
    fn sync(&self) -> Result<()>;
}

/// An in-memory page store.
pub struct MemPageStore {
    page_size: usize,
    pages: Mutex<Vec<Page>>,
}

impl MemPageStore {
    /// New empty store.
    pub fn new(page_size: usize) -> MemPageStore {
        MemPageStore {
            page_size,
            pages: Mutex::new(Vec::new()),
        }
    }
}

impl PageStore for MemPageStore {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn num_pages(&self) -> u32 {
        self.pages.lock().len() as u32
    }

    fn read_page(&self, pid: PageId) -> Result<Page> {
        let pages = self.pages.lock();
        pages
            .get(pid as usize)
            .cloned()
            .ok_or_else(|| AssetError::Corrupt(format!("read of unallocated page {pid}")))
    }

    fn write_page(&self, pid: PageId, page: &Page) -> Result<()> {
        let mut pages = self.pages.lock();
        match pages.get_mut(pid as usize) {
            Some(slot) => {
                *slot = page.clone();
                Ok(())
            }
            None => Err(AssetError::Corrupt(format!(
                "write to unallocated page {pid}"
            ))),
        }
    }

    fn allocate(&self) -> Result<PageId> {
        let mut pages = self.pages.lock();
        let pid = pages.len() as PageId;
        pages.push(Page::zeroed(self.page_size));
        Ok(pid)
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }
}

/// A file-backed page store using positioned I/O.
pub struct FilePageStore {
    page_size: usize,
    file: File,
    num_pages: Mutex<u32>,
    #[cfg(feature = "faults")]
    faults: std::sync::Arc<asset_faults::FaultRegistry>,
}

impl FilePageStore {
    /// Open (creating if absent) the heap file at `path`.
    #[verify_allow(
        failpoint_coverage,
        reason = "open-time torn-page chop: runs before the fault registry exists, exercised by the recovery matrix instead"
    )]
    pub fn open(path: &Path, page_size: usize) -> Result<FilePageStore> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut len = file.metadata()?.len();
        if len % page_size as u64 != 0 {
            // A trailing partial page is what a crash mid-extension leaves
            // behind (a torn page). Chop it: the WAL is truncated only
            // after the store is flushed and synced, so any data that
            // belonged on the torn page is still in the log and redo
            // rewrites it. A torn page can only be the last one — writes
            // inside the file never change its length.
            len -= len % page_size as u64;
            file.set_len(len)?;
        }
        let num_pages = (len / page_size as u64) as u32;
        Ok(FilePageStore {
            page_size,
            file,
            num_pages: Mutex::new(num_pages),
            #[cfg(feature = "faults")]
            faults: Default::default(),
        })
    }

    /// Consult `faults` at this store's failpoints (see
    /// [`failpoints`](crate::failpoints)).
    #[cfg(feature = "faults")]
    pub fn set_faults(&mut self, faults: std::sync::Arc<asset_faults::FaultRegistry>) {
        self.faults = faults;
    }

    /// Evaluate [`STORE_PAGE_WRITE`](crate::failpoints::STORE_PAGE_WRITE)
    /// before `bytes` land at `offset`; `Torn` writes a prefix and crashes.
    #[cfg(feature = "faults")]
    fn check_page_write(&self, bytes: &[u8], offset: u64) -> Result<()> {
        if let Some(act) = self.faults.check(crate::failpoints::STORE_PAGE_WRITE) {
            match act {
                asset_faults::FaultAction::Torn { keep_per_mille } => {
                    let keep = bytes.len() * keep_per_mille as usize / 1000;
                    let _ = self.file.write_all_at(&bytes[..keep], offset);
                    self.faults.crash_now(crate::failpoints::STORE_PAGE_WRITE);
                }
                other => {
                    return Err(self
                        .faults
                        .realize_plain(crate::failpoints::STORE_PAGE_WRITE, other)
                        .into())
                }
            }
        }
        Ok(())
    }
}

impl PageStore for FilePageStore {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn num_pages(&self) -> u32 {
        *self.num_pages.lock()
    }

    fn read_page(&self, pid: PageId) -> Result<Page> {
        if pid >= self.num_pages() {
            return Err(AssetError::Corrupt(format!(
                "read of unallocated page {pid}"
            )));
        }
        let mut buf = vec![0u8; self.page_size];
        self.file
            .read_exact_at(&mut buf, pid as u64 * self.page_size as u64)?;
        Ok(Page::from_bytes(buf))
    }

    fn write_page(&self, pid: PageId, page: &Page) -> Result<()> {
        if pid >= self.num_pages() {
            return Err(AssetError::Corrupt(format!(
                "write to unallocated page {pid}"
            )));
        }
        let offset = pid as u64 * self.page_size as u64;
        #[cfg(feature = "faults")]
        self.check_page_write(page.bytes(), offset)?;
        self.file.write_all_at(page.bytes(), offset)?;
        Ok(())
    }

    fn allocate(&self) -> Result<PageId> {
        let mut n = self.num_pages.lock();
        let pid = *n;
        let zero = vec![0u8; self.page_size];
        let offset = pid as u64 * self.page_size as u64;
        #[cfg(feature = "faults")]
        self.check_page_write(&zero, offset)?;
        self.file.write_all_at(&zero, offset)?;
        *n += 1;
        Ok(pid)
    }

    fn sync(&self) -> Result<()> {
        let elide = asset_faults::failpoint_sync!(&self.faults, crate::failpoints::STORE_SYNC);
        if !elide {
            self.file.sync_data()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &dyn PageStore) {
        assert_eq!(store.num_pages(), 0);
        let p0 = store.allocate().unwrap();
        let p1 = store.allocate().unwrap();
        assert_eq!((p0, p1), (0, 1));
        assert_eq!(store.num_pages(), 2);

        let mut page = Page::zeroed(store.page_size());
        page.bytes_mut()[0] = 0xAA;
        page.bytes_mut()[store.page_size() - 1] = 0xBB;
        store.write_page(p1, &page).unwrap();

        let back = store.read_page(p1).unwrap();
        assert_eq!(back.bytes()[0], 0xAA);
        assert_eq!(back.bytes()[store.page_size() - 1], 0xBB);

        let zero = store.read_page(p0).unwrap();
        assert!(zero.bytes().iter().all(|&b| b == 0));

        assert!(store.read_page(99).is_err());
        assert!(store.write_page(99, &page).is_err());
        store.sync().unwrap();
    }

    #[test]
    fn mem_store() {
        exercise(&MemPageStore::new(512));
    }

    #[test]
    fn file_store() {
        let dir = std::env::temp_dir().join(format!("asset-hf-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("heap.db");
        let _ = std::fs::remove_file(&path);
        {
            let store = FilePageStore::open(&path, 512).unwrap();
            exercise(&store);
        }
        // Re-open: pages persist.
        let store = FilePageStore::open(&path, 512).unwrap();
        assert_eq!(store.num_pages(), 2);
        assert_eq!(store.read_page(1).unwrap().bytes()[0], 0xAA);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_store_chops_torn_trailing_page() {
        // a crash mid-extension leaves a partial last page; open must
        // truncate it away (redo rewrites it from the WAL) and keep the
        // full pages before it
        let dir = std::env::temp_dir().join(format!("asset-hf-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("heap.db");
        std::fs::write(&path, vec![7u8; 512 + 188]).unwrap();
        let store = FilePageStore::open(&path, 512).unwrap();
        assert_eq!(store.num_pages(), 1);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 512);
        assert_eq!(store.read_page(0).unwrap().bytes(), &[7u8; 512][..]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! The persistent object store: objects on slotted pages behind the buffer
//! pool.
//!
//! An object directory (oid → page/slot) is rebuilt by scanning pages at
//! open time, EOS-style — pages are self-describing, so there is no
//! separate catalog to corrupt.

use crate::buffer::BufferPool;
use crate::heapfile::PageStore;
use crate::page::{Page, PageId};
use crate::slotted::{SlotId, SlottedPage};
use asset_common::{AssetError, Oid, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Object store over a page store.
pub struct ObjectStore {
    pool: BufferPool,
    dir: Mutex<HashMap<Oid, (PageId, SlotId)>>,
    /// Pages most recently observed to have free room, newest last.
    free_hints: Mutex<Vec<PageId>>,
    page_size: usize,
}

impl ObjectStore {
    /// Open a store over `store`, scanning existing pages to rebuild the
    /// object directory.
    pub fn open(store: Arc<dyn PageStore>, pool_pages: usize) -> Result<ObjectStore> {
        let page_size = store.page_size();
        let pool = BufferPool::new(store, pool_pages);
        let mut dir = HashMap::new();
        let n = pool.store().num_pages();
        for pid in 0..n {
            let guard = pool.fetch(pid)?;
            guard.with_read(|page| -> Result<()> {
                if SlottedPage::is_formatted(page.bytes()) {
                    let sp = SlottedPage::open(page.clone())?;
                    for (slot, oid, _) in sp.live_records() {
                        if dir.insert(oid, (pid, slot)).is_some() {
                            return Err(AssetError::Corrupt(format!(
                                "object {oid} appears on multiple pages"
                            )));
                        }
                    }
                }
                Ok(())
            })?;
        }
        Ok(ObjectStore {
            pool,
            dir: Mutex::new(dir),
            free_hints: Mutex::new((0..n).collect()),
            page_size,
        })
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.dir.lock().len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.dir.lock().is_empty()
    }

    /// Does `oid` exist?
    pub fn contains(&self, oid: Oid) -> bool {
        self.dir.lock().contains_key(&oid)
    }

    /// All live object ids (snapshot).
    pub fn oids(&self) -> Vec<Oid> {
        self.dir.lock().keys().copied().collect()
    }

    /// Read the payload of `oid`.
    pub fn get(&self, oid: Oid) -> Result<Option<Vec<u8>>> {
        let loc = { self.dir.lock().get(&oid).copied() };
        let Some((pid, slot)) = loc else {
            return Ok(None);
        };
        let guard = self.pool.fetch(pid)?;
        guard.with_read(|page| -> Result<Option<Vec<u8>>> {
            let sp = SlottedPage::open(page.clone())?;
            match sp.get(slot) {
                Some((found, bytes)) if found == oid => Ok(Some(bytes.to_vec())),
                _ => Err(AssetError::Corrupt(format!(
                    "directory points {oid} at page {pid} slot {slot} but it is not there"
                ))),
            }
        })
    }

    /// Insert or overwrite `oid` with `bytes`.
    pub fn put(&self, oid: Oid, bytes: &[u8]) -> Result<()> {
        if bytes.len() > SlottedPage::max_record_len(self.page_size) {
            return Err(AssetError::Corrupt(format!(
                "object of {} bytes exceeds page capacity",
                bytes.len()
            )));
        }
        let loc = { self.dir.lock().get(&oid).copied() };
        if let Some((pid, slot)) = loc {
            // Try updating in place on its current page.
            let guard = self.pool.fetch(pid)?;
            let updated = guard.with_write(|page| -> Result<Option<SlotId>> {
                let mut sp = SlottedPage::open(std::mem::replace(page, Page::zeroed(0)))?;
                let new_slot = sp.update(slot, bytes);
                *page = sp.into_page();
                Ok(new_slot)
            })?;
            drop(guard);
            match updated {
                Some(new_slot) => {
                    if new_slot != slot {
                        self.dir.lock().insert(oid, (pid, new_slot));
                    }
                    return Ok(());
                }
                None => {
                    // Did not fit on its page: it was already deleted there
                    // by `update`? No — update() leaves the record alone
                    // when the *page* cannot host the new one... it deletes
                    // then fails insert. Remove the stale mapping and fall
                    // through to a fresh placement.
                    self.dir.lock().remove(&oid);
                    self.note_free(pid);
                }
            }
        }
        let (pid, slot) = self.place(oid, bytes)?;
        self.dir.lock().insert(oid, (pid, slot));
        Ok(())
    }

    /// Delete `oid`. Returns whether it existed.
    pub fn delete(&self, oid: Oid) -> Result<bool> {
        let loc = { self.dir.lock().remove(&oid) };
        let Some((pid, slot)) = loc else {
            return Ok(false);
        };
        let guard = self.pool.fetch(pid)?;
        guard.with_write(|page| -> Result<()> {
            let mut sp = SlottedPage::open(std::mem::replace(page, Page::zeroed(0)))?;
            sp.delete(slot);
            *page = sp.into_page();
            Ok(())
        })?;
        self.note_free(pid);
        Ok(true)
    }

    fn note_free(&self, pid: PageId) {
        let mut hints = self.free_hints.lock();
        if !hints.contains(&pid) {
            hints.push(pid);
        }
    }

    /// Find a page that can host `bytes` and insert; allocates a new page
    /// when no hinted page fits.
    fn place(&self, oid: Oid, bytes: &[u8]) -> Result<(PageId, SlotId)> {
        let hints: Vec<PageId> = { self.free_hints.lock().iter().rev().copied().collect() };
        for pid in hints {
            let guard = self.pool.fetch(pid)?;
            let slot = guard.with_write(|page| -> Result<Option<SlotId>> {
                if !SlottedPage::is_formatted(page.bytes()) {
                    // unformatted (freshly allocated elsewhere): format now
                    let fresh = SlottedPage::format(std::mem::replace(page, Page::zeroed(0)), pid);
                    *page = fresh.into_page();
                }
                let mut sp = SlottedPage::open(std::mem::replace(page, Page::zeroed(0)))?;
                let slot = sp.insert(oid, bytes);
                *page = sp.into_page();
                Ok(slot)
            })?;
            if let Some(slot) = slot {
                return Ok((pid, slot));
            }
            // page full: drop the hint
            self.free_hints.lock().retain(|&p| p != pid);
        }
        // allocate a fresh page
        let (pid, guard) = self.pool.allocate()?;
        let slot = guard.with_write(|page| -> Result<Option<SlotId>> {
            let mut sp = SlottedPage::format(std::mem::replace(page, Page::zeroed(0)), pid);
            let slot = sp.insert(oid, bytes);
            *page = sp.into_page();
            Ok(slot)
        })?;
        drop(guard);
        self.note_free(pid);
        slot.map(|s| (pid, s))
            .ok_or_else(|| AssetError::Corrupt("fresh page rejected a size-checked record".into()))
    }

    /// Flush every dirty frame and sync the underlying store.
    pub fn flush(&self) -> Result<()> {
        self.pool.flush_all()
    }

    /// Buffer pool statistics `(hits, misses)`.
    pub fn pool_stats(&self) -> (u32, u32) {
        self.pool.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heapfile::{FilePageStore, MemPageStore};

    fn mem_store() -> ObjectStore {
        ObjectStore::open(Arc::new(MemPageStore::new(512)), 16).unwrap()
    }

    #[test]
    fn put_get_roundtrip() {
        let s = mem_store();
        s.put(Oid(1), b"alpha").unwrap();
        s.put(Oid(2), b"beta").unwrap();
        assert_eq!(s.get(Oid(1)).unwrap().unwrap(), b"alpha");
        assert_eq!(s.get(Oid(2)).unwrap().unwrap(), b"beta");
        assert_eq!(s.get(Oid(3)).unwrap(), None);
        assert_eq!(s.len(), 2);
        assert!(s.contains(Oid(1)));
        assert!(!s.contains(Oid(9)));
    }

    #[test]
    fn overwrite_same_size_and_grow() {
        let s = mem_store();
        s.put(Oid(1), b"aaaa").unwrap();
        s.put(Oid(1), b"bbbb").unwrap();
        assert_eq!(s.get(Oid(1)).unwrap().unwrap(), b"bbbb");
        // grow beyond in-place capacity
        let big = vec![7u8; 300];
        s.put(Oid(1), &big).unwrap();
        assert_eq!(s.get(Oid(1)).unwrap().unwrap(), big);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn delete_frees() {
        let s = mem_store();
        s.put(Oid(1), b"x").unwrap();
        assert!(s.delete(Oid(1)).unwrap());
        assert!(!s.delete(Oid(1)).unwrap());
        assert_eq!(s.get(Oid(1)).unwrap(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn many_objects_spill_across_pages() {
        let s = mem_store();
        let payload = vec![0x5Au8; 100];
        for i in 0..100u64 {
            s.put(Oid(i + 1), &payload).unwrap();
        }
        assert_eq!(s.len(), 100);
        for i in 0..100u64 {
            assert_eq!(s.get(Oid(i + 1)).unwrap().unwrap(), payload);
        }
        assert!(
            s.pool.store().num_pages() > 10,
            "objects spilled over pages"
        );
    }

    #[test]
    fn oversized_object_rejected() {
        let s = mem_store();
        assert!(s.put(Oid(1), &vec![0u8; 600]).is_err());
    }

    #[test]
    fn reopen_rebuilds_directory() {
        let dir = std::env::temp_dir().join(format!("asset-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("heap.db");
        let _ = std::fs::remove_file(&path);
        {
            let ps = Arc::new(FilePageStore::open(&path, 512).unwrap());
            let s = ObjectStore::open(ps, 16).unwrap();
            for i in 0..30u64 {
                s.put(Oid(i + 1), format!("value-{i}").as_bytes()).unwrap();
            }
            s.delete(Oid(5)).unwrap();
            s.flush().unwrap();
        }
        let ps = Arc::new(FilePageStore::open(&path, 512).unwrap());
        let s = ObjectStore::open(ps, 16).unwrap();
        assert_eq!(s.len(), 29);
        assert_eq!(s.get(Oid(7)).unwrap().unwrap(), b"value-6");
        assert_eq!(s.get(Oid(5)).unwrap(), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn deleted_space_is_reused() {
        let s = mem_store();
        let payload = vec![1u8; 100];
        for i in 0..50u64 {
            s.put(Oid(i + 1), &payload).unwrap();
        }
        let pages_before = s.pool.store().num_pages();
        for i in 0..50u64 {
            s.delete(Oid(i + 1)).unwrap();
        }
        for i in 100..150u64 {
            s.put(Oid(i + 1), &payload).unwrap();
        }
        let pages_after = s.pool.store().num_pages();
        assert_eq!(pages_before, pages_after, "space reuse, no growth");
    }
}

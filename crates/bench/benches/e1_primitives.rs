//! E1 — cost of the basic primitives: the initiate/begin/commit cycle,
//! its pieces, and single-write transactions.

use asset_bench::workload::{enc_i64, setup_counters};
use asset_core::Database;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_primitives");
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(800));
    g.sample_size(20);

    g.bench_function("initiate_abort_retire", |b| {
        let db = Database::in_memory();
        b.iter(|| {
            let t = db.initiate(|_| Ok(())).unwrap();
            black_box(t);
            db.abort(t).unwrap();
            db.retire_terminated();
        });
    });

    g.bench_function("noop_txn_cycle", |b| {
        let db = Database::in_memory();
        b.iter(|| {
            let t = db.initiate(|_| Ok(())).unwrap();
            db.begin(t).unwrap();
            assert!(db.commit(t).unwrap());
            db.retire_terminated();
        });
    });

    g.bench_function("single_write_txn", |b| {
        let db = Database::in_memory();
        let oid = setup_counters(&db, 1, 0)[0];
        b.iter(|| {
            assert!(db.run(move |ctx| ctx.write(oid, enc_i64(1))).unwrap());
            db.retire_terminated();
        });
    });

    g.bench_function("ten_write_txn", |b| {
        let db = Database::in_memory();
        let oids = setup_counters(&db, 10, 0);
        b.iter(|| {
            let o = oids.clone();
            assert!(db
                .run(move |ctx| {
                    for oid in &o {
                        ctx.write(*oid, enc_i64(1))?;
                    }
                    Ok(())
                })
                .unwrap());
            db.retire_terminated();
        });
    });

    g.bench_function("abort_single_write", |b| {
        let db = Database::in_memory();
        let oid = setup_counters(&db, 1, 0)[0];
        b.iter(|| {
            let t = db.initiate(move |ctx| ctx.write(oid, enc_i64(2))).unwrap();
            db.begin(t).unwrap();
            db.wait(t).unwrap();
            assert!(db.abort(t).unwrap());
            db.retire_terminated();
        });
    });

    g.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);

//! E12 — ablation microbenchmarks: MLT semantic ops vs flat transactions
//! on a hot counter, and the EOS spin latch vs `parking_lot::RwLock`.

use asset_core::{Database, Handle};
use asset_mlt::{run_mlt, EscrowCounter, MltOutcome, SemanticLockTable};
use asset_storage::Latch;
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("e12_ablations");
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(800));
    g.sample_size(20);

    g.bench_function("flat_txn_increment", |b| {
        let db = Database::in_memory();
        let h: Handle<i64> = Handle::from_oid(db.new_oid());
        assert!(db.run(move |ctx| ctx.put(h, &0)).unwrap());
        b.iter(|| {
            assert!(db.run(move |ctx| ctx.modify(h, |v| v + 1)).unwrap());
            db.retire_terminated();
        });
    });

    g.bench_function("mlt_session_one_increment", |b| {
        let db = Database::in_memory();
        let sem = Arc::new(SemanticLockTable::new());
        let counter = EscrowCounter::create(&db, 0).unwrap();
        b.iter(|| {
            let out = run_mlt(&db, &sem, move |mlt| counter.add(mlt, 1)).unwrap();
            assert_eq!(out, MltOutcome::Committed);
            db.retire_terminated();
        });
    });

    g.bench_function("mlt_abort_with_logical_undo", |b| {
        let db = Database::in_memory();
        let sem = Arc::new(SemanticLockTable::new());
        let counter = EscrowCounter::create(&db, 0).unwrap();
        b.iter(|| {
            let out = run_mlt(&db, &sem, move |mlt| {
                counter.add(mlt, 1)?;
                mlt.ctx().abort_self::<()>().map(|_| ())
            })
            .unwrap();
            assert_eq!(out, MltOutcome::Undone { inverses_run: 1 });
            db.retire_terminated();
        });
    });

    g.bench_function("eos_latch_x_cycle", |b| {
        let latch = Latch::new();
        b.iter(|| {
            let _g = latch.exclusive();
        });
    });

    g.bench_function("parking_lot_rwlock_w_cycle", |b| {
        let rw = parking_lot::RwLock::new(());
        b.iter(|| {
            let _g = rw.write();
        });
    });

    g.bench_function("eos_latch_s_cycle", |b| {
        let latch = Latch::new();
        b.iter(|| {
            let _g = latch.shared();
        });
    });

    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);

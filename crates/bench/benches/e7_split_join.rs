//! E7 — split/join: split-off cost, join cost, and delegation cost as a
//! function of the delegated set size.

use asset_bench::workload::{enc_i64, setup_counters};
use asset_common::ObSet;
use asset_core::Database;
use asset_models::{join, run_atomic, split};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_split_join(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_split_join");
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(800));
    g.sample_size(20);

    g.bench_function("split_and_commit", |b| {
        let db = Database::in_memory();
        let oid = setup_counters(&db, 1, 0)[0];
        b.iter(|| {
            assert!(run_atomic(&db, move |ctx| {
                ctx.write(oid, enc_i64(1))?;
                let s = split(ctx, ObSet::one(oid), |_| Ok(()))?;
                ctx.commit(s)?;
                Ok(())
            })
            .unwrap());
            db.retire_terminated();
        });
    });

    g.bench_function("split_then_join", |b| {
        let db = Database::in_memory();
        let oid = setup_counters(&db, 1, 0)[0];
        b.iter(|| {
            assert!(run_atomic(&db, move |ctx| {
                let me = ctx.id();
                let s = split(ctx, ObSet::empty(), move |c| c.write(oid, enc_i64(2)))?;
                assert!(join(ctx, s, me)?);
                Ok(())
            })
            .unwrap());
            db.retire_terminated();
        });
    });

    for n in [1usize, 16, 256] {
        g.bench_with_input(BenchmarkId::new("delegate_n_objects", n), &n, |b, &n| {
            let db = Database::in_memory();
            let oids = setup_counters(&db, n, 0);
            b.iter(|| {
                let o = oids.clone();
                let receiver = db.initiate(|_| Ok(())).unwrap();
                let worker = db
                    .initiate(move |ctx| {
                        for oid in &o {
                            ctx.write(*oid, enc_i64(1))?;
                        }
                        Ok(())
                    })
                    .unwrap();
                db.begin(worker).unwrap();
                db.wait(worker).unwrap();
                db.delegate(worker, receiver, None).unwrap();
                db.begin(receiver).unwrap();
                assert!(db.commit(receiver).unwrap());
                assert!(db.commit(worker).unwrap());
                db.retire_terminated();
            });
        });
    }

    g.finish();
}

criterion_group!(benches, bench_split_join);
criterion_main!(benches);

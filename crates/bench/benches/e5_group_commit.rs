//! E5 — group commit resolution vs group size, and AD abort chains.

use asset_common::{DepType, Tid};
use asset_core::Database;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_group_commit(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_group_commit");
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(800));
    g.sample_size(20);

    for n in [2usize, 8, 32] {
        g.bench_with_input(BenchmarkId::new("gc_group_commit", n), &n, |b, &n| {
            b.iter(|| {
                let db = Database::in_memory();
                let tids: Vec<Tid> = (0..n).map(|_| db.initiate(|_| Ok(())).unwrap()).collect();
                for w in tids.windows(2) {
                    db.form_dependency(DepType::GC, w[0], w[1]).unwrap();
                }
                db.begin_many(&tids).unwrap();
                assert!(db.commit(tids[0]).unwrap());
            });
        });

        g.bench_with_input(BenchmarkId::new("ad_abort_chain", n), &n, |b, &n| {
            b.iter(|| {
                let db = Database::in_memory();
                let tids: Vec<Tid> = (0..n).map(|_| db.initiate(|_| Ok(())).unwrap()).collect();
                for w in tids.windows(2) {
                    db.form_dependency(DepType::AD, w[0], w[1]).unwrap();
                }
                db.begin_many(&tids).unwrap();
                for t in &tids {
                    db.wait(*t).unwrap();
                }
                assert!(db.abort(tids[0]).unwrap());
            });
        });

        g.bench_with_input(BenchmarkId::new("cd_chain_commit", n), &n, |b, &n| {
            b.iter(|| {
                let db = Database::in_memory();
                let tids: Vec<Tid> = (0..n).map(|_| db.initiate(|_| Ok(())).unwrap()).collect();
                for w in tids.windows(2) {
                    db.form_dependency(DepType::CD, w[0], w[1]).unwrap();
                }
                db.begin_many(&tids).unwrap();
                // commit in dependency order: head first
                for t in &tids {
                    assert!(db.commit(*t).unwrap());
                }
            });
        });
    }

    g.finish();
}

criterion_group!(benches, bench_group_commit);
criterion_main!(benches);

//! E8 — the appendix travel workflow: full activity latency on the happy
//! path, the fallback path, and the compensation path.

use asset_core::Database;
use asset_models::workflow::travel::{run_x_conference, TravelWorld};
use asset_models::WorkflowOutcome;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_workflow(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_workflow");
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(800));
    g.sample_size(20);

    g.bench_function("happy_path", |b| {
        let db = Database::in_memory();
        let world = TravelWorld::setup(&db, u32::MAX as u64, 1, 1, u32::MAX as u64, 1, 1).unwrap();
        b.iter(|| {
            let (outcome, _) = run_x_conference(&db, &world).unwrap();
            assert_eq!(outcome, WorkflowOutcome::Completed);
            db.retire_terminated();
        });
    });

    g.bench_function("flight_fallback_to_american", |b| {
        let db = Database::in_memory();
        let world = TravelWorld::setup(&db, 0, 0, u32::MAX as u64, u32::MAX as u64, 1, 1).unwrap();
        b.iter(|| {
            let (outcome, results) = run_x_conference(&db, &world).unwrap();
            assert_eq!(outcome, WorkflowOutcome::Completed);
            assert_eq!(results[0].chosen.as_deref(), Some("American"));
            db.retire_terminated();
        });
    });

    g.bench_function("hotel_failure_compensates_flight", |b| {
        let db = Database::in_memory();
        let world = TravelWorld::setup(&db, u32::MAX as u64, 1, 1, 0, 1, 1).unwrap();
        b.iter(|| {
            let (outcome, _) = run_x_conference(&db, &world).unwrap();
            assert_eq!(outcome, WorkflowOutcome::Failed { failed_step: 1 });
            db.retire_terminated();
        });
    });

    g.finish();
}

criterion_group!(benches, bench_workflow);
criterion_main!(benches);

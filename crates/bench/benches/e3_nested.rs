//! E3 — nested transactions: subtransaction cost (permit + child thread +
//! delegate + child commit) vs flat writes, across depth and fanout.

use asset_bench::workload::{enc_i64, setup_counters};
use asset_common::{Oid, Result};
use asset_core::{Database, TxnCtx};
use asset_models::{required_subtransaction, run_atomic};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn descend(ctx: &TxnCtx, oids: &[Oid]) -> Result<()> {
    let Some((first, rest)) = oids.split_first() else {
        return Ok(());
    };
    let first = *first;
    let rest = rest.to_vec();
    required_subtransaction(ctx, move |c| {
        c.write(first, enc_i64(1))?;
        descend(c, &rest)
    })
}

fn bench_nested(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_nested");
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(800));
    g.sample_size(20);

    for depth in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("flat_writes", depth), &depth, |b, &d| {
            let db = Database::in_memory();
            let oids = setup_counters(&db, d, 0);
            b.iter(|| {
                let o = oids.clone();
                assert!(run_atomic(&db, move |ctx| {
                    for oid in &o {
                        ctx.write(*oid, enc_i64(1))?;
                    }
                    Ok(())
                })
                .unwrap());
                db.retire_terminated();
            });
        });
        g.bench_with_input(BenchmarkId::new("nested_depth", depth), &depth, |b, &d| {
            let db = Database::in_memory();
            let oids = setup_counters(&db, d, 0);
            b.iter(|| {
                let o = oids.clone();
                assert!(run_atomic(&db, move |ctx| descend(ctx, &o)).unwrap());
                db.retire_terminated();
            });
        });
    }

    for fanout in [2usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("nested_fanout", fanout),
            &fanout,
            |b, &f| {
                let db = Database::in_memory();
                let oids = setup_counters(&db, f, 0);
                b.iter(|| {
                    let o = oids.clone();
                    assert!(run_atomic(&db, move |ctx| {
                        for oid in &o {
                            let oid = *oid;
                            required_subtransaction(ctx, move |c| c.write(oid, enc_i64(1)))?;
                        }
                        Ok(())
                    })
                    .unwrap());
                    db.retire_terminated();
                });
            },
        );
    }

    // child abort containment: the failure path
    g.bench_function("child_abort_contained", |b| {
        let db = Database::in_memory();
        let oid = setup_counters(&db, 1, 0)[0];
        b.iter(|| {
            assert!(run_atomic(&db, move |ctx| {
                let out = asset_models::subtransaction(ctx, move |c| {
                    c.write(oid, enc_i64(9))?;
                    c.abort_self::<()>().map(|_| ())
                })?;
                assert_eq!(out, asset_models::SubtxnOutcome::Aborted);
                Ok(())
            })
            .unwrap());
            db.retire_terminated();
        });
    });

    g.finish();
}

criterion_group!(benches, bench_nested);
criterion_main!(benches);

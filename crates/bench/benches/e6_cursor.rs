//! E6 — cursor stability: the scan-step cost (read + release permit)
//! against a plain repeatable-read scan, and writer latency into a
//! cursor-released record.

use asset_bench::workload::{enc_i64, setup_counters};
use asset_core::Database;
use asset_models::{run_atomic, Cursor};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_cursor(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_cursor");
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(800));
    g.sample_size(20);

    const RECORDS: usize = 64;

    g.bench_function("scan_repeatable_read", |b| {
        let db = Database::in_memory();
        let oids = setup_counters(&db, RECORDS, 0);
        b.iter(|| {
            let o = oids.clone();
            assert!(run_atomic(&db, move |ctx| {
                for oid in &o {
                    ctx.read(*oid)?;
                }
                Ok(())
            })
            .unwrap());
            db.retire_terminated();
        });
    });

    g.bench_function("scan_cursor_stability", |b| {
        let db = Database::in_memory();
        let oids = setup_counters(&db, RECORDS, 0);
        b.iter(|| {
            let o = oids.clone();
            assert!(run_atomic(&db, move |ctx| {
                let mut cursor = Cursor::open(ctx, o.clone());
                while cursor.next()?.is_some() {}
                Ok(())
            })
            .unwrap());
            db.retire_terminated();
        });
    });

    g.bench_function("writer_into_released_record", |b| {
        // the scanner visited the record and moved on; measure a writer's
        // full transaction against the released record
        let db = Database::in_memory();
        let oids = setup_counters(&db, 2, 0);
        let scanner = db
            .initiate({
                let o = oids.clone();
                move |ctx| {
                    let mut cursor = Cursor::open(ctx, o.clone());
                    cursor.next()?; // record 0 now released
                                    // park forever-ish; the bench commits us at the end
                    std::thread::sleep(std::time::Duration::from_secs(3600));
                    Ok(())
                }
            })
            .unwrap();
        db.begin(scanner).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        let target = oids[0];
        b.iter(|| {
            assert!(db.run(move |ctx| ctx.write(target, enc_i64(1))).unwrap());
            db.retire_terminated();
        });
        // the scanner thread is parked in a sleep; dropping the db handle
        // at bench teardown leaves it detached, which is fine for a bench
        let _ = db.abort(scanner);
    });

    g.finish();
}

criterion_group!(benches, bench_cursor);
criterion_main!(benches);

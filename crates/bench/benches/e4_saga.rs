//! E4 — sagas: per-step commit cost vs flat transaction, and the
//! compensation path as a function of abort position.

use asset_bench::workload::{enc_i64, setup_counters};
use asset_core::{Database, TxnCtx};
use asset_models::{run_atomic, Saga, SagaOutcome};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_saga(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_saga");
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(800));
    g.sample_size(20);

    for steps in [2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::new("saga_commit", steps), &steps, |b, &n| {
            let db = Database::in_memory();
            let oids = setup_counters(&db, n, 0);
            b.iter(|| {
                let mut saga = Saga::new();
                for (s, oid) in oids.iter().enumerate() {
                    let oid = *oid;
                    saga = saga.step(
                        format!("s{s}"),
                        move |ctx: &TxnCtx| ctx.write(oid, enc_i64(1)),
                        move |ctx: &TxnCtx| ctx.write(oid, enc_i64(0)),
                    );
                }
                let (outcome, _) = saga.run(&db).unwrap();
                assert_eq!(outcome, SagaOutcome::Committed);
                db.retire_terminated();
            });
        });

        g.bench_with_input(
            BenchmarkId::new("flat_equivalent", steps),
            &steps,
            |b, &n| {
                let db = Database::in_memory();
                let oids = setup_counters(&db, n, 0);
                b.iter(|| {
                    let o = oids.clone();
                    assert!(run_atomic(&db, move |ctx| {
                        for oid in &o {
                            ctx.write(*oid, enc_i64(1))?;
                        }
                        Ok(())
                    })
                    .unwrap());
                    db.retire_terminated();
                });
            },
        );
    }

    for abort_at in [1usize, 4, 7] {
        g.bench_with_input(
            BenchmarkId::new("compensation_depth", abort_at),
            &abort_at,
            |b, &k| {
                let db = Database::in_memory();
                let oids = setup_counters(&db, 8, 0);
                b.iter(|| {
                    let mut saga = Saga::new();
                    for (s, oid) in oids.iter().enumerate() {
                        let oid = *oid;
                        let fails = s == k;
                        saga = saga.step(
                            format!("s{s}"),
                            move |ctx: &TxnCtx| {
                                if fails {
                                    return ctx.abort_self();
                                }
                                ctx.write(oid, enc_i64(1))
                            },
                            move |ctx: &TxnCtx| ctx.write(oid, enc_i64(0)),
                        );
                    }
                    let (outcome, _) = saga.run(&db).unwrap();
                    assert_eq!(outcome, SagaOutcome::Compensated { failed_step: k });
                    db.retire_terminated();
                });
            },
        );
    }

    g.finish();
}

criterion_group!(benches, bench_saga);
criterion_main!(benches);

//! E2 — permit machinery vs strict locking on a shared object: the cost of
//! the permit-suspend-regrant cycle compared with uncontended and
//! blocked-handoff locking.

use asset_bench::workload::{enc_i64, parallel_time, setup_counters};
use asset_common::{ObSet, Oid, OpSet, Tid};
use asset_core::Database;
use asset_lock::LockTable;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_permits(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_permits");
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(800));
    g.sample_size(20);

    // two completed transactions ping-ponging writes on one object via
    // mutual permits: measures the suspend/regrant path of §4.2 step 1b/2b
    g.bench_function("pingpong_write_via_permits", |b| {
        let db = Database::in_memory();
        let oid = setup_counters(&db, 1, 0)[0];
        // two idle holders that never complete (they only lend identity)
        let t1 = db.initiate(|_| Ok(())).unwrap();
        let t2 = db.initiate(|_| Ok(())).unwrap();
        db.permit(t1, Some(t2), ObSet::one(oid), OpSet::ALL)
            .unwrap();
        db.permit(t2, Some(t1), ObSet::one(oid), OpSet::ALL)
            .unwrap();
        // seed: t1 takes the lock
        db.locks()
            .lock(t1, oid, asset_common::Operation::Write, None)
            .unwrap();
        let mut flip = false;
        b.iter(|| {
            let (from, to) = if flip { (t2, t1) } else { (t1, t2) };
            let _ = from;
            db.locks()
                .lock(to, oid, asset_common::Operation::Write, None)
                .unwrap();
            flip = !flip;
        });
    });

    g.bench_function("uncontended_write_txn", |b| {
        let db = Database::in_memory();
        let oid = setup_counters(&db, 1, 0)[0];
        b.iter(|| {
            assert!(db.run(move |ctx| ctx.write(oid, enc_i64(1))).unwrap());
            db.retire_terminated();
        });
    });

    // the permit grant itself (insert into the doubly-hashed PD table)
    g.bench_function("permit_grant", |b| {
        let db = Database::in_memory();
        let oid = setup_counters(&db, 1, 0)[0];
        let t1 = db.initiate(|_| Ok(())).unwrap();
        let t2 = db.initiate(|_| Ok(())).unwrap();
        b.iter(|| {
            db.permit(t1, Some(t2), ObSet::one(oid), OpSet::ALL)
                .unwrap();
        });
    });

    // permit grants from disjoint grantors, sharded sweep: each thread's
    // single-object permits route to that object's stripe, so grants scale
    // with the shard count instead of serializing on one table mutex
    for shards in [1usize, 0] {
        let label = if shards == 1 { "shards1" } else { "shardsD" };
        for threads in [1usize, 2, 4, 8, 16] {
            g.bench_with_input(
                BenchmarkId::new(format!("permit_grant_{label}"), threads),
                &threads,
                |b, &threads| {
                    let locks = LockTable::with_shards(shards);
                    b.iter_custom(|iters| {
                        parallel_time(threads, |i| {
                            let base = (i as u64 + 1) << 32;
                            for n in 0..iters {
                                locks.permit(
                                    Tid(base + 1),
                                    Some(Tid(base + 2)),
                                    ObSet::one(Oid(base + n % 64)),
                                    OpSet::ALL,
                                );
                                if n % 64 == 63 {
                                    // drop accumulated permits so the table
                                    // stays bounded across iterations
                                    locks.release_all(Tid(base + 1));
                                }
                            }
                            locks.release_all(Tid(base + 1));
                        })
                    });
                },
            );
        }
    }

    g.finish();
}

criterion_group!(benches, bench_permits);
criterion_main!(benches);

//! E10 — logging & recovery: WAL encode/append, undo cost, replay rate.

use asset_bench::workload::{enc_i64, setup_counters};
use asset_common::{Oid, Tid};
use asset_core::Database;
use asset_storage::{LogManager, LogRecord, ObjectCache};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_recovery(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_recovery");
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(800));
    g.sample_size(20);

    g.bench_function("log_record_encode", |b| {
        let rec = LogRecord::Update {
            tid: Tid(1),
            oid: Oid(1),
            before: Some(vec![0u8; 64]),
            after: Some(vec![1u8; 64]),
        };
        b.iter(|| black_box(rec.encode_frame()));
    });

    g.bench_function("log_append_mem", |b| {
        let log = LogManager::in_memory();
        let rec = LogRecord::Update {
            tid: Tid(1),
            oid: Oid(1),
            before: Some(vec![0u8; 64]),
            after: Some(vec![1u8; 64]),
        };
        b.iter(|| {
            log.append(black_box(&rec)).unwrap();
        });
    });

    for writes in [10usize, 100] {
        g.bench_with_input(BenchmarkId::new("abort_undo", writes), &writes, |b, &n| {
            let db = Database::in_memory();
            let oids = setup_counters(&db, n, 0);
            b.iter(|| {
                let o = oids.clone();
                let t = db
                    .initiate(move |ctx| {
                        for oid in &o {
                            ctx.write(*oid, enc_i64(7))?;
                        }
                        Ok(())
                    })
                    .unwrap();
                db.begin(t).unwrap();
                db.wait(t).unwrap();
                assert!(db.abort(t).unwrap());
                db.retire_terminated();
            });
        });
    }

    for txns in [500usize, 2_000] {
        g.bench_with_input(BenchmarkId::new("replay", txns), &txns, |b, &txns| {
            // build a log once, replay it repeatedly
            let db = Database::in_memory();
            let oids = setup_counters(&db, 32, 0);
            for i in 0..txns {
                let oid = oids[i % oids.len()];
                assert!(db
                    .run(move |ctx| ctx.write(oid, enc_i64(i as i64)))
                    .unwrap());
                if i % 256 == 255 {
                    db.retire_terminated();
                }
            }
            b.iter(|| {
                let report = asset_storage::recover(
                    db.engine().log(),
                    &ObjectCache::new(),
                    db.engine().store(),
                )
                .unwrap();
                assert!(report.winners > 0);
            });
        });
    }

    g.finish();
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);

//! E9 — the Figure 1 / §4.1 descriptor structures in isolation: lock
//! table, permit table (direct, transitive, miss), dependency graph.

use asset_bench::workload::parallel_time;
use asset_common::{DepType, ObSet, Oid, OpSet, Operation, Tid};
use asset_dep::DepGraph;
use asset_lock::{LockTable, Permit, PermitTable};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_structures(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_structures");
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(800));

    g.bench_function("lock_acquire_covered", |b| {
        let locks = LockTable::new();
        locks.lock(Tid(1), Oid(1), Operation::Write, None).unwrap();
        b.iter(|| {
            // re-grant fast path: own covering lock (§4.2 step 1a)
            locks.lock(Tid(1), Oid(1), Operation::Write, None).unwrap();
        });
    });

    g.bench_function("lock_acquire_release_cycle", |b| {
        let locks = LockTable::new();
        b.iter(|| {
            locks.lock(Tid(1), Oid(1), Operation::Write, None).unwrap();
            locks.release_all(Tid(1));
        });
    });

    for chain in [1usize, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("permit_check_chain", chain),
            &chain,
            |b, &chain| {
                let mut permits = PermitTable::new();
                for i in 0..chain {
                    permits.insert(Permit {
                        grantor: Tid(i as u64 + 1),
                        grantee: Some(Tid(i as u64 + 2)),
                        obs: ObSet::one(Oid(7)),
                        ops: OpSet::ALL,
                    });
                }
                let target = Tid(chain as u64 + 1);
                b.iter(|| {
                    assert!(permits.permits(
                        black_box(Tid(1)),
                        black_box(target),
                        Oid(7),
                        Operation::Write
                    ));
                });
            },
        );
    }

    for size in [10usize, 1000] {
        g.bench_with_input(BenchmarkId::new("permit_miss", size), &size, |b, &size| {
            let mut permits = PermitTable::new();
            for i in 0..size {
                permits.insert(Permit {
                    grantor: Tid(i as u64 + 10),
                    grantee: Some(Tid(i as u64 + 5_000)),
                    obs: ObSet::one(Oid(i as u64)),
                    ops: OpSet::ALL,
                });
            }
            b.iter(|| {
                assert!(!permits.permits(black_box(Tid(1)), Tid(2), Oid(3), Operation::Read));
            });
        });
    }

    // sharded scaling sweep: disjoint-object acquire/release across
    // threads, single stripe vs the resolved default — the headline path
    // the striped table exists for
    for shards in [1usize, 0] {
        let label = if shards == 1 { "shards1" } else { "shardsD" };
        for threads in [1usize, 2, 4, 8, 16] {
            g.bench_with_input(
                BenchmarkId::new(format!("disjoint_cycle_{label}"), threads),
                &threads,
                |b, &threads| {
                    let locks = LockTable::with_shards(shards);
                    b.iter_custom(|iters| {
                        parallel_time(threads, |i| {
                            let tid = Tid(i as u64 + 1);
                            let base = (i as u64 + 1) << 32;
                            for n in 0..iters {
                                locks
                                    .lock(tid, Oid(base + n % 64), Operation::Write, None)
                                    .unwrap();
                                if n % 64 == 63 {
                                    locks.release_all(tid);
                                }
                            }
                            locks.release_all(tid);
                        })
                    });
                },
            );
        }
    }

    g.bench_function("dep_form_gate_commit", |b| {
        let mut graph = DepGraph::new();
        let mut i = 0u64;
        b.iter(|| {
            let a = Tid(2 * i + 1);
            let bb = Tid(2 * i + 2);
            graph.form(DepType::AD, a, bb).unwrap();
            let _ = black_box(graph.commit_gate(bb));
            graph.committed(&[a, bb]);
            graph.retire(a);
            graph.retire(bb);
            i += 1;
        });
    });

    g.bench_function("gc_component_of_8", |b| {
        let mut graph = DepGraph::new();
        for i in 0..7u64 {
            graph.form(DepType::GC, Tid(i + 1), Tid(i + 2)).unwrap();
        }
        b.iter(|| {
            assert_eq!(black_box(graph.gc_component(Tid(4))).len(), 8);
        });
    });

    g.finish();
}

criterion_group!(benches, bench_structures);
criterion_main!(benches);

//! E11 — contingent transactions: cascade cost by position of the first
//! viable alternative.

use asset_bench::workload::{enc_i64, setup_counters};
use asset_core::{Database, TxnCtx};
use asset_models::run_contingent;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_contingent(c: &mut Criterion) {
    let mut g = c.benchmark_group("e11_contingent");
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(800));
    g.sample_size(20);

    for winner in [0usize, 3, 7] {
        g.bench_with_input(
            BenchmarkId::new("winner_at_position", winner),
            &winner,
            |b, &winner| {
                let db = Database::in_memory();
                let sink = setup_counters(&db, 1, 0)[0];
                b.iter(|| {
                    let alternatives = (0..8)
                        .map(|i| {
                            let viable = i == winner;
                            Box::new(move |ctx: &TxnCtx| {
                                if viable {
                                    ctx.write(sink, enc_i64(i as i64))
                                } else {
                                    ctx.abort_self::<()>().map(|_| ())
                                }
                            })
                                as Box<dyn FnOnce(&TxnCtx) -> asset_common::Result<()> + Send>
                        })
                        .collect();
                    assert_eq!(run_contingent(&db, alternatives).unwrap(), Some(winner));
                    db.retire_terminated();
                });
            },
        );
    }

    g.bench_function("all_fail", |b| {
        let db = Database::in_memory();
        b.iter(|| {
            let alternatives = (0..4)
                .map(|_| {
                    Box::new(|ctx: &TxnCtx| ctx.abort_self::<()>().map(|_| ()))
                        as Box<dyn FnOnce(&TxnCtx) -> asset_common::Result<()> + Send>
                })
                .collect();
            assert_eq!(run_contingent(&db, alternatives).unwrap(), None);
            db.retire_terminated();
        });
    });

    g.finish();
}

criterion_group!(benches, bench_contingent);
criterion_main!(benches);

//! The experiment harness: prints the E1–E18 tables of `EXPERIMENTS.md`.
//!
//! ```sh
//! cargo run -p asset-bench --release --bin experiments           # full suite
//! cargo run -p asset-bench --release --bin experiments -- quick  # smoke scale
//! cargo run -p asset-bench --release --bin experiments -- e2 e4  # a subset
//! cargo run -p asset-bench --release --bin experiments -- e15 --txns 200  # executor smoke
//! ```
//!
//! E14, E15, E16, E17, and E18 also serialize their measured runs into
//! `BENCH_obs.json` (schema `asset-bench-obs/v1`); when several are
//! selected the file holds the union of their rows. E18 additionally
//! writes its merged multi-node Chrome trace to `asset-trace-e18.json`.

use asset_bench::experiments::{self, ObsBenchRun, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "quick");
    let scale = if quick { Scale::quick() } else { Scale::full() };
    let mut txns_override: Option<usize> = None;
    let mut selected: Vec<&str> = Vec::new();
    let mut it = args.iter().map(|s| s.as_str());
    while let Some(a) = it.next() {
        match a {
            "quick" => {}
            "--txns" => {
                txns_override = it.next().and_then(|v| v.parse().ok());
                if txns_override.is_none() {
                    eprintln!("experiments: --txns needs a positive integer");
                    std::process::exit(2);
                }
            }
            other => selected.push(other),
        }
    }

    println!("ASSET experiment suite (scale factor {:.2})", scale.factor);
    println!("paper: Biliris/Dar/Gehani/Jagadish/Ramamritham, SIGMOD 1994");
    if !cfg!(debug_assertions) {
        println!("build: release");
    } else {
        println!("build: DEBUG — timings are not meaningful; use --release");
    }

    type Exp = (&'static str, fn(Scale) -> asset_bench::Table);
    let all: Vec<Exp> = vec![
        ("e1", experiments::e1_primitives),
        ("e2", experiments::e2_permits_vs_2pl),
        ("e3", experiments::e3_nested),
        ("e4", experiments::e4_sagas),
        ("e5", experiments::e5_group_commit),
        ("e6", experiments::e6_cursor_stability),
        ("e7", experiments::e7_split_early_release),
        ("e8", experiments::e8_workflow),
        ("e9", experiments::e9_structures),
        ("e9b", experiments::e9b_stripe_contention),
        ("e10", experiments::e10_recovery),
        ("e11", experiments::e11_contingent),
        ("e12", experiments::e12_ablations),
        ("e13", experiments::e13_crash_matrix),
        ("e14", experiments::e14_observability),
        ("e15", experiments::e15_executor),
        ("e16", experiments::e16_ledger),
        ("e17", experiments::e17_coord),
        ("e18", experiments::e18_dist_obs),
    ];

    // E14/E15/E16/E17 measure once and contribute rows to BENCH_obs.json
    let mut obs_runs: Vec<ObsBenchRun> = Vec::new();

    for (name, f) in &all {
        if !selected.is_empty() && !selected.contains(name) {
            continue;
        }
        let start = std::time::Instant::now();
        if *name == "e14" {
            let runs = experiments::e14_observability_runs(scale);
            println!("{}", experiments::e14_table(&runs));
            obs_runs.extend(runs);
        } else if *name == "e15" {
            let runs = experiments::e15_executor_runs(scale, txns_override);
            println!("{}", experiments::e15_table(&runs));
            obs_runs.extend(runs);
        } else if *name == "e16" {
            let runs = experiments::e16_ledger_runs(scale);
            println!("{}", experiments::e16_table(&runs));
            obs_runs.extend(runs);
        } else if *name == "e17" {
            let runs = experiments::e17_coord_runs(scale);
            println!("{}", experiments::e17_table(&runs));
            obs_runs.extend(runs);
        } else if *name == "e18" {
            let runs = experiments::e18_dist_obs_runs(scale, txns_override);
            println!("{}", experiments::e18_table(&runs));
            obs_runs.extend(runs);
            // the merged multi-node trace is E18's second artifact
            let path = "asset-trace-e18.json";
            match std::fs::write(path, experiments::e18_merged_trace()) {
                Ok(()) => println!("   [merged fleet trace -> {path}]"),
                Err(err) => eprintln!("   [{path} not written: {err}]"),
            }
        } else if *name == "e9b" {
            // e9b also captures a structured event trace; dump it next to
            // the experiment output
            let (table, trace) = experiments::e9b_stripe_contention_traced(scale);
            println!("{table}");
            let path = "asset-trace-e9b.log";
            match std::fs::File::create(path) {
                Ok(file) => {
                    use std::io::Write;
                    let mut w = std::io::BufWriter::new(file);
                    for e in &trace {
                        writeln!(w, "{e}").expect("trace write");
                    }
                    w.flush().expect("trace flush");
                    println!("   [event trace: {} events -> {path}]", trace.len());
                }
                Err(err) => eprintln!("   [event trace not written: {err}]"),
            }
        } else {
            let table = f(scale);
            println!("{table}");
        }
        println!("   [{name} took {:.2?}]", start.elapsed());
    }

    if !obs_runs.is_empty() {
        let path = "BENCH_obs.json";
        match std::fs::write(path, experiments::bench_obs_json(&obs_runs)) {
            Ok(()) => println!(
                "   [observability bench: {} runs -> {path}]",
                obs_runs.len()
            ),
            Err(err) => eprintln!("   [{path} not written: {err}]"),
        }
    }
}

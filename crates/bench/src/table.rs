//! Minimal fixed-width table rendering for the experiment harness.

use std::fmt;

/// A printable result table: the harness's equivalent of a paper table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id + name, e.g. `"E2: permits vs strict 2PL"`.
    pub title: String,
    /// One-line description of workload and parameters.
    pub caption: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table.
    pub fn new(title: impl Into<String>, caption: impl Into<String>) -> Table {
        Table {
            title: title.into(),
            caption: caption.into(),
            headers: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Set the headers.
    #[must_use]
    pub fn headers(mut self, headers: &[&str]) -> Table {
        self.headers = headers.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        writeln!(f, "\n== {} ==", self.title)?;
        writeln!(f, "   {}", self.caption)?;
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "   ")?;
            for (i, cell) in cells.iter().enumerate() {
                write!(f, "| {:<width$} ", cell, width = widths[i])?;
            }
            writeln!(f, "|")
        };
        render(f, &self.headers)?;
        let total: usize = widths.iter().map(|w| w + 3).sum::<usize>() + 1;
        writeln!(f, "   {}", "-".repeat(total))?;
        for row in &self.rows {
            render(f, row)?;
        }
        Ok(())
    }
}

/// Format a `Duration` with adaptive units.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.1} us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Format an ops/second rate.
pub fn fmt_rate(ops: u64, elapsed: std::time::Duration) -> String {
    let per_sec = ops as f64 / elapsed.as_secs_f64();
    if per_sec >= 1e6 {
        format!("{:.2} M/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.1} K/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} /s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("E0: demo", "demo caption").headers(&["param", "value"]);
        t.row(vec!["threads".into(), "8".into()]);
        t.row(vec!["x".into(), "123456".into()]);
        let s = t.to_string();
        assert!(s.contains("E0: demo"));
        assert!(s.contains("| param"));
        assert!(s.contains("| 123456"));
    }

    #[test]
    fn duration_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
        assert!(fmt_duration(Duration::from_micros(12)).ends_with("us"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with("s"));
    }

    #[test]
    fn rate_units() {
        assert!(fmt_rate(2_000_000, Duration::from_secs(1)).contains("M/s"));
        assert!(fmt_rate(5_000, Duration::from_secs(1)).contains("K/s"));
        assert!(fmt_rate(10, Duration::from_secs(1)).contains("/s"));
    }
}

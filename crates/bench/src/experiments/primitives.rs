//! E1 (primitive costs), E5 (group commit), E9 (lock/permit/dependency
//! structures — Figure 1), E9b (per-stripe contention), E10 (logging &
//! recovery).

use super::Scale;
use crate::table::{fmt_duration, fmt_rate, Table};
use crate::workload::{enc_i64, setup_counters};
use asset_common::{DepType, ObSet, Oid, OpSet, Operation, Tid};
use asset_core::Database;
use asset_dep::DepGraph;
use asset_lock::{LockTable, Permit, PermitTable};
use asset_obs::{Event, Obs};
use asset_storage::{LogManager, LogRecord};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// E1 — cost of the basic primitives (§2.1): latency of the
/// initiate/begin/commit cycle and throughput of disjoint transactions at
/// increasing concurrency.
pub fn e1_primitives(scale: Scale) -> Table {
    let mut table = Table::new(
        "E1: primitive costs",
        "initiate/begin/commit cycle latency; throughput of disjoint 1-write transactions vs concurrency",
    )
    .headers(&["concurrency", "txns", "wall time", "throughput", "mean latency"]);

    // single-thread latency of a no-op transaction cycle
    let db = Database::in_memory();
    let n = scale.n(2_000);
    let start = Instant::now();
    for _ in 0..n {
        let t = db.initiate(|_| Ok(())).unwrap();
        db.begin(t).unwrap();
        assert!(db.commit(t).unwrap());
    }
    let elapsed = start.elapsed();
    db.retire_terminated();
    table.row(vec![
        "1 (no-op)".into(),
        n.to_string(),
        fmt_duration(elapsed),
        fmt_rate(n as u64, elapsed),
        fmt_duration(elapsed / n as u32),
    ]);

    // throughput of single-write transactions at increasing concurrency
    for threads in [1usize, 2, 4, 8, 16] {
        let db = Database::in_memory();
        let per_thread = scale.n(400);
        let oids = setup_counters(&db, threads, 0);
        let elapsed = crate::workload::parallel_time(threads, |i| {
            let oid = oids[i];
            for v in 0..per_thread {
                let ok = db
                    .run(move |ctx| ctx.write(oid, enc_i64(v as i64)))
                    .unwrap();
                assert!(ok);
            }
        });
        let total = (threads * per_thread) as u64;
        table.row(vec![
            threads.to_string(),
            total.to_string(),
            fmt_duration(elapsed),
            fmt_rate(total, elapsed),
            fmt_duration(elapsed / total as u32),
        ]);
    }
    table
}

/// E5 — group commit (§3.1.2): GC resolution latency vs group size, and
/// abort propagation down AD chains.
pub fn e5_group_commit(scale: Scale) -> Table {
    let mut table = Table::new(
        "E5: group commit & abort propagation",
        "time to resolve a GC group of size n from one commit call; time to propagate an abort down an AD chain",
    )
    .headers(&["mode", "n", "iterations", "mean time"]);

    for n in [2usize, 4, 8, 16, 32] {
        let iters = scale.n(60);
        let mut total = std::time::Duration::ZERO;
        for _ in 0..iters {
            let db = Database::in_memory();
            let tids: Vec<Tid> = (0..n).map(|_| db.initiate(|_| Ok(())).unwrap()).collect();
            for w in tids.windows(2) {
                db.form_dependency(DepType::GC, w[0], w[1]).unwrap();
            }
            db.begin_many(&tids).unwrap();
            // wait until all completed so we time only the group resolution
            for t in &tids {
                db.wait(*t).unwrap();
            }
            let start = Instant::now();
            assert!(db.commit(tids[0]).unwrap());
            total += start.elapsed();
        }
        table.row(vec![
            "GC commit".into(),
            n.to_string(),
            iters.to_string(),
            fmt_duration(total / iters as u32),
        ]);
    }

    for n in [2usize, 4, 8, 16, 32] {
        let iters = scale.n(60);
        let mut total = std::time::Duration::ZERO;
        for _ in 0..iters {
            let db = Database::in_memory();
            let tids: Vec<Tid> = (0..n).map(|_| db.initiate(|_| Ok(())).unwrap()).collect();
            for w in tids.windows(2) {
                db.form_dependency(DepType::AD, w[0], w[1]).unwrap();
            }
            db.begin_many(&tids).unwrap();
            for t in &tids {
                db.wait(*t).unwrap();
            }
            let start = Instant::now();
            assert!(db.abort(tids[0]).unwrap());
            // abort of the head propagates through the whole chain
            total += start.elapsed();
            for t in &tids {
                assert!(db.status(*t).unwrap().is_abort_path());
            }
        }
        table.row(vec![
            "AD abort chain".into(),
            n.to_string(),
            iters.to_string(),
            fmt_duration(total / iters as u32),
        ]);
    }
    table
}

/// E9 — the Figure 1 / §4.1 structures in isolation: lock acquire+release,
/// direct and transitive permit checks, dependency insert + gate
/// evaluation.
pub fn e9_structures(scale: Scale) -> Table {
    let mut table = Table::new(
        "E9: lock/permit/dependency structures (Figure 1)",
        "microbenchmarks of the doubly-hashed descriptor structures",
    )
    .headers(&["operation", "param", "ops", "mean time", "rate"]);

    // lock acquire + release, uncontended
    let n = scale.n(100_000);
    let locks = LockTable::new();
    let start = Instant::now();
    for i in 0..n {
        locks
            .lock(Tid(1), Oid(i as u64 % 64), Operation::Write, None)
            .unwrap();
        if i % 64 == 63 {
            locks.release_all(Tid(1));
        }
    }
    locks.release_all(Tid(1));
    let elapsed = start.elapsed();
    table.row(vec![
        "write-lock (uncontended)".into(),
        "64 objects".into(),
        n.to_string(),
        fmt_duration(elapsed / n as u32),
        fmt_rate(n as u64, elapsed),
    ]);

    // permit check: direct and through transitive chains
    for chain in [1usize, 2, 4, 8] {
        let mut permits = PermitTable::new();
        // build a chain t1 -> t2 -> ... -> t(chain+1)
        for i in 0..chain {
            permits.insert(Permit {
                grantor: Tid(i as u64 + 1),
                grantee: Some(Tid(i as u64 + 2)),
                obs: ObSet::one(Oid(7)),
                ops: OpSet::ALL,
            });
        }
        let target = Tid(chain as u64 + 1);
        let n = scale.n(200_000);
        let start = Instant::now();
        let mut hits = 0usize;
        for _ in 0..n {
            if permits.permits(Tid(1), target, Oid(7), Operation::Write) {
                hits += 1;
            }
        }
        let elapsed = start.elapsed();
        assert_eq!(hits, n);
        table.row(vec![
            "permit check".into(),
            format!("chain len {chain}"),
            n.to_string(),
            fmt_duration(elapsed / n as u32),
            fmt_rate(n as u64, elapsed),
        ]);
    }

    // permit check miss with a populated table (hash-scaling sanity)
    for size in [10usize, 100, 1000] {
        let mut permits = PermitTable::new();
        for i in 0..size {
            permits.insert(Permit {
                grantor: Tid(i as u64 + 10),
                grantee: Some(Tid(i as u64 + 5_000)),
                obs: ObSet::one(Oid(i as u64)),
                ops: OpSet::ALL,
            });
        }
        let n = scale.n(200_000);
        let start = Instant::now();
        for _ in 0..n {
            // grantor with no permits: the by-grantor hash lookup must be
            // O(1) regardless of table size
            assert!(!permits.permits(Tid(1), Tid(2), Oid(3), Operation::Read));
        }
        let elapsed = start.elapsed();
        table.row(vec![
            "permit miss".into(),
            format!("{size} PDs"),
            n.to_string(),
            fmt_duration(elapsed / n as u32),
            fmt_rate(n as u64, elapsed),
        ]);
    }

    // sharded lock-table scaling: disjoint-object acquire/release across
    // threads at 1 stripe vs the resolved default — the contention path
    // the striped table was built to kill
    let default_shards = LockTable::with_shards(0).shard_count();
    for threads in [1usize, 2, 4, 8, 16] {
        let per_thread = scale.n(30_000);
        let total = (threads * per_thread) as u64;
        let mut rates = [0f64; 2];
        for (slot, shards) in [1usize, 0].into_iter().enumerate() {
            let locks = LockTable::with_shards(shards);
            let elapsed = crate::workload::parallel_time(threads, |i| {
                let tid = Tid(i as u64 + 1);
                let base = (i as u64 + 1) << 32;
                for n in 0..per_thread {
                    locks
                        .lock(tid, Oid(base + n as u64 % 64), Operation::Write, None)
                        .unwrap();
                    if n % 64 == 63 {
                        locks.release_all(tid);
                    }
                }
                locks.release_all(tid);
            });
            rates[slot] = total as f64 / elapsed.as_secs_f64();
            let param = if shards == 1 {
                format!("{threads}t x 1 shard")
            } else {
                format!("{threads}t x {default_shards} shards")
            };
            table.row(vec![
                "sharded acquire/release".into(),
                param,
                total.to_string(),
                fmt_duration(elapsed / total as u32),
                fmt_rate(total, elapsed),
            ]);
        }
        table.row(vec![
            "sharded speedup".into(),
            format!("{threads} threads"),
            "-".into(),
            "-".into(),
            format!("{:.2}x vs 1 shard", rates[1] / rates[0]),
        ]);
    }

    // dependency insert + commit-gate evaluation
    let n = scale.n(50_000);
    let mut graph = DepGraph::new();
    let start = Instant::now();
    for i in 0..n {
        let a = Tid(2 * i as u64 + 1);
        let b = Tid(2 * i as u64 + 2);
        graph.form(DepType::CD, a, b).unwrap();
        let _ = graph.commit_gate(b);
        graph.committed(&[a]);
        let _ = graph.commit_gate(b);
        graph.committed(&[b]);
        graph.retire(a);
        graph.retire(b);
    }
    let elapsed = start.elapsed();
    table.row(vec![
        "CD form+gate+commit".into(),
        "pairs".into(),
        n.to_string(),
        fmt_duration(elapsed / n as u32),
        fmt_rate(n as u64, elapsed),
    ]);
    table
}

/// E9b — per-stripe lock contention: 16 threads hammer a small hot object
/// set through an observability-enabled [`LockTable`], then
/// `stripe_stats()` shows *where* the waiting happened (waits, mean/max
/// wait, queue depth peak per stripe). The companion of E9's sharded-
/// scaling rows: E9 shows sharding helps, E9b shows which stripes carry
/// the load.
pub fn e9b_stripe_contention(scale: Scale) -> Table {
    e9b_stripe_contention_traced(scale).0
}

/// [`e9b_stripe_contention`] plus the captured event trace, so the harness
/// binary can write the trace next to the experiment output.
pub fn e9b_stripe_contention_traced(scale: Scale) -> (Table, Vec<Event>) {
    let mut table = Table::new(
        "E9b: per-stripe lock contention",
        "16 threads over a 4-object hot set on an obs-enabled lock table; where the waiting happens",
    )
    .headers(&["stripe", "waits", "mean wait", "max wait", "queue peak"]);

    let obs = Obs::shared();
    obs.enable_tracing(4096);
    let locks = LockTable::with_shards_obs(8, Arc::clone(&obs));
    let threads = 16usize;
    let hot: Vec<Oid> = (0..4u64).map(Oid).collect();
    let per_thread = scale.n(2_000);
    let elapsed = crate::workload::parallel_time(threads, |i| {
        let tid = Tid(i as u64 + 1);
        for n in 0..per_thread {
            let ob = hot[n % hot.len()];
            locks.lock(tid, ob, Operation::Write, None).unwrap();
            locks.release_all(tid);
        }
    });

    let stats = locks.stripe_stats();
    let mut total_waits = 0u64;
    for s in &stats {
        if s.grants == 0 && s.waits == 0 {
            continue; // cold stripe: the hot set never hashed here
        }
        total_waits += s.waits;
        table.row(vec![
            s.stripe.to_string(),
            s.waits.to_string(),
            fmt_duration(Duration::from_nanos(s.wait_ns_mean())),
            fmt_duration(Duration::from_nanos(s.wait_ns_max)),
            s.queue_peak.to_string(),
        ]);
    }
    let snap = obs.snapshot();
    // tail behavior, not just the mean: interpolated percentiles from the
    // wait histogram
    let (p50, _, p99) = snap.lock_wait_ns.percentiles();
    table.row(vec![
        "total".into(),
        total_waits.to_string(),
        format!(
            "p50 {} / p99 {}",
            fmt_duration(Duration::from_nanos(p50 as u64)),
            fmt_duration(Duration::from_nanos(p99 as u64))
        ),
        fmt_duration(Duration::from_nanos(snap.lock_wait_ns.max)),
        format!(
            "{} locks in {}",
            (threads * per_thread),
            fmt_duration(elapsed)
        ),
    ]);
    let trace = obs.trace();
    table.row(vec![
        "trace".into(),
        format!("{} events", trace.len()),
        format!("{} dropped", snap.events_dropped),
        "-".into(),
        "-".into(),
    ]);
    (table, trace)
}

/// E10 — §4.2 logging & recovery: WAL append throughput, abort-undo cost
/// vs update count, restart recovery time vs log size.
pub fn e10_recovery(scale: Scale) -> Table {
    let mut table = Table::new(
        "E10: logging & recovery",
        "WAL append throughput; abort undo cost vs writes; restart recovery time vs log records",
    )
    .headers(&["operation", "param", "count", "time", "rate"]);

    // raw log append throughput (in-memory backend: measures encoding)
    let n = scale.n(200_000);
    let log = LogManager::in_memory();
    let rec = LogRecord::Update {
        tid: Tid(1),
        oid: Oid(1),
        before: Some(vec![0u8; 64]),
        after: Some(vec![1u8; 64]),
    };
    let start = Instant::now();
    for _ in 0..n {
        log.append(&rec).unwrap();
    }
    let elapsed = start.elapsed();
    table.row(vec![
        "WAL append".into(),
        "64B images".into(),
        n.to_string(),
        fmt_duration(elapsed / n as u32),
        fmt_rate(n as u64, elapsed),
    ]);

    // abort undo cost vs number of updates
    for writes in [10usize, 100, 1000] {
        let db = Database::in_memory();
        let oids = setup_counters(&db, writes, 0);
        let o2 = oids.clone();
        let t = db
            .initiate(move |ctx| {
                for oid in &o2 {
                    ctx.write(*oid, enc_i64(42))?;
                }
                Ok(())
            })
            .unwrap();
        db.begin(t).unwrap();
        db.wait(t).unwrap();
        let start = Instant::now();
        assert!(db.abort(t).unwrap());
        let elapsed = start.elapsed();
        table.row(vec![
            "abort undo".into(),
            format!("{writes} writes"),
            "1".into(),
            fmt_duration(elapsed),
            fmt_rate(writes as u64, elapsed),
        ]);
    }

    // restart recovery time vs log size
    for txns in [1_000usize, 5_000, 20_000] {
        let txns = scale.n(txns);
        let db = Database::in_memory();
        let oids = setup_counters(&db, 64, 0);
        for i in 0..txns {
            let oid = oids[i % oids.len()];
            assert!(db
                .run(move |ctx| ctx.write(oid, enc_i64(i as i64)))
                .unwrap());
            if i % 256 == 255 {
                db.retire_terminated();
            }
        }
        let records = db.engine().log().records_appended();
        // simulate crash: rebuild cache from log + store
        let start = Instant::now();
        let report = asset_storage::recover(
            db.engine().log(),
            &asset_storage::ObjectCache::new(),
            db.engine().store(),
        )
        .unwrap();
        let elapsed = start.elapsed();
        assert!(report.winners > 0);
        table.row(vec![
            "restart recovery".into(),
            format!("{records} log records"),
            "1".into(),
            fmt_duration(elapsed),
            fmt_rate(records, elapsed),
        ]);
    }
    table
}

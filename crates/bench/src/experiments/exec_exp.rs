//! E15 — the state-machine executor (DESIGN.md §12): worker-pool size ×
//! flush-window sweep over an uncontended single-write workload, against
//! a blocking thread-per-transaction baseline issued from the same
//! submitting thread. Each cell reports throughput and commit
//! p50/p95/p99 via [`MetricsSnapshot::delta`] between per-run snapshots;
//! the harness binary merges the runs into `BENCH_obs.json`
//! (schema `asset-bench-obs/v1`) next to the E14 rows.

use super::{ObsBenchRun, Scale};
use crate::table::{fmt_duration, fmt_rate, Table};
use crate::workload::enc_i64;
use asset_common::{Config, Oid};
use asset_core::{Database, TryOp, TxnStep};
use std::time::{Duration, Instant};

/// The sweep: (workers, flush window µs, stable run name). Names are the
/// keys under which `BENCH_obs.json` tracks the cells across commits.
const CELLS: &[(usize, u64, &str)] = &[
    (1, 0, "exec-w1-f0us"),
    (1, 50, "exec-w1-f50us"),
    (1, 200, "exec-w1-f200us"),
    (2, 0, "exec-w2-f0us"),
    (2, 50, "exec-w2-f50us"),
    (2, 200, "exec-w2-f200us"),
    (4, 0, "exec-w4-f0us"),
    (4, 50, "exec-w4-f50us"),
    (4, 200, "exec-w4-f200us"),
    (8, 0, "exec-w8-f0us"),
    (8, 50, "exec-w8-f50us"),
    (8, 200, "exec-w8-f200us"),
];

/// The baseline row's name (always the first returned run).
pub const E15_BASELINE: &str = "blocking-serial";

fn delta_run(
    name: &'static str,
    db: &Database,
    txns: u64,
    work: impl FnOnce() -> Duration,
) -> ObsBenchRun {
    let before = db.metrics_snapshot();
    let elapsed = work();
    let d = db.metrics_snapshot().delta(&before);
    ObsBenchRun {
        name,
        txns,
        elapsed,
        lock_wait_ns: d.lock_wait_ns.percentiles(),
        commit_ns: d.commit_ns.percentiles(),
        events_recorded: d.counters.events_recorded,
        events_dropped: d.events_dropped,
    }
}

/// One executor cell: `n` disjoint single-write transactions submitted
/// back-to-back from one thread, then awaited — the pool is the
/// parallelism, and commit acks ride the shared flush windows.
fn exec_cell(name: &'static str, workers: usize, window_us: u64, n: usize) -> ObsBenchRun {
    let db = Database::open(
        Config::in_memory()
            .with_exec_workers(workers)
            .with_commit_flush_window(Duration::from_micros(window_us)),
    )
    .expect("in-memory open")
    .0;
    db.obs().enable_tracing(1 << 16);
    let oids: Vec<Oid> = (0..n).map(|_| db.new_oid()).collect();
    delta_run(name, &db, n as u64, || {
        let start = Instant::now();
        let tids: Vec<_> = oids
            .iter()
            .map(|&o| {
                db.submit(move |sc| match sc.try_write(o, enc_i64(1)) {
                    Ok(TryOp::Done(())) => TxnStep::Done(Ok(())),
                    Ok(TryOp::WouldBlock) => TxnStep::WaitLock { ob: o },
                    Err(e) => TxnStep::Done(Err(e)),
                })
                .expect("submit")
            })
            .collect();
        for t in tids {
            assert!(db.outcome(t).expect("outcome"), "uncontended write commits");
        }
        start.elapsed()
    })
}

/// The blocking baseline: the same uncontended writes as `run` calls —
/// thread-per-transaction begin, one forced record per commit.
fn blocking_cell(n: usize) -> ObsBenchRun {
    let db = Database::in_memory();
    db.obs().enable_tracing(1 << 16);
    let oids: Vec<Oid> = (0..n).map(|_| db.new_oid()).collect();
    delta_run(E15_BASELINE, &db, n as u64, || {
        let start = Instant::now();
        for &o in &oids {
            assert!(db.run(move |ctx| ctx.write(o, enc_i64(1))).expect("run"));
        }
        start.elapsed()
    })
}

/// Run the E15 sweep. `txns_override` pins the per-cell transaction count
/// (the CI smoke passes `--txns 200`); otherwise the count scales from a
/// 2500-per-cell default.
pub fn e15_executor_runs(scale: Scale, txns_override: Option<usize>) -> Vec<ObsBenchRun> {
    let n = txns_override.unwrap_or_else(|| scale.n(2500));
    let mut runs = vec![blocking_cell(n)];
    for &(workers, window_us, name) in CELLS {
        runs.push(exec_cell(name, workers, window_us, n));
    }
    runs
}

/// E15 as a harness table (first run is the blocking baseline; the
/// speedup column is relative to it).
pub fn e15_table(runs: &[ObsBenchRun]) -> Table {
    let mut table = Table::new(
        "E15: state-machine executor, workers x flush window",
        "uncontended single-write transactions; speedup vs the blocking thread-per-txn baseline issued from the same thread",
    )
    .headers(&[
        "workload",
        "txns",
        "throughput",
        "commit p50/p95/p99",
        "speedup",
    ]);
    let base = runs.first().map_or(0.0, ObsBenchRun::throughput);
    for r in runs {
        let (c50, c95, c99) = r.commit_ns;
        let speedup = if r.name == E15_BASELINE || base == 0.0 {
            "1.00x (baseline)".to_string()
        } else {
            format!("{:.2}x", r.throughput() / base)
        };
        table.row(vec![
            r.name.into(),
            r.txns.to_string(),
            fmt_rate(r.txns, r.elapsed),
            format!(
                "{} / {} / {}",
                fmt_duration(Duration::from_nanos(c50 as u64)),
                fmt_duration(Duration::from_nanos(c95 as u64)),
                fmt_duration(Duration::from_nanos(c99 as u64)),
            ),
            speedup,
        ]);
    }
    table
}

/// E15 for `run_all`.
pub fn e15_executor(scale: Scale) -> Table {
    e15_table(&e15_executor_runs(scale, None))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_measures_every_cell() {
        let runs = e15_executor_runs(Scale::quick(), Some(24));
        assert_eq!(runs.len(), 1 + CELLS.len());
        assert_eq!(runs[0].name, E15_BASELINE);
        for r in &runs {
            assert_eq!(r.txns, 24);
            assert!(r.throughput() > 0.0, "{}: measured", r.name);
            assert!(r.commit_ns.2 >= r.commit_ns.0, "{}: p99 >= p50", r.name);
        }
        let json = super::super::bench_obs_json(&runs);
        assert!(json.contains("\"name\": \"exec-w4-f50us\""));
    }
}

//! E18 — distributed-commit observability (`EXPERIMENTS.md` E18): what
//! does the §7.2 cross-node tracing pipeline cost, and what does it
//! produce?
//!
//! The sweep drives uncontended global transactions through both
//! coordinators (2PC and Paxos Commit) over an in-process 3-node
//! cluster whose transport delays each message by [`LINK_DELAY`] — a
//! fast LAN, the same modeling move as E17's slower 200us link — once
//! with tracing off and once with the full instrumentation on (event
//! rings on every node, the coordinator hub recording
//! `MsgSend`/`MsgAck`, per-message counters and the decision-latency
//! histogram). The timed window is the whole transaction lifecycle —
//! stage on every node through decision delivered everywhere, the same
//! outcome definition E17 uses — since that is the path a deployment
//! actually pays for. Off/on cells are interleaved and each is the
//! best of [`REPS`] repetitions, so the reported overhead is a
//! floor-to-floor comparison rather than scheduler noise.
//!
//! A separate small traced pass then drains every node's ring, merges
//! the per-node [`CausalGraph`]s onto one fleet timeline
//! ([`CausalGraph::merge`]) and renders the merged Chrome trace — the
//! artifact the harness binary writes next to `BENCH_obs.json`.

use super::{ObsBenchRun, Scale};
use crate::table::{fmt_duration, fmt_rate, Table};
use asset_common::Config;
use asset_coord::{
    Acceptor, ChannelTransport, CommitTransport, CoordLog, CoordObs, Decision, GlobalTxn,
    ParticipantNode, PaxosCommit, TwoPhase,
};
use asset_obs::Obs;
use asset_trace::chrome;
use asset_trace::span::CausalGraph;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Participants per cluster.
const NODES: usize = 3;

/// The coordinator's fleet node id — distinct from every participant
/// index, per the transport's node-id convention.
const COORD_NODE: u32 = 3;

/// Per-message transport delay: a fast LAN link, so the overhead is
/// evaluated against the network cost a distributed commit always pays
/// (E17 models a slower 200us link for the same reason).
const LINK_DELAY: Duration = Duration::from_micros(50);

/// Global transactions per cell before scaling.
const TXNS_BASE: usize = 128;

/// Repetitions per cell; each cell reports its best run.
const REPS: usize = 4;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Proto {
    TwoPc,
    Paxos,
}

/// One pass's measurements: summed wall time, per-txn outcome
/// latencies, and events recorded/dropped across every ring (hub plus
/// participants).
type PassResult = (Duration, Vec<u64>, u64, u64);

/// One measured pass: a fresh cluster, `iters` global transactions,
/// each timed over its whole lifecycle (stage on every node → decision
/// delivered everywhere) by the harness clock, so off and on cells are
/// measured identically.
fn run_pass(proto: Proto, traced: bool, iters: usize) -> PassResult {
    let nodes: Vec<Arc<ParticipantNode>> = (0..NODES)
        .map(|_| Arc::new(ParticipantNode::open(Config::in_memory()).expect("open node")))
        .collect();
    let hub = Obs::shared();
    if traced {
        hub.enable_tracing(1 << 16);
        for n in &nodes {
            n.db().obs().enable_tracing(1 << 16);
        }
    }
    let mut transport = ChannelTransport::new(nodes).with_delay(LINK_DELAY);
    if traced {
        transport = transport.with_obs(Arc::clone(&hub));
    }
    let transport = Arc::new(transport);
    let log = Arc::new(CoordLog::in_memory());
    let acceptors: Vec<Arc<Acceptor>> = (0..3).map(|_| Arc::new(Acceptor::new())).collect();

    let mut outcome_ns: Vec<u64> = Vec::with_capacity(iters);
    let mut elapsed = Duration::ZERO;
    for i in 0..iters {
        let gid = 1 + i as u64;
        let t0 = Instant::now();
        let mut g = GlobalTxn::new(gid);
        for n in 0..transport.nodes() {
            let db = transport.node(n).db();
            let oid = db.new_oid();
            let t = db
                .initiate(move |ctx| ctx.write(oid, gid.to_le_bytes().to_vec()))
                .expect("initiate");
            db.begin(t).expect("begin");
            db.wait(t).expect("wait");
            g.add_member(n as u32, t);
        }
        let d = match proto {
            Proto::TwoPc => {
                let mut c = TwoPhase::new(transport.clone(), log.clone());
                if traced {
                    c = c.with_obs(CoordObs::new(COORD_NODE, Arc::clone(&hub)));
                }
                c.commit(&g).expect("2pc commit")
            }
            Proto::Paxos => {
                let mut c = PaxosCommit::new(transport.clone(), acceptors.clone());
                if traced {
                    c = c.with_obs(CoordObs::new(COORD_NODE, Arc::clone(&hub)));
                }
                c.commit(&g).expect("paxos commit")
            }
        };
        let dt = t0.elapsed();
        assert_eq!(d, Decision::Commit, "uncontended cell must commit");
        outcome_ns.push(dt.as_nanos() as u64);
        elapsed += dt;
    }
    let mut events = 0u64;
    let mut dropped = 0u64;
    for i in 0..transport.nodes() {
        let s = transport.node(i).db().obs().snapshot();
        events += s.counters.events_recorded;
        dropped += s.events_dropped;
    }
    let s = hub.snapshot();
    events += s.counters.events_recorded;
    dropped += s.events_dropped;
    (elapsed, outcome_ns, events, dropped)
}

fn percentiles(mut ns: Vec<u64>) -> (f64, f64, f64) {
    ns.sort_unstable();
    let pct = |p: f64| -> f64 {
        if ns.is_empty() {
            0.0
        } else {
            ns[((ns.len() - 1) as f64 * p) as usize] as f64
        }
    };
    (pct(0.50), pct(0.95), pct(0.99))
}

/// Run the E18 sweep: for each protocol, [`REPS`] interleaved off/on
/// passes, keeping each cell's best (minimum wall time) pass.
pub fn e18_dist_obs_runs(scale: Scale, txns_override: Option<usize>) -> Vec<ObsBenchRun> {
    let iters = txns_override.unwrap_or_else(|| scale.n(TXNS_BASE));
    let mut runs = Vec::new();
    for (proto, off_name, on_name) in [
        (Proto::TwoPc, "dist-2pc-trace-off", "dist-2pc-trace-on"),
        (Proto::Paxos, "dist-paxos-trace-off", "dist-paxos-trace-on"),
    ] {
        let mut best: [Option<PassResult>; 2] = [None, None];
        for _ in 0..REPS {
            // interleave off/on so drift hits both cells alike
            for (slot, traced) in [(0usize, false), (1usize, true)] {
                let pass = run_pass(proto, traced, iters);
                let better = match &best[slot] {
                    Some((d, _, _, _)) => pass.0 < *d,
                    None => true,
                };
                if better {
                    best[slot] = Some(pass);
                }
            }
        }
        for (slot, name) in [(0usize, off_name), (1usize, on_name)] {
            // verify: allow(no_panics) — every slot was filled above
            let (elapsed, outcome_ns, events, dropped) = best[slot].take().expect("pass ran");
            runs.push(ObsBenchRun {
                name,
                txns: iters as u64,
                elapsed,
                lock_wait_ns: (0.0, 0.0, 0.0),
                commit_ns: percentiles(outcome_ns),
                events_recorded: events,
                events_dropped: dropped,
            });
        }
    }
    runs
}

/// The tracing overhead of an `-on` cell relative to its `-off`
/// sibling, as a fraction (0.03 = 3%), or `None` when either cell is
/// missing or degenerate.
pub fn e18_overhead(runs: &[ObsBenchRun], off: &str, on: &str) -> Option<f64> {
    let wall = |name: &str| -> Option<f64> {
        runs.iter()
            .find(|r| r.name == name)
            .map(|r| r.elapsed.as_secs_f64())
            .filter(|s| *s > 0.0)
    };
    Some(wall(on)? / wall(off)? - 1.0)
}

/// A small dedicated traced pass (both protocols on one hub) whose
/// merged fleet trace is the E18 artifact: per-node lanes for the
/// coordinator and all [`NODES`] participants, cross-node flow edges
/// for every PREPARE and decide fan-out.
pub fn e18_merged_trace() -> String {
    let nodes: Vec<Arc<ParticipantNode>> = (0..NODES)
        .map(|_| Arc::new(ParticipantNode::open(Config::in_memory()).expect("open node")))
        .collect();
    let hub = Obs::shared();
    hub.enable_tracing(1 << 14);
    for n in &nodes {
        n.db().obs().enable_tracing(1 << 14);
    }
    let transport = Arc::new(ChannelTransport::new(nodes).with_obs(Arc::clone(&hub)));
    let stage = |gid: u64| -> GlobalTxn {
        let mut g = GlobalTxn::new(gid);
        for i in 0..transport.nodes() {
            let db = transport.node(i).db();
            let oid = db.new_oid();
            let t = db
                .initiate(move |ctx| ctx.write(oid, gid.to_le_bytes().to_vec()))
                .expect("initiate");
            db.begin(t).expect("begin");
            db.wait(t).expect("wait");
            g.add_member(i as u32, t);
        }
        g
    };

    let g = stage(1);
    let d = TwoPhase::new(transport.clone(), Arc::new(CoordLog::in_memory()))
        .with_obs(CoordObs::new(COORD_NODE, Arc::clone(&hub)))
        .commit(&g)
        .expect("2pc commit");
    assert_eq!(d, Decision::Commit);
    let g = stage(2);
    let acceptors: Vec<Arc<Acceptor>> = (0..3).map(|_| Arc::new(Acceptor::new())).collect();
    let d = PaxosCommit::new(transport.clone(), acceptors)
        .with_obs(CoordObs::new(COORD_NODE, Arc::clone(&hub)))
        .commit(&g)
        .expect("paxos commit");
    assert_eq!(d, Decision::Commit);

    let mut graphs = vec![CausalGraph::from_node_events(COORD_NODE, &hub.trace())];
    for i in 0..transport.nodes() {
        graphs.push(CausalGraph::from_node_events(
            i as u32,
            &transport.node(i).db().obs().trace(),
        ));
    }
    let fleet = CausalGraph::merge(graphs);
    assert!(
        !fleet.flows.is_empty(),
        "E18 artifact must contain cross-node flows"
    );
    chrome::render_fleet(&fleet)
}

/// Format already-measured runs as the E18 table.
pub fn e18_table(runs: &[ObsBenchRun]) -> Table {
    let mut table = Table::new(
        "E18: distributed-commit observability overhead",
        "uncontended global txns over an in-process 3-node cluster, 50us link delay (fast LAN); outcome = stage -> decision everywhere (as E17); each cell is the best of 4 interleaved passes; overhead = on/off wall-time ratio - 1 (target < 5%)",
    )
    .headers(&[
        "cell",
        "txns",
        "throughput",
        "outcome p50/p99",
        "events (dropped)",
        "overhead",
    ]);
    for r in runs {
        let (c50, _, c99) = r.commit_ns;
        let overhead = if let Some(off) = r.name.strip_suffix("-trace-on") {
            e18_overhead(runs, &format!("{off}-trace-off"), r.name)
                .map(|f| format!("{:+.1}%", f * 100.0))
                .unwrap_or_else(|| "-".into())
        } else {
            "baseline".into()
        };
        table.row(vec![
            r.name.into(),
            r.txns.to_string(),
            fmt_rate(r.txns, r.elapsed),
            format!(
                "{} / {}",
                fmt_duration(Duration::from_nanos(c50 as u64)),
                fmt_duration(Duration::from_nanos(c99 as u64)),
            ),
            format!("{} ({})", r.events_recorded, r.events_dropped),
            overhead,
        ]);
    }
    table
}

/// E18 as a harness table.
pub fn e18_dist_obs(scale: Scale) -> Table {
    e18_table(&e18_dist_obs_runs(scale, None))
}

#[cfg(test)]
mod tests {
    use super::*;
    use asset_trace::json;

    #[test]
    fn sweep_measures_both_protocols_with_and_without_tracing() {
        let runs = e18_dist_obs_runs(Scale::quick(), Some(4));
        assert_eq!(runs.len(), 4);
        for r in &runs {
            assert_eq!(r.txns, 4, "{}: honored the txns override", r.name);
            assert!(r.commit_ns.2 >= r.commit_ns.0, "{}: p99 >= p50", r.name);
        }
        let by = |name: &str| runs.iter().find(|r| r.name == name).expect("cell");
        // off cells recorded nothing; on cells filled the hub ring
        assert_eq!(by("dist-2pc-trace-off").events_recorded, 0);
        assert!(by("dist-2pc-trace-on").events_recorded > 0);
        assert!(by("dist-paxos-trace-on").events_recorded > 0);
        // overhead is computable for both protocols (its magnitude is a
        // release-build property; here only the plumbing is asserted)
        assert!(e18_overhead(&runs, "dist-2pc-trace-off", "dist-2pc-trace-on").is_some());
        assert!(e18_overhead(&runs, "dist-paxos-trace-off", "dist-paxos-trace-on").is_some());
        let json_doc = super::super::bench_obs_json(&runs);
        assert!(json_doc.contains("\"name\": \"dist-paxos-trace-on\""));
    }

    #[test]
    fn merged_trace_artifact_is_valid_json_with_all_lanes() {
        let trace = e18_merged_trace();
        let doc = json::parse(&trace).expect("artifact parses");
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        // a process-name metadata record per lane: coordinator + NODES
        let lanes = events
            .iter()
            .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("process_name"))
            .count();
        assert_eq!(lanes, NODES + 1, "one lane per node plus the coordinator");
        // cross-node flows render as s/f pairs on the asset-flow category
        let starts = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("s"))
            .count();
        let finishes = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("f"))
            .count();
        assert!(starts > 0, "flow starts present");
        assert_eq!(starts, finishes, "every flow start has its finish");
    }
}

//! E3 (nested), E4 (sagas), E8 (workflow), E11 (contingent).

use super::Scale;
use crate::table::{fmt_duration, Table};
use crate::workload::{enc_i64, setup_counters, Rng};
use asset_core::{Database, TxnCtx};
use asset_models::workflow::travel::{run_x_conference, TravelWorld};
use asset_models::{
    required_subtransaction, run_atomic, run_contingent, Saga, SagaOutcome, WorkflowOutcome,
};
use std::time::{Duration, Instant};

/// E3 — nested transactions (§3.1.4): overhead of nesting (permit +
/// delegate + child thread per level) vs an equivalent flat transaction,
/// across depth and fanout; plus child-abort containment cost.
pub fn e3_nested(scale: Scale) -> Table {
    let mut table = Table::new(
        "E3: nested transaction overhead",
        "nested (1 child per level / fanout children) vs flat transaction doing the same writes",
    )
    .headers(&["shape", "writes", "flat", "nested", "overhead"]);

    // depth sweep: a chain of subtransactions, one write each
    for depth in [1usize, 2, 4, 6] {
        let iters = scale.n(40);
        let db = Database::in_memory();
        let oids = setup_counters(&db, depth, 0);

        let o2 = oids.clone();
        let flat = time_avg(iters, || {
            let o = o2.clone();
            assert!(run_atomic(&db, move |ctx| {
                for oid in &o {
                    ctx.write(*oid, enc_i64(1))?;
                }
                Ok(())
            })
            .unwrap());
        });

        let o2 = oids.clone();
        let nested = time_avg(iters, || {
            let o = o2.clone();
            fn descend(ctx: &TxnCtx, oids: &[asset_common::Oid]) -> asset_common::Result<()> {
                let Some((first, rest)) = oids.split_first() else {
                    return Ok(());
                };
                let first = *first;
                let rest = rest.to_vec();
                required_subtransaction(ctx, move |c| {
                    c.write(first, enc_i64(2))?;
                    descend(c, &rest)
                })
            }
            assert!(run_atomic(&db, move |ctx| descend(ctx, &o)).unwrap());
        });

        table.row(vec![
            format!("depth {depth}"),
            depth.to_string(),
            fmt_duration(flat),
            fmt_duration(nested),
            format!("{:.1}x", nested.as_secs_f64() / flat.as_secs_f64()),
        ]);
    }

    // fanout sweep: root with f children, one write each
    for fanout in [1usize, 2, 4, 8] {
        let iters = scale.n(40);
        let db = Database::in_memory();
        let oids = setup_counters(&db, fanout, 0);

        let o2 = oids.clone();
        let flat = time_avg(iters, || {
            let o = o2.clone();
            assert!(run_atomic(&db, move |ctx| {
                for oid in &o {
                    ctx.write(*oid, enc_i64(1))?;
                }
                Ok(())
            })
            .unwrap());
        });

        let o2 = oids.clone();
        let nested = time_avg(iters, || {
            let o = o2.clone();
            assert!(run_atomic(&db, move |ctx| {
                for oid in &o {
                    let oid = *oid;
                    required_subtransaction(ctx, move |c| c.write(oid, enc_i64(2)))?;
                }
                Ok(())
            })
            .unwrap());
        });

        table.row(vec![
            format!("fanout {fanout}"),
            fanout.to_string(),
            fmt_duration(flat),
            fmt_duration(nested),
            format!("{:.1}x", nested.as_secs_f64() / flat.as_secs_f64()),
        ]);
    }
    table
}

/// E4 — sagas (§3.1.6): saga vs one long flat transaction under
/// contention for a hot object, and compensation cost vs abort position.
pub fn e4_sagas(scale: Scale) -> Table {
    let mut table = Table::new(
        "E4: sagas vs long transactions; compensation cost",
        "K workers × n-step chains over a hot object (1ms think/step): saga releases per step, flat holds to the end; then compensation cost vs abort position",
    )
    .headers(&["mode", "param", "wall/mean", "note"]);

    // contention comparison: each step touches the hot object + a private
    // object, with think time. Sagas commit per step (hot lock released
    // each step); one flat transaction holds the hot lock across all steps.
    let steps = 6usize;
    let workers = 4usize;
    let think = Duration::from_millis(1);
    for use_saga in [false, true] {
        let db = Database::in_memory();
        let hot = setup_counters(&db, 1, 0)[0];
        let privates = setup_counters(&db, workers * steps, 0);
        let elapsed = crate::workload::parallel_time(workers, |w| {
            // each step: private work with think time, then a brief touch
            // of the hot object. A saga releases the hot lock at each step
            // commit; the flat transaction acquires it at step 1 and holds
            // it across every later step's think time.
            if use_saga {
                let mut saga = Saga::new();
                for s in 0..steps {
                    let private = privates[w * steps + s];
                    saga = saga.step(
                        format!("s{s}"),
                        move |ctx: &TxnCtx| {
                            ctx.write(private, enc_i64(1))?;
                            std::thread::sleep(think);
                            ctx.update(hot, |cur| {
                                enc_i64(crate::workload::dec_i64(&cur.unwrap()) + 1)
                            })
                        },
                        move |ctx: &TxnCtx| {
                            ctx.update(hot, |cur| {
                                enc_i64(crate::workload::dec_i64(&cur.unwrap()) - 1)
                            })
                        },
                    );
                }
                let (outcome, _) = saga.run(&db).unwrap();
                assert_eq!(outcome, SagaOutcome::Committed);
            } else {
                let privs: Vec<_> = (0..steps).map(|s| privates[w * steps + s]).collect();
                assert!(run_atomic(&db, move |ctx| {
                    for private in &privs {
                        ctx.write(*private, enc_i64(1))?;
                        std::thread::sleep(think);
                        ctx.update(hot, |cur| {
                            enc_i64(crate::workload::dec_i64(&cur.unwrap()) + 1)
                        })?;
                    }
                    Ok(())
                })
                .unwrap());
            }
        });
        table.row(vec![
            if use_saga {
                "saga (per-step commit)"
            } else {
                "single long txn"
            }
            .into(),
            format!("{workers} workers x {steps} steps"),
            fmt_duration(elapsed),
            if use_saga {
                "hot lock released each step"
            } else {
                "hot lock held to commit"
            }
            .into(),
        ]);
    }

    // compensation cost vs abort position in a length-n saga
    let n = 16usize;
    for abort_at in [1usize, 4, 8, 15] {
        let iters = scale.n(30);
        let db = Database::in_memory();
        let oids = setup_counters(&db, n, 0);
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let mut saga = Saga::new();
            for (s, oid) in oids.iter().enumerate().take(n) {
                let oid = *oid;
                let fails = s == abort_at;
                saga = saga.step(
                    format!("s{s}"),
                    move |ctx: &TxnCtx| {
                        if fails {
                            return ctx.abort_self();
                        }
                        ctx.write(oid, enc_i64(1))
                    },
                    move |ctx: &TxnCtx| ctx.write(oid, enc_i64(0)),
                );
            }
            let start = Instant::now();
            let (outcome, trace) = saga.run(&db).unwrap();
            total += start.elapsed();
            assert_eq!(
                outcome,
                SagaOutcome::Compensated {
                    failed_step: abort_at
                }
            );
            assert_eq!(trace.events.len(), 2 * abort_at);
            db.retire_terminated();
        }
        table.row(vec![
            "compensation".into(),
            format!("abort at step {abort_at}/{n}"),
            fmt_duration(total / iters as u32),
            format!("{} compensating txns", abort_at),
        ]);
    }
    table
}

/// E8 — the appendix workflow under failure injection: availability
/// scenarios sweep; success rate, fallback rate, compensation count.
pub fn e8_workflow(scale: Scale) -> Table {
    let mut table = Table::new(
        "E8: X_conference workflow under failure injection",
        "runs of the appendix travel activity against randomized inventory; per-scenario outcome mix",
    )
    .headers(&["scenario", "runs", "succeeded", "fallback flights", "failed", "mean latency"]);

    let runs = scale.n(200);
    let scenarios: &[(&str, [u64; 6])] = &[
        ("abundant (all=runs)", [u64::MAX; 6]),
        ("delta scarce", [0, u64::MAX, u64::MAX, u64::MAX, 4, 4]),
        ("hotel tight (50%)", [u64::MAX, u64::MAX, u64::MAX, 0, 4, 4]),
        ("cars gone", [u64::MAX, u64::MAX, u64::MAX, u64::MAX, 0, 0]),
    ];
    for (name, caps) in scenarios {
        let db = Database::in_memory();
        let cap = |c: u64, frac: f64| -> u64 {
            if c == u64::MAX {
                runs as u64
            } else if c == 0 && frac > 0.0 {
                ((runs as f64) * frac) as u64
            } else {
                c
            }
        };
        // "hotel tight": half the runs' worth of rooms; others: 0 stays 0
        let hotel_frac = if name.starts_with("hotel") { 0.5 } else { 0.0 };
        let delta_frac = 0.0;
        let world = TravelWorld::setup(
            &db,
            cap(caps[0], delta_frac),
            cap(caps[1], 0.0),
            cap(caps[2], 0.0),
            cap(caps[3], hotel_frac),
            cap(caps[4], 0.0),
            cap(caps[5], 0.0),
        )
        .unwrap();
        let mut succeeded = 0u64;
        let mut fallback = 0u64;
        let mut failed = 0u64;
        let start = Instant::now();
        for _ in 0..runs {
            let (outcome, results) = run_x_conference(&db, &world).unwrap();
            match outcome {
                WorkflowOutcome::Completed => {
                    succeeded += 1;
                    if results[0].chosen.as_deref() != Some("Delta") {
                        fallback += 1;
                    }
                }
                WorkflowOutcome::Failed { .. } => failed += 1,
            }
            db.retire_terminated();
        }
        let elapsed = start.elapsed();
        table.row(vec![
            name.to_string(),
            runs.to_string(),
            succeeded.to_string(),
            fallback.to_string(),
            failed.to_string(),
            fmt_duration(elapsed / runs as u32),
        ]);
    }
    table
}

/// E11 — contingent transactions (§3.1.3): alternatives tried vs failure
/// probability, and the cost of the cascade.
pub fn e11_contingent(scale: Scale) -> Table {
    let mut table = Table::new(
        "E11: contingent transaction cascade",
        "k alternatives, each failing with probability p; attempts used and latency",
    )
    .headers(&[
        "alternatives",
        "p(fail)",
        "runs",
        "mean attempts",
        "none viable",
        "mean latency",
    ]);

    let runs = scale.n(300);
    for k in [2usize, 4, 8] {
        for p in [0.2f64, 0.5, 0.8] {
            let db = Database::in_memory();
            let sink = setup_counters(&db, 1, 0)[0];
            let mut rng = Rng::new((k as u64) << 8 | (p * 10.0) as u64);
            let mut attempts_total = 0u64;
            let mut exhausted = 0u64;
            let start = Instant::now();
            for _ in 0..runs {
                let fail_flags: Vec<bool> = (0..k).map(|_| rng.chance(p)).collect();
                let alternatives = fail_flags
                    .iter()
                    .map(|&fails| {
                        Box::new(move |ctx: &TxnCtx| {
                            if fails {
                                ctx.abort_self::<()>().map(|_| ())
                            } else {
                                ctx.write(sink, enc_i64(1))
                            }
                        })
                            as Box<dyn FnOnce(&TxnCtx) -> asset_common::Result<()> + Send>
                    })
                    .collect();
                match run_contingent(&db, alternatives).unwrap() {
                    Some(i) => attempts_total += i as u64 + 1,
                    None => {
                        attempts_total += k as u64;
                        exhausted += 1;
                    }
                }
                db.retire_terminated();
            }
            let elapsed = start.elapsed();
            table.row(vec![
                k.to_string(),
                format!("{p:.1}"),
                runs.to_string(),
                format!("{:.2}", attempts_total as f64 / runs as f64),
                exhausted.to_string(),
                fmt_duration(elapsed / runs as u32),
            ]);
        }
    }
    table
}

fn time_avg(iters: usize, mut f: impl FnMut()) -> Duration {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed() / iters as u32
}

//! E2 (permits vs strict 2PL), E6 (cursor stability), E7 (split/join
//! early release + delegation cost).

use super::Scale;
use crate::table::{fmt_duration, fmt_rate, Table};
use crate::workload::{enc_i64, setup_counters};
use asset_common::{Config, ObSet, OpSet};
use asset_core::Database;
use asset_models::split;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// E2 — cooperating writers on shared objects: strict 2PL (each writer is
/// a transaction holding its locks to commit; others block) vs ASSET
/// permits (writers suspend each other's locks and interleave).
///
/// Expected shape: with permits, total wall time stays nearly flat as
/// writers are added; under 2PL it grows linearly (serial execution), so
/// permit speedup grows with the writer count.
pub fn e2_permits_vs_2pl(scale: Scale) -> Table {
    let mut table = Table::new(
        "E2: cooperating writers — permits vs strict 2PL",
        "N long transactions each appending to the same shared object; 2PL serializes, permits interleave",
    )
    .headers(&["writers", "writes/txn", "2PL wall", "permit wall", "speedup"]);

    for writers in [2usize, 4, 8] {
        let writes = scale.n(60);
        // --- strict 2PL: writers run one after another because each holds
        // the write lock until commit. Sequential begin/commit gives the
        // canonical serial baseline without deadlock noise.
        let db = Database::in_memory();
        let shared = setup_counters(&db, 1, 0)[0];
        let start = Instant::now();
        for w in 0..writers {
            let ok = db
                .run(move |ctx| {
                    for i in 0..writes {
                        ctx.write(shared, enc_i64((w * writes + i) as i64))?;
                        // long transaction: think time between updates
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    Ok(())
                })
                .unwrap();
            assert!(ok);
        }
        let serial = start.elapsed();

        // --- permits: all writers run concurrently, each permitted to
        // conflict with the others (wildcard permits), commits chained via
        // sequential commit calls.
        let db = Database::in_memory();
        let shared = setup_counters(&db, 1, 0)[0];
        let tids: Vec<_> = (0..writers)
            .map(|w| {
                db.initiate(move |ctx| {
                    for i in 0..writes {
                        ctx.write(shared, enc_i64((w * writes + i) as i64))?;
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    Ok(())
                })
                .unwrap()
            })
            .collect();
        // every writer permits every other (wildcard grantee)
        for t in &tids {
            db.permit(*t, None, ObSet::one(shared), OpSet::ALL).unwrap();
        }
        let start = Instant::now();
        db.begin_many(&tids).unwrap();
        for t in &tids {
            assert!(db.commit(*t).unwrap());
        }
        let coop = start.elapsed();

        table.row(vec![
            writers.to_string(),
            writes.to_string(),
            fmt_duration(serial),
            fmt_duration(coop),
            format!("{:.1}x", serial.as_secs_f64() / coop.as_secs_f64()),
        ]);
    }
    table
}

/// E6 — cursor stability (§3.2.2): writer progress while a scanner walks
/// the relation, with and without the cursor releasing visited records.
///
/// Expected shape: under repeatable read the writer commits almost nothing
/// until the scan ends (lock timeouts); under cursor stability writer
/// throughput is close to its uncontended rate.
pub fn e6_cursor_stability(scale: Scale) -> Table {
    let mut table = Table::new(
        "E6: cursor stability vs repeatable read",
        "1 scanner over R records (1ms think time per record) + 1 writer updating random visited records",
    )
    .headers(&["mode", "records", "writer commits", "writer aborts", "scan time"]);

    let records = scale.n(40);
    for cursor_stability in [false, true] {
        let db =
            Database::open(Config::in_memory().with_lock_timeout(Some(Duration::from_millis(10))))
                .unwrap()
                .0;
        let oids = Arc::new(setup_counters(&db, records, 0));
        let scan_done = Arc::new(AtomicBool::new(false));
        let commits = Arc::new(AtomicU64::new(0));
        let aborts = Arc::new(AtomicU64::new(0));

        let scan_oids = Arc::clone(&oids);
        let scanner = db
            .initiate(move |ctx| {
                for oid in scan_oids.iter() {
                    ctx.read(*oid)?;
                    if cursor_stability {
                        // release the visited record to writers
                        ctx.permit(ctx.id(), None, ObSet::one(*oid), OpSet::WRITE)?;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                Ok(())
            })
            .unwrap();

        let dbw = db.clone();
        let w_oids = Arc::clone(&oids);
        let w_done = Arc::clone(&scan_done);
        let w_commits = Arc::clone(&commits);
        let w_aborts = Arc::clone(&aborts);
        let writer = std::thread::spawn(move || {
            let mut rng = crate::workload::Rng::new(99);
            while !w_done.load(Ordering::SeqCst) {
                // update a record near the front (likely already visited)
                let idx = (rng.below(w_oids.len() as u64 / 2 + 1)) as usize;
                let oid = w_oids[idx];
                match dbw.run(move |ctx| ctx.write(oid, enc_i64(1))) {
                    Ok(true) => {
                        w_commits.fetch_add(1, Ordering::SeqCst);
                    }
                    _ => {
                        w_aborts.fetch_add(1, Ordering::SeqCst);
                    }
                }
                dbw.retire_terminated();
            }
        });

        let start = Instant::now();
        db.begin(scanner).unwrap();
        assert!(db.commit(scanner).unwrap());
        let scan_time = start.elapsed();
        scan_done.store(true, Ordering::SeqCst);
        writer.join().unwrap();

        table.row(vec![
            if cursor_stability {
                "cursor stability"
            } else {
                "repeatable read"
            }
            .into(),
            records.to_string(),
            commits.load(Ordering::SeqCst).to_string(),
            aborts.load(Ordering::SeqCst).to_string(),
            fmt_duration(scan_time),
        ]);
    }
    table
}

/// E7 — split transactions (§3.1.5): a long transaction finishes with a
/// hot object early; splitting the hot object off and committing the split
/// releases it to waiters long before the long transaction ends. Also:
/// raw delegation cost vs delegated-set size.
pub fn e7_split_early_release(scale: Scale) -> Table {
    let mut table = Table::new(
        "E7: split/join — early release & delegation cost",
        "waiter latency on a hot object held by a long txn, with/without split; delegate() cost vs set size",
    )
    .headers(&["mode", "param", "measure", "value"]);

    let tail_ms = 25u64.max((scale.n(100) / 4) as u64);
    for use_split in [false, true] {
        let db = Database::in_memory();
        let oids = setup_counters(&db, 2, 0);
        let (hot, cold) = (oids[0], oids[1]);
        let long = db
            .initiate(move |ctx| {
                ctx.write(hot, enc_i64(1))?; // hot work done early
                if use_split {
                    let s = split(ctx, ObSet::one(hot), |_| Ok(()))?;
                    ctx.commit(s)?; // releases the hot object now
                }
                // long tail of unrelated work
                std::thread::sleep(Duration::from_millis(tail_ms));
                ctx.write(cold, enc_i64(2))
            })
            .unwrap();
        db.begin(long).unwrap();
        // commit the long transaction as soon as it completes (locks are
        // held until commit, so the waiter depends on this)
        let dbc = db.clone();
        let committer = std::thread::spawn(move || {
            assert!(dbc.commit(long).unwrap());
        });
        std::thread::sleep(Duration::from_millis(2));
        // the waiter wants the hot object
        let start = Instant::now();
        let ok = db.run(move |ctx| ctx.write(hot, enc_i64(9))).unwrap();
        let waiter_latency = start.elapsed();
        assert!(ok);
        committer.join().unwrap();
        table.row(vec![
            if use_split {
                "with split"
            } else {
                "monolithic"
            }
            .into(),
            format!("tail {tail_ms} ms"),
            "waiter latency".into(),
            fmt_duration(waiter_latency),
        ]);
    }

    // delegation cost vs number of objects
    for n in [1usize, 10, 100, 1000] {
        let db = Database::in_memory();
        let oids = setup_counters(&db, n, 0);
        let o2 = oids.clone();
        let receiver = db.initiate(|_| Ok(())).unwrap();
        let worker = db
            .initiate(move |ctx| {
                for oid in &o2 {
                    ctx.write(*oid, enc_i64(1))?;
                }
                Ok(())
            })
            .unwrap();
        db.begin(worker).unwrap();
        db.wait(worker).unwrap();
        let start = Instant::now();
        db.delegate(worker, receiver, None).unwrap();
        let elapsed = start.elapsed();
        db.begin(receiver).unwrap();
        assert!(db.commit(receiver).unwrap());
        assert!(db.commit(worker).unwrap());
        table.row(vec![
            "delegate-all".into(),
            format!("{n} objects"),
            "delegate() time".into(),
            format!(
                "{} ({})",
                fmt_duration(elapsed),
                fmt_rate(n as u64, elapsed)
            ),
        ]);
    }
    table
}

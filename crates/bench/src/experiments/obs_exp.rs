//! E14 — observability under load: throughput plus tail latency
//! (p50/p95/p99 lock wait and commit) for three workload shapes, measured
//! through [`MetricsSnapshot::delta`] between per-run snapshots rather
//! than ad-hoc counter subtraction. The harness binary also serializes
//! the runs as `BENCH_obs.json` (schema `asset-bench-obs/v1`) so CI can
//! track the numbers across commits.

use super::Scale;
use crate::table::{fmt_duration, fmt_rate, Table};
use crate::workload::{enc_i64, setup_counters};
use asset_common::{ObSet, OpSet};
use asset_core::Database;
use std::fmt::Write as _;
use std::time::Duration;

/// One measured run: a named workload plus the metric deltas it produced.
#[derive(Clone, Debug)]
pub struct ObsBenchRun {
    /// Workload name (stable key in `BENCH_obs.json`).
    pub name: &'static str,
    /// Transactions driven to a terminal state.
    pub txns: u64,
    /// Wall-clock time for the run.
    pub elapsed: Duration,
    /// Lock-wait latency percentiles over this run only, in ns
    /// (p50, p95, p99).
    pub lock_wait_ns: (f64, f64, f64),
    /// End-to-end commit latency percentiles over this run only, in ns.
    pub commit_ns: (f64, f64, f64),
    /// Events stored in the ring during the run.
    pub events_recorded: u64,
    /// Events dropped by the ring during the run.
    pub events_dropped: u64,
}

impl ObsBenchRun {
    /// Committed transactions per second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.txns as f64 / self.elapsed.as_secs_f64()
        }
    }
}

fn measure(
    name: &'static str,
    db: &Database,
    txns: u64,
    work: impl FnOnce() -> Duration,
) -> ObsBenchRun {
    let before = db.metrics_snapshot();
    let elapsed = work();
    let d = db.metrics_snapshot().delta(&before);
    ObsBenchRun {
        name,
        txns,
        elapsed,
        lock_wait_ns: d.lock_wait_ns.percentiles(),
        commit_ns: d.commit_ns.percentiles(),
        events_recorded: d.counters.events_recorded,
        events_dropped: d.events_dropped,
    }
}

/// Run the three E14 workloads and return the measured runs.
pub fn e14_observability_runs(scale: Scale) -> Vec<ObsBenchRun> {
    let mut runs = Vec::new();

    // uncontended: disjoint single-write transactions across 4 threads
    {
        let db = Database::in_memory();
        db.obs().enable_tracing(1 << 16);
        let threads = 4usize;
        let per_thread = scale.n(500);
        let oids = setup_counters(&db, threads, 0);
        runs.push(measure(
            "uncontended",
            &db,
            (threads * per_thread) as u64,
            || {
                crate::workload::parallel_time(threads, |i| {
                    let oid = oids[i];
                    for v in 0..per_thread {
                        assert!(db
                            .run(move |ctx| ctx.write(oid, enc_i64(v as i64)))
                            .unwrap());
                    }
                })
            },
        ));
    }

    // hot-set: 8 threads all updating the same 4 objects (real lock waits)
    {
        let db = Database::in_memory();
        db.obs().enable_tracing(1 << 16);
        let threads = 8usize;
        let per_thread = scale.n(150);
        let oids = setup_counters(&db, 4, 0);
        runs.push(measure(
            "hot-set",
            &db,
            (threads * per_thread) as u64,
            || {
                crate::workload::parallel_time(threads, |i| {
                    for v in 0..per_thread {
                        let oid = oids[(i + v) % oids.len()];
                        assert!(db
                            .run(move |ctx| ctx.write(oid, enc_i64(v as i64)))
                            .unwrap());
                    }
                })
            },
        ));
    }

    // delegation-mix: §2.1 permit + delegate handoffs, serially
    {
        let db = Database::in_memory();
        db.obs().enable_tracing(1 << 16);
        let n = scale.n(200);
        let o = db.new_oid();
        assert!(db.run(move |ctx| ctx.write(o, enc_i64(0))).unwrap());
        runs.push(measure("delegation-mix", &db, 2 * n as u64, || {
            let start = std::time::Instant::now();
            for v in 0..n {
                let t1 = db
                    .initiate(move |ctx| ctx.write(o, enc_i64(v as i64)))
                    .unwrap();
                db.begin(t1).unwrap();
                assert!(db.wait(t1).unwrap());
                let t2 = db.initiate(|_| Ok(())).unwrap();
                db.begin(t2).unwrap();
                db.permit(t1, Some(t2), ObSet::one(o), OpSet::ALL).unwrap();
                db.delegate(t1, t2, None).unwrap();
                assert!(db.commit(t1).unwrap());
                assert!(db.commit(t2).unwrap());
            }
            start.elapsed()
        }));
    }

    runs
}

/// E14 as a harness table.
pub fn e14_observability(scale: Scale) -> Table {
    e14_table(&e14_observability_runs(scale))
}

/// Format already-measured runs as the E14 table (so the harness binary
/// can measure once and both print and serialize).
pub fn e14_table(runs: &[ObsBenchRun]) -> Table {
    let mut table = Table::new(
        "E14: observability under load",
        "throughput and tail latency per workload, via MetricsSnapshot::delta between per-run snapshots",
    )
    .headers(&[
        "workload",
        "txns",
        "throughput",
        "lock wait p50/p95/p99",
        "commit p50/p95/p99",
        "events (dropped)",
    ]);
    for r in runs {
        let (lw50, lw95, lw99) = r.lock_wait_ns;
        let (c50, c95, c99) = r.commit_ns;
        table.row(vec![
            r.name.into(),
            r.txns.to_string(),
            fmt_rate(r.txns, r.elapsed),
            format!(
                "{} / {} / {}",
                fmt_duration(Duration::from_nanos(lw50 as u64)),
                fmt_duration(Duration::from_nanos(lw95 as u64)),
                fmt_duration(Duration::from_nanos(lw99 as u64)),
            ),
            format!(
                "{} / {} / {}",
                fmt_duration(Duration::from_nanos(c50 as u64)),
                fmt_duration(Duration::from_nanos(c95 as u64)),
                fmt_duration(Duration::from_nanos(c99 as u64)),
            ),
            format!("{} ({})", r.events_recorded, r.events_dropped),
        ]);
    }
    table
}

/// Serialize runs as the `asset-bench-obs/v1` JSON document the harness
/// writes to `BENCH_obs.json`.
pub fn bench_obs_json(runs: &[ObsBenchRun]) -> String {
    let mut out = String::from("{\n  \"schema\": \"asset-bench-obs/v1\",\n  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let sep = if i + 1 == runs.len() { "" } else { "," };
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(out, "      \"txns\": {},", r.txns);
        let _ = writeln!(out, "      \"wall_ns\": {},", r.elapsed.as_nanos());
        let _ = writeln!(
            out,
            "      \"throughput_txn_per_s\": {:.1},",
            r.throughput()
        );
        let _ = writeln!(out, "      \"lock_wait_p99_ns\": {:.1},", r.lock_wait_ns.2);
        let _ = writeln!(out, "      \"commit_p99_ns\": {:.1},", r.commit_ns.2);
        let _ = writeln!(out, "      \"events_recorded\": {},", r.events_recorded);
        let _ = writeln!(out, "      \"events_dropped\": {}", r.events_dropped);
        let _ = writeln!(out, "    }}{sep}");
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_measure_and_serialize() {
        let runs = e14_observability_runs(Scale::quick());
        assert_eq!(runs.len(), 3);
        for r in &runs {
            assert!(r.txns > 0);
            assert!(r.throughput() > 0.0);
            assert!(r.events_recorded > 0, "{}: tracing was on", r.name);
            // the delta is per-run: commit latencies were observed in
            // every workload (commit_ns is gated on tracing, which is on)
            assert!(r.commit_ns.2 >= r.commit_ns.0, "{}: p99 >= p50", r.name);
        }
        let json = bench_obs_json(&runs);
        assert!(json.contains("\"schema\": \"asset-bench-obs/v1\""));
        assert!(json.contains("\"name\": \"delegation-mix\""));
        // no trailing comma before the closing bracket
        assert!(!json.contains(",\n  ]"));
    }
}

//! The E1–E18 experiment suite (see `EXPERIMENTS.md` at the repo root).
//!
//! Each experiment is a function returning a [`Table`]; the
//! `experiments` binary prints them all. A [`Scale`] knob shrinks the
//! workloads so the whole suite can run as a smoke test in debug builds.

mod ablations;
mod concurrency;
mod coord_exp;
mod crashes;
mod dist_exp;
mod exec_exp;
mod ledger_exp;
mod models_exp;
mod obs_exp;
mod primitives;

pub use ablations::e12_ablations;
pub use concurrency::{e2_permits_vs_2pl, e6_cursor_stability, e7_split_early_release};
pub use coord_exp::{e17_coord, e17_coord_runs, e17_table};
pub use crashes::e13_crash_matrix;
pub use dist_exp::{e18_dist_obs, e18_dist_obs_runs, e18_merged_trace, e18_overhead, e18_table};
pub use exec_exp::{e15_executor, e15_executor_runs, e15_table, E15_BASELINE};
pub use ledger_exp::{e16_ledger, e16_ledger_runs, e16_table, E16_FAULT_CELL};
pub use models_exp::{e11_contingent, e3_nested, e4_sagas, e8_workflow};
pub use obs_exp::{
    bench_obs_json, e14_observability, e14_observability_runs, e14_table, ObsBenchRun,
};
pub use primitives::{
    e10_recovery, e1_primitives, e5_group_commit, e9_structures, e9b_stripe_contention,
    e9b_stripe_contention_traced,
};

use crate::Table;

/// Workload scale for the suite.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Multiplier on iteration counts (1.0 = harness defaults).
    pub factor: f64,
}

impl Scale {
    /// Full harness scale.
    pub fn full() -> Scale {
        Scale { factor: 1.0 }
    }

    /// Smoke-test scale (used by `cargo test` over this crate).
    pub fn quick() -> Scale {
        Scale { factor: 0.05 }
    }

    /// Scale an iteration count, keeping a floor so nothing degenerates.
    pub fn n(&self, base: usize) -> usize {
        ((base as f64 * self.factor) as usize).max(2)
    }
}

/// Run every experiment at `scale`; returns the tables in order.
pub fn run_all(scale: Scale) -> Vec<Table> {
    vec![
        e1_primitives(scale),
        e2_permits_vs_2pl(scale),
        e3_nested(scale),
        e4_sagas(scale),
        e5_group_commit(scale),
        e6_cursor_stability(scale),
        e7_split_early_release(scale),
        e8_workflow(scale),
        e9_structures(scale),
        e9b_stripe_contention(scale),
        e10_recovery(scale),
        e11_contingent(scale),
        e12_ablations(scale),
        e13_crash_matrix(scale),
        e14_observability(scale),
        e15_executor(scale),
        e16_ledger(scale),
        e17_coord(scale),
        e18_dist_obs(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    // Smoke tests: every experiment runs end to end at quick scale and
    // produces a non-empty table. (Shapes are asserted where they are
    // deterministic; timing magnitudes are not.)
    #[test]
    fn all_experiments_produce_tables() {
        let tables = run_all(Scale::quick());
        assert_eq!(tables.len(), 19);
        for t in &tables {
            assert!(!t.headers.is_empty(), "{} has headers", t.title);
            assert!(!t.rows.is_empty(), "{} has rows", t.title);
            // renders without panicking
            let _ = t.to_string();
        }
    }
}

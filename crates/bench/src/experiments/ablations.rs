//! E12 — ablations of design choices DESIGN.md calls out:
//!
//! * **semantic concurrency (MLT, §5 future work) vs flat ASSET locking**
//!   on a hot escrow counter — the benefit of commutativity;
//! * **logical vs physical undo** — abort cost and, more importantly,
//!   *collateral damage*: physical before-image undo wipes later
//!   cooperative updates (the §4.2 caveat), logical undo does not;
//! * **the EOS spin latch vs the OS rwlock** (`parking_lot::RwLock`) for
//!   the short critical sections it protects.

use super::Scale;
use crate::table::{fmt_duration, fmt_rate, Table};
use crate::workload::parallel_time;
use asset_core::Database;
use asset_mlt::{run_mlt, EscrowCounter, MltOutcome, SemanticLockTable};
use asset_storage::Latch;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// E12 — ablation suite.
pub fn e12_ablations(scale: Scale) -> Table {
    let mut table = Table::new(
        "E12: ablations",
        "MLT semantic locking vs flat 2PL on a hot counter; logical vs physical undo; EOS latch vs OS rwlock",
    )
    .headers(&["ablation", "variant", "param", "result"]);

    // --- MLT vs flat locking on a hot counter --------------------------
    // K long-lived sessions each perform S increments with think time.
    // Flat: one ASSET transaction per session → the counter lock is held
    // across the whole session, serializing sessions. MLT: each increment
    // is an open-nested op; sessions interleave.
    let sessions = 4usize;
    let increments = scale.n(8).min(12);
    let think = Duration::from_millis(1);
    for use_mlt in [false, true] {
        let db = Database::in_memory();
        let counter = EscrowCounter::create(&db, 0).unwrap();
        let sem = Arc::new(SemanticLockTable::new());
        let elapsed = parallel_time(sessions, |_| {
            if use_mlt {
                let sem = Arc::clone(&sem);
                let out = run_mlt(&db, &sem, move |mlt| {
                    for _ in 0..increments {
                        counter.add(mlt, 1)?;
                        std::thread::sleep(think);
                    }
                    Ok(())
                })
                .unwrap();
                assert_eq!(out, MltOutcome::Committed);
            } else {
                let h = counter.handle();
                assert!(db
                    .run(move |ctx| {
                        for _ in 0..increments {
                            ctx.modify(h, |v| v + 1)?;
                            std::thread::sleep(think);
                        }
                        Ok(())
                    })
                    .unwrap());
            }
        });
        assert_eq!(counter.peek(&db), (sessions * increments) as i64);
        table.row(vec![
            "hot counter".into(),
            if use_mlt {
                "MLT (commuting ops)"
            } else {
                "flat 2PL"
            }
            .into(),
            format!("{sessions} sessions x {increments} incs"),
            fmt_duration(elapsed),
        ]);
    }

    // --- logical vs physical undo: collateral damage --------------------
    // t1 updates the object, t2 (cooperating via permit) updates on top
    // and commits; then t1 aborts. Physical undo installs t1's before
    // image, destroying t2's committed work. Logical undo (inverse op)
    // preserves it. We report what survives.
    {
        // physical (plain ASSET with permits)
        let db = Database::in_memory();
        let oid = db.new_oid();
        assert!(db
            .run(move |ctx| ctx.write(oid, 0i64.to_le_bytes().to_vec()))
            .unwrap());
        let t1 = db
            .initiate(move |ctx| {
                ctx.update(oid, |cur| {
                    let v = i64::from_le_bytes(cur.unwrap().try_into().unwrap());
                    (v + 10).to_le_bytes().to_vec()
                })
            })
            .unwrap();
        db.begin(t1).unwrap();
        db.wait(t1).unwrap();
        db.permit(
            t1,
            None,
            asset_common::ObSet::one(oid),
            asset_common::OpSet::ALL,
        )
        .unwrap();
        assert!(db
            .run(move |ctx| {
                ctx.update(oid, |cur| {
                    let v = i64::from_le_bytes(cur.unwrap().try_into().unwrap());
                    (v + 100).to_le_bytes().to_vec()
                })
            })
            .unwrap());
        db.abort(t1).unwrap();
        let survives = i64::from_le_bytes(db.peek(oid).unwrap().unwrap().try_into().unwrap());
        table.row(vec![
            "undo semantics".into(),
            "physical (before image)".into(),
            "t2's committed +100 after t1's abort".into(),
            format!("final = {survives} (cooperative update lost)"),
        ]);
        assert_eq!(survives, 0, "physical undo wipes the cooperative update");
    }
    {
        // logical (MLT): t1 adds 10 (parent still alive), t2 adds a
        // commuting +100 and commits, then t1 aborts — the inverse removes
        // only t1's own +10
        let db = Database::in_memory();
        let sem = Arc::new(SemanticLockTable::new());
        let counter = EscrowCounter::create(&db, 0).unwrap();
        let gate = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let g1 = Arc::clone(&gate);
        let db1 = db.clone();
        let sem1 = Arc::clone(&sem);
        let t1 = std::thread::spawn(move || {
            run_mlt(&db1, &sem1, move |mlt| {
                counter.add(mlt, 10)?;
                while !g1.load(std::sync::atomic::Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                mlt.ctx().abort_self::<()>().map(|_| ())
            })
            .unwrap()
        });
        std::thread::sleep(Duration::from_millis(20));
        let out2 = run_mlt(&db, &sem, move |mlt| counter.add(mlt, 100)).unwrap();
        assert_eq!(out2, MltOutcome::Committed);
        gate.store(true, std::sync::atomic::Ordering::SeqCst);
        let out1 = t1.join().unwrap();
        assert_eq!(out1, MltOutcome::Undone { inverses_run: 1 });
        let survives = counter.peek(&db);
        table.row(vec![
            "undo semantics".into(),
            "logical (inverse op, MLT)".into(),
            "t2's committed +100 after t1's abort".into(),
            format!("final = {survives} (cooperative update preserved)"),
        ]);
        assert_eq!(survives, 100);
    }

    // --- EOS latch vs parking_lot RwLock --------------------------------
    let n = scale.n(200_000);
    for threads in [1usize, 4] {
        let latch = Latch::new();
        let elapsed = parallel_time(threads, |_| {
            for _ in 0..n / threads {
                let _g = latch.exclusive();
            }
        });
        table.row(vec![
            "latch impl".into(),
            "EOS spin latch (X)".into(),
            format!("{threads} threads x {} acquires", n / threads),
            format!(
                "{} / acquire",
                fmt_duration(elapsed / (n as u32 / threads as u32))
            ),
        ]);

        let rw = parking_lot::RwLock::new(());
        let elapsed = parallel_time(threads, |_| {
            for _ in 0..n / threads {
                let _g = rw.write();
            }
        });
        table.row(vec![
            "latch impl".into(),
            "parking_lot RwLock (W)".into(),
            format!("{threads} threads x {} acquires", n / threads),
            format!(
                "{} / acquire",
                fmt_duration(elapsed / (n as u32 / threads as u32))
            ),
        ]);
    }

    // shared-mode throughput comparison
    let latch = Latch::new();
    let start = Instant::now();
    for _ in 0..n {
        let _g = latch.shared();
    }
    let latch_s = start.elapsed();
    let rw = parking_lot::RwLock::new(());
    let start = Instant::now();
    for _ in 0..n {
        let _g = rw.read();
    }
    let rw_s = start.elapsed();
    table.row(vec![
        "latch impl".into(),
        "S-mode, single thread".into(),
        format!("{n} acquires each"),
        format!(
            "latch {} vs rwlock {}",
            fmt_rate(n as u64, latch_s),
            fmt_rate(n as u64, rw_s)
        ),
    ]);

    table
}

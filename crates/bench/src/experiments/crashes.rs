//! E13 — the crash matrix as an experiment: for every registered
//! failpoint, crash an on-disk workload at that point, then measure what
//! restart recovery has to do (wall time, redo/undo work). Quantifies the
//! cost of crash recovery as a function of *where* the crash lands.
//!
//! The fault-injected internals need the `faults` feature; without it the
//! table carries a single placeholder row so `run_all` keeps a stable
//! shape.

use super::Scale;
use crate::table::Table;

/// E13 — crash/recover cycle per failpoint (see `tests/crash_matrix.rs`
/// for the correctness side; this measures the recovery work).
pub fn e13_crash_matrix(scale: Scale) -> Table {
    let table = Table::new(
        "E13: crash matrix",
        "per-failpoint crash/recover cycle: injected crash, then restart recovery time and redo/undo volume",
    )
    .headers(&["failpoint", "fired", "recovery", "winners", "losers", "redone", "undone"]);
    fill(table, scale)
}

#[cfg(not(feature = "faults"))]
fn fill(mut table: Table, _scale: Scale) -> Table {
    table.row(vec![
        "(build with --features faults)".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    table
}

#[cfg(feature = "faults")]
fn fill(mut table: Table, scale: Scale) -> Table {
    use crate::table::fmt_duration;
    use crate::workload::enc_i64;
    use asset_common::Config;
    use asset_core::Database;
    use asset_faults::{FaultAction, FaultRegistry, Trigger};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;
    use std::time::Instant;

    asset_faults::silence_crash_panics();

    struct TempDir(std::path::PathBuf);
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    let points: Vec<&'static str> = asset_storage::failpoints::ALL
        .iter()
        .chain(asset_core::failpoints::ALL.iter())
        .copied()
        .collect();
    let n = scale.n(100);

    for (i, point) in points.iter().enumerate() {
        let dir = TempDir(std::env::temp_dir().join(format!(
            "asset-e13-{i}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        )));
        let _ = std::fs::remove_dir_all(&dir.0);
        std::fs::create_dir_all(&dir.0).unwrap();

        let faults = Arc::new(FaultRegistry::new());
        let config = Config::on_disk(&dir.0).with_faults(Arc::clone(&faults));

        // a log worth recovering: n committed single-write transactions
        let (db, _) = Database::open(config.clone()).unwrap();
        let oids: Vec<_> = (0..n).map(|_| db.new_oid()).collect();
        for (v, oid) in oids.iter().enumerate() {
            let oid = *oid;
            assert!(db
                .run(move |ctx| ctx.write(oid, enc_i64(v as i64)))
                .unwrap());
        }

        // crash at the failpoint during one more group of work
        faults.arm(point, Trigger::Once, FaultAction::Crash);
        let _ = catch_unwind(AssertUnwindSafe(|| -> asset_common::Result<()> {
            let o = oids[0];
            let t = db.initiate(move |ctx| ctx.write(o, enc_i64(-1)))?;
            db.begin(t)?;
            db.wait(t)?;
            db.commit(t)?;
            db.checkpoint()?;
            Ok(())
        }));
        let fired = faults.fired(point) > 0;
        drop(db);

        // restart: measure recovery
        faults.reset();
        let start = Instant::now();
        let (db, report) = Database::open(config).unwrap();
        let elapsed = start.elapsed();
        drop(db);

        table.row(vec![
            (*point).into(),
            if fired { "yes".into() } else { "no".into() },
            fmt_duration(elapsed),
            report.winners.to_string(),
            report.losers.to_string(),
            report.redone.to_string(),
            report.undone.to_string(),
        ]);
    }
    table
}

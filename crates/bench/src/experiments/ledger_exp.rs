//! E16 — the network server under the money-ledger workload
//! (`EXPERIMENTS.md` E16): a connections × accounts sweep over an
//! in-process [`AssetServer`], every transaction a conservation-
//! preserving transfer issued by a real wire client, plus (with
//! `--features faults`) a fault-injected cell whose conservation
//! invariant is re-checked **after restart recovery** of the on-disk
//! database.
//!
//! Unlike E14/E15, the latency percentiles reported in
//! [`ObsBenchRun::commit_ns`] here are **client-observed whole-
//! transaction latencies** — `BEGIN` through the `COMMIT` ack riding
//! the server's group-commit flush window — not server-side commit
//! path times. The `lock_wait_ns` column stays server-side (via
//! `Database::metrics_snapshot` deltas), so one row shows both sides
//! of the wire.

use super::{ObsBenchRun, Scale};
use crate::table::{fmt_duration, fmt_rate, Table};
use asset_client::Client;
use asset_common::Config;
use asset_core::Database;
use asset_server::AssetServer;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The sweep: (connections, accounts, stable run name). Connection and
/// account counts scale with [`Scale`]; the names are the keys under
/// which `BENCH_obs.json` tracks the cells across commits.
const CELLS: &[(usize, usize, &str)] = &[
    (16, 10_000, "ledger-c16-a10k"),
    (128, 10_000, "ledger-c128-a10k"),
    (1024, 10_000, "ledger-c1024-a10k"),
    (16, 1_000_000, "ledger-c16-a1m"),
    (128, 1_000_000, "ledger-c128-a1m"),
    (1024, 1_000_000, "ledger-c1024-a1m"),
];

/// The fault-injected cell's name (present only with `faults`).
pub const E16_FAULT_CELL: &str = "ledger-faults-c1024-a1m";

/// Transfers per cell before scaling (split across the connections).
const TRANSFERS_BASE: usize = 8_192;

/// Every account starts with this balance; the invariant is that the
/// sum stays `accounts * INITIAL` under any interleaving of transfers.
const INITIAL: i64 = 1_000;

/// Mint the cell's accounts; returns the first account oid. Kept
/// separate from [`drive_ledger`] so the faulted cell can arm its
/// failpoints *after* setup — faults belong to the transfer phase.
fn mint_accounts(name: &str, server: &AssetServer, accounts: u64) -> u64 {
    let mut admin = Client::connect(&server.local_addr().to_string()).expect("admin connect");
    let (first, minted) = admin.mint(accounts, INITIAL).expect("mint");
    assert_eq!(minted, accounts, "{name}: mint");
    first
}

/// Drive `transfers_total` conservation-preserving transfers from
/// `conns` concurrent wire clients over the pre-minted accounts at
/// `first..first+accounts` and measure client-observed latencies.
/// Panics if the post-run `SUM` breaks conservation.
fn drive_ledger(
    name: &'static str,
    server: &AssetServer,
    conns: usize,
    accounts: u64,
    first: u64,
    transfers_total: usize,
) -> ObsBenchRun {
    let addr = server.local_addr().to_string();
    let mut admin = Client::connect(&addr).expect("admin connect");
    let per_conn = (transfers_total / conns).max(1);
    // lock-wait histograms are trace-gated, like E14
    server.database().obs().enable_tracing(1 << 16);
    let before = server.database().metrics_snapshot();
    let lat = Mutex::new(Vec::<u64>::with_capacity(conns * per_conn));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..conns {
            let (addr, lat) = (&addr, &lat);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("conn");
                let mut rng = crate::workload::Rng::new(0xE16 + c as u64);
                let mut local_lat = Vec::with_capacity(per_conn);
                for _ in 0..per_conn {
                    // always a distinct pair: a self-transfer is a
                    // client-side no-op and would measure nothing
                    let a = rng.next() % accounts;
                    let b = (a + 1 + rng.next() % (accounts - 1)) % accounts;
                    let amount = (rng.next() % 100) as i64;
                    // aborts and ambiguity are legitimate fates under
                    // contention and faults; conservation is the check
                    let t0 = Instant::now();
                    let _ = client
                        .transfer(first + a, first + b, amount)
                        .expect("transfer transport");
                    local_lat.push(t0.elapsed().as_nanos() as u64);
                }
                lat.lock().unwrap().extend(local_lat);
            });
        }
    });
    let elapsed = start.elapsed();
    let d = server.database().metrics_snapshot().delta(&before);

    // conservation: every movement is balanced, so the total is
    // invariant no matter which transfers committed, aborted, or
    // vanished into ambiguity
    let (sum, present) = admin.sum(first, accounts).expect("sum");
    assert_eq!(present, accounts, "{name}: accounts present");
    assert_eq!(
        sum,
        accounts as i64 * INITIAL,
        "{name}: conservation of money violated"
    );

    let mut lat = lat.into_inner().unwrap();
    lat.sort_unstable();
    let pct = |p: f64| -> f64 {
        if lat.is_empty() {
            0.0
        } else {
            lat[((lat.len() - 1) as f64 * p) as usize] as f64
        }
    };
    ObsBenchRun {
        name,
        txns: lat.len() as u64,
        elapsed,
        lock_wait_ns: d.lock_wait_ns.percentiles(),
        // client-observed whole-transaction latency (see module docs)
        commit_ns: (pct(0.50), pct(0.95), pct(0.99)),
        events_recorded: d.counters.events_recorded,
        events_dropped: d.events_dropped,
    }
}

fn in_memory_cell(name: &'static str, conns: usize, accounts: usize, scale: Scale) -> ObsBenchRun {
    let (db, _) =
        Database::open(Config::in_memory().with_commit_flush_window(Duration::from_micros(200)))
            .expect("open");
    let server = AssetServer::spawn(db, "127.0.0.1:0").expect("bind");
    let n_accounts = scale.n(accounts) as u64;
    let first = mint_accounts(name, &server, n_accounts);
    let run = drive_ledger(
        name,
        &server,
        scale.n(conns),
        n_accounts,
        first,
        scale.n(TRANSFERS_BASE),
    );
    server.shutdown();
    server.join();
    run
}

/// Run the E16 sweep. With `faults` the last cell injects commit-point
/// flush failures into an on-disk database, then reopens it and
/// re-checks conservation after restart recovery.
pub fn e16_ledger_runs(scale: Scale) -> Vec<ObsBenchRun> {
    #[cfg_attr(not(feature = "faults"), allow(unused_mut))]
    let mut runs: Vec<ObsBenchRun> = CELLS
        .iter()
        .map(|&(conns, accounts, name)| in_memory_cell(name, conns, accounts, scale))
        .collect();
    #[cfg(feature = "faults")]
    runs.push(faulted::cell(scale));
    runs
}

#[cfg(feature = "faults")]
mod faulted {
    use super::*;
    use asset_faults::{FaultAction, FaultRegistry, Trigger};
    use std::sync::Arc;

    /// The fault-injected acceptance cell: 1024 connections over a
    /// million on-disk accounts, a fraction of flush windows failing at
    /// their commit-point sync, conservation re-checked after dropping
    /// the database and recovering from the log.
    pub(super) fn cell(scale: Scale) -> ObsBenchRun {
        let dir = std::env::temp_dir().join(format!("asset-e16-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let faults = Arc::new(FaultRegistry::new());
        let (db, _) = Database::open(
            Config::on_disk(&dir)
                .with_commit_flush_window(Duration::from_micros(200))
                .with_faults(Arc::clone(&faults)),
        )
        .expect("open on-disk");
        let server = AssetServer::spawn(db, "127.0.0.1:0").expect("bind");
        let accounts = scale.n(1_000_000) as u64;
        let first = mint_accounts(E16_FAULT_CELL, &server, accounts);

        // armed only after setup: ~2% of transfer-phase flush windows
        // fail their sync with an injected error, and every commit in
        // such a window is acknowledged as ambiguous
        faults.arm(
            asset_storage::failpoints::FLUSH_WINDOW_SYNC,
            Trigger::Prob {
                per_mille: 20,
                seed: 0xE16,
            },
            FaultAction::Error,
        );
        let run = drive_ledger(
            E16_FAULT_CELL,
            &server,
            scale.n(1024),
            accounts,
            first,
            scale.n(TRANSFERS_BASE),
        );
        faults.reset();
        server.shutdown();
        server.join();

        // restart recovery: reopen from the log alone and re-check the
        // invariant — ambiguous commits must have resolved to exactly
        // all-or-nothing movements
        let (db, _) = Database::open(Config::on_disk(&dir)).expect("recovery reopen");
        let mut sum = 0i64;
        let mut present = 0u64;
        for raw in first..first + accounts {
            if let Ok(Some(bytes)) = db.peek(asset_common::Oid(raw)) {
                if let Ok(arr) = <[u8; 8]>::try_from(bytes.as_slice()) {
                    sum = sum.wrapping_add(i64::from_le_bytes(arr));
                    present += 1;
                }
            }
        }
        assert_eq!(
            present, accounts,
            "{E16_FAULT_CELL}: accounts after recovery"
        );
        assert_eq!(
            sum,
            accounts as i64 * INITIAL,
            "{E16_FAULT_CELL}: conservation violated after recovery"
        );
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
        run
    }
}

/// Format already-measured runs as the E16 table (so the harness binary
/// can measure once and both print and serialize).
pub fn e16_table(runs: &[ObsBenchRun]) -> Table {
    let mut table = Table::new(
        "E16: network server, connections x accounts money ledger",
        "wire transfers over an in-process server; latency is client-observed BEGIN..COMMIT-ack; conservation checked per cell (and after recovery for the faulted cell)",
    )
    .headers(&[
        "workload",
        "txns",
        "throughput",
        "txn latency p50/p95/p99",
        "server lock wait p99",
    ]);
    for r in runs {
        let (c50, c95, c99) = r.commit_ns;
        table.row(vec![
            r.name.into(),
            r.txns.to_string(),
            fmt_rate(r.txns, r.elapsed),
            format!(
                "{} / {} / {}",
                fmt_duration(Duration::from_nanos(c50 as u64)),
                fmt_duration(Duration::from_nanos(c95 as u64)),
                fmt_duration(Duration::from_nanos(c99 as u64)),
            ),
            fmt_duration(Duration::from_nanos(r.lock_wait_ns.2 as u64)),
        ]);
    }
    #[cfg(not(feature = "faults"))]
    table.row(vec![
        E16_FAULT_CELL.into(),
        "-".into(),
        "-".into(),
        "requires --features faults".into(),
        "-".into(),
    ]);
    table
}

/// E16 as a harness table.
pub fn e16_ledger(scale: Scale) -> Table {
    e16_table(&e16_ledger_runs(scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_measures_and_conserves_at_tiny_scale() {
        // factor 0.01 shrinks the grid to a couple of connections over
        // hundreds to tens of thousands of accounts; the conservation
        // asserts run inside drive_ledger (and, with faults, after the
        // recovery reopen).
        let runs = e16_ledger_runs(Scale { factor: 0.01 });
        let want = if cfg!(feature = "faults") {
            CELLS.len() + 1
        } else {
            CELLS.len()
        };
        assert_eq!(runs.len(), want);
        for r in &runs {
            assert!(r.txns > 0, "{}: drove transactions", r.name);
            assert!(r.commit_ns.2 >= r.commit_ns.0, "{}: p99 >= p50", r.name);
        }
        let json = super::super::bench_obs_json(&runs);
        assert!(json.contains("\"name\": \"ledger-c1024-a1m\""));
    }
}

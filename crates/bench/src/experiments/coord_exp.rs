//! E17 — distributed commit: 2PC blocking vs Paxos Commit
//! (`EXPERIMENTS.md` E17): a nodes × failure-mode sweep over both
//! coordinators, measuring **outcome latency** (stage → decision
//! delivered everywhere) and **blocked time** (how long prepared
//! participants sit in doubt, locks held, before a recovery pass
//! resolves them).
//!
//! The point being measured is the protocols' defining asymmetry: after
//! a coordinator crash, 2PC's only durable copy of the decision state
//! is the dead coordinator's log, so participants stay blocked for the
//! whole coordinator outage (modeled here as a fixed
//! [`COORD_DOWNTIME`] before the restarted coordinator reruns its
//! log); Paxos Commit keeps the decision at an acceptor quorum, so a
//! recovery coordinator resolves the very same crash immediately —
//! blocked time collapses to one round of consensus reads.
//!
//! Every number is wall-clock measured on in-process clusters whose
//! transport delays each message by [`LINK_DELAY`] (so protocol round
//! counts are visible in the latencies, not just scheduler noise).
//! Failure cells crash the coordinator via the `coord.before_decide` /
//! `coord.after_decide` failpoints, which are compiled unconditionally
//! — E17 needs no feature flag.

use super::{ObsBenchRun, Scale};
use crate::table::{fmt_duration, Table};
use asset_common::Config;
use asset_coord::failpoints::{COORD_AFTER_DECIDE, COORD_BEFORE_DECIDE};
use asset_coord::{
    Acceptor, ChannelTransport, CommitTransport, CoordLog, Decision, GlobalTxn, ParticipantNode,
    PaxosCommit, TwoPhase,
};
use asset_faults::{FaultAction, FaultRegistry, Trigger};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-message transport delay: models a LAN link so that round counts
/// dominate latency.
const LINK_DELAY: Duration = Duration::from_micros(200);

/// How long a crashed 2PC coordinator (and with it, its log) stays
/// unreachable before recovery can run. Paxos recovery does not wait
/// for it — that is the experiment.
const COORD_DOWNTIME: Duration = Duration::from_millis(10);

/// Global transactions per cell before scaling.
const TXNS_BASE: usize = 48;

/// Which protocol drives a cell.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Proto {
    TwoPc,
    Paxos,
}

/// The failure script of a cell.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Failure {
    /// Happy path: the coordinator lives, `commit` runs to completion.
    None,
    /// The coordinator dies after every vote is in but before the
    /// decision is durable — the canonical 2PC blocking window.
    BeforeDecide,
    /// The coordinator dies with the decision durable but undelivered.
    AfterDecide,
}

impl Failure {
    fn point(self) -> Option<&'static str> {
        match self {
            Failure::None => None,
            Failure::BeforeDecide => Some(COORD_BEFORE_DECIDE),
            Failure::AfterDecide => Some(COORD_AFTER_DECIDE),
        }
    }
}

/// The sweep: (protocol, nodes, failure, stable run name).
const CELLS: &[(Proto, usize, Failure, &str)] = &[
    (Proto::TwoPc, 2, Failure::None, "coord-2pc-n2-ok"),
    (Proto::Paxos, 2, Failure::None, "coord-paxos-n2-ok"),
    (Proto::TwoPc, 4, Failure::None, "coord-2pc-n4-ok"),
    (Proto::Paxos, 4, Failure::None, "coord-paxos-n4-ok"),
    (
        Proto::TwoPc,
        3,
        Failure::BeforeDecide,
        "coord-2pc-n3-crash-before",
    ),
    (
        Proto::Paxos,
        3,
        Failure::BeforeDecide,
        "coord-paxos-n3-crash-before",
    ),
    (
        Proto::TwoPc,
        3,
        Failure::AfterDecide,
        "coord-2pc-n3-crash-after",
    ),
    (
        Proto::Paxos,
        3,
        Failure::AfterDecide,
        "coord-paxos-n3-crash-after",
    ),
];

struct Cluster {
    transport: Arc<ChannelTransport>,
    log: Arc<CoordLog>,
    acceptors: Vec<Arc<Acceptor>>,
}

fn cluster(nodes: usize) -> Cluster {
    let nodes: Vec<Arc<ParticipantNode>> = (0..nodes)
        .map(|_| Arc::new(ParticipantNode::open(Config::in_memory()).expect("open node")))
        .collect();
    Cluster {
        transport: Arc::new(ChannelTransport::new(nodes).with_delay(LINK_DELAY)),
        log: Arc::new(CoordLog::in_memory()),
        acceptors: (0..3).map(|_| Arc::new(Acceptor::new())).collect(),
    }
}

impl Cluster {
    /// Stage one finished-but-undecided write per node; the global txn.
    fn stage(&self, gid: u64) -> GlobalTxn {
        let mut g = GlobalTxn::new(gid);
        for i in 0..self.transport.nodes() {
            let db = self.transport.node(i).db();
            let oid = db.new_oid();
            let t = db
                .initiate(move |ctx| ctx.write(oid, gid.to_le_bytes().to_vec()))
                .expect("initiate");
            db.begin(t).expect("begin");
            db.wait(t).expect("wait");
            g.add_member(i as u32, t);
        }
        g
    }

    fn in_doubt(&self) -> usize {
        (0..self.transport.nodes())
            .map(|i| self.transport.node(i).db().in_doubt_transactions().len())
            .sum()
    }

    fn commit(&self, proto: Proto, faults: Arc<FaultRegistry>, g: &GlobalTxn) -> bool {
        match proto {
            Proto::TwoPc => TwoPhase::new(self.transport.clone(), self.log.clone())
                .with_faults(faults)
                .commit(g)
                .is_ok(),
            Proto::Paxos => PaxosCommit::new(self.transport.clone(), self.acceptors.clone())
                .with_faults(faults)
                .commit(g)
                .is_ok(),
        }
    }

    fn recover(&self, proto: Proto, ballot: u64, g: &GlobalTxn) -> Decision {
        match proto {
            Proto::TwoPc => TwoPhase::new(self.transport.clone(), self.log.clone())
                .recover(g)
                .expect("2pc recover"),
            Proto::Paxos => {
                PaxosCommit::recovery(self.transport.clone(), self.acceptors.clone(), ballot)
                    .recover(g)
                    .expect("paxos recover")
            }
        }
    }
}

fn percentiles(mut ns: Vec<u64>) -> (f64, f64, f64) {
    ns.sort_unstable();
    let pct = |p: f64| -> f64 {
        if ns.is_empty() {
            0.0
        } else {
            ns[((ns.len() - 1) as f64 * p) as usize] as f64
        }
    };
    (pct(0.50), pct(0.95), pct(0.99))
}

/// Run one cell: `iters` global transactions, each staged fresh,
/// driven to a decision (with the scripted coordinator crash and a
/// recovery pass for failure cells), asserting convergence every time.
fn run_cell(
    proto: Proto,
    nodes: usize,
    failure: Failure,
    name: &'static str,
    iters: usize,
) -> ObsBenchRun {
    let c = cluster(nodes);
    let mut outcome_ns: Vec<u64> = Vec::with_capacity(iters);
    let mut blocked_ns: Vec<u64> = Vec::with_capacity(iters);
    let wall = Instant::now();
    for i in 0..iters {
        let gid = 1 + i as u64;
        let g = c.stage(gid);
        let faults = Arc::new(FaultRegistry::new());
        if let Some(point) = failure.point() {
            faults.arm(point, Trigger::Once, FaultAction::Error);
        }
        let t0 = Instant::now();
        let finished = c.commit(proto, faults, &g);
        match failure {
            Failure::None => {
                assert!(finished, "{name}: happy path must finish");
                outcome_ns.push(t0.elapsed().as_nanos() as u64);
                blocked_ns.push(0);
            }
            Failure::BeforeDecide | Failure::AfterDecide => {
                assert!(!finished, "{name}: the scripted crash must surface");
                // participants are prepared, in doubt, locks held
                let b0 = Instant::now();
                assert!(c.in_doubt() > 0, "{name}: someone must be blocked");
                if proto == Proto::TwoPc {
                    // 2PC cannot proceed without the dead coordinator's
                    // log: participants block for the whole outage
                    std::thread::sleep(COORD_DOWNTIME);
                }
                let d = c.recover(proto, 1 + i as u64, &g);
                let blocked = b0.elapsed().as_nanos() as u64;
                assert_eq!(c.in_doubt(), 0, "{name}: recovery must resolve all");
                let want = match failure {
                    Failure::BeforeDecide => Decision::Abort,
                    _ => Decision::Commit,
                };
                assert_eq!(d, want, "{name}: recovered decision");
                outcome_ns.push(t0.elapsed().as_nanos() as u64);
                blocked_ns.push(blocked);
            }
        }
    }
    ObsBenchRun {
        name,
        txns: iters as u64,
        elapsed: wall.elapsed(),
        // blocked-time percentiles ride the lock-wait column: in-doubt
        // participants are exactly transactions stuck holding locks
        lock_wait_ns: percentiles(blocked_ns),
        commit_ns: percentiles(outcome_ns),
        events_recorded: 0,
        events_dropped: 0,
    }
}

/// Run the E17 sweep at `scale`.
pub fn e17_coord_runs(scale: Scale) -> Vec<ObsBenchRun> {
    CELLS
        .iter()
        .map(|&(proto, nodes, failure, name)| {
            run_cell(proto, nodes, failure, name, scale.n(TXNS_BASE))
        })
        .collect()
}

/// Format already-measured runs as the E17 table.
pub fn e17_table(runs: &[ObsBenchRun]) -> Table {
    let mut table = Table::new(
        "E17: distributed commit, 2PC blocking vs Paxos Commit",
        "global txns over in-process clusters (200us link delay); outcome = stage..decision everywhere; blocked = prepared participants in doubt until recovery (2PC waits out a 10ms coordinator outage, Paxos reads the acceptor quorum immediately)",
    )
    .headers(&[
        "cell",
        "txns",
        "outcome p50/p99",
        "blocked p50",
        "blocked p99",
    ]);
    for r in runs {
        let (o50, _, o99) = r.commit_ns;
        let (b50, _, b99) = r.lock_wait_ns;
        table.row(vec![
            r.name.into(),
            r.txns.to_string(),
            format!(
                "{} / {}",
                fmt_duration(Duration::from_nanos(o50 as u64)),
                fmt_duration(Duration::from_nanos(o99 as u64)),
            ),
            fmt_duration(Duration::from_nanos(b50 as u64)),
            fmt_duration(Duration::from_nanos(b99 as u64)),
        ]);
    }
    table
}

/// E17 as a harness table.
pub fn e17_coord(scale: Scale) -> Table {
    e17_table(&e17_coord_runs(scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_measures_and_converges_at_tiny_scale() {
        let runs = e17_coord_runs(Scale { factor: 0.05 });
        assert_eq!(runs.len(), CELLS.len());
        for r in &runs {
            assert!(r.txns > 0, "{}: drove transactions", r.name);
        }
        // the headline asymmetry must be visible even at smoke scale:
        // 2PC's blocked time includes the coordinator outage, Paxos's
        // does not
        let blocked = |name: &str| -> f64 {
            runs.iter()
                .find(|r| r.name == name)
                .expect("cell present")
                .lock_wait_ns
                .0
        };
        let two_pc = blocked("coord-2pc-n3-crash-after");
        let paxos = blocked("coord-paxos-n3-crash-after");
        assert!(
            two_pc >= COORD_DOWNTIME.as_nanos() as f64,
            "2PC blocks for at least the outage ({two_pc} ns)"
        );
        assert!(
            paxos < COORD_DOWNTIME.as_nanos() as f64,
            "Paxos must not wait out the outage ({paxos} ns)"
        );
        let json = super::super::bench_obs_json(&runs);
        assert!(json.contains("\"name\": \"coord-paxos-n3-crash-after\""));
    }
}

//! # asset-bench
//!
//! Workload generators and the experiment harness for the ASSET
//! reproduction.
//!
//! The paper contains **no quantitative tables** and a single figure (the
//! object-descriptor diagram); its evaluation is by construction. This
//! crate supplies the quantitative characterization a reproduction needs
//! (see `EXPERIMENTS.md` at the repository root): the E1–E16 experiment
//! suite, runnable as Criterion benches (`cargo bench -p asset-bench`)
//! and as a row-printing harness
//! (`cargo run -p asset-bench --release --bin experiments`).

#![warn(missing_docs)]

pub mod experiments;
pub mod table;
pub mod workload;

pub use table::Table;

//! Workload generators: bank accounts, design objects, inventories, and a
//! deterministic PRNG so runs are reproducible.

use asset_core::{Database, Oid, Result, TxnCtx};

/// A small, fast, deterministic PRNG (xorshift64*) — reproducible
/// workloads without threading `rand` state through closures.
#[derive(Clone, Debug)]
pub struct Rng(u64);

impl Rng {
    /// Seeded PRNG; equal seeds give equal streams.
    pub fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    /// Next raw value. (Deliberately not an `Iterator`.)
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }

    /// Bernoulli with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next() as f64 / u64::MAX as f64) < p
    }
}

/// Encode an i64 counter value.
pub fn enc_i64(v: i64) -> Vec<u8> {
    v.to_le_bytes().to_vec()
}

/// Decode an i64 counter value.
pub fn dec_i64(bytes: &[u8]) -> i64 {
    i64::from_le_bytes(bytes.try_into().expect("i64 payload"))
}

/// Create `n` objects, each holding `initial` as an i64 counter, committed.
pub fn setup_counters(db: &Database, n: usize, initial: i64) -> Vec<Oid> {
    let oids: Vec<Oid> = (0..n).map(|_| db.new_oid()).collect();
    let o2 = oids.clone();
    let ok = db
        .run(move |ctx| {
            for oid in &o2 {
                ctx.write(*oid, enc_i64(initial))?;
            }
            Ok(())
        })
        .expect("bootstrap run");
    assert!(ok, "bootstrap must commit");
    oids
}

/// Create `n` objects with `size`-byte payloads, committed.
pub fn setup_blobs(db: &Database, n: usize, size: usize) -> Vec<Oid> {
    let oids: Vec<Oid> = (0..n).map(|_| db.new_oid()).collect();
    let o2 = oids.clone();
    let ok = db
        .run(move |ctx| {
            for (i, oid) in o2.iter().enumerate() {
                ctx.write(*oid, vec![i as u8; size])?;
            }
            Ok(())
        })
        .expect("bootstrap run");
    assert!(ok);
    oids
}

/// Read a committed counter (diagnostic peek).
pub fn counter(db: &Database, oid: Oid) -> i64 {
    dec_i64(&db.peek(oid).expect("peek").expect("counter exists"))
}

/// A transfer closure moving `amount` between two accounts, aborting on
/// insufficient funds. Locks in oid order to reduce deadlocks.
pub fn transfer(from: Oid, to: Oid, amount: i64) -> impl Fn(&TxnCtx) -> Result<()> + Send + Sync {
    move |ctx: &TxnCtx| {
        let (first, second) = if from.raw() < to.raw() {
            (from, to)
        } else {
            (to, from)
        };
        let vf = dec_i64(&ctx.read(first)?.expect("account"));
        let vs = dec_i64(&ctx.read(second)?.expect("account"));
        let (nf, ns) = if first == from {
            (vf - amount, vs + amount)
        } else {
            (vf + amount, vs - amount)
        };
        if (first == from && nf < 0) || (second == from && ns < 0) {
            return ctx.abort_self();
        }
        ctx.write(first, enc_i64(nf))?;
        ctx.write(second, enc_i64(ns))
    }
}

/// Run `f` on `threads` threads and return the wall-clock time for all of
/// them to finish.
pub fn parallel_time(threads: usize, f: impl Fn(usize) + Send + Sync) -> std::time::Duration {
    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for i in 0..threads {
            let f = &f;
            scope.spawn(move || f(i));
        }
    });
    start.elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
        let mut c = Rng::new(43);
        assert_ne!(a.next(), c.next());
    }

    #[test]
    fn rng_below_respects_bound() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn rng_chance_extremes() {
        let mut r = Rng::new(7);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn counters_setup_and_read() {
        let db = Database::in_memory();
        let oids = setup_counters(&db, 5, 123);
        for oid in &oids {
            assert_eq!(counter(&db, *oid), 123);
        }
    }

    #[test]
    fn blobs_setup() {
        let db = Database::in_memory();
        let oids = setup_blobs(&db, 3, 64);
        assert_eq!(db.peek(oids[1]).unwrap().unwrap(), vec![1u8; 64]);
    }

    #[test]
    fn transfer_moves_and_guards() {
        let db = Database::in_memory();
        let accts = setup_counters(&db, 2, 100);
        let (a, b) = (accts[0], accts[1]);
        assert!(db.run(move |ctx| transfer(a, b, 30)(ctx)).unwrap());
        assert_eq!(counter(&db, a), 70);
        assert_eq!(counter(&db, b), 130);
        // overdraft aborts
        assert!(!db.run(move |ctx| transfer(a, b, 1_000)(ctx)).unwrap());
        assert_eq!(counter(&db, a), 70);
    }

    #[test]
    fn parallel_time_runs_all() {
        let hits = std::sync::atomic::AtomicUsize::new(0);
        parallel_time(4, |_| {
            hits.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        });
        assert_eq!(hits.load(std::sync::atomic::Ordering::SeqCst), 4);
    }
}

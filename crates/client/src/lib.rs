//! # asset-client — blocking client for the ASSET wire protocol
//!
//! Speaks the length-prefixed binary protocol specified in `DESIGN.md`
//! §13 (implemented by [`asset_server::protocol`]) over a blocking
//! `TcpStream`. One [`Client`] is one connection; its transactions are
//! the server-side session transactions created by [`Client::begin`].
//!
//! Requests can be **pipelined**: [`Client::send`] queues a request
//! without waiting, and [`Client::recv`] reads responses in request
//! order — the protocol guarantees ordered responses, so a burst of
//! writes needs only one round trip's worth of latency.
//!
//! The money-ledger helpers ([`Client::transfer`], [`Client::reserve`],
//! [`Client::burn`]) compose `BEGIN`/`READ`/`WRITE`/`COMMIT` into
//! conservation-preserving account movements — every unit leaving one
//! account lands in another, so the global sum is invariant under any
//! interleaving (the property `asset-bench` E16 checks after a
//! fault-injected run).
//!
//! ## Quick start
//!
//! ```
//! use asset_client::{Client, TxnFate};
//! use asset_common::Config;
//! use asset_core::Database;
//! use asset_server::AssetServer;
//!
//! let (db, _) = Database::open(Config::in_memory().with_exec_workers(2))?;
//! let server = AssetServer::spawn(db, "127.0.0.1:0")?;
//!
//! let mut c = Client::connect(&server.local_addr().to_string())?;
//! let (first, n) = c.mint(4, 100)?; // 4 accounts, 100 units each
//! assert_eq!(n, 4);
//! assert_eq!(c.transfer(first, first + 1, 30)?, TxnFate::Committed);
//! let (total, present) = c.sum(first, 4)?;
//! assert_eq!((total, present), (400, 4), "transfers conserve money");
//! assert_eq!(c.read_i64_committed(first)?, Some(70));
//!
//! c.shutdown()?;
//! server.join();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use asset_obs::{EventKind, MetricsSnapshot, Obs, TraceCtx};
use asset_server::protocol::{
    get_i64, get_u32, get_u64, get_u8, opcode, status, status_name, Frame, WireError,
    PROTOCOL_VERSION, STATS_BODY_REVISION,
};
use std::collections::VecDeque;
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// Errors surfaced by the client.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (includes wire-format violations, which decode
    /// to `io::ErrorKind::InvalidData`).
    Io(std::io::Error),
    /// The server answered with a non-OK status this call does not
    /// model as a normal outcome.
    Server {
        /// The request's opcode.
        opcode: u8,
        /// The response status byte (see `asset_server::protocol::status`).
        status: u8,
        /// The response's diagnostic message (possibly empty).
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Server {
                opcode,
                status,
                message,
            } => write!(
                f,
                "server: opcode {opcode:#04x} failed with {} ({message})",
                status_name(*status)
            ),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> ClientError {
        ClientError::Io(e.into())
    }
}

/// How a ledger transaction ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxnFate {
    /// The commit record is durable; the movement happened exactly once.
    Committed,
    /// The transaction aborted cleanly (carrying the wire status that
    /// reported it); no effect survives and a retry is safe.
    Aborted(u8),
    /// The helper aborted before committing because the source account
    /// could not cover the amount. No effect survives.
    Insufficient,
    /// The commit failed **at the commit point** and its fate is
    /// unknown (`ERR_COMMIT_AMBIGUOUS`, DESIGN.md §13.4). Do not
    /// blindly retry; reconcile against durable state instead.
    Ambiguous,
}

/// One response frame, split into status and payload.
#[derive(Clone, Debug)]
pub struct Response {
    /// The request opcode this responds to.
    pub opcode: u8,
    /// The request id this responds to.
    pub reqid: u32,
    /// The status byte (`0` = OK).
    pub status: u8,
    /// Result payload (OK) or diagnostic message bytes (error).
    pub payload: Vec<u8>,
}

impl Response {
    /// The OK payload, or a [`ClientError::Server`] for an error status.
    pub fn into_ok(self) -> Result<Vec<u8>, ClientError> {
        if self.status == status::OK {
            Ok(self.payload)
        } else {
            Err(ClientError::Server {
                opcode: self.opcode,
                status: self.status,
                message: String::from_utf8_lossy(&self.payload).into_owned(),
            })
        }
    }
}

/// Aggregate counters returned by [`Client::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Transactions committed since the server's database opened.
    pub committed: u64,
    /// Transactions aborted.
    pub aborted: u64,
    /// Transactions currently live (not yet terminated).
    pub live: u64,
    /// Commit-point log failures (each one produced an ambiguous or
    /// aborted commit).
    pub commit_log_failures: u64,
}

/// The distributed-commit state of a transaction as reported by the
/// wire `PREPARED` query (DESIGN.md §14).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PreparedState {
    /// The server does not know the tid (never existed, or committed/
    /// aborted before a restart and since forgotten).
    Unknown,
    /// Prepared — durable-but-undecided, awaiting the coordinator.
    Prepared,
    /// Committed.
    Committed,
    /// Aborted (or aborting).
    Aborted,
    /// Live but not prepared (running, completed, committing).
    Other,
}

/// A blocking connection to an ASSET server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_reqid: u32,
    /// Reqids written but not yet answered, in request order. The
    /// protocol answers strictly in order, so [`Client::recv`] matches
    /// each response against the front — **error responses included**:
    /// a mid-pipeline failure consumes exactly one entry, keeping the
    /// stream and this queue in lockstep.
    pending: VecDeque<u32>,
    /// Cross-node tracing (DESIGN.md §7.2), set by
    /// [`enable_tracing`](Self::enable_tracing): every request frame is
    /// stamped with the context and mirrored as `MsgSend`/`MsgAck`
    /// events into the local observability hub.
    trace: Option<ClientTrace>,
}

/// The tracing state of a [`Client`] (see [`Client::enable_tracing`]).
struct ClientTrace {
    /// Context stamped onto every outgoing request frame.
    ctx: TraceCtx,
    /// The server's node id (tags `MsgSend`/`MsgAck` events so the
    /// multi-node merge can pair them with that node's
    /// `MsgRecv`/`MsgReply`).
    peer: u32,
    /// The hub the send/ack events are recorded into.
    obs: Arc<Obs>,
}

impl Client {
    /// Connect to `addr` (e.g. `"127.0.0.1:4994"`) and perform the
    /// `HELLO` version handshake.
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut c = Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            next_reqid: 1,
            pending: VecDeque::new(),
            trace: None,
        };
        let payload = c.call(opcode::HELLO, Vec::new())?.into_ok()?;
        let server_version = get_u8(&payload, 0)?;
        if server_version != PROTOCOL_VERSION {
            return Err(ClientError::Server {
                opcode: opcode::HELLO,
                status: status::ERR_BAD_VERSION,
                message: format!("server speaks version {server_version:#04x}"),
            });
        }
        Ok(c)
    }

    // --- pipelining primitives -------------------------------------------

    /// Queue one request without waiting for its response; returns the
    /// request id. Responses arrive in request order via [`recv`]
    /// (buffered — call [`flush`](Self::flush) or `recv` to ensure the
    /// bytes leave).
    ///
    /// [`recv`]: Self::recv
    pub fn send(&mut self, op: u8, body: Vec<u8>) -> Result<u32, ClientError> {
        let reqid = self.next_reqid;
        self.next_reqid = self.next_reqid.wrapping_add(1);
        Frame {
            opcode: op,
            reqid,
            ctx: self.trace.as_ref().map(|t| t.ctx),
            body,
        }
        .write_to(&mut self.writer)?;
        if let Some(t) = &self.trace {
            t.obs.record(EventKind::MsgSend {
                node: t.peer,
                opcode: op,
                root: t.ctx.root,
            });
        }
        self.pending.push_back(reqid);
        Ok(reqid)
    }

    /// Stamp every subsequent request with `ctx` (sent as a version
    /// `0x02` traced frame, DESIGN.md §13.1) and mirror each request/
    /// response pair as `MsgSend`/`MsgAck` events into `obs`, tagged
    /// with the server's node id `peer`. The multi-node trace merge
    /// (`asset-trace`) pairs these with the server's `MsgRecv`/
    /// `MsgReply` events to draw cross-node flow edges.
    pub fn enable_tracing(&mut self, ctx: TraceCtx, peer: u32, obs: Arc<Obs>) {
        self.trace = Some(ClientTrace { ctx, peer, obs });
    }

    /// Stop stamping requests; frames revert to plain version `0x01`.
    pub fn disable_tracing(&mut self) {
        self.trace = None;
    }

    /// Test hook: set the next request id, e.g. near `u32::MAX` to
    /// exercise reqid wraparound under pipelining.
    #[doc(hidden)]
    pub fn set_next_reqid(&mut self, reqid: u32) {
        self.next_reqid = reqid;
    }

    /// Push buffered requests onto the wire.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Read the next response (in request order). Flushes first so a
    /// `send`/`recv` loop cannot deadlock on buffered bytes.
    ///
    /// The response's reqid is matched against the oldest unanswered
    /// request — a mismatch means the stream desynchronized (a response
    /// was dropped or reordered) and surfaces as an `InvalidData`
    /// transport error rather than silently attributing one request's
    /// answer to another. Error statuses are normal responses here:
    /// they consume exactly one pending slot, so a pipelined batch with
    /// a mid-batch failure still matches every later response to the
    /// right request.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        self.flush()?;
        let Some(want) = self.pending.front().copied() else {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "recv with no request in flight",
            )));
        };
        let frame = Frame::read_from(&mut self.reader)?
            .ok_or_else(|| ClientError::Io(std::io::ErrorKind::UnexpectedEof.into()))?;
        if frame.reqid != want {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "response reqid {} but oldest unanswered request is {want}",
                    frame.reqid
                ),
            )));
        }
        self.pending.pop_front();
        if let Some(t) = &self.trace {
            t.obs.record(EventKind::MsgAck {
                node: t.peer,
                opcode: frame.opcode,
                root: t.ctx.root,
            });
        }
        let status = get_u8(&frame.body, 0)?;
        Ok(Response {
            opcode: frame.opcode,
            reqid: frame.reqid,
            status,
            payload: frame.body[1..].to_vec(),
        })
    }

    /// Requests written but not yet answered.
    pub fn inflight(&self) -> usize {
        self.pending.len()
    }

    fn call(&mut self, op: u8, body: Vec<u8>) -> Result<Response, ClientError> {
        let reqid = self.send(op, body)?;
        // recv matches the response against the oldest pending request;
        // a typed call issued with older requests still unanswered
        // would get their response, so refuse the mixture explicitly
        let resp = self.recv()?;
        if resp.reqid != reqid {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "typed call (reqid {reqid}) answered with reqid {} — \
                     drain pipelined requests with recv() first",
                    resp.reqid
                ),
            )));
        }
        Ok(resp)
    }

    // --- typed operations ------------------------------------------------

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.call(opcode::PING, Vec::new())?.into_ok().map(|_| ())
    }

    /// Open a session transaction; returns its tid.
    pub fn begin(&mut self) -> Result<u64, ClientError> {
        let payload = self
            .call(opcode::BEGIN, 0u64.to_le_bytes().to_vec())?
            .into_ok()?;
        Ok(get_u64(&payload, 0)?)
    }

    /// Transactional read. `Ok(None)` means the object has no
    /// committed-or-own-written image.
    pub fn read(&mut self, tid: u64, oid: u64) -> Result<Option<Vec<u8>>, ClientError> {
        let payload = self.call(opcode::READ, body_read(tid, oid))?.into_ok()?;
        Ok(decode_read_payload(&payload)?)
    }

    /// Transactional write.
    pub fn write(&mut self, tid: u64, oid: u64, value: &[u8]) -> Result<(), ClientError> {
        self.call(opcode::WRITE, body_write(tid, oid, value))?
            .into_ok()
            .map(|_| ())
    }

    /// Commit; the `Committed` fate means the commit record is durable
    /// (the OK rode the server's group-commit flush window).
    pub fn commit(&mut self, tid: u64) -> Result<TxnFate, ClientError> {
        let resp = self.call(opcode::COMMIT, tid.to_le_bytes().to_vec())?;
        decode_commit_status(resp)
    }

    /// Abort and roll back.
    pub fn abort(&mut self, tid: u64) -> Result<(), ClientError> {
        self.call(opcode::ABORT, tid.to_le_bytes().to_vec())?
            .into_ok()
            .map(|_| ())
    }

    /// `delegate(from, to, obs)` — `None` delegates everything
    /// delegable.
    pub fn delegate(&mut self, from: u64, to: u64, obs: Option<&[u64]>) -> Result<(), ClientError> {
        let mut body = from.to_le_bytes().to_vec();
        body.extend_from_slice(&to.to_le_bytes());
        encode_obset(&mut body, obs);
        self.call(opcode::DELEGATE, body)?.into_ok().map(|_| ())
    }

    /// `permit(grantor, grantee, obs, ops)` — `grantee: None` is the
    /// any-transaction wildcard, `obs: None` means every object, `ops`
    /// is the wire bitmask (1 = read, 2 = write, 3 = both).
    pub fn permit(
        &mut self,
        grantor: u64,
        grantee: Option<u64>,
        obs: Option<&[u64]>,
        ops: u8,
    ) -> Result<(), ClientError> {
        let mut body = grantor.to_le_bytes().to_vec();
        body.extend_from_slice(&grantee.unwrap_or(0).to_le_bytes());
        body.push(ops);
        encode_obset(&mut body, obs);
        self.call(opcode::PERMIT, body)?.into_ok().map(|_| ())
    }

    /// `form_dependency(kind, ti, tj)` with the wire kind byte
    /// (1 = CD, 2 = AD, 3 = GC).
    pub fn form_dependency(&mut self, kind: u8, ti: u64, tj: u64) -> Result<(), ClientError> {
        let mut body = vec![kind];
        body.extend_from_slice(&ti.to_le_bytes());
        body.extend_from_slice(&tj.to_le_bytes());
        self.call(opcode::FORM_DEP, body)?.into_ok().map(|_| ())
    }

    /// Allocate one object id.
    pub fn new_oid(&mut self) -> Result<u64, ClientError> {
        let payload = self.call(opcode::NEW_OID, Vec::new())?.into_ok()?;
        Ok(get_u64(&payload, 0)?)
    }

    /// Bulk-create `count` accounts holding `initial` units each;
    /// returns `(first_oid, count)`. The server caps one request at
    /// `MAX_MINT_COUNT` (DESIGN.md §13.3) — mint larger populations in
    /// multiple calls. On an error no funded accounts remain: the
    /// server deletes any chunks that had committed before the failure.
    pub fn mint(&mut self, count: u64, initial: i64) -> Result<(u64, u64), ClientError> {
        let mut body = count.to_le_bytes().to_vec();
        body.extend_from_slice(&initial.to_le_bytes());
        let payload = self.call(opcode::MINT, body)?.into_ok()?;
        Ok((get_u64(&payload, 0)?, get_u64(&payload, 8)?))
    }

    /// Sum committed i64 counters over `first..first+count`; returns
    /// `(sum, objects_present)`. Runs as one server-side read
    /// transaction, so the answer is a consistent snapshot even while
    /// writers are active. The server caps one request's range at
    /// `MAX_SUM_COUNT` (DESIGN.md §13.3); sweep wider ranges in
    /// multiple calls.
    pub fn sum(&mut self, first: u64, count: u64) -> Result<(i64, u64), ClientError> {
        let mut body = first.to_le_bytes().to_vec();
        body.extend_from_slice(&count.to_le_bytes());
        let payload = self.call(opcode::SUM, body)?.into_ok()?;
        Ok((get_i64(&payload, 0)?, get_u64(&payload, 8)?))
    }

    /// Aggregate server counters — a compact summary derived from the
    /// full [`metrics`](Self::metrics) snapshot.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        let (live, snap) = self.metrics()?;
        Ok(ServerStats {
            committed: snap.counters.txn_committed,
            aborted: snap.counters.txn_aborted,
            live,
            commit_log_failures: snap.counters.commit_log_failures,
        })
    }

    /// The server's full metrics snapshot (every counter and histogram
    /// of its observability hub) plus its live-transaction gauge, from
    /// the versioned `STATS` body (DESIGN.md §13.3). The body is
    /// self-describing, so a newer server's extra metrics are skipped
    /// rather than failing the call.
    pub fn metrics(&mut self) -> Result<(u64, MetricsSnapshot), ClientError> {
        let payload = self.call(opcode::STATS, Vec::new())?.into_ok()?;
        let rev = get_u8(&payload, 0)?;
        if rev != STATS_BODY_REVISION {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("STATS body revision {rev}, expected {STATS_BODY_REVISION}"),
            )));
        }
        let live = get_u64(&payload, 1)?;
        let snap = asset_obs::wire::decode_snapshot(&payload[9..]).ok_or_else(|| {
            ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "STATS metrics snapshot failed to decode",
            ))
        })?;
        Ok((live, snap))
    }

    // --- distributed commit (DESIGN.md §14) ------------------------------

    /// Prepare this connection's transactions `tids` as one
    /// distributed-commit group. An `Ok` return **is** the yes vote:
    /// the participant's `Prepared` record is durable and the returned
    /// group (the union of the tids' GC groups) awaits the
    /// coordinator's decision — [`commit_decide`](Self::commit_decide)
    /// or [`abort_decide`](Self::abort_decide). Any error is a no vote;
    /// the transactions are aborted server-side.
    pub fn prepare(&mut self, tids: &[u64]) -> Result<Vec<u64>, ClientError> {
        let payload = self
            .call(opcode::PREPARE, encode_tid_list(tids))?
            .into_ok()?;
        decode_tid_list_payload(&payload).map_err(Into::into)
    }

    /// Query a transaction's distributed-commit state — usable for tids
    /// of any session, including after the server restarted.
    pub fn prepared_state(&mut self, tid: u64) -> Result<PreparedState, ClientError> {
        let payload = self
            .call(opcode::PREPARED, tid.to_le_bytes().to_vec())?
            .into_ok()?;
        Ok(match get_u8(&payload, 0)? {
            1 => PreparedState::Prepared,
            2 => PreparedState::Committed,
            3 => PreparedState::Aborted,
            4 => PreparedState::Other,
            _ => PreparedState::Unknown,
        })
    }

    /// Deliver the coordinator's **commit** decision for a prepared
    /// group. Sessionless and idempotent; the OK is written only after
    /// the participant's commit record is durable.
    pub fn commit_decide(&mut self, tids: &[u64]) -> Result<(), ClientError> {
        self.call(opcode::COMMIT_DECIDE, encode_tid_list(tids))?
            .into_ok()
            .map(|_| ())
    }

    /// Deliver the coordinator's **abort** decision for a prepared
    /// group. Sessionless and idempotent.
    pub fn abort_decide(&mut self, tids: &[u64]) -> Result<(), ClientError> {
        self.call(opcode::ABORT_DECIDE, encode_tid_list(tids))?
            .into_ok()
            .map(|_| ())
    }

    /// Ask the server to shut down (acknowledged before it stops).
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.call(opcode::SHUTDOWN, Vec::new())?
            .into_ok()
            .map(|_| ())
    }

    /// Convenience: the committed i64 counter value of `oid`, read in a
    /// throwaway transaction.
    pub fn read_i64_committed(&mut self, oid: u64) -> Result<Option<i64>, ClientError> {
        let tid = self.begin()?;
        let v = self.read(tid, oid)?;
        // terminal either way; an abort after a pure read is free
        self.abort(tid)?;
        Ok(v.and_then(|b| {
            <[u8; 8]>::try_from(b.as_slice())
                .ok()
                .map(i64::from_le_bytes)
        }))
    }

    // --- money-ledger helpers --------------------------------------------

    /// Move `amount` from `from` to `to` unconditionally (balances may
    /// go negative). Conserves the global sum.
    pub fn transfer(&mut self, from: u64, to: u64, amount: i64) -> Result<TxnFate, ClientError> {
        self.move_funds(from, to, amount, false)
    }

    /// Reserve `amount` out of `from` into the escrow account `escrow`:
    /// the movement happens only if `from` can cover it, otherwise the
    /// transaction aborts with [`TxnFate::Insufficient`].
    pub fn reserve(&mut self, from: u64, escrow: u64, amount: i64) -> Result<TxnFate, ClientError> {
        self.move_funds(from, escrow, amount, true)
    }

    /// Burn `amount` of `from` into the treasury/sink account `sink`.
    /// Modeled as a checked movement (not destruction) so the global
    /// conservation invariant stays checkable.
    pub fn burn(&mut self, from: u64, sink: u64, amount: i64) -> Result<TxnFate, ClientError> {
        self.move_funds(from, sink, amount, true)
    }

    /// One `BEGIN`/`READ`+`WRITE`/`COMMIT` movement. Accounts are
    /// touched in oid order so concurrent movements over the same pair
    /// acquire locks in a consistent order (upgrades can still
    /// deadlock; the server's detector aborts a victim, surfaced as
    /// [`TxnFate::Aborted`] — retry with fresh amounts).
    fn move_funds(
        &mut self,
        from: u64,
        to: u64,
        amount: i64,
        checked: bool,
    ) -> Result<TxnFate, ClientError> {
        if from == to {
            return Ok(TxnFate::Committed); // net-zero movement
        }
        let tid = self.begin()?;
        let (lo, hi) = if from <= to { (from, to) } else { (to, from) };
        for acct in [lo, hi] {
            let delta = if acct == from { -amount } else { amount };
            let old = match self.read(tid, acct) {
                // a server-reported failure means the session
                // transaction terminated; nothing left to abort
                Ok(v) => decode_i64(v),
                Err(ClientError::Server { status, .. }) => {
                    return Ok(TxnFate::Aborted(status));
                }
                Err(e) => return Err(e),
            };
            if checked && acct == from && old < amount {
                self.abort(tid)?;
                return Ok(TxnFate::Insufficient);
            }
            let new = old.wrapping_add(delta);
            match self.write(tid, acct, &new.to_le_bytes()) {
                Ok(()) => {}
                Err(ClientError::Server { status, .. }) => {
                    return Ok(TxnFate::Aborted(status));
                }
                Err(e) => return Err(e),
            }
        }
        self.commit(tid)
    }
}

fn body_read(tid: u64, oid: u64) -> Vec<u8> {
    let mut b = tid.to_le_bytes().to_vec();
    b.extend_from_slice(&oid.to_le_bytes());
    b
}

fn body_write(tid: u64, oid: u64, value: &[u8]) -> Vec<u8> {
    let mut b = body_read(tid, oid);
    b.extend_from_slice(value);
    b
}

/// Decode a READ OK payload: present flag + bytes.
fn decode_read_payload(payload: &[u8]) -> Result<Option<Vec<u8>>, WireError> {
    match get_u8(payload, 0)? {
        0 => Ok(None),
        _ => Ok(Some(payload[1..].to_vec())),
    }
}

/// A missing or malformed counter reads as 0 units.
fn decode_i64(v: Option<Vec<u8>>) -> i64 {
    v.and_then(|b| {
        <[u8; 8]>::try_from(b.as_slice())
            .ok()
            .map(i64::from_le_bytes)
    })
    .unwrap_or(0)
}

/// Map a COMMIT response onto a [`TxnFate`].
fn decode_commit_status(resp: Response) -> Result<TxnFate, ClientError> {
    match resp.status {
        status::OK => Ok(TxnFate::Committed),
        status::ERR_COMMIT_ABORTED => Ok(TxnFate::Aborted(status::ERR_COMMIT_ABORTED)),
        status::ERR_COMMIT_AMBIGUOUS => Ok(TxnFate::Ambiguous),
        _ => Err(ClientError::Server {
            opcode: resp.opcode,
            status: resp.status,
            message: String::from_utf8_lossy(&resp.payload).into_owned(),
        }),
    }
}

/// Encode the `u32` n + n×`u64` tids list shape shared by PREPARE and
/// the decide opcodes.
fn encode_tid_list(tids: &[u64]) -> Vec<u8> {
    let mut body = (tids.len() as u32).to_le_bytes().to_vec();
    for t in tids {
        body.extend_from_slice(&t.to_le_bytes());
    }
    body
}

/// Decode a `u32` m + m×`u64` tids payload (the PREPARE OK body).
fn decode_tid_list_payload(payload: &[u8]) -> Result<Vec<u64>, WireError> {
    let n = get_u32(payload, 0)? as usize;
    let mut tids = Vec::with_capacity(n.min(payload.len() / 8));
    for i in 0..n {
        tids.push(get_u64(payload, 4 + 8 * i)?);
    }
    Ok(tids)
}

/// Encode the shared object-set body shape: `u8` all flag, `u32` n,
/// n×`u64` oids.
fn encode_obset(body: &mut Vec<u8>, obs: Option<&[u64]>) {
    match obs {
        None => {
            body.push(1);
            body.extend_from_slice(&0u32.to_le_bytes());
        }
        Some(oids) => {
            body.push(0);
            body.extend_from_slice(&(oids.len() as u32).to_le_bytes());
            for oid in oids {
                body.extend_from_slice(&oid.to_le_bytes());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asset_common::Config;
    use asset_core::Database;
    use asset_server::AssetServer;
    use std::time::Duration;

    fn server() -> AssetServer {
        let (db, _) = Database::open(
            Config::in_memory()
                .with_exec_workers(2)
                .with_commit_flush_window(Duration::from_micros(100)),
        )
        .expect("open");
        AssetServer::spawn(db, "127.0.0.1:0").expect("spawn")
    }

    fn connect(s: &AssetServer) -> Client {
        Client::connect(&s.local_addr().to_string()).expect("connect")
    }

    #[test]
    fn begin_write_read_commit_round_trip() {
        let s = server();
        let mut c = connect(&s);
        c.ping().unwrap();
        let oid = c.new_oid().unwrap();
        let tid = c.begin().unwrap();
        assert_eq!(c.read(tid, oid).unwrap(), None);
        c.write(tid, oid, b"hello").unwrap();
        assert_eq!(c.read(tid, oid).unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(c.commit(tid).unwrap(), TxnFate::Committed);
        // a new transaction observes the committed image
        let t2 = c.begin().unwrap();
        assert_eq!(c.read(t2, oid).unwrap().as_deref(), Some(&b"hello"[..]));
        c.abort(t2).unwrap();
        s.shutdown();
        s.join();
    }

    #[test]
    fn abort_discards_and_unknown_tid_is_reported() {
        let s = server();
        let mut c = connect(&s);
        let oid = c.new_oid().unwrap();
        let tid = c.begin().unwrap();
        c.write(tid, oid, b"doomed").unwrap();
        c.abort(tid).unwrap();
        let t2 = c.begin().unwrap();
        assert_eq!(c.read(t2, oid).unwrap(), None);
        c.abort(t2).unwrap();
        // the aborted tid no longer names a session transaction
        match c.write(tid, oid, b"x") {
            Err(ClientError::Server { status, .. }) => {
                assert_eq!(status, status::ERR_TXN_NOT_FOUND)
            }
            other => panic!("expected txn-not-found, got {other:?}"),
        }
        s.shutdown();
        s.join();
    }

    #[test]
    fn ledger_helpers_conserve_and_check_funds() {
        let s = server();
        let mut c = connect(&s);
        let (first, n) = c.mint(3, 50).unwrap();
        assert_eq!(n, 3);
        assert_eq!(
            c.transfer(first, first + 1, 20).unwrap(),
            TxnFate::Committed
        );
        assert_eq!(
            c.reserve(first, first + 2, 1000).unwrap(),
            TxnFate::Insufficient
        );
        assert_eq!(
            c.burn(first + 1, first + 2, 70).unwrap(),
            TxnFate::Committed
        );
        assert_eq!(c.sum(first, 3).unwrap(), (150, 3), "money conserved");
        assert_eq!(c.read_i64_committed(first).unwrap(), Some(30));
        assert_eq!(c.read_i64_committed(first + 1).unwrap(), Some(0));
        assert_eq!(c.read_i64_committed(first + 2).unwrap(), Some(120));
        let stats = c.stats().unwrap();
        assert!(stats.committed >= 3);
        s.shutdown();
        s.join();
    }

    #[test]
    fn pipelined_requests_answer_in_order() {
        let s = server();
        let mut c = connect(&s);
        let (first, _) = c.mint(1, 0).unwrap();
        let tid = c.begin().unwrap();
        // queue a burst of writes plus a read without waiting
        let mut ids = Vec::new();
        for i in 0..8u8 {
            ids.push(c.send(opcode::WRITE, body_write(tid, first, &[i])).unwrap());
        }
        ids.push(c.send(opcode::READ, body_read(tid, first)).unwrap());
        assert_eq!(c.inflight(), 9);
        for want in &ids[..8] {
            let resp = c.recv().unwrap();
            assert_eq!(resp.reqid, *want);
            assert_eq!(resp.status, status::OK);
        }
        let last = c.recv().unwrap();
        assert_eq!(last.reqid, ids[8]);
        assert_eq!(
            decode_read_payload(&last.into_ok().unwrap()).unwrap(),
            Some(vec![7]),
            "responses arrive in request order"
        );
        assert_eq!(c.commit(tid).unwrap(), TxnFate::Committed);
        s.shutdown();
        s.join();
    }

    /// Satellite regression (ISSUE 8): a deliberate error response in
    /// the middle of a pipelined batch must consume exactly one pending
    /// slot — every later response still matches its request, and the
    /// connection remains usable.
    #[test]
    fn mid_pipeline_error_does_not_desync_the_stream() {
        use asset_server::protocol::MAX_SUM_COUNT;
        let s = server();
        let mut c = connect(&s);
        let (first, _) = c.mint(2, 10).unwrap();
        let mut sum_body = first.to_le_bytes().to_vec();
        sum_body.extend_from_slice(&u64::MAX.to_le_bytes());
        const { assert!(u64::MAX > MAX_SUM_COUNT) };
        // good, bad (oversized SUM → ERR_RESOURCE_EXHAUSTED), good
        let a = c.send(opcode::PING, Vec::new()).unwrap();
        let b = c.send(opcode::SUM, sum_body).unwrap();
        let d = c.send(opcode::PING, Vec::new()).unwrap();
        assert_eq!(c.inflight(), 3);
        let ra = c.recv().unwrap();
        assert_eq!((ra.reqid, ra.status), (a, status::OK));
        let rb = c.recv().unwrap();
        assert_eq!((rb.reqid, rb.status), (b, status::ERR_RESOURCE_EXHAUSTED));
        let rd = c.recv().unwrap();
        assert_eq!((rd.reqid, rd.status), (d, status::OK));
        assert_eq!(c.inflight(), 0);
        // the connection still works for typed calls after the error
        assert_eq!(c.sum(first, 2).unwrap(), (20, 2));
        s.shutdown();
        s.join();
    }

    /// Satellite regression (ISSUE 8): reqids are correlation ids, not
    /// sequence numbers — a pipelined batch that wraps `u32::MAX` keeps
    /// matching responses to requests.
    #[test]
    fn reqid_wraparound_keeps_responses_matched() {
        let s = server();
        let mut c = connect(&s);
        let (first, _) = c.mint(1, 7).unwrap();
        c.set_next_reqid(u32::MAX - 1);
        let ids: Vec<u32> = (0..4)
            .map(|_| c.send(opcode::PING, Vec::new()).unwrap())
            .collect();
        assert_eq!(ids, vec![u32::MAX - 1, u32::MAX, 0, 1]);
        for want in ids {
            let r = c.recv().unwrap();
            assert_eq!((r.reqid, r.status), (want, status::OK));
        }
        // typed calls keep working across the wrapped space
        assert_eq!(c.sum(first, 1).unwrap(), (7, 1));
        s.shutdown();
        s.join();
    }

    #[test]
    fn recv_without_inflight_is_refused() {
        let s = server();
        let mut c = connect(&s);
        assert!(matches!(c.recv(), Err(ClientError::Io(_))));
        // refusing early left no stream state behind
        c.ping().unwrap();
        s.shutdown();
        s.join();
    }

    /// Wire PREPARE / decide round trip: prepare survives the client
    /// disconnecting, and a second connection delivers the decision.
    #[test]
    fn prepare_then_decide_over_the_wire() {
        let s = server();
        let oid;
        let group;
        {
            let mut c = connect(&s);
            oid = c.new_oid().unwrap();
            let tid = c.begin().unwrap();
            c.write(tid, oid, b"staged").unwrap();
            group = c.prepare(&[tid]).unwrap();
            assert_eq!(group, vec![tid]);
            assert_eq!(c.prepared_state(tid).unwrap(), PreparedState::Prepared);
            // the session no longer owns the prepared txn
            match c.write(tid, oid, b"x") {
                Err(ClientError::Server { status, .. }) => {
                    assert_eq!(status, status::ERR_TXN_NOT_FOUND)
                }
                other => panic!("expected txn-not-found, got {other:?}"),
            }
            // disconnect with the vote cast: must NOT abort it
        }
        let mut c2 = connect(&s);
        assert_eq!(
            c2.prepared_state(group[0]).unwrap(),
            PreparedState::Prepared,
            "disconnect does not abort a prepared transaction"
        );
        c2.commit_decide(&group).unwrap();
        assert_eq!(
            c2.prepared_state(group[0]).unwrap(),
            PreparedState::Committed
        );
        assert_eq!(c2.read_i64_committed(oid).map(|_| ()).unwrap(), ());
        let t = c2.begin().unwrap();
        assert_eq!(c2.read(t, oid).unwrap().as_deref(), Some(&b"staged"[..]));
        c2.abort(t).unwrap();
        // idempotent re-decide
        c2.commit_decide(&group).unwrap();
        s.shutdown();
        s.join();
    }

    /// The abort decision rolls a prepared group back.
    #[test]
    fn prepare_then_abort_decide_over_the_wire() {
        let s = server();
        let mut c = connect(&s);
        let oid = c.new_oid().unwrap();
        let tid = c.begin().unwrap();
        c.write(tid, oid, b"doomed").unwrap();
        let group = c.prepare(&[tid]).unwrap();
        c.abort_decide(&group).unwrap();
        assert_eq!(c.prepared_state(tid).unwrap(), PreparedState::Aborted);
        let t = c.begin().unwrap();
        assert_eq!(c.read(t, oid).unwrap(), None, "prepared write undone");
        c.abort(t).unwrap();
        s.shutdown();
        s.join();
    }

    #[test]
    fn disconnect_aborts_open_transactions() {
        let s = server();
        let oid;
        {
            let mut c = connect(&s);
            oid = c.new_oid().unwrap();
            let tid = c.begin().unwrap();
            c.write(tid, oid, b"orphan").unwrap();
            // drop the connection with the transaction open
        }
        let mut c2 = connect(&s);
        // the server aborts the orphan; its write must not surface.
        // poll briefly: the abort is asynchronous to the disconnect.
        let mut last = None;
        for _ in 0..100 {
            let t = c2.begin().unwrap();
            last = c2.read(t, oid).unwrap();
            c2.abort(t).unwrap();
            if last.is_none() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(last, None, "orphaned write rolled back");
        s.shutdown();
        s.join();
    }
}

//! The state-machine transaction executor: a fixed worker pool driving
//! resumable transactions, replacing thread-per-transaction for
//! throughput-bound workloads (DESIGN.md §12).
//!
//! A transaction submitted through [`Database::submit`] is a **step
//! program**: a closure called repeatedly with a [`StepCtx`] of
//! non-blocking operations, returning a [`TxnStep`] after each slice of
//! work. Workers pull runnable transactions from per-shard run queues and
//! run steps back-to-back; a program that cannot make progress *returns*
//! `WaitLock`/`WaitDep`/`WaitFlush` instead of sleeping, and the scheduler
//! parks the transaction until the matching wake hook fires:
//!
//! * `WaitLock` — the lock table's stripe notification (grant-relevant
//!   state changed on the stripe the request hashed to);
//! * `WaitDep` — the transaction table's event count (any termination or
//!   completion event, the same signal the blocking paths park on);
//! * `WaitFlush` — the group-commit flusher's acknowledgement callback.
//!
//! ## No lost wakeups
//!
//! Each task carries a scheduling state (`PARKED`/`QUEUED`/`RUNNING`/
//! `RUNNING_DIRTY`/`DONE`). A wakeup for a `RUNNING` task marks it
//! `RUNNING_DIRTY`; the worker's park attempt is a CAS `RUNNING → PARKED`
//! that fails against the dirty mark and requeues instead. On the wait
//! side, workers register interest (stripe waiter list, dep waiter list)
//! **before** the final non-blocking re-check, and the notifying side
//! publishes state before firing the hook — the same
//! register→re-check→park discipline the event count uses, model-checked
//! in `tests/loom_executor.rs`.
//!
//! ## Commit
//!
//! When a program finishes, the worker runs the §4.2 commit protocol
//! non-blockingly (`Database::exec_try_commit`): once the dependency gate
//! is open and re-validated, the whole GC group is pinned with
//! `commit_pending` and its commit record is submitted to the
//! [`GroupFlusher`](asset_storage::GroupFlusher) with a callback; the
//! transaction parks on `WaitFlush` and commit acknowledgement is
//! deferred until the record's flush window has been fsynced — many
//! transactions' commit records coalesce into one write+sync. Durability
//! is unchanged: statuses move to `Committed` only after the ack.

use crate::database::{Database, DbInner, ExecCommit, UndoEntry};
use asset_annot::exec_step;
use asset_common::sync::{Condvar, Mutex};
use asset_common::{AssetError, Oid, Operation, Result, Tid, TxnStatus};
use asset_obs::{bump, EventKind, SpanName};
use asset_storage::LogRecord;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};

/// A step program: called with a [`StepCtx`] until it returns
/// [`TxnStep::Done`]. Every call re-enters at the top, so programs must be
/// written resumably — track progress in captured state and treat each
/// operation as retryable (a re-run of an already-granted `try_write` is
/// benign: the lock is held and the same image is installed again).
pub type StepProg = Box<dyn FnMut(&mut StepCtx<'_>) -> TxnStep + Send>;

/// What one call of a step program yielded.
#[derive(Debug)]
pub enum TxnStep {
    /// More work is immediately available; step again.
    Ready,
    /// A lock on `ob` was not grantable: park until the owning stripe
    /// notifies a grant-relevant change (release, permit, delegation).
    WaitLock {
        /// The object whose lock the program is waiting for.
        ob: Oid,
    },
    /// Park until the next transaction-table event (dependency gates,
    /// partner completion — the signal the blocking paths park on).
    WaitDep,
    /// Park until a log-flush acknowledgement. Programs rarely return
    /// this themselves; the commit machinery uses it while a group's
    /// record sits in the flush window. Treated like [`Self::WaitDep`]
    /// when a program returns it directly.
    WaitFlush,
    /// Park until an explicit [`Database::nudge`]. Unlike the other
    /// waits no wake registry is armed: the nudging side must publish
    /// whatever the program will look at (a mailbox entry, a flag)
    /// *before* calling `nudge`, and the `RUNNING_DIRTY` protocol
    /// absorbs the race with a concurrent park. This is the suspension
    /// point for interactive transactions fed by an external request
    /// stream — `asset-server` sessions park here between wire requests.
    WaitExternal,
    /// The program finished *without* entering the local commit
    /// protocol: the transaction rests at `Completed` — locks retained,
    /// changes volatile — for an external commit authority to resolve
    /// (a distributed-commit coordinator via
    /// [`Database::prepare_group`] + the decide calls, DESIGN.md §14).
    /// The task is retired from the executor exactly as for
    /// [`Self::Done`]`(Err(_))`, but nothing is aborted or committed.
    Hold,
    /// The program finished: `Ok` proceeds to the group-commit protocol,
    /// `Err` aborts the transaction.
    Done(Result<()>),
}

/// Outcome of a non-blocking [`StepCtx`] operation.
#[derive(Debug)]
pub enum TryOp<T> {
    /// The operation completed with this value.
    Done(T),
    /// A transaction-duration lock was not grantable; interest in the
    /// stripe is registered — return [`TxnStep::WaitLock`] to park.
    WouldBlock,
}

// scheduling states (one AtomicU8 per task)
const PARKED: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
const RUNNING_DIRTY: u8 = 3;
const DONE: u8 = 4;

/// Steps a worker runs back-to-back on one transaction before requeueing
/// it behind other runnable work (fairness bound).
const STEP_BUDGET: usize = 64;

enum Phase {
    Begin,
    Run,
    Commit,
    AwaitFlush,
}

struct TaskBody {
    phase: Phase,
    prog: Option<StepProg>,
    /// The pinned GC group whose commit record sits in the flush window.
    group: Vec<Tid>,
    /// Commit-phase entry time; `Some` only while tracing is enabled, so
    /// the default path stays clock-free (mirrors the blocking
    /// [`Database::commit`] instrumentation).
    commit_t0: Option<std::time::Instant>,
}

struct Task {
    tid: Tid,
    sched: AtomicU8,
    body: Mutex<TaskBody>,
    /// Written by the flusher's ack callback, consumed in `AwaitFlush`.
    flush_result: Mutex<Option<Result<()>>>,
}

enum StepOutcome {
    Continue,
    Park(&'static str),
    Finished,
}

/// The worker-pool executor: run queues, task table, wake-hook
/// registries. One per database, spawned lazily by the first
/// [`Database::submit`].
pub struct ExecInner {
    db: Weak<DbInner>,
    /// Per-shard run queues, tid-hashed; a pusher never holds a queue
    /// mutex and the pending mutex at once.
    queues: Box<[Mutex<VecDeque<Tid>>]>,
    queue_mask: u64,
    /// Count of queued tasks; workers park on its condvar when idle.
    pending: Mutex<usize>,
    pending_cv: Condvar,
    shutdown: AtomicBool,
    tasks: Mutex<HashMap<Tid, Arc<Task>>>,
    /// Transactions parked on `WaitLock`, listed under the lock-table
    /// stripe whose notification will make the lock grantable.
    stripe_waiters: Box<[Mutex<Vec<Tid>>]>,
    /// Transactions parked on `WaitDep`/commit gates.
    dep_waiters: Mutex<Vec<Tid>>,
    /// Worker threads actually running (0 = degraded inline mode). Written
    /// once inside the `OnceLock` initializer, before any submit sees the
    /// executor.
    live_workers: AtomicUsize,
}

impl ExecInner {
    fn spawn(inner: &Arc<DbInner>) -> Arc<ExecInner> {
        let workers = inner.config.resolved_exec_workers();
        let nq = workers.next_power_of_two().max(2);
        let stripes = inner.locks.shard_count();
        let exec = Arc::new(ExecInner {
            db: Arc::downgrade(inner),
            queues: (0..nq).map(|_| Mutex::new(VecDeque::new())).collect(),
            queue_mask: (nq - 1) as u64,
            pending: Mutex::new(0),
            pending_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            tasks: Mutex::new(HashMap::new()),
            stripe_waiters: (0..stripes).map(|_| Mutex::new(Vec::new())).collect(),
            dep_waiters: Mutex::new(Vec::new()),
            live_workers: AtomicUsize::new(0),
        });
        // Hooks first, then threads: a worker that parks a task after this
        // point is guaranteed a live wake path. Both hooks hold the
        // executor weakly so the hook registries never keep it alive.
        let weak = Arc::downgrade(&exec);
        inner.locks.set_wake_hook(Arc::new(move |stripe| {
            if let Some(e) = weak.upgrade() {
                e.wake_stripe(stripe);
            }
        }));
        let weak = Arc::downgrade(&exec);
        inner.txns.set_bump_hook(Arc::new(move || {
            if let Some(e) = weak.upgrade() {
                e.wake_deps();
            }
        }));
        let mut spawned = 0usize;
        for w in 0..workers {
            let e = Arc::clone(&exec);
            let ok = std::thread::Builder::new()
                .name(format!("asset-exec-{w}"))
                .spawn(move || worker_loop(e))
                .is_ok();
            if ok {
                spawned += 1;
            }
        }
        exec.live_workers.store(spawned, Ordering::Release);
        exec
    }

    fn degraded(&self) -> bool {
        self.live_workers.load(Ordering::Acquire) == 0
    }

    /// Signal shutdown; called when the last database handle drops.
    /// Workers drain out on their own (they are detached).
    pub(crate) fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        drop(self.pending.lock());
        self.pending_cv.notify_all();
    }

    fn queue_of(&self, tid: Tid) -> usize {
        let mut h = tid.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 32;
        (h & self.queue_mask) as usize
    }

    fn push(&self, tid: Tid) {
        {
            self.queues[self.queue_of(tid)].lock().push_back(tid);
        }
        {
            let mut n = self.pending.lock();
            *n += 1;
        }
        self.pending_cv.notify_one();
    }

    /// Pop the next runnable transaction, sleeping when every queue is
    /// empty. This is the worker *idle* loop — the one place a worker
    /// thread blocks, and deliberately not an executor step.
    fn next_task(&self, rotor: &mut usize) -> Option<Tid> {
        let mut pending = self.pending.lock();
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            if *pending > 0 {
                let n = self.queues.len();
                for i in 0..n {
                    let qi = (*rotor + i) % n;
                    if let Some(t) = self.queues[qi].lock().pop_front() {
                        *pending -= 1;
                        *rotor = (qi + 1) % n;
                        return Some(t);
                    }
                }
            }
            self.pending_cv.wait(&mut pending);
        }
    }

    /// Wake a parked task (idempotent): `PARKED → QUEUED` pushes it;
    /// a `RUNNING` task is marked dirty so its park attempt requeues.
    fn enqueue(&self, tid: Tid) {
        let task = {
            match self.tasks.lock().get(&tid) {
                Some(t) => Arc::clone(t),
                None => return,
            }
        };
        loop {
            match task.sched.load(Ordering::Acquire) {
                PARKED => {
                    if task
                        .sched
                        .compare_exchange(PARKED, QUEUED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        self.push(tid);
                        return;
                    }
                }
                RUNNING => {
                    if task
                        .sched
                        .compare_exchange(
                            RUNNING,
                            RUNNING_DIRTY,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        return;
                    }
                }
                // QUEUED / RUNNING_DIRTY / DONE: a wakeup is already pending
                _ => return,
            }
        }
    }

    fn register_stripe_wait(&self, stripe: usize, tid: Tid) {
        if let Some(list) = self.stripe_waiters.get(stripe) {
            list.lock().push(tid);
        }
    }

    fn register_dep_wait(&self, tid: Tid) {
        self.dep_waiters.lock().push(tid);
    }

    fn wake_stripe(&self, stripe: usize) {
        if stripe >= self.stripe_waiters.len() {
            // LockTable::ALL_STRIPES: poison / global-permit / cross-shard
            for s in 0..self.stripe_waiters.len() {
                self.drain_stripe(s);
            }
        } else {
            self.drain_stripe(stripe);
        }
    }

    fn drain_stripe(&self, s: usize) {
        let woken: Vec<Tid> = std::mem::take(&mut *self.stripe_waiters[s].lock());
        for t in woken {
            self.enqueue(t);
        }
    }

    fn wake_deps(&self) {
        let woken: Vec<Tid> = std::mem::take(&mut *self.dep_waiters.lock());
        for t in woken {
            self.enqueue(t);
        }
    }

    fn flush_acked(&self, tid: Tid, res: Result<()>) {
        let task = {
            match self.tasks.lock().get(&tid) {
                Some(t) => Arc::clone(t),
                None => return,
            }
        };
        *task.flush_result.lock() = Some(res);
        self.enqueue(tid);
    }

    /// Run one dispatched transaction for up to [`STEP_BUDGET`] steps.
    #[exec_step]
    fn run_task(exec: &Arc<ExecInner>, db: &Database, tid: Tid) {
        let task = {
            match exec.tasks.lock().get(&tid) {
                Some(t) => Arc::clone(t),
                None => return,
            }
        };
        if task
            .sched
            .compare_exchange(QUEUED, RUNNING, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return;
        }
        let obs = db.obs();
        let mut body = task.body.lock();
        for _ in 0..STEP_BUDGET {
            bump(&obs.counters.exec_steps);
            match Self::step_once(exec, db, &task, &mut body) {
                StepOutcome::Continue => continue,
                StepOutcome::Park(reason) => {
                    bump(&obs.counters.exec_parks);
                    obs.record(EventKind::ExecPark { tid, reason });
                    drop(body);
                    if task
                        .sched
                        .compare_exchange(RUNNING, PARKED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        return;
                    }
                    // a wakeup landed mid-step (RUNNING_DIRTY): requeue
                    bump(&obs.counters.exec_requeues);
                    task.sched.store(QUEUED, Ordering::Release);
                    exec.push(tid);
                    return;
                }
                StepOutcome::Finished => {
                    drop(body);
                    task.sched.store(DONE, Ordering::Release);
                    exec.tasks.lock().remove(&tid);
                    return;
                }
            }
        }
        // budget exhausted: yield the worker to other runnable work
        drop(body);
        task.sched.store(QUEUED, Ordering::Release);
        exec.push(tid);
    }

    /// Commit-phase entry: start the latency clock and open the span,
    /// both gated on tracing exactly as the blocking
    /// [`Database::commit`] is.
    #[exec_step]
    fn open_commit_obs(db: &Database, body: &mut TaskBody, tid: Tid) {
        let obs = &db.inner.obs;
        body.commit_t0 = obs.tracing_enabled().then(std::time::Instant::now);
        if body.commit_t0.is_some() {
            obs.record(EventKind::SpanOpen {
                tid,
                span: SpanName::CommitGate,
            });
        }
    }

    /// Commit-phase exit (committed, aborted, or flush-failed): record
    /// the end-to-end commit latency and close the span.
    #[exec_step]
    fn close_commit_obs(db: &Database, body: &mut TaskBody, tid: Tid) {
        if let Some(t0) = body.commit_t0.take() {
            let obs = &db.inner.obs;
            obs.commit_ns.record(t0.elapsed().as_nanos() as u64);
            obs.record(EventKind::SpanClose {
                tid,
                span: SpanName::CommitGate,
            });
        }
    }

    /// One step of the per-transaction state machine. Never blocks;
    /// suspension is expressed through the returned [`StepOutcome`].
    #[exec_step]
    fn step_once(
        exec: &Arc<ExecInner>,
        db: &Database,
        task: &Task,
        body: &mut TaskBody,
    ) -> StepOutcome {
        let tid = task.tid;
        match body.phase {
            Phase::Begin => match db.exec_begin(tid) {
                Ok(true) => {
                    body.phase = Phase::Run;
                    StepOutcome::Continue
                }
                Ok(false) => {
                    // doomed before it started; the commit phase reports it
                    body.phase = Phase::Commit;
                    Self::open_commit_obs(db, body, tid);
                    StepOutcome::Continue
                }
                Err(_) => {
                    db.abort_many(&[tid]);
                    StepOutcome::Finished
                }
            },
            Phase::Run => {
                // a marked abort finalizes here, on the owning worker —
                // the executor equivalent of run_job's unwind path
                match db.status(tid) {
                    Ok(TxnStatus::Aborting) | Err(_) => {
                        let _ = db.exec_complete(tid, false);
                        return StepOutcome::Finished;
                    }
                    Ok(_) => {}
                }
                let step = {
                    let mut sc = StepCtx {
                        db,
                        exec,
                        tid,
                        blocked_on: None,
                    };
                    // step programs invariantly exist until Done
                    // verify: allow(no_panics) — phase-gated task invariant
                    let prog = body.prog.as_mut().expect("running task has a program");
                    match catch_unwind(AssertUnwindSafe(|| prog(&mut sc))) {
                        Ok(step) => step,
                        Err(_) => TxnStep::Done(Err(AssetError::TxnAborted(tid))),
                    }
                };
                match step {
                    TxnStep::Ready => StepOutcome::Continue,
                    TxnStep::WaitLock { ob } => {
                        // the failed try-op registered interest already;
                        // re-register to cover hand-rolled programs, then
                        // let the dispatcher park (register → re-check on
                        // requeue → park: no lost wakeup)
                        exec.register_stripe_wait(db.inner.locks.stripe_of(ob), tid);
                        StepOutcome::Park("lock")
                    }
                    TxnStep::WaitDep | TxnStep::WaitFlush => {
                        exec.register_dep_wait(tid);
                        StepOutcome::Park("dep")
                    }
                    // no registry: the wake path is an explicit nudge,
                    // and push-then-nudge plus RUNNING_DIRTY covers the
                    // publish/park race
                    TxnStep::WaitExternal => StepOutcome::Park("external"),
                    TxnStep::Hold => {
                        // completion without local commit: the txn rests
                        // at Completed (locks held) for an external
                        // commit authority — prepare/decide (§14) — and
                        // the task retires from the executor
                        let _ = db.exec_complete(tid, true);
                        body.prog = None;
                        StepOutcome::Finished
                    }
                    TxnStep::Done(Ok(())) => {
                        if db.exec_complete(tid, true) {
                            body.prog = None;
                            body.phase = Phase::Commit;
                            Self::open_commit_obs(db, body, tid);
                            StepOutcome::Continue
                        } else {
                            StepOutcome::Finished
                        }
                    }
                    TxnStep::Done(Err(_)) => {
                        let _ = db.exec_complete(tid, false);
                        StepOutcome::Finished
                    }
                }
            }
            Phase::Commit => {
                // register before evaluating: a bump landing between the
                // gate check and the park flips us RUNNING_DIRTY and the
                // dispatcher requeues instead of parking
                exec.register_dep_wait(tid);
                match db.exec_try_commit(tid) {
                    Ok(ExecCommit::Done) => {
                        Self::close_commit_obs(db, body, tid);
                        StepOutcome::Finished
                    }
                    Ok(ExecCommit::Wait) => StepOutcome::Park("dep"),
                    Ok(ExecCommit::Flush(group)) => {
                        body.group = group.clone();
                        let rec = LogRecord::Commit {
                            tids: group.clone(),
                        };
                        let weak = Arc::downgrade(exec);
                        let submitted = db.inner.engine.flusher().submit_with_callback(
                            rec,
                            Box::new(move |res| {
                                if let Some(e) = weak.upgrade() {
                                    e.flush_acked(tid, res.map(|_| ()));
                                }
                            }),
                        );
                        match submitted {
                            Ok(()) => {
                                body.phase = Phase::AwaitFlush;
                                StepOutcome::Continue
                            }
                            Err(_) => {
                                db.exec_flush_failed(tid, &group);
                                Self::close_commit_obs(db, body, tid);
                                StepOutcome::Finished
                            }
                        }
                    }
                    Err(_) => {
                        db.abort_many(&[tid]);
                        Self::close_commit_obs(db, body, tid);
                        StepOutcome::Finished
                    }
                }
            }
            Phase::AwaitFlush => {
                let res = task.flush_result.lock().take();
                match res {
                    Some(Ok(())) => {
                        db.exec_finish_commit(tid, &body.group);
                        Self::close_commit_obs(db, body, tid);
                        StepOutcome::Finished
                    }
                    Some(Err(_)) => {
                        db.exec_flush_failed(tid, &body.group);
                        Self::close_commit_obs(db, body, tid);
                        StepOutcome::Finished
                    }
                    // the ack callback targets this task directly: no
                    // registry needed, the enqueue races are absorbed by
                    // the RUNNING_DIRTY protocol
                    None => StepOutcome::Park("flush"),
                }
            }
        }
    }
}

fn worker_loop(exec: Arc<ExecInner>) {
    let mut rotor = 0usize;
    loop {
        let Some(tid) = exec.next_task(&mut rotor) else {
            return;
        };
        let Some(inner) = exec.db.upgrade() else {
            return;
        };
        let db = Database { inner };
        ExecInner::run_task(&exec, &db, tid);
    }
}

/// The context a step program sees: the transaction's identity plus
/// **non-blocking** data operations. Where [`TxnCtx`](crate::TxnCtx)
/// blocks on a lock conflict, these return [`TryOp::WouldBlock`] after
/// registering interest in the stripe — the program then returns
/// [`TxnStep::WaitLock`] and the worker moves on.
pub struct StepCtx<'a> {
    db: &'a Database,
    exec: &'a ExecInner,
    tid: Tid,
    blocked_on: Option<Oid>,
}

impl StepCtx<'_> {
    /// `self()`: the executing transaction's id.
    pub fn id(&self) -> Tid {
        self.tid
    }

    /// The object the last failed try-operation blocked on, if any —
    /// convenience for `sc.park()`-style program tails.
    pub fn blocked_on(&self) -> Option<Oid> {
        self.blocked_on
    }

    fn check_live(&self) -> Result<()> {
        match self.db.status(self.tid)? {
            TxnStatus::Running => Ok(()),
            TxnStatus::Aborting | TxnStatus::Aborted => Err(AssetError::TxnAborted(self.tid)),
            s => Err(AssetError::InvalidState {
                tid: self.tid,
                status: s,
                op: "operation",
            }),
        }
    }

    /// Register-then-re-check lock acquisition: on conflict, interest in
    /// the stripe is published **before** the second attempt, so a grant
    /// that lands in between is observed by the retry and a grant after
    /// the park is delivered by the stripe hook — no lost wakeup.
    #[exec_step]
    fn try_acquire(&mut self, ob: Oid, op: Operation) -> Result<bool> {
        let inner = &self.db.inner;
        if inner.locks.try_lock(self.tid, ob, op).is_ok() {
            self.blocked_on = None;
            return Ok(true);
        }
        self.exec
            .register_stripe_wait(inner.locks.stripe_of(ob), self.tid);
        match inner.locks.try_lock(self.tid, ob, op) {
            Ok(()) => {
                self.blocked_on = None;
                Ok(true)
            }
            Err(holders) => {
                // same deadlock policy as the blocking path, applied at
                // park time instead of sleep time
                inner.locks.note_blocked(self.tid, &holders)?;
                self.blocked_on = Some(ob);
                Ok(false)
            }
        }
    }

    /// Non-blocking read: read-lock (honoring permits) then an S-latched
    /// read. `Done(None)` if the object does not exist.
    #[exec_step]
    pub fn try_read(&mut self, ob: Oid) -> Result<TryOp<Option<Vec<u8>>>> {
        self.check_live()?;
        if !self.try_acquire(ob, Operation::Read)? {
            return Ok(TryOp::WouldBlock);
        }
        Ok(TryOp::Done(self.db.inner.engine.read_object(ob)?))
    }

    /// Non-blocking write: write-lock, X-latched install, before/after
    /// images logged, undo entry recorded — `TxnCtx::write` without the
    /// lock wait.
    #[exec_step]
    pub fn try_write(&mut self, ob: Oid, bytes: impl Into<Vec<u8>>) -> Result<TryOp<()>> {
        self.try_install(ob, Some(bytes.into()))
    }

    /// Non-blocking delete (a write installing a tombstone).
    #[exec_step]
    pub fn try_delete(&mut self, ob: Oid) -> Result<TryOp<()>> {
        self.try_install(ob, None)
    }

    /// Non-blocking exclusive lock without writing yet (upgrade-avoidance,
    /// as [`TxnCtx::lock_exclusive`](crate::TxnCtx::lock_exclusive)).
    #[exec_step]
    pub fn try_lock_exclusive(&mut self, ob: Oid) -> Result<TryOp<()>> {
        self.check_live()?;
        if !self.try_acquire(ob, Operation::Write)? {
            return Ok(TryOp::WouldBlock);
        }
        Ok(TryOp::Done(()))
    }

    #[exec_step]
    fn try_install(&mut self, ob: Oid, after: Option<Vec<u8>>) -> Result<TryOp<()>> {
        self.check_live()?;
        if !self.try_acquire(ob, Operation::Write)? {
            return Ok(TryOp::WouldBlock);
        }
        let inner = &self.db.inner;
        let before = inner.engine.write_object(self.tid, ob, after)?;
        let seq = inner.undo_seq.fetch_add(1, Ordering::Relaxed);
        inner.txns.with(self.tid, |slot| {
            if let Some(slot) = slot {
                slot.undo.push(UndoEntry {
                    seq,
                    oid: ob,
                    before,
                });
            }
        });
        Ok(TryOp::Done(()))
    }
}

impl std::fmt::Debug for StepCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "StepCtx({})", self.tid)
    }
}

impl Database {
    fn executor(&self) -> Arc<ExecInner> {
        Arc::clone(
            self.inner
                .exec
                .get_or_init(|| ExecInner::spawn(&self.inner)),
        )
    }

    /// Live executor worker threads (spawning the pool on first call).
    /// Normally `Config::resolved_exec_workers()`; `0` means every
    /// worker spawn failed and the executor runs in **degraded inline
    /// mode**, where [`submit`](Self::submit) drives the whole program
    /// on the calling thread. Embedders whose programs park on
    /// [`TxnStep::WaitExternal`] (e.g. a network server's session
    /// transactions) must refuse to run in that mode — inline `submit`
    /// would never return.
    pub fn executor_workers(&self) -> usize {
        self.executor().live_workers.load(Ordering::Acquire)
    }

    /// Submit a transaction to the state-machine executor: `initiate` +
    /// executor-side `begin` + stepwise execution + group commit through
    /// the batched log flusher, all driven by the worker pool. Returns the
    /// tid immediately; await the result with [`outcome`](Self::outcome).
    ///
    /// The program is re-entered from the top on every step, so it must be
    /// resumable: track progress in captured state.
    ///
    /// ```
    /// use asset_core::{Database, TryOp, TxnStep};
    ///
    /// let db = Database::in_memory();
    /// let account = db.new_oid();
    /// let t = db
    ///     .submit(move |sc| match sc.try_write(account, b"100".to_vec()) {
    ///         Ok(TryOp::Done(())) => TxnStep::Done(Ok(())),
    ///         Ok(TryOp::WouldBlock) => TxnStep::WaitLock { ob: account },
    ///         Err(e) => TxnStep::Done(Err(e)),
    ///     })
    ///     .unwrap();
    /// assert!(db.outcome(t).unwrap(), "committed through the flush window");
    /// assert_eq!(db.peek(account).unwrap().unwrap(), b"100");
    /// ```
    pub fn submit(
        &self,
        prog: impl FnMut(&mut StepCtx<'_>) -> TxnStep + Send + 'static,
    ) -> Result<Tid> {
        let exec = self.executor();
        // executor transactions reuse the TD admission path; the slot's
        // job is a placeholder (the program lives in the task)
        let t = self.initiate(|_| Ok(()))?;
        let task = Arc::new(Task {
            tid: t,
            sched: AtomicU8::new(QUEUED),
            body: Mutex::new(TaskBody {
                phase: Phase::Begin,
                prog: Some(Box::new(prog)),
                group: Vec::new(),
                commit_t0: None,
            }),
            flush_result: Mutex::new(None),
        });
        exec.tasks.lock().insert(t, Arc::clone(&task));
        if exec.degraded() {
            // no worker threads could be spawned: drive the machine here
            run_inline(&exec, self, &task);
        } else {
            exec.push(t);
        }
        Ok(t)
    }

    /// Block until a submitted transaction reaches a terminal state;
    /// `true` if it committed. (The submitting thread may block — worker
    /// steps never do.)
    pub fn outcome(&self, t: Tid) -> Result<bool> {
        loop {
            let epoch = self.inner.txns.epoch();
            match self.status(t)? {
                TxnStatus::Committed => return Ok(true),
                TxnStatus::Aborted => return Ok(false),
                _ => self.inner.txns.wait_event(epoch),
            }
        }
    }

    /// Like [`outcome`](Self::outcome), but distinguishes the ambiguous
    /// commit failure from an ordinary abort: a transaction whose group
    /// commit record failed at the commit point is driven through abort
    /// locally, yet the record may have reached stable storage — after a
    /// restart, recovery can legitimately resolve it either way. Remote
    /// clients need the distinction (retrying an "aborted" transfer is
    /// safe; retrying an "unknown" one can double-apply), so the wire
    /// protocol maps this to its own error code (DESIGN.md §13).
    pub fn outcome_kind(&self, t: Tid) -> Result<TxnOutcome> {
        loop {
            let epoch = self.inner.txns.epoch();
            let st = self
                .inner
                .txns
                .with(t, |slot| slot.map(|s| (s.status, s.commit_ambiguous)))
                .ok_or(AssetError::TxnNotFound(t))?;
            match st {
                (TxnStatus::Committed, _) => return Ok(TxnOutcome::Committed),
                (TxnStatus::Aborted, true) => return Ok(TxnOutcome::CommitAmbiguous),
                (TxnStatus::Aborted, false) => return Ok(TxnOutcome::Aborted),
                _ => self.inner.txns.wait_event(epoch),
            }
        }
    }

    /// Wake a submitted transaction parked on [`TxnStep::WaitExternal`].
    /// Idempotent and cheap: a no-op when the executor was never spawned,
    /// the transaction is not (or no longer) a task, or a wakeup is
    /// already pending. Callers must publish the state the program will
    /// consume (push to the mailbox, set the flag) **before** nudging;
    /// the executor's `RUNNING_DIRTY` mark then guarantees the program
    /// observes it even if the nudge lands mid-step.
    ///
    /// **Stale and unknown tids are safe.** This is a contract, not an
    /// accident: server sessions race their nudges against transaction
    /// completion, so a nudge may land after the task reached `DONE` and
    /// was retired, after the tid was never submitted (plain
    /// `initiate`/`begin` transactions), or with a tid this database has
    /// never seen. All of these are silent no-ops — `enqueue` consults
    /// the task table under its lock and ignores missing entries, and a
    /// `DONE` task's scheduling byte rejects the requeue. A nudge can
    /// never panic, abort, or misdirect a *different* transaction: tids
    /// are never reused within a database (the `IdGen` is monotonic),
    /// so a retired tid cannot alias a live one.
    pub fn nudge(&self, t: Tid) {
        if let Some(exec) = self.inner.exec.get() {
            exec.enqueue(t);
        }
    }
}

/// Terminal result of a submitted transaction, as reported by
/// [`Database::outcome_kind`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxnOutcome {
    /// The commit record is durable; effects are visible and permanent.
    Committed,
    /// The transaction aborted: its effects were rolled back and its
    /// commit record (if any was attempted) never entered the log.
    Aborted,
    /// The group commit record **failed at the commit point** — it may or
    /// may not have reached stable storage. The live system drove the
    /// group through abort (rollback is logged after the ambiguous
    /// record, so both sides of a restart converge on "not committed"),
    /// but a client must treat the operation's fate as unknown rather
    /// than cleanly aborted.
    CommitAmbiguous,
}

/// Degraded path for environments where no worker thread could be
/// spawned: drive the task's state machine on the submitting thread,
/// yielding between parks (wake hooks still flip the task runnable).
fn run_inline(exec: &Arc<ExecInner>, db: &Database, task: &Arc<Task>) {
    loop {
        match task.sched.load(Ordering::Acquire) {
            DONE => break,
            QUEUED | RUNNING_DIRTY => {
                task.sched.store(QUEUED, Ordering::Release);
                ExecInner::run_task(exec, db, task.tid);
            }
            _ => std::thread::yield_now(),
        }
    }
    // nobody drains the run queues in degraded mode; clear the wakeup
    // residue so it cannot accumulate across submissions
    for q in exec.queues.iter() {
        q.lock().clear();
    }
    *exec.pending.lock() = 0;
}

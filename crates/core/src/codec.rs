//! Typed persistent values: the role Ode's O++ object model played above
//! EOS.
//!
//! ASSET locks, permits, delegates and logs at *object* granularity over
//! raw byte payloads. [`ObjectCodec`] layers typed access on top without
//! changing any of that: a `Handle<T>` is an [`Oid`] plus a phantom type,
//! and [`TxnCtx::get`]/[`TxnCtx::put`]/[`TxnCtx::modify`] encode/decode at
//! the boundary. Payload layout is a stable little-endian format (not a
//! general serializer — the approved dependency set has none, and the
//! substrate only needs round-tripping).

use crate::context::TxnCtx;
use asset_common::{AssetError, Oid, Result};
use std::marker::PhantomData;

/// Encode/decode a value to/from an object payload.
pub trait ObjectCodec: Sized {
    /// Encode into bytes.
    fn encode(&self) -> Vec<u8>;
    /// Decode from bytes; errors surface as [`AssetError::Corrupt`].
    fn decode(bytes: &[u8]) -> Result<Self>;
}

/// Read a little-endian `u32` length prefix at `at`, failing with
/// [`AssetError::Corrupt`] instead of panicking on short payloads.
fn read_u32(bytes: &[u8], at: usize) -> Result<u32> {
    bytes
        .get(at..at + 4)
        .and_then(|s| <[u8; 4]>::try_from(s).ok())
        .map(u32::from_le_bytes)
        .ok_or_else(|| AssetError::Corrupt("truncated length prefix".into()))
}

macro_rules! int_codec {
    ($($t:ty),*) => {$(
        impl ObjectCodec for $t {
            fn encode(&self) -> Vec<u8> {
                self.to_le_bytes().to_vec()
            }
            fn decode(bytes: &[u8]) -> Result<Self> {
                let arr: [u8; std::mem::size_of::<$t>()] = bytes.try_into().map_err(|_| {
                    AssetError::Corrupt(format!(
                        "expected {} bytes for {}, got {}",
                        std::mem::size_of::<$t>(),
                        stringify!($t),
                        bytes.len()
                    ))
                })?;
                Ok(<$t>::from_le_bytes(arr))
            }
        }
    )*};
}

int_codec!(u8, u16, u32, u64, i8, i16, i32, i64, u128, i128);

impl ObjectCodec for bool {
    fn encode(&self) -> Vec<u8> {
        vec![*self as u8]
    }
    fn decode(bytes: &[u8]) -> Result<Self> {
        match bytes {
            [0] => Ok(false),
            [1] => Ok(true),
            _ => Err(AssetError::Corrupt(
                "bool payload must be one byte 0/1".into(),
            )),
        }
    }
}

impl ObjectCodec for f64 {
    fn encode(&self) -> Vec<u8> {
        self.to_le_bytes().to_vec()
    }
    fn decode(bytes: &[u8]) -> Result<Self> {
        let arr: [u8; 8] = bytes
            .try_into()
            .map_err(|_| AssetError::Corrupt("expected 8 bytes for f64".into()))?;
        Ok(f64::from_le_bytes(arr))
    }
}

impl ObjectCodec for String {
    fn encode(&self) -> Vec<u8> {
        self.as_bytes().to_vec()
    }
    fn decode(bytes: &[u8]) -> Result<Self> {
        String::from_utf8(bytes.to_vec())
            .map_err(|e| AssetError::Corrupt(format!("invalid utf-8 payload: {e}")))
    }
}

/// Raw, uninterpreted bytes (a plain `Vec<u8>` payload with no framing —
/// `Vec<u8>` itself takes the generic length-prefixed `Vec<T>` encoding).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct RawBytes(pub Vec<u8>);

impl ObjectCodec for RawBytes {
    fn encode(&self) -> Vec<u8> {
        self.0.clone()
    }
    fn decode(bytes: &[u8]) -> Result<Self> {
        Ok(RawBytes(bytes.to_vec()))
    }
}

impl<T: ObjectCodec> ObjectCodec for Vec<T>
where
    T: 'static,
{
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        for item in self {
            let b = item.encode();
            out.extend_from_slice(&(b.len() as u32).to_le_bytes());
            out.extend_from_slice(&b);
        }
        out
    }
    fn decode(bytes: &[u8]) -> Result<Self> {
        let need = |cond: bool| {
            if cond {
                Ok(())
            } else {
                Err(AssetError::Corrupt("truncated Vec payload".into()))
            }
        };
        need(bytes.len() >= 4)?;
        let n = read_u32(bytes, 0)? as usize;
        let mut pos = 4usize;
        let mut out = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            need(bytes.len() >= pos + 4)?;
            let len = read_u32(bytes, pos)? as usize;
            pos += 4;
            need(bytes.len() >= pos + len)?;
            out.push(T::decode(&bytes[pos..pos + len])?);
            pos += len;
        }
        if pos != bytes.len() {
            return Err(AssetError::Corrupt(
                "trailing bytes after Vec payload".into(),
            ));
        }
        Ok(out)
    }
}

impl<A: ObjectCodec, B: ObjectCodec> ObjectCodec for (A, B) {
    fn encode(&self) -> Vec<u8> {
        let a = self.0.encode();
        let b = self.1.encode();
        let mut out = Vec::with_capacity(8 + a.len() + b.len());
        out.extend_from_slice(&(a.len() as u32).to_le_bytes());
        out.extend_from_slice(&a);
        out.extend_from_slice(&b);
        out
    }
    fn decode(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < 4 {
            return Err(AssetError::Corrupt("truncated tuple payload".into()));
        }
        let alen = read_u32(bytes, 0)? as usize;
        if bytes.len() < 4 + alen {
            return Err(AssetError::Corrupt("truncated tuple payload".into()));
        }
        Ok((
            A::decode(&bytes[4..4 + alen])?,
            B::decode(&bytes[4 + alen..])?,
        ))
    }
}

/// A typed handle to a persistent object: an [`Oid`] plus the payload type.
pub struct Handle<T> {
    oid: Oid,
    _marker: PhantomData<fn() -> T>,
}

// manual impls: `derive` would bound them on `T`
impl<T> Clone for Handle<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Handle<T> {}

impl<T> std::fmt::Debug for Handle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Handle<{}>({})", std::any::type_name::<T>(), self.oid)
    }
}

impl<T> Handle<T> {
    /// Wrap an oid as a typed handle. The caller asserts the payload type;
    /// decoding checks it structurally at access time.
    pub fn from_oid(oid: Oid) -> Handle<T> {
        Handle {
            oid,
            _marker: PhantomData,
        }
    }

    /// The underlying object id (for `ObSet`s, permits, delegation).
    pub fn oid(&self) -> Oid {
        self.oid
    }
}

impl TxnCtx {
    /// Typed read: read-lock, fetch, decode. `None` if the object does not
    /// exist.
    pub fn get<T: ObjectCodec>(&self, h: Handle<T>) -> Result<Option<T>> {
        match self.read(h.oid())? {
            None => Ok(None),
            Some(bytes) => T::decode(&bytes).map(Some),
        }
    }

    /// Typed write: encode, write-lock, install, log.
    pub fn put<T: ObjectCodec>(&self, h: Handle<T>, value: &T) -> Result<()> {
        self.write(h.oid(), value.encode())
    }

    /// Typed create: returns a fresh handle.
    pub fn create_typed<T: ObjectCodec>(&self, value: &T) -> Result<Handle<T>> {
        Ok(Handle::from_oid(self.create(value.encode())?))
    }

    /// Typed read-modify-write under the write lock. Errors if the object
    /// does not exist.
    pub fn modify<T: ObjectCodec>(&self, h: Handle<T>, f: impl FnOnce(T) -> T) -> Result<()> {
        let oid = h.oid();
        // take the write lock first (no read→write upgrade window)
        let mut decoded: Result<T> = Err(AssetError::ObjectNotFound(oid));
        self.update(oid, |cur| match cur {
            None => {
                decoded = Err(AssetError::ObjectNotFound(oid));
                Vec::new()
            }
            Some(bytes) => match T::decode(&bytes) {
                Ok(v) => {
                    let next = f(v);
                    let enc = next.encode();
                    decoded = Ok(next);
                    enc
                }
                Err(e) => {
                    decoded = Err(e);
                    bytes
                }
            },
        })?;
        decoded.map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Database;

    fn roundtrip<T: ObjectCodec + PartialEq + std::fmt::Debug>(v: T) {
        let enc = v.encode();
        let dec = T::decode(&enc).unwrap();
        assert_eq!(v, dec);
    }

    #[test]
    fn scalar_roundtrips() {
        roundtrip(0u8);
        roundtrip(u16::MAX);
        roundtrip(-5i32);
        roundtrip(u64::MAX);
        roundtrip(i128::MIN);
        roundtrip(true);
        roundtrip(false);
        roundtrip(1.5f64);
        roundtrip(String::from("héllo wörld"));
        roundtrip(RawBytes(vec![1, 2, 3]));
        roundtrip(vec![1u8, 2, 3]);
    }

    #[test]
    fn container_roundtrips() {
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip(vec![String::from("a"), String::from("bb")]);
        roundtrip((42u64, String::from("answer")));
        roundtrip((String::from("k"), vec![7i32, 8])); // nested
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(u64::decode(&[1, 2, 3]).is_err());
        assert!(bool::decode(&[9]).is_err());
        assert!(bool::decode(&[]).is_err());
        assert!(String::decode(&[0xFF, 0xFE]).is_err());
        assert!(<Vec<u64>>::decode(&[5, 0, 0, 0, 1]).is_err(), "truncated");
        assert!(<(u64, u64)>::decode(&[1]).is_err());
        // trailing bytes
        let mut enc = vec![0, 0, 0, 0];
        enc.push(99);
        assert!(<Vec<u64>>::decode(&enc).is_err());
    }

    #[test]
    fn typed_access_through_transactions() {
        let db = Database::in_memory();
        let handle: Handle<u64> = Handle::from_oid(db.new_oid());
        assert!(db
            .run(move |ctx| {
                assert_eq!(ctx.get(handle)?, None);
                ctx.put(handle, &41)?;
                ctx.modify(handle, |v| v + 1)?;
                assert_eq!(ctx.get(handle)?, Some(42));
                Ok(())
            })
            .unwrap());
        assert_eq!(db.peek(handle.oid()).unwrap().unwrap(), 42u64.to_le_bytes());
    }

    #[test]
    fn create_typed_allocates() {
        let db = Database::in_memory();
        let out: std::sync::Arc<parking_lot::Mutex<Option<Handle<String>>>> =
            std::sync::Arc::new(parking_lot::Mutex::new(None));
        let o2 = std::sync::Arc::clone(&out);
        assert!(db
            .run(move |ctx| {
                let h = ctx.create_typed(&String::from("persistent"))?;
                *o2.lock() = Some(h);
                Ok(())
            })
            .unwrap());
        let h = out.lock().unwrap();
        assert!(db
            .run(move |ctx| {
                assert_eq!(ctx.get(h)?.unwrap(), "persistent");
                Ok(())
            })
            .unwrap());
    }

    #[test]
    fn modify_missing_object_errors() {
        let db = Database::in_memory();
        let handle: Handle<u64> = Handle::from_oid(db.new_oid());
        let committed = db.run(move |ctx| ctx.modify(handle, |v| v + 1)).unwrap();
        assert!(!committed, "the error aborts the transaction");
    }

    #[test]
    fn typed_abort_restores() {
        let db = Database::in_memory();
        let handle: Handle<i64> = Handle::from_oid(db.new_oid());
        assert!(db.run(move |ctx| ctx.put(handle, &100)).unwrap());
        let committed = db
            .run(move |ctx| {
                ctx.modify(handle, |v| v - 60)?;
                ctx.abort_self::<()>().map(|_| ())
            })
            .unwrap();
        assert!(!committed);
        assert!(db
            .run(move |ctx| {
                assert_eq!(ctx.get(handle)?, Some(100));
                Ok(())
            })
            .unwrap());
    }
}

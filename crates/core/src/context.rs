//! The transaction context: what a transaction's code sees.
//!
//! A [`TxnCtx`] is handed to the closure given to `initiate`; it carries
//! the transaction's identity (`self()` in the paper) and proxies both the
//! data operations (`read`/`write` — which take transaction-duration locks
//! per §4.2 and log before/after images) and the transaction-management
//! primitives, so that transaction code can itself initiate, delegate to,
//! permit, and form dependencies with other transactions — the essence of
//! ASSET's programmability.

use crate::database::{Database, UndoEntry};
use asset_common::{AssetError, DepType, ObSet, Oid, OpSet, Operation, Result, Tid, TxnStatus};
use std::sync::atomic::Ordering;

/// The execution context of one transaction.
pub struct TxnCtx {
    db: Database,
    tid: Tid,
}

impl TxnCtx {
    pub(crate) fn new(db: Database, tid: Tid) -> TxnCtx {
        TxnCtx { db, tid }
    }

    /// `self()`: the executing transaction's id.
    pub fn id(&self) -> Tid {
        self.tid
    }

    /// `parent()`: the initiating transaction's id (`Tid::NULL` for
    /// top-level transactions).
    pub fn parent(&self) -> Tid {
        self.db.parent_of(self.tid).unwrap_or(Tid::NULL)
    }

    /// The database handle (shared state with every other handle).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Abort-aware status check before any operation: an `Aborting`
    /// transaction may not perform further work.
    fn check_live(&self) -> Result<()> {
        match self.db.status(self.tid)? {
            TxnStatus::Running => Ok(()),
            TxnStatus::Aborting | TxnStatus::Aborted => Err(AssetError::TxnAborted(self.tid)),
            s => Err(AssetError::InvalidState {
                tid: self.tid,
                status: s,
                op: "operation",
            }),
        }
    }

    // --- data operations (paper §4.2 read/write) -------------------------

    /// Read `ob`: read-lock (blocking; honoring permits), then an S-latched
    /// read from the shared cache. `None` if the object does not exist.
    pub fn read(&self, ob: Oid) -> Result<Option<Vec<u8>>> {
        self.check_live()?;
        let inner = &self.db.inner;
        inner.locks.lock(
            self.tid,
            ob,
            Operation::Read,
            inner.config.lock_wait_timeout,
        )?;
        inner.engine.read_object(ob)
    }

    /// Write `ob`: write-lock, X-latched install, before/after images
    /// logged, undo entry recorded.
    pub fn write(&self, ob: Oid, bytes: impl Into<Vec<u8>>) -> Result<()> {
        self.install(ob, Some(bytes.into()))
    }

    /// Delete `ob` (a write that installs a tombstone).
    pub fn delete(&self, ob: Oid) -> Result<()> {
        self.install(ob, None)
    }

    /// Create a fresh object with `bytes`; returns its id.
    pub fn create(&self, bytes: impl Into<Vec<u8>>) -> Result<Oid> {
        let oid = self.db.new_oid();
        self.install(oid, Some(bytes.into()))?;
        Ok(oid)
    }

    fn install(&self, ob: Oid, after: Option<Vec<u8>>) -> Result<()> {
        self.check_live()?;
        let inner = &self.db.inner;
        inner.locks.lock(
            self.tid,
            ob,
            Operation::Write,
            inner.config.lock_wait_timeout,
        )?;
        let before = inner.engine.write_object(self.tid, ob, after)?;
        let seq = inner.undo_seq.fetch_add(1, Ordering::Relaxed);
        inner.txns.with(self.tid, |slot| {
            if let Some(slot) = slot {
                slot.undo.push(UndoEntry {
                    seq,
                    oid: ob,
                    before,
                });
            }
        });
        Ok(())
    }

    /// Explicitly acquire the write lock on `ob` without writing yet.
    ///
    /// Use before a read-check-write sequence to avoid the read→write
    /// upgrade window (two transactions both holding read locks and both
    /// upgrading deadlock; locking write-first serializes them cleanly).
    pub fn lock_exclusive(&self, ob: Oid) -> Result<()> {
        self.check_live()?;
        let inner = &self.db.inner;
        inner.locks.lock(
            self.tid,
            ob,
            Operation::Write,
            inner.config.lock_wait_timeout,
        )
    }

    /// Explicitly acquire the read lock on `ob` without reading yet.
    pub fn lock_shared(&self, ob: Oid) -> Result<()> {
        self.check_live()?;
        let inner = &self.db.inner;
        inner.locks.lock(
            self.tid,
            ob,
            Operation::Read,
            inner.config.lock_wait_timeout,
        )
    }

    /// Read and modify in one step (lock, read, apply `f`, write back).
    pub fn update(&self, ob: Oid, f: impl FnOnce(Option<Vec<u8>>) -> Vec<u8>) -> Result<()> {
        self.check_live()?;
        let inner = &self.db.inner;
        inner.locks.lock(
            self.tid,
            ob,
            Operation::Write,
            inner.config.lock_wait_timeout,
        )?;
        let current = inner.engine.read_object(ob)?;
        let next = f(current);
        self.install(ob, Some(next))
    }

    // --- transaction-management primitives -------------------------------

    /// `initiate(f)` with this transaction as the parent.
    pub fn initiate(&self, f: impl FnOnce(&TxnCtx) -> Result<()> + Send + 'static) -> Result<Tid> {
        self.db.initiate_with_parent(self.tid, Box::new(f))
    }

    /// `begin(t)`.
    pub fn begin(&self, t: Tid) -> Result<()> {
        self.db.begin(t)
    }

    /// `commit(t)`.
    pub fn commit(&self, t: Tid) -> Result<bool> {
        self.db.commit(t)
    }

    /// `wait(t)`.
    pub fn wait(&self, t: Tid) -> Result<bool> {
        self.db.wait(t)
    }

    /// `abort(t)`. Aborting `self()` is legal — subsequent operations fail
    /// and the transaction finalizes when its closure returns.
    pub fn abort(&self, t: Tid) -> Result<bool> {
        self.db.abort(t)
    }

    /// Abort the executing transaction and return the error to propagate
    /// out of the closure: `return ctx.abort_self();`.
    pub fn abort_self<T>(&self) -> Result<T> {
        let _ = self.db.abort(self.tid);
        Err(AssetError::TxnAborted(self.tid))
    }

    /// `delegate(ti, tj, ob_set)` — `self()` as the default delegator is
    /// [`delegate_to`](Self::delegate_to).
    pub fn delegate(&self, from: Tid, to: Tid, obs: Option<ObSet>) -> Result<()> {
        self.db.delegate(from, to, obs)
    }

    /// `delegate(self(), to)` — hand everything this transaction is
    /// responsible for to `to`.
    pub fn delegate_to(&self, to: Tid) -> Result<()> {
        self.db.delegate(self.tid, to, None)
    }

    /// `permit(ti, tj, ob_set, operations)`.
    pub fn permit(&self, grantor: Tid, grantee: Option<Tid>, obs: ObSet, ops: OpSet) -> Result<()> {
        self.db.permit(grantor, grantee, obs, ops)
    }

    /// `permit(self(), t)` — allow `t` any conflicting operation on any
    /// object of ours, as a *standing* wildcard (covers objects we lock
    /// later too; the paper's call-time materialization is
    /// [`Database::permit_accessed`]).
    pub fn permit_all(&self, grantee: Tid) -> Result<()> {
        self.db
            .permit(self.tid, Some(grantee), ObSet::All, OpSet::ALL)
    }

    /// `form_dependency(type, ti, tj)`.
    pub fn form_dependency(&self, kind: DepType, ti: Tid, tj: Tid) -> Result<()> {
        self.db.form_dependency(kind, ti, tj)
    }

    /// Which objects does this transaction currently hold locks on?
    pub fn locked_objects(&self) -> Vec<Oid> {
        self.db.inner.locks.locked_objects(self.tid)
    }
}

impl std::fmt::Debug for TxnCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TxnCtx({})", self.tid)
    }
}

//! The sharded transaction table (TDs) — the paper's hash-by-tid side of
//! the §4.1 double hashing.
//!
//! Transaction descriptors live in N independently locked stripes keyed by
//! an avalanched tid hash, so unrelated transactions never contend on one
//! table mutex. Multi-descriptor operations (group commit validation,
//! delegation splicing, `form_dependency`) take a [`GroupGuard`], which
//! locks the deduplicated set of touched shards in ascending index order —
//! the global ordering rule that keeps the manager deadlock-free.
//!
//! The old all-purpose `status_cv` is replaced by an **event count**: a
//! monotonically increasing epoch bumped on every observable state change.
//! Waiters snapshot the epoch, evaluate their predicate against the shards,
//! and sleep only if the epoch is unchanged — a notification between the
//! predicate check and the sleep just makes the sleep return immediately,
//! so no status change can be lost no matter which shard it happened in.

use crate::database::TxnSlot;
use asset_annot::verify_allow;
use asset_common::config::resolve_shards;
use asset_common::sync::{Condvar, Mutex, MutexGuard};
use asset_common::Tid;
use std::collections::{BTreeSet, HashMap};

type Shard = Mutex<HashMap<Tid, TxnSlot>>;

pub(crate) struct TxnTable {
    shards: Box<[Shard]>,
    mask: u64,
    /// Event count: bumped on every status change anyone might wait for.
    epoch: Mutex<u64>,
    event_cv: Condvar,
    /// Executor wake hook: invoked after every [`bump`](Self::bump) so the
    /// worker pool can requeue transactions parked on a dependency gate.
    /// The hook runs on the bumping thread with no shard lock held.
    bump_hook: Mutex<Option<std::sync::Arc<dyn Fn() + Send + Sync>>>,
    /// Fast-path skip for the hook check on the bump hot path.
    bump_hook_set: std::sync::atomic::AtomicBool,
}

impl TxnTable {
    pub fn new(requested_shards: usize) -> TxnTable {
        let n = resolve_shards(requested_shards);
        TxnTable {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            mask: (n - 1) as u64,
            epoch: Mutex::new(0),
            event_cv: Condvar::new(),
            bump_hook: Mutex::new(None),
            bump_hook_set: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Install the executor wake hook fired after every epoch bump.
    pub fn set_bump_hook(&self, hook: std::sync::Arc<dyn Fn() + Send + Sync>) {
        *self.bump_hook.lock() = Some(hook);
        self.bump_hook_set
            .store(true, std::sync::atomic::Ordering::Release);
    }

    fn shard_index(&self, t: Tid) -> usize {
        let mut h = t.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 32;
        (h & self.mask) as usize
    }

    /// Run `f` with `t`'s slot (if any) under its shard lock.
    pub fn with<R>(&self, t: Tid, f: impl FnOnce(Option<&mut TxnSlot>) -> R) -> R {
        let mut map = self.shards[self.shard_index(t)].lock();
        f(map.get_mut(&t))
    }

    pub fn insert(&self, t: Tid, slot: TxnSlot) {
        self.shards[self.shard_index(t)].lock().insert(t, slot);
    }

    /// Lock the shards of `tids` (deduplicated, ascending index order).
    #[verify_allow(
        lock_order,
        reason = "blessed multi-lock: BTreeSet dedups and sorts shard indices, so acquisition is strictly ascending"
    )]
    pub fn lock_group(&self, tids: &[Tid]) -> GroupGuard<'_> {
        let idxs: BTreeSet<usize> = tids.iter().map(|t| self.shard_index(*t)).collect();
        GroupGuard {
            table: self,
            guards: idxs
                .into_iter()
                .map(|i| (i, self.shards[i].lock()))
                .collect(),
        }
    }

    /// Lock every shard (quiescent operations: checkpoint, log compaction,
    /// retirement).
    #[verify_allow(
        lock_order,
        reason = "blessed multi-lock: locks every shard in ascending index order"
    )]
    pub fn lock_all(&self) -> GroupGuard<'_> {
        GroupGuard {
            table: self,
            guards: (0..self.shards.len())
                .map(|i| (i, self.shards[i].lock()))
                .collect(),
        }
    }

    /// Visit every slot, one shard at a time (statistics; not a consistent
    /// cross-shard snapshot).
    pub fn for_each(&self, mut f: impl FnMut(Tid, &TxnSlot)) {
        for shard in self.shards.iter() {
            let map = shard.lock();
            for (t, slot) in map.iter() {
                f(*t, slot);
            }
        }
    }

    // --- event count ----------------------------------------------------

    /// Snapshot the event epoch *before* evaluating a wait predicate.
    pub fn epoch(&self) -> u64 {
        *self.epoch.lock()
    }

    /// Sleep until the epoch moves past `seen`. Returns immediately if a
    /// state change already happened since the snapshot.
    pub fn wait_event(&self, seen: u64) {
        let mut ep = self.epoch.lock();
        while *ep == seen {
            self.event_cv.wait(&mut ep);
        }
    }

    /// Publish a state change: advance the epoch and wake all waiters —
    /// both thread-parked ones (condvar) and executor-parked ones (hook).
    pub fn bump(&self) {
        {
            let mut ep = self.epoch.lock();
            *ep += 1;
        }
        self.event_cv.notify_all();
        if self
            .bump_hook_set
            .load(std::sync::atomic::Ordering::Acquire)
        {
            let hook = self.bump_hook.lock().clone();
            if let Some(hook) = hook {
                hook();
            }
        }
    }
}

/// A set of held shard locks, addressable by tid.
pub(crate) struct GroupGuard<'a> {
    table: &'a TxnTable,
    guards: Vec<(usize, MutexGuard<'a, HashMap<Tid, TxnSlot>>)>,
}

impl GroupGuard<'_> {
    fn pos_of(&self, t: Tid) -> Option<usize> {
        let idx = self.table.shard_index(t);
        self.guards.iter().position(|(i, _)| *i == idx)
    }

    pub fn get(&self, t: Tid) -> Option<&TxnSlot> {
        self.pos_of(t).and_then(|p| self.guards[p].1.get(&t))
    }

    pub fn get_mut(&mut self, t: Tid) -> Option<&mut TxnSlot> {
        let p = self.pos_of(t)?;
        self.guards[p].1.get_mut(&t)
    }

    pub fn remove(&mut self, t: Tid) -> Option<TxnSlot> {
        let p = self.pos_of(t)?;
        self.guards[p].1.remove(&t)
    }

    /// Every slot under the held shards (all slots, for `lock_all`).
    pub fn iter(&self) -> impl Iterator<Item = (&Tid, &TxnSlot)> {
        self.guards.iter().flat_map(|(_, g)| g.iter())
    }
}

//! Named failpoints compiled into the transaction layer.
//!
//! Companions to [`asset_storage::failpoints`]: these sit in the §4.2
//! protocol steps themselves — the commit point, the CLR undo loop, and
//! the delegation hand-off — where the storage-layer points cannot
//! distinguish *which* protocol step was in flight. Active only with the
//! `faults` feature; the constants remain so harnesses can enumerate them
//! unconditionally.

/// In `commit` step 4, before the group's commit record is appended:
/// `Error` simulates the append failing with nothing written.
pub const COMMIT_RECORD: &str = "commit.record";

/// In `commit` step 4, after the commit record is durably appended but
/// before any in-memory status changes: `Crash` models the classic
/// "committed on disk, dead before anyone heard" window; `Error` models a
/// post-append failure report (the ambiguous outcome the abort path must
/// reconcile).
pub const COMMIT_AFTER_RECORD: &str = "commit.after_record";

/// In the `abort_many` undo loop, before each before-image install + CLR
/// append: `Crash` interrupts a rollback halfway so restart recovery must
/// finish it from the log; `Error` skips one undo entry (a lost CLR).
pub const ABORT_CLR: &str = "abort.clr";

/// In `delegate`, before the `Delegate` record is appended (which is now
/// before any in-memory splice — WAL discipline): `Error` fails the
/// delegation with no state moved.
pub const DELEGATE_RECORD: &str = "delegate.record";

/// In `prepare_group`, before the `Prepared` record is forced: `Error`
/// makes the participant vote *no* with nothing written (the coordinator
/// must abort the global transaction).
pub const PREPARE_RECORD: &str = "prepare.record";

/// In `prepare_group`, after the `Prepared` record is durable but before
/// the vote can reach the coordinator: `Crash` models the participant
/// dying prepared — restart recovery must restore it in-doubt, holding its
/// locks, until the coordinator's decision arrives (§14.3).
pub const PART_AFTER_PREPARE: &str = "prepare.after_record";

/// Every failpoint the transaction layer registers, for matrix sweeps.
pub const ALL: &[&str] = &[
    COMMIT_RECORD,
    COMMIT_AFTER_RECORD,
    ABORT_CLR,
    DELEGATE_RECORD,
    PREPARE_RECORD,
    PART_AFTER_PREPARE,
];

//! # asset-core
//!
//! The ASSET transaction facility (Biliris, Dar, Gehani, Jagadish,
//! Ramamritham — SIGMOD 1994): a small set of transaction primitives from
//! which arbitrary extended transaction models are composed.
//!
//! * **Basic primitives** — [`Database::initiate`], [`Database::begin`],
//!   [`Database::commit`] (blocking), [`Database::wait`],
//!   [`Database::abort`], plus `self()`/`parent()` on [`TxnCtx`].
//! * **New primitives** — [`Database::delegate`] (transfer responsibility
//!   for uncommitted operations), [`Database::permit`] (let another
//!   transaction perform conflicting operations, transitively), and
//!   [`Database::form_dependency`] (CD / AD / GC).
//!
//! Transactions execute as closures on their own threads; completion is
//! distinct from commit (locks are retained and changes stay volatile until
//! the explicit `commit` runs the paper's §4.2 protocol).
//!
//! For throughput-bound workloads, [`Database::submit`] instead runs a
//! transaction as a resumable state machine ([`TxnStep`]) on a fixed
//! worker pool, and commit records from concurrent transactions are
//! batched by the group-commit log flusher into one write+fsync per flush
//! window (DESIGN.md §12).
//!
//! ```
//! use asset_core::Database;
//!
//! let db = Database::in_memory();
//! let account = db.new_oid();
//! let committed = db.run(move |ctx| {
//!     ctx.write(account, vec![100])?;
//!     Ok(())
//! }).unwrap();
//! assert!(committed);
//! assert_eq!(db.peek(account).unwrap().unwrap(), vec![100]);
//! ```

#![warn(missing_docs)]

pub mod codec;
mod context;
mod database;
mod exec;
pub mod failpoints;
mod txns;

#[cfg(test)]
mod tests;

pub use codec::{Handle, ObjectCodec, RawBytes};
pub use context::TxnCtx;
pub use database::{Database, DatabaseStats, Introspection, Job};
pub use exec::{StepCtx, StepProg, TryOp, TxnOutcome, TxnStep};

// Re-export the vocabulary so `asset_core` is self-sufficient to use.
pub use asset_common::{
    AssetError, Config, DepType, Durability, LockMode, ObSet, Oid, OpSet, Operation, Result, Tid,
    TxnStatus,
};

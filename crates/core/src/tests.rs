//! Unit tests for the transaction manager: every §2 primitive, the §4.2
//! commit/abort protocols, delegation, permits, and crash recovery.

use crate::{Database, DepType, ObSet, Oid, OpSet, Tid, TxnStatus};
use asset_common::AssetError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn db() -> Database {
    Database::in_memory()
}

/// Seed an object with committed bytes.
fn seed(db: &Database, bytes: &[u8]) -> Oid {
    let oid = db.new_oid();
    let b = bytes.to_vec();
    assert!(db.run(move |ctx| ctx.write(oid, b)).unwrap());
    oid
}

#[test]
fn atomic_transaction_lifecycle() {
    let db = db();
    let oid = db.new_oid();
    let t = db
        .initiate(move |ctx| ctx.write(oid, b"hello".to_vec()))
        .unwrap();
    assert_eq!(db.status(t).unwrap(), TxnStatus::Initiated);
    db.begin(t).unwrap();
    assert!(db.commit(t).unwrap());
    assert_eq!(db.status(t).unwrap(), TxnStatus::Committed);
    assert_eq!(db.peek(oid).unwrap().unwrap(), b"hello");
}

#[test]
fn completion_is_not_commit() {
    let db = db();
    let oid = seed(&db, b"orig");
    let t = db
        .initiate(move |ctx| ctx.write(oid, b"new".to_vec()))
        .unwrap();
    db.begin(t).unwrap();
    assert!(db.wait(t).unwrap(), "completed");
    // completed but uncommitted: the lock is still held — another
    // transaction's read must block
    let db2 = db.clone();
    let reader = db2
        .initiate(move |ctx| {
            ctx.read(oid)?;
            Ok(())
        })
        .unwrap();
    db2.begin(reader).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    assert_eq!(
        db.status(reader).unwrap(),
        TxnStatus::Running,
        "reader blocked"
    );
    assert!(db.commit(t).unwrap());
    assert!(db.commit(reader).unwrap());
}

#[test]
fn abort_restores_before_images() {
    let db = db();
    let oid = seed(&db, b"orig");
    let t = db
        .initiate(move |ctx| {
            ctx.write(oid, b"dirty".to_vec())?;
            ctx.write(oid, b"dirtier".to_vec())?;
            Ok(())
        })
        .unwrap();
    db.begin(t).unwrap();
    db.wait(t).unwrap();
    assert!(db.abort(t).unwrap());
    assert_eq!(db.status(t).unwrap(), TxnStatus::Aborted);
    assert_eq!(db.peek(oid).unwrap().unwrap(), b"orig");
}

#[test]
fn abort_of_creation_deletes() {
    let db = db();
    let created: Arc<parking_lot::Mutex<Option<Oid>>> = Arc::new(parking_lot::Mutex::new(None));
    let c2 = Arc::clone(&created);
    let t = db
        .initiate(move |ctx| {
            let oid = ctx.create(b"temp".to_vec())?;
            *c2.lock() = Some(oid);
            Ok(())
        })
        .unwrap();
    db.begin(t).unwrap();
    db.wait(t).unwrap();
    db.abort(t).unwrap();
    let oid = created.lock().unwrap();
    assert_eq!(db.peek(oid).unwrap(), None);
}

#[test]
fn failing_job_aborts() {
    let db = db();
    let oid = seed(&db, b"orig");
    let t = db
        .initiate(move |ctx| {
            ctx.write(oid, b"doomed".to_vec())?;
            Err(AssetError::TxnAborted(ctx.id()))
        })
        .unwrap();
    db.begin(t).unwrap();
    assert!(!db.wait(t).unwrap());
    assert!(!db.commit(t).unwrap());
    assert_eq!(db.peek(oid).unwrap().unwrap(), b"orig");
}

#[test]
fn panicking_job_aborts() {
    let db = db();
    let oid = seed(&db, b"orig");
    let t = db
        .initiate(move |ctx| {
            ctx.write(oid, b"doomed".to_vec())?;
            panic!("boom");
        })
        .unwrap();
    db.begin(t).unwrap();
    assert!(!db.commit(t).unwrap());
    assert_eq!(db.peek(oid).unwrap().unwrap(), b"orig");
    assert_eq!(db.status(t).unwrap(), TxnStatus::Aborted);
}

#[test]
fn commit_twice_returns_true_abort_after_commit_fails() {
    let db = db();
    let t = db.initiate(|_| Ok(())).unwrap();
    db.begin(t).unwrap();
    assert!(db.commit(t).unwrap());
    assert!(db.commit(t).unwrap(), "commit of committed returns 1");
    assert!(!db.abort(t).unwrap(), "abort of committed returns 0");
    assert!(
        db.abort(db.initiate(|_| Ok(())).unwrap()).unwrap(),
        "abort of initiated ok"
    );
}

#[test]
fn wait_semantics() {
    let db = db();
    let t = db.initiate(|_| Ok(())).unwrap();
    db.begin(t).unwrap();
    assert!(db.wait(t).unwrap());
    db.commit(t).unwrap();
    assert!(db.wait(t).unwrap(), "wait on committed returns 1");

    let a = db
        .initiate(|ctx| ctx.abort_self::<()>().map(|_| ()))
        .unwrap();
    db.begin(a).unwrap();
    assert!(!db.wait(a).unwrap(), "wait on aborted returns 0");
}

#[test]
fn parent_tracking() {
    let db = db();
    let observed: Arc<parking_lot::Mutex<(Tid, Tid)>> =
        Arc::new(parking_lot::Mutex::new((Tid::NULL, Tid::NULL)));
    let o2 = Arc::clone(&observed);
    let t = db
        .initiate(move |ctx| {
            let child = ctx.initiate(|_| Ok(()))?;
            ctx.begin(child)?;
            ctx.wait(child)?;
            *o2.lock() = (ctx.parent(), ctx.db().parent_of(child)?);
            ctx.commit(child)?;
            Ok(())
        })
        .unwrap();
    db.begin(t).unwrap();
    assert!(db.commit(t).unwrap());
    let (top_parent, child_parent) = *observed.lock();
    assert_eq!(top_parent, Tid::NULL, "top-level parent is null");
    assert_eq!(child_parent, t, "child's parent is the initiator");
}

#[test]
fn resource_exhaustion() {
    let db = Database::open(asset_common::Config::in_memory().with_max_transactions(2))
        .unwrap()
        .0;
    let _a = db.initiate(|_| Ok(())).unwrap();
    let _b = db.initiate(|_| Ok(())).unwrap();
    let err = db.initiate(|_| Ok(())).unwrap_err();
    assert!(matches!(err, AssetError::ResourceExhausted { limit: 2 }));
}

#[test]
fn unknown_tid_errors() {
    let db = db();
    assert!(matches!(
        db.commit(Tid(999)),
        Err(AssetError::TxnNotFound(_))
    ));
    assert!(matches!(
        db.begin(Tid(999)),
        Err(AssetError::TxnNotFound(_))
    ));
    assert!(matches!(
        db.status(Tid(999)),
        Err(AssetError::TxnNotFound(_))
    ));
}

#[test]
fn begin_twice_is_invalid() {
    let db = db();
    let t = db.initiate(|_| Ok(())).unwrap();
    db.begin(t).unwrap();
    let err = db.begin(t).unwrap_err();
    assert!(matches!(err, AssetError::InvalidState { op: "begin", .. }));
}

// --- dependencies ---------------------------------------------------------

#[test]
fn commit_dependency_orders_commits() {
    let db = db();
    let t1 = db.initiate(|_| Ok(())).unwrap();
    let t2 = db.initiate(|_| Ok(())).unwrap();
    db.form_dependency(DepType::CD, t1, t2).unwrap(); // t2 after t1
    db.begin_many(&[t1, t2]).unwrap();
    db.wait(t2).unwrap();

    // t2's commit blocks until t1 terminates
    let db2 = db.clone();
    let committed = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&committed);
    let h = std::thread::spawn(move || {
        assert!(db2.commit(t2).unwrap());
        flag.store(true, Ordering::SeqCst);
    });
    std::thread::sleep(Duration::from_millis(50));
    assert!(!committed.load(Ordering::SeqCst), "t2 gated by CD");
    assert!(db.commit(t1).unwrap());
    h.join().unwrap();
    assert!(committed.load(Ordering::SeqCst));
}

#[test]
fn commit_dependency_survives_dependee_abort() {
    let db = db();
    let t1 = db.initiate(|_| Ok(())).unwrap();
    let t2 = db.initiate(|_| Ok(())).unwrap();
    db.form_dependency(DepType::CD, t1, t2).unwrap();
    db.begin_many(&[t1, t2]).unwrap();
    db.wait(t1).unwrap();
    db.wait(t2).unwrap();
    db.abort(t1).unwrap();
    assert!(db.commit(t2).unwrap(), "CD allows commit after ti aborts");
}

#[test]
fn abort_dependency_propagates() {
    let db = db();
    let oid = seed(&db, b"orig");
    let t1 = db.initiate(|_| Ok(())).unwrap();
    let t2 = db
        .initiate(move |ctx| ctx.write(oid, b"by-t2".to_vec()))
        .unwrap();
    db.form_dependency(DepType::AD, t1, t2).unwrap(); // t1 aborts → t2 aborts
    db.begin_many(&[t1, t2]).unwrap();
    db.wait(t1).unwrap();
    db.wait(t2).unwrap();
    db.abort(t1).unwrap();
    assert_eq!(db.status(t2).unwrap(), TxnStatus::Aborted);
    assert_eq!(db.peek(oid).unwrap().unwrap(), b"orig", "t2's write undone");
    assert!(!db.commit(t2).unwrap());
}

#[test]
fn abort_dependency_chain() {
    let db = db();
    let ts: Vec<Tid> = (0..4).map(|_| db.initiate(|_| Ok(())).unwrap()).collect();
    for w in ts.windows(2) {
        db.form_dependency(DepType::AD, w[0], w[1]).unwrap();
    }
    db.begin_many(&ts).unwrap();
    for t in &ts {
        db.wait(*t).unwrap();
    }
    db.abort(ts[0]).unwrap();
    for t in &ts {
        assert_eq!(db.status(*t).unwrap(), TxnStatus::Aborted, "{t} in chain");
    }
}

#[test]
fn group_commit_commits_together() {
    let db = db();
    let a = seed(&db, b"0");
    let b = seed(&db, b"0");
    let t1 = db.initiate(move |ctx| ctx.write(a, b"1".to_vec())).unwrap();
    let t2 = db.initiate(move |ctx| ctx.write(b, b"2".to_vec())).unwrap();
    db.form_dependency(DepType::GC, t1, t2).unwrap();
    db.begin_many(&[t1, t2]).unwrap();
    // committing t1 commits the whole group (after t2 completes)
    assert!(db.commit(t1).unwrap());
    assert_eq!(db.status(t2).unwrap(), TxnStatus::Committed);
    assert!(db.commit(t2).unwrap(), "later commit returns 1");
    assert_eq!(db.peek(a).unwrap().unwrap(), b"1");
    assert_eq!(db.peek(b).unwrap().unwrap(), b"2");
}

#[test]
fn group_abort_aborts_all() {
    let db = db();
    let a = seed(&db, b"0");
    let t1 = db.initiate(move |ctx| ctx.write(a, b"1".to_vec())).unwrap();
    let t2 = db
        .initiate(|ctx| ctx.abort_self::<()>().map(|_| ()))
        .unwrap();
    db.form_dependency(DepType::GC, t1, t2).unwrap();
    db.begin_many(&[t1, t2]).unwrap();
    assert!(
        !db.commit(t1).unwrap(),
        "group member aborted → group aborts"
    );
    assert_eq!(db.status(t1).unwrap(), TxnStatus::Aborted);
    assert_eq!(db.peek(a).unwrap().unwrap(), b"0");
}

#[test]
fn dependency_cycle_rejected() {
    let db = db();
    let t1 = db.initiate(|_| Ok(())).unwrap();
    let t2 = db.initiate(|_| Ok(())).unwrap();
    db.form_dependency(DepType::CD, t1, t2).unwrap();
    let err = db.form_dependency(DepType::AD, t2, t1).unwrap_err();
    assert!(matches!(err, AssetError::DependencyCycle { .. }));
}

// --- permits & delegation --------------------------------------------------

#[test]
fn permit_allows_conflicting_access() {
    let db = db();
    let oid = seed(&db, b"v0");
    let holder = db
        .initiate(move |ctx| ctx.write(oid, b"v1".to_vec()))
        .unwrap();
    db.begin(holder).unwrap();
    db.wait(holder).unwrap();
    // holder is completed, uncommitted, holding the write lock
    db.permit(holder, None, ObSet::one(oid), OpSet::READ)
        .unwrap();
    let seen: Arc<parking_lot::Mutex<Vec<u8>>> = Arc::new(parking_lot::Mutex::new(vec![]));
    let s2 = Arc::clone(&seen);
    let reader = db
        .initiate(move |ctx| {
            *s2.lock() = ctx.read(oid)?.unwrap();
            Ok(())
        })
        .unwrap();
    db.begin(reader).unwrap();
    assert!(db.commit(reader).unwrap());
    assert_eq!(*seen.lock(), b"v1", "dirty read via permit — by design");
    db.commit(holder).unwrap();
}

#[test]
fn delegation_moves_responsibility_for_undo_and_commit() {
    let db = db();
    let oid = seed(&db, b"orig");
    let t1 = db
        .initiate(move |ctx| ctx.write(oid, b"t1-write".to_vec()))
        .unwrap();
    let t2 = db.initiate(|_| Ok(())).unwrap();
    db.begin(t1).unwrap();
    db.wait(t1).unwrap();
    db.delegate(t1, t2, None).unwrap();
    // t1 aborts — but it delegated everything, so nothing is undone
    db.abort(t1).unwrap();
    assert_eq!(db.peek(oid).unwrap().unwrap(), b"t1-write");
    // t2 commits the delegated work
    db.begin(t2).unwrap();
    assert!(db.commit(t2).unwrap());
    assert_eq!(db.peek(oid).unwrap().unwrap(), b"t1-write");
}

#[test]
fn delegated_work_dies_with_delegatee() {
    let db = db();
    let oid = seed(&db, b"orig");
    let t1 = db
        .initiate(move |ctx| ctx.write(oid, b"t1-write".to_vec()))
        .unwrap();
    let t2 = db.initiate(|_| Ok(())).unwrap();
    db.begin(t1).unwrap();
    db.wait(t1).unwrap();
    db.delegate(t1, t2, None).unwrap();
    db.commit(t1).unwrap(); // commits nothing of substance
    db.begin(t2).unwrap();
    db.wait(t2).unwrap();
    db.abort(t2).unwrap();
    assert_eq!(db.peek(oid).unwrap().unwrap(), b"orig", "undo moved to t2");
}

#[test]
fn partial_delegation_by_object_set() {
    let db = db();
    let a = seed(&db, b"a0");
    let b = seed(&db, b"b0");
    let t1 = db
        .initiate(move |ctx| {
            ctx.write(a, b"a1".to_vec())?;
            ctx.write(b, b"b1".to_vec())
        })
        .unwrap();
    let t2 = db.initiate(|_| Ok(())).unwrap();
    db.begin(t1).unwrap();
    db.wait(t1).unwrap();
    db.delegate(t1, t2, Some(ObSet::one(a))).unwrap();
    // t1 aborts: only its remaining object (b) is undone
    db.abort(t1).unwrap();
    assert_eq!(db.peek(a).unwrap().unwrap(), b"a1");
    assert_eq!(db.peek(b).unwrap().unwrap(), b"b0");
    db.begin(t2).unwrap();
    assert!(db.commit(t2).unwrap());
    assert_eq!(db.peek(a).unwrap().unwrap(), b"a1");
}

#[test]
fn delegate_to_initiated_transaction_before_begin() {
    // the paper's motivation for separating initiate from begin
    let db = db();
    let oid = seed(&db, b"orig");
    let t2 = db
        .initiate(move |ctx| {
            // sees the delegated lock as its own: can update without conflict
            ctx.write(oid, b"t2-continues".to_vec())
        })
        .unwrap();
    let t1 = db
        .initiate(move |ctx| {
            ctx.write(oid, b"t1-started".to_vec())?;
            ctx.delegate_to(t2)
        })
        .unwrap();
    db.begin(t1).unwrap();
    db.wait(t1).unwrap();
    db.commit(t1).unwrap();
    db.begin(t2).unwrap();
    assert!(db.commit(t2).unwrap());
    assert_eq!(db.peek(oid).unwrap().unwrap(), b"t2-continues");
}

// --- concurrency & isolation ------------------------------------------------

#[test]
fn serialized_increments_are_lost_update_free() {
    let db = db();
    let oid = seed(&db, &0u64.to_le_bytes());
    let mut tids = vec![];
    for _ in 0..8 {
        let t = db
            .initiate(move |ctx| {
                for _ in 0..10 {
                    ctx.update(oid, |cur| {
                        let v = u64::from_le_bytes(cur.unwrap().try_into().unwrap());
                        (v + 1).to_le_bytes().to_vec()
                    })?;
                }
                Ok(())
            })
            .unwrap();
        tids.push(t);
    }
    // serialized by write locks: each txn holds the lock until commit, so
    // begin+commit them one by one (a concurrent variant lives in the
    // workspace integration tests)
    for t in &tids {
        db.begin(*t).unwrap();
        assert!(db.commit(*t).unwrap());
    }
    let v = u64::from_le_bytes(db.peek(oid).unwrap().unwrap().try_into().unwrap());
    assert_eq!(v, 80);
}

#[test]
fn concurrent_disjoint_transactions_commit() {
    let db = db();
    let oids: Vec<Oid> = (0..16)
        .map(|i| seed(&db, format!("{i}").as_bytes()))
        .collect();
    let tids: Vec<Tid> = oids
        .iter()
        .map(|&oid| {
            db.initiate(move |ctx| ctx.write(oid, b"done".to_vec()))
                .unwrap()
        })
        .collect();
    db.begin_many(&tids).unwrap();
    for t in &tids {
        assert!(db.commit(*t).unwrap());
    }
    for oid in &oids {
        assert_eq!(db.peek(*oid).unwrap().unwrap(), b"done");
    }
}

#[test]
fn deadlock_victim_aborts_other_proceeds() {
    let db = db();
    let a = seed(&db, b"a");
    let b = seed(&db, b"b");
    let barrier = Arc::new(std::sync::Barrier::new(2));
    let (ba, bb) = (Arc::clone(&barrier), Arc::clone(&barrier));
    let t1 = db
        .initiate(move |ctx| {
            ctx.write(a, b"t1".to_vec())?;
            ba.wait();
            ctx.write(b, b"t1".to_vec())
        })
        .unwrap();
    let t2 = db
        .initiate(move |ctx| {
            ctx.write(b, b"t2".to_vec())?;
            bb.wait();
            ctx.write(a, b"t2".to_vec())
        })
        .unwrap();
    db.begin_many(&[t1, t2]).unwrap();
    let r1 = db.commit(t1).unwrap();
    let r2 = db.commit(t2).unwrap();
    assert!(
        r1 ^ r2,
        "exactly one of the deadlocked pair commits: {r1} {r2}"
    );
}

#[test]
fn aborting_a_blocked_transaction_unblocks_it() {
    let db = db();
    let oid = seed(&db, b"v");
    let holder = db
        .initiate(move |ctx| {
            ctx.write(oid, b"held".to_vec())?;
            std::thread::sleep(Duration::from_millis(500));
            Ok(())
        })
        .unwrap();
    db.begin(holder).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    let waiter = db
        .initiate(move |ctx| ctx.write(oid, b"waiter".to_vec()))
        .unwrap();
    db.begin(waiter).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    // waiter is blocked on the lock; abort must wake and kill it promptly
    let start = std::time::Instant::now();
    db.abort(waiter).unwrap();
    assert!(!db.commit(waiter).unwrap());
    assert!(
        start.elapsed() < Duration::from_millis(400),
        "no timeout wait"
    );
    db.commit(holder).unwrap();
}

// --- recovery ----------------------------------------------------------------

#[test]
fn committed_work_survives_crash() {
    let dir = std::env::temp_dir().join(format!("asset-core-rec-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = asset_common::Config::on_disk(&dir);
    let oid;
    {
        let (db, _) = Database::open(config.clone()).unwrap();
        oid = db.new_oid();
        let o = oid;
        assert!(db
            .run(move |ctx| ctx.write(o, b"committed".to_vec()))
            .unwrap());
        // uncommitted overwrite by another transaction, left in flight
        let t = db
            .initiate(move |ctx| ctx.write(o, b"in-flight".to_vec()))
            .unwrap();
        db.begin(t).unwrap();
        db.wait(t).unwrap();
        // crash: drop the db without committing/aborting t
    }
    let (db, report) = Database::open(config).unwrap();
    assert_eq!(report.winners, 1);
    assert!(report.losers >= 1);
    assert_eq!(db.peek(oid).unwrap().unwrap(), b"committed");
    // new tids don't collide with logged ones
    let t = db.initiate(|_| Ok(())).unwrap();
    assert!(t.raw() > report.max_tid);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_requires_quiescence() {
    let db = db();
    let t = db.initiate(|_| Ok(())).unwrap();
    let err = db.checkpoint().unwrap_err();
    assert!(matches!(
        err,
        AssetError::InvalidState {
            op: "checkpoint",
            ..
        }
    ));
    db.begin(t).unwrap();
    db.commit(t).unwrap();
    db.checkpoint().unwrap();
}

#[test]
fn retire_terminated_frees_slots() {
    let db = Database::open(asset_common::Config::in_memory().with_max_transactions(4))
        .unwrap()
        .0;
    for _ in 0..4 {
        let t = db.initiate(|_| Ok(())).unwrap();
        db.begin(t).unwrap();
        db.commit(t).unwrap();
    }
    assert_eq!(db.live_transactions(), 0);
    let retired = db.retire_terminated();
    assert_eq!(retired, 4);
    // slots are free again
    let t = db.initiate(|_| Ok(())).unwrap();
    db.begin(t).unwrap();
    assert!(db.commit(t).unwrap());
}

#[test]
fn run_helper_reports_abort() {
    let db = db();
    let committed = db.run(|ctx| ctx.abort_self::<()>().map(|_| ())).unwrap();
    assert!(!committed);
}

#[test]
fn compact_log_drops_settled_history() {
    let db = db();
    let oid = seed(&db, b"v0");
    // a pile of committed history
    for i in 0..50u8 {
        assert!(db.run(move |ctx| ctx.write(oid, vec![i])).unwrap());
    }
    // one long-lived transaction, completed but uncommitted
    let live_oid = seed(&db, b"live0");
    let t = db
        .initiate(move |ctx| ctx.write(live_oid, b"live1".to_vec()))
        .unwrap();
    db.begin(t).unwrap();
    db.wait(t).unwrap();

    let records_before = db.engine().log().records_appended();
    let report = db.compact_log().unwrap();
    assert!(report.records_before > 50);
    assert!(
        report.records_after <= 3,
        "checkpoint + begin + 1 pending update, got {}",
        report.records_after
    );
    let _ = records_before;

    // the live transaction still commits
    assert!(db.commit(t).unwrap());
    assert_eq!(db.peek(live_oid).unwrap().unwrap(), b"live1");
    assert_eq!(db.peek(oid).unwrap().unwrap(), vec![49]);
}

#[test]
fn compact_log_preserves_live_undo_across_crash() {
    let dir = std::env::temp_dir().join(format!("asset-compact-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = asset_common::Config::on_disk(&dir);
    let (live_oid, settled_oid);
    {
        let (db, _) = Database::open(config.clone()).unwrap();
        settled_oid = db.new_oid();
        let s = settled_oid;
        assert!(db
            .run(move |ctx| ctx.write(s, b"settled".to_vec()))
            .unwrap());
        live_oid = db.new_oid();
        let l = live_oid;
        // live txn overwrites the settled object, then the log is compacted
        let t = db
            .initiate(move |ctx| {
                ctx.write(s, b"live-overwrite".to_vec())?;
                ctx.write(l, b"live-new".to_vec())
            })
            .unwrap();
        db.begin(t).unwrap();
        db.wait(t).unwrap();
        db.compact_log().unwrap();
        // crash without committing t
    }
    let (db, report) = Database::open(config).unwrap();
    assert!(report.losers >= 1, "the live txn is a loser");
    assert_eq!(
        db.peek(settled_oid).unwrap().unwrap(),
        b"settled",
        "before image survived compaction and undid the live write"
    );
    assert_eq!(db.peek(live_oid).unwrap(), None);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn compact_log_folds_delegation_into_ownership() {
    let db = db();
    let oid = seed(&db, b"orig");
    let receiver = db.initiate(|_| Ok(())).unwrap();
    let worker = db
        .initiate(move |ctx| ctx.write(oid, b"worked".to_vec()))
        .unwrap();
    db.begin(worker).unwrap();
    db.wait(worker).unwrap();
    db.delegate(worker, receiver, None).unwrap();
    db.commit(worker).unwrap();
    db.retire_terminated();

    let report = db.compact_log().unwrap();
    // checkpoint + Begin(receiver) + 1 update, all under the receiver
    assert_eq!(report.records_after, 3);
    let records = db.engine().log().scan().unwrap();
    let owners: Vec<Tid> = records
        .iter()
        .filter_map(|(_, r)| match r {
            asset_storage::LogRecord::Update { tid, .. } => Some(*tid),
            _ => None,
        })
        .collect();
    assert_eq!(
        owners,
        vec![receiver],
        "update re-attributed to the delegatee"
    );

    // and the delegated work still commits durably
    db.begin(receiver).unwrap();
    assert!(db.commit(receiver).unwrap());
    assert_eq!(db.peek(oid).unwrap().unwrap(), b"worked");
}

#[test]
fn compact_log_rejects_running_transactions() {
    let db = db();
    let gate = Arc::new(AtomicBool::new(false));
    let g2 = Arc::clone(&gate);
    let t = db
        .initiate(move |_| {
            while !g2.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            Ok(())
        })
        .unwrap();
    db.begin(t).unwrap();
    let err = db.compact_log().unwrap_err();
    assert!(matches!(
        err,
        AssetError::InvalidState {
            op: "compact_log",
            ..
        }
    ));
    gate.store(true, Ordering::SeqCst);
    assert!(db.commit(t).unwrap());
    db.compact_log().unwrap();
}

#[test]
fn status_query_primitives() {
    let db = db();
    let t = db.initiate(|_| Ok(())).unwrap();
    assert!(!db.is_active(t).unwrap(), "initiated is not active");
    db.begin(t).unwrap();
    db.wait(t).unwrap();
    assert!(db.is_active(t).unwrap(), "completed is still active");
    assert!(!db.is_committed(t).unwrap());
    assert!(!db.is_aborted(t).unwrap());
    db.commit(t).unwrap();
    assert!(db.is_committed(t).unwrap());
    assert!(!db.is_active(t).unwrap());

    let a = db.initiate(|_| Ok(())).unwrap();
    db.abort(a).unwrap();
    assert!(db.is_aborted(a).unwrap());
}

#[test]
fn explicit_lock_primitives() {
    let db = db();
    let oid = seed(&db, b"v");
    // two txns race a read-check-write; with lock_exclusive up front there
    // is no upgrade deadlock — both commit, serialized
    let mut tids = vec![];
    for i in 0..2u8 {
        let t = db
            .initiate(move |ctx| {
                ctx.lock_exclusive(oid)?;
                let mut v = ctx.read(oid)?.unwrap();
                v.push(i);
                ctx.write(oid, v)
            })
            .unwrap();
        tids.push(t);
    }
    db.begin_many(&tids).unwrap();
    for t in &tids {
        assert!(db.commit(*t).unwrap());
    }
    assert_eq!(
        db.peek(oid).unwrap().unwrap().len(),
        3,
        "both appends landed"
    );

    // lock_shared allows concurrent readers
    let t1 = db
        .initiate(move |ctx| {
            ctx.lock_shared(oid)?;
            Ok(())
        })
        .unwrap();
    let t2 = db
        .initiate(move |ctx| {
            ctx.lock_shared(oid)?;
            Ok(())
        })
        .unwrap();
    db.begin_many(&[t1, t2]).unwrap();
    assert!(db.commit(t1).unwrap());
    assert!(db.commit(t2).unwrap());
}

#[test]
fn permit_accessed_materializes_paper_form() {
    // the paper's permit(ti, tj, operations): object set computed at call
    // time from ti's accessed objects
    let db = db();
    let a = seed(&db, b"a");
    let b = seed(&db, b"b");
    let holder = db
        .initiate(move |ctx| {
            ctx.write(a, b"ha".to_vec())?;
            ctx.write(b, b"hb".to_vec())
        })
        .unwrap();
    db.begin(holder).unwrap();
    db.wait(holder).unwrap();
    db.permit_accessed(holder, None, OpSet::READ).unwrap();
    // any transaction may now read both accessed objects, dirty
    assert!(db
        .run(move |ctx| {
            assert_eq!(ctx.read(a)?.unwrap(), b"ha");
            assert_eq!(ctx.read(b)?.unwrap(), b"hb");
            Ok(())
        })
        .unwrap());
    // but not write them
    let db2 = Database::open(
        asset_common::Config::in_memory().with_lock_timeout(Some(Duration::from_millis(50))),
    )
    .unwrap()
    .0;
    let _ = db2; // (writes tested against the same db with short-lived txn)
    let t = db
        .initiate(move |ctx| ctx.write(a, b"nope".to_vec()))
        .unwrap();
    db.begin(t).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(
        db.status(t).unwrap(),
        TxnStatus::Running,
        "writer still blocked"
    );
    db.abort(t).unwrap();
    db.commit(holder).unwrap();
}

#[test]
fn delegation_into_gc_group_commits_atomically() {
    // delegated work + group commit compose: the receiver is half of a GC
    // pair; the delegated update becomes durable exactly when the group
    // commits
    let db = db();
    let oid = seed(&db, b"orig");
    let receiver = db.initiate(|_| Ok(())).unwrap();
    let partner = db.initiate(|_| Ok(())).unwrap();
    db.form_dependency(DepType::GC, receiver, partner).unwrap();
    let worker = db
        .initiate(move |ctx| {
            ctx.write(oid, b"delegated".to_vec())?;
            ctx.delegate_to(receiver)
        })
        .unwrap();
    db.begin(worker).unwrap();
    db.wait(worker).unwrap();
    db.commit(worker).unwrap();
    db.begin_many(&[receiver, partner]).unwrap();
    assert!(db.commit(partner).unwrap(), "commit via the partner");
    assert_eq!(db.status(receiver).unwrap(), TxnStatus::Committed);
    assert_eq!(db.peek(oid).unwrap().unwrap(), b"delegated");
}

#[test]
fn clr_protocol_keeps_later_commits_after_runtime_abort() {
    // end-to-end regression for the CLR design (see DESIGN.md): abort,
    // then commit an overwrite, then crash — the overwrite must survive
    let dir = std::env::temp_dir().join(format!("asset-clr-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = asset_common::Config::on_disk(&dir);
    let oid;
    {
        let (db, _) = Database::open(config.clone()).unwrap();
        oid = db.new_oid();
        let o = oid;
        assert!(db.run(move |ctx| ctx.write(o, b"v0".to_vec())).unwrap());
        // t1 writes and aborts
        let t1 = db
            .initiate(move |ctx| ctx.write(o, b"t1".to_vec()))
            .unwrap();
        db.begin(t1).unwrap();
        db.wait(t1).unwrap();
        db.abort(t1).unwrap();
        // t2 commits an overwrite afterwards
        assert!(db
            .run(move |ctx| ctx.write(o, b"t2-final".to_vec()))
            .unwrap());
        db.engine().log().flush().unwrap();
    }
    let (db, _) = Database::open(config).unwrap();
    assert_eq!(db.peek(oid).unwrap().unwrap(), b"t2-final");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn database_stats_snapshot() {
    let db = db();
    let oid = seed(&db, b"x");
    let t = db
        .initiate(move |ctx| ctx.write(oid, b"y".to_vec()))
        .unwrap();
    let s = db.stats();
    assert_eq!(s.initiated, 1);
    db.begin(t).unwrap();
    db.wait(t).unwrap();
    let s = db.stats();
    assert_eq!(s.completed, 1);
    assert!(s.locks.grants >= 2, "seed + txn writes took locks");
    assert!(s.log_records >= 3, "begin + update records logged");
    db.commit(t).unwrap();
    let s = db.stats();
    assert_eq!(s.committed, 2, "seed txn + t");
    // renders without panicking and mentions the headline counters
    let text = s.to_string();
    assert!(text.contains("committed"));
    assert!(text.contains("log records"));
}

// --- distributed commit participant (§14) ------------------------------------

/// Two completed transactions in one GC group, ready to prepare.
fn completed_pair(db: &Database) -> (Tid, Tid, Oid, Oid) {
    let (a, b) = (db.new_oid(), db.new_oid());
    let t1 = db
        .initiate(move |ctx| ctx.write(a, b"one".to_vec()))
        .unwrap();
    let t2 = db
        .initiate(move |ctx| ctx.write(b, b"two".to_vec()))
        .unwrap();
    db.form_dependency(DepType::GC, t1, t2).unwrap();
    db.begin_many(&[t1, t2]).unwrap();
    assert!(db.wait(t1).unwrap());
    assert!(db.wait(t2).unwrap());
    (t1, t2, a, b)
}

#[test]
fn prepare_then_decide_commit() {
    let db = db();
    let (t1, t2, a, b) = completed_pair(&db);
    let group = db.prepare_group(&[t1]).unwrap();
    assert_eq!(
        group
            .iter()
            .copied()
            .collect::<std::collections::BTreeSet<_>>(),
        [t1, t2].into_iter().collect()
    );
    assert_eq!(db.status(t1).unwrap(), TxnStatus::Prepared);
    assert_eq!(db.status(t2).unwrap(), TxnStatus::Prepared);
    // a prepared participant's fate belongs to the coordinator
    assert!(matches!(
        db.commit(t1),
        Err(AssetError::InvalidState { op: "commit", .. })
    ));
    // idempotent re-prepare
    assert_eq!(db.prepare_group(&[t2]).unwrap().len(), 2);
    db.decide_commit_group(&group).unwrap();
    assert_eq!(db.status(t1).unwrap(), TxnStatus::Committed);
    assert_eq!(db.status(t2).unwrap(), TxnStatus::Committed);
    assert_eq!(db.peek(a).unwrap().unwrap(), b"one");
    assert_eq!(db.peek(b).unwrap().unwrap(), b"two");
    // idempotent re-decide
    db.decide_commit_group(&group).unwrap();
}

#[test]
fn prepare_then_decide_abort() {
    let db = db();
    let (t1, t2, a, b) = completed_pair(&db);
    let group = db.prepare_group(&[t1]).unwrap();
    db.decide_abort_group(&group);
    assert_eq!(db.status(t1).unwrap(), TxnStatus::Aborted);
    assert_eq!(db.status(t2).unwrap(), TxnStatus::Aborted);
    assert_eq!(db.peek(a).unwrap(), None, "creation rolled back");
    assert_eq!(db.peek(b).unwrap(), None);
    // idempotent re-decide
    db.decide_abort_group(&group);
}

#[test]
fn prepared_locks_stay_held_until_decision() {
    let db = Database::open(
        asset_common::Config::in_memory().with_lock_timeout(Some(Duration::from_millis(50))),
    )
    .unwrap()
    .0;
    let oid = seed(&db, b"orig");
    let t = db
        .initiate(move |ctx| ctx.write(oid, b"prepared".to_vec()))
        .unwrap();
    db.begin(t).unwrap();
    db.wait(t).unwrap();
    let group = db.prepare_group(&[t]).unwrap();
    // the X lock is retained: a conflicting writer times out
    let blocked = db
        .run(move |ctx| ctx.write(oid, b"blocked".to_vec()))
        .unwrap();
    assert!(!blocked, "conflicting writer must abort on lock timeout");
    db.decide_commit_group(&group).unwrap();
    // decision releases the lock
    assert!(db
        .run(move |ctx| ctx.write(oid, b"after".to_vec()))
        .unwrap());
    assert_eq!(db.peek(oid).unwrap().unwrap(), b"after");
}

#[test]
fn prepare_votes_no_on_aborted_member() {
    let db = db();
    let (t1, t2, _, _) = completed_pair(&db);
    db.abort(t2).unwrap();
    let err = db.prepare_group(&[t1]).unwrap_err();
    assert!(matches!(err, AssetError::TxnAborted(_)));
    // the vote-no aborted the group locally
    assert_eq!(db.status(t1).unwrap(), TxnStatus::Aborted);
}

#[test]
fn decide_commit_rejects_unprepared_members() {
    let db = db();
    let (t1, _, _, _) = completed_pair(&db);
    // never prepared: decide must refuse rather than invent a commit
    let err = db.decide_commit_group(&[t1]).unwrap_err();
    assert!(matches!(
        err,
        AssetError::InvalidState {
            op: "decide-commit",
            ..
        }
    ));
}

#[test]
fn prepared_survives_crash_and_commits_after_restart() {
    let dir = std::env::temp_dir().join(format!("asset-core-prep-commit-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config =
        asset_common::Config::on_disk(&dir).with_lock_timeout(Some(Duration::from_millis(50)));
    let (oid, group) = {
        let (db, _) = Database::open(config.clone()).unwrap();
        let oid = seed(&db, b"orig");
        let t = db
            .initiate(move |ctx| ctx.write(oid, b"prepared".to_vec()))
            .unwrap();
        db.begin(t).unwrap();
        db.wait(t).unwrap();
        let group = db.prepare_group(&[t]).unwrap();
        (oid, group)
        // crash: drop the db with the group prepared, no decision
    };
    let (db, report) = Database::open(config.clone()).unwrap();
    assert_eq!(
        report.in_doubt.len(),
        1,
        "recovery surfaces the in-doubt group"
    );
    assert_eq!(db.in_doubt_transactions(), group);
    // still undecided: the restored participant holds its X lock
    let blocked = db
        .run(move |ctx| ctx.write(oid, b"blocked".to_vec()))
        .unwrap();
    assert!(!blocked, "in-doubt lock must still be held after restart");
    // local commit still refused
    assert!(db.commit(group[0]).is_err());
    // the coordinator's decision arrives: commit
    db.decide_commit_group(&group).unwrap();
    assert_eq!(db.peek(oid).unwrap().unwrap(), b"prepared");
    drop(db);
    // a second restart finds nothing in doubt
    let (db, report) = Database::open(config).unwrap();
    assert!(report.in_doubt.is_empty());
    assert!(db.in_doubt_transactions().is_empty());
    assert_eq!(db.peek(oid).unwrap().unwrap(), b"prepared");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn prepared_survives_crash_and_aborts_after_restart() {
    let dir = std::env::temp_dir().join(format!("asset-core-prep-abort-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = asset_common::Config::on_disk(&dir);
    let (oid, group) = {
        let (db, _) = Database::open(config.clone()).unwrap();
        let oid = seed(&db, b"orig");
        let t = db
            .initiate(move |ctx| ctx.write(oid, b"prepared".to_vec()))
            .unwrap();
        db.begin(t).unwrap();
        db.wait(t).unwrap();
        let group = db.prepare_group(&[t]).unwrap();
        (oid, group)
    };
    let (db, report) = Database::open(config.clone()).unwrap();
    assert_eq!(report.in_doubt.len(), 1);
    // the coordinator's decision arrives: abort — the restored undo chain
    // rolls the update back
    db.decide_abort_group(&group);
    assert_eq!(db.status(group[0]).unwrap(), TxnStatus::Aborted);
    assert_eq!(db.peek(oid).unwrap().unwrap(), b"orig");
    drop(db);
    let (db, report) = Database::open(config).unwrap();
    assert!(report.in_doubt.is_empty());
    assert_eq!(db.peek(oid).unwrap().unwrap(), b"orig");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn in_doubt_group_restores_its_gc_links() {
    let dir = std::env::temp_dir().join(format!("asset-core-prep-gc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = asset_common::Config::on_disk(&dir);
    let (a, b, group) = {
        let (db, _) = Database::open(config.clone()).unwrap();
        let (t1, t2, a, b) = completed_pair(&db);
        let group = db.prepare_group(&[t1]).unwrap();
        assert_eq!(group.len(), 2);
        let _ = t2;
        (a, b, group)
    };
    let (db, report) = Database::open(config).unwrap();
    assert_eq!(report.in_doubt.len(), 2);
    for d in &report.in_doubt {
        assert_eq!(d.group.len(), 2, "each member knows its full group");
    }
    // one decision resolves the whole restored group, atomically
    db.decide_commit_group(&group).unwrap();
    assert_eq!(db.peek(a).unwrap().unwrap(), b"one");
    assert_eq!(db.peek(b).unwrap().unwrap(), b"two");
    std::fs::remove_dir_all(&dir).unwrap();
}

// --- nudge on stale / unknown tids (documented no-op) ------------------------

#[test]
fn nudge_unknown_tid_is_a_noop() {
    let db = db();
    // executor never spawned: nudge must not panic or spawn anything
    db.nudge(Tid(12345));
    // spawn the executor, then nudge a tid it has never seen
    let t = db.submit(|_| crate::TxnStep::Done(Ok(()))).unwrap();
    assert!(db.outcome(t).unwrap());
    db.nudge(Tid(999_999));
    db.nudge(Tid::NULL);
}

#[test]
fn nudge_after_done_is_a_noop() {
    let db = db();
    let oid = db.new_oid();
    let t = db
        .submit(move |ctx| match ctx.try_write(oid, b"v".to_vec()) {
            Ok(crate::TryOp::Done(_)) => crate::TxnStep::Done(Ok(())),
            Ok(crate::TryOp::WouldBlock) => crate::TxnStep::WaitLock { ob: oid },
            Err(e) => crate::TxnStep::Done(Err(e)),
        })
        .unwrap();
    assert!(db.outcome(t).unwrap(), "committed");
    // the task is DONE and retired: late nudges (the server-session race)
    // must be silent no-ops and must not disturb the terminal state
    for _ in 0..16 {
        db.nudge(t);
    }
    assert_eq!(db.status(t).unwrap(), TxnStatus::Committed);
    assert_eq!(db.peek(oid).unwrap().unwrap(), b"v");
    // a plain (non-submitted) transaction can also be nudged harmlessly
    let t2 = db.initiate(|_| Ok(())).unwrap();
    db.nudge(t2);
    db.begin(t2).unwrap();
    assert!(db.commit(t2).unwrap());
}

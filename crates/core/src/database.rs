//! The ASSET transaction manager: the paper's primitives over the EOS-style
//! substrate.
//!
//! `Database` owns the storage engine, the lock table, the dependency graph
//! and the transaction table (TDs). Every primitive of §2 is a method here;
//! [`TxnCtx`](crate::context::TxnCtx) proxies them with `self()` filled in
//! for code running inside a transaction.
//!
//! Both descriptor tables are sharded per the paper's §4.1 double hashing:
//! the lock table by object id (inside `asset-lock`) and the transaction
//! table by tid ([`TxnTable`]), so the per-operation hot path touches only
//! the stripes of the descriptors involved. The dependency graph stays
//! global but is taken only on `form_dependency` and the commit gates —
//! never on the read/write path. Cross-shard atomicity rules:
//!
//! * shard locks are acquired in ascending index order ([`GroupGuard`]);
//! * the `deps` mutex is acquired only *after* any held transaction
//!   shards, never before;
//! * the commit point re-validates the gate while holding every group
//!   member's shard, which blocks concurrent `form_dependency`/abort of a
//!   member (both need a member's shard) — the atomicity the old global
//!   mutex provided, now scoped to the group.
//!
//! ## Execution model
//!
//! `initiate` registers a closure; `begin` spawns a thread that runs it
//! with a `TxnCtx`. When the closure returns `Ok`, the transaction is
//! *completed* — locks retained, changes not durable — until an explicit
//! `commit` runs the §4.2 protocol. Returning `Err` (or panicking) aborts.
//!
//! ## Commit protocol (paper §4.2, `commit(ti)`)
//!
//! The mark-based group-commit discovery of the paper is implemented as GC
//! *component* evaluation: the committing transaction's whole GC component
//! must be gate-free and fully executed, then the component commits
//! atomically under one forced log record. AD gates wait for the parent to
//! commit (and doom on its abort); CD gates wait for termination either
//! way. Blocked commits park on the transaction table's event count and
//! "retry starting at step 1" on every termination event.
//!
//! ## Abort protocol (paper §4.2, `abort(ti)`)
//!
//! Install before images in reverse order, log `Abort`, release locks and
//! permits, propagate along incoming AD/GC edges (CD edges are dropped),
//! then mark aborted. A *running* victim is marked `Aborting` and its lock
//! waits are poisoned; its own thread performs the steps when the closure
//! unwinds — the paper's "mark tj in its TD structure as aborting". The
//! `abort_performed` flag claims finalization under the victim's shard, so
//! the undo itself can run without holding any table lock.

use crate::context::TxnCtx;
use crate::txns::TxnTable;
use asset_annot::{exec_step, verify_allow, wal};
use asset_common::ids::IdGen;
use asset_common::{AssetError, Config, DepType, ObSet, Oid, OpSet, Result, Tid, TxnStatus};
use asset_dep::{CommitGate, DepGraph};
use asset_lock::{LockStats, LockTable};
use asset_obs::{add, bump, EventKind, Obs, SpanName};
use asset_storage::{LogRecord, RecoveryReport, StorageEngine};
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// The closure a transaction executes.
pub type Job = Box<dyn FnOnce(&TxnCtx) -> Result<()> + Send + 'static>;

/// One undo-log entry: installing `before` over `oid` reverses one update.
#[derive(Clone, Debug)]
pub(crate) struct UndoEntry {
    pub seq: u64,
    pub oid: Oid,
    pub before: Option<Vec<u8>>,
}

/// A transaction descriptor (the paper's TD).
pub(crate) struct TxnSlot {
    pub parent: Tid,
    pub status: TxnStatus,
    pub job: Option<Job>,
    /// In-memory undo chain; delegation splices entries between slots.
    pub undo: Vec<UndoEntry>,
    /// Abort steps already performed? (guards against double undo when
    /// commit/abort/wrapper race to finalize an `Aborting` transaction)
    pub abort_performed: bool,
    /// Is the transaction's thread still executing its closure? While it
    /// is, abort only *marks* (§4.2: "mark tj in its TD structure as
    /// aborting"); the undo steps run when the thread finishes, so a late
    /// in-flight write can never land after its own undo. Executor-driven
    /// transactions set this too: the worker pool plays the role of the
    /// thread and finalizes marked aborts at the next dispatch.
    pub thread_live: bool,
    /// A group-commit record containing this transaction is sitting in the
    /// flusher's window (executor path): its fate is decided solely by the
    /// flush outcome. While set, `abort_many` must skip the slot and a
    /// concurrent blocking `commit` parks instead of forcing a second
    /// record for the same group.
    pub commit_pending: bool,
    /// A commit record containing this transaction failed at the commit
    /// point: it may or may not have reached stable storage, so the
    /// transaction's durable fate is unknown even though the live system
    /// drove it through abort. Read by [`Database::outcome_kind`] to
    /// report [`TxnOutcome`](crate::TxnOutcome)`::CommitAmbiguous`
    /// instead of a plain abort.
    pub commit_ambiguous: bool,
}

pub(crate) struct DbInner {
    pub config: Config,
    pub engine: StorageEngine,
    pub locks: LockTable,
    pub deps: Mutex<DepGraph>,
    pub txns: TxnTable,
    pub tid_gen: IdGen,
    pub oid_gen: IdGen,
    pub undo_seq: AtomicU64,
    /// Non-terminated transaction count. The `initiate` cap is enforced
    /// with a compare-exchange on this counter, so admission control never
    /// takes a table lock.
    pub live_count: AtomicUsize,
    /// Observability hub shared with the storage engine and lock table:
    /// lifecycle counters, latency histograms, and the event trace.
    pub obs: Arc<Obs>,
    /// The state-machine executor (worker pool + run queues), spawned
    /// lazily by the first [`Database::submit`] so databases that only use
    /// the thread-per-transaction path pay nothing.
    pub exec: std::sync::OnceLock<Arc<crate::exec::ExecInner>>,
    /// Prepare-force instants for in-doubt members (§14.2): written by
    /// `prepare_group` once its `Prepared` record is durable, consumed by
    /// the decide paths to feed `Obs::in_doubt_ns`. Taken only *after*
    /// every transaction-shard guard is dropped (the §7 rule: no obs
    /// bookkeeping under a stripe mutex). Absent entries — a restart
    /// between prepare and decide — simply record nothing.
    pub prepared_at: Mutex<std::collections::HashMap<Tid, std::time::Instant>>,
}

impl Drop for DbInner {
    fn drop(&mut self) {
        // Workers hold only `Weak<DbInner>`/strong executor handles, so the
        // executor cannot shut itself down by reference counting alone:
        // signal it here, once the last database handle is gone.
        if let Some(exec) = self.exec.get() {
            exec.begin_shutdown();
        }
    }
}

/// A point-in-time statistics snapshot of a [`Database`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DatabaseStats {
    /// Transactions registered but not begun.
    pub initiated: usize,
    /// Transactions executing their closure.
    pub running: usize,
    /// Completed (or committing) transactions awaiting the commit point.
    pub completed: usize,
    /// Committed transactions still in the table (not yet retired).
    pub committed: usize,
    /// Aborting/aborted transactions still in the table.
    pub aborted: usize,
    /// Lock-manager counters.
    pub locks: LockStats,
    /// Live permit descriptors.
    pub permits: usize,
    /// Live CD/AD dependency edges.
    pub dep_edges: usize,
    /// Live GC links.
    pub gc_links: usize,
    /// Records appended to the log by this process.
    pub log_records: u64,
}

/// A one-call cross-layer introspection view, assembled by
/// [`Database::introspect`] for live monitoring surfaces (`asset-top`, the
/// DOT exporters). Each section is internally consistent (read under its
/// own layer's synchronization); sections may lag each other by in-flight
/// operations, exactly like [`MetricsSnapshot`](asset_obs::MetricsSnapshot).
#[derive(Clone, Debug)]
pub struct Introspection {
    /// Transaction / lock / dependency aggregate counts.
    pub stats: DatabaseStats,
    /// Live (non-terminated) transactions.
    pub live: usize,
    /// Per-stripe cumulative contention counters.
    pub stripe_stats: Vec<asset_lock::StripeStats>,
    /// Per-stripe point-in-time occupancy (holders, waiters, permits).
    pub stripes: Vec<asset_lock::StripeOccupancy>,
    /// Current waits-for edges (waiter → holders).
    pub waits: std::collections::HashMap<Tid, std::collections::HashSet<Tid>>,
    /// Live dependency edges in paper orientation `(kind, ti, tj)`.
    pub dep_edges: Vec<(DepType, Tid, Tid)>,
    /// Dependency-graph aggregate counts (doomed, per-kind edges).
    pub deps: asset_dep::DepSummary,
    /// Log durability watermarks (tail LSN, pending/unsynced bytes).
    pub log: asset_storage::LogWatermarks,
    /// Deepest transitive permit chain a permit check has walked so far.
    pub permit_chain_max: u64,
}

impl std::fmt::Display for DatabaseStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "txns: {} initiated / {} running / {} completed / {} committed / {} aborted",
            self.initiated, self.running, self.completed, self.committed, self.aborted
        )?;
        writeln!(
            f,
            "locks: {} grants, {} blocks, {} suspensions, {} deadlocks, {} timeouts",
            self.locks.grants,
            self.locks.blocks,
            self.locks.suspensions,
            self.locks.deadlocks,
            self.locks.timeouts
        )?;
        write!(
            f,
            "permits: {}; dependencies: {} CD/AD + {} GC; log records: {}",
            self.permits, self.dep_edges, self.gc_links, self.log_records
        )
    }
}

/// A handle to an ASSET database. Cheap to clone; all clones share state.
#[derive(Clone)]
pub struct Database {
    pub(crate) inner: Arc<DbInner>,
}

impl Database {
    /// Open a database per `config`, running restart recovery. Returns the
    /// handle and the recovery report.
    pub fn open(config: Config) -> Result<(Database, RecoveryReport)> {
        // One observability hub shared by every layer: the engine reports
        // cache/log metrics, the lock table reports waits and permits, and
        // the transaction manager reports lifecycle events — all into the
        // same counters and trace.
        let obs = Obs::shared();
        let (engine, report) = StorageEngine::open_with_obs(&config, Arc::clone(&obs))?;
        let tid_gen = IdGen::new();
        tid_gen.bump_past(report.max_tid);
        let oid_gen = IdGen::new();
        let max_oid = engine
            .store()
            .oids()
            .iter()
            .map(|o| o.raw())
            .max()
            .unwrap_or(0);
        oid_gen.bump_past(max_oid);
        let inner = Arc::new(DbInner {
            locks: LockTable::with_shards_obs(config.lock_shards, Arc::clone(&obs)),
            txns: TxnTable::new(config.txn_shards),
            config,
            engine,
            deps: Mutex::new(DepGraph::new()),
            tid_gen,
            oid_gen,
            undo_seq: AtomicU64::new(1),
            live_count: AtomicUsize::new(0),
            obs,
            exec: std::sync::OnceLock::new(),
            prepared_at: Mutex::new(std::collections::HashMap::new()),
        });
        // Restore prepared-but-undecided participants (§14.3): each
        // in-doubt transaction re-enters the table as `Prepared` — undo
        // chain rebuilt from the log (for a later decide-abort), X locks
        // reacquired on its updated objects (uncontended: nothing else
        // runs yet), GC links re-formed within its group — and waits for
        // the coordinator's decision.
        for d in &report.in_doubt {
            let undo: Vec<UndoEntry> = d
                .updates
                .iter()
                .map(|u| UndoEntry {
                    seq: inner.undo_seq.fetch_add(1, Ordering::Relaxed),
                    oid: u.oid,
                    before: u.before.clone(),
                })
                .collect();
            let oids: BTreeSet<Oid> = d.updates.iter().map(|u| u.oid).collect();
            for oid in oids {
                if inner
                    .locks
                    .try_lock(d.tid, oid, asset_common::Operation::Write)
                    .is_err()
                {
                    return Err(AssetError::Corrupt(format!(
                        "in-doubt lock conflict on {oid} restoring {}",
                        d.tid
                    )));
                }
            }
            inner.txns.insert(
                d.tid,
                TxnSlot {
                    parent: Tid::NULL,
                    status: TxnStatus::Prepared,
                    job: None,
                    undo,
                    abort_performed: false,
                    thread_live: false,
                    commit_pending: false,
                    commit_ambiguous: false,
                },
            );
            inner.live_count.fetch_add(1, Ordering::Relaxed);
            inner.deps.lock().register(d.tid);
        }
        {
            let present: BTreeSet<Tid> = report.in_doubt.iter().map(|d| d.tid).collect();
            let mut deps = inner.deps.lock();
            for d in &report.in_doubt {
                for m in &d.group {
                    if *m != d.tid && present.contains(m) {
                        // re-link the surviving group (ignore duplicates)
                        let _ = deps.form(DepType::GC, d.tid, *m);
                    }
                }
            }
        }
        Ok((Database { inner }, report))
    }

    /// An in-memory database with default configuration (tests, examples).
    pub fn in_memory() -> Database {
        Database::open(Config::in_memory())
            // the only open failures are I/O errors from the file-backed path
            // verify: allow(no_panics) — in-memory open performs no I/O
            .expect("in-memory open cannot fail")
            .0
    }

    // --- basic primitives (paper §2.1) ---------------------------------

    /// `initiate(f, args)` — paper §2.1: register a new transaction that
    /// will execute `f`, allocating its transaction descriptor (the TD of
    /// §4.1). (Arguments are closure captures in Rust.) The transaction
    /// does not run until [`begin`](Self::begin); the gap is the point —
    /// you can [`permit`](Self::permit), [`delegate`](Self::delegate) to,
    /// or [`form_dependency`](Self::form_dependency) on a transaction
    /// before it starts. Fails with `ResourceExhausted` when the
    /// configured transaction cap is reached.
    ///
    /// ```
    /// use asset_core::Database;
    ///
    /// let db = Database::in_memory();
    /// let oid = db.new_oid();
    /// let t = db.initiate(move |ctx| ctx.write(oid, b"hello".to_vec())).unwrap();
    /// db.begin(t).unwrap();
    /// assert!(db.commit(t).unwrap());
    /// assert_eq!(db.peek(oid).unwrap().unwrap(), b"hello");
    /// ```
    pub fn initiate(&self, f: impl FnOnce(&TxnCtx) -> Result<()> + Send + 'static) -> Result<Tid> {
        self.initiate_with_parent(Tid::NULL, Box::new(f))
    }

    pub(crate) fn initiate_with_parent(&self, parent: Tid, job: Job) -> Result<Tid> {
        let cap = self.inner.config.max_transactions;
        // exact admission without a table lock: claim a live slot or fail
        if self
            .inner
            .live_count
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                if n >= cap {
                    None
                } else {
                    Some(n + 1)
                }
            })
            .is_err()
        {
            return Err(AssetError::ResourceExhausted { limit: cap });
        }
        let tid = Tid(self.inner.tid_gen.next());
        self.inner.txns.insert(
            tid,
            TxnSlot {
                parent,
                status: TxnStatus::Initiated,
                job: Some(job),
                undo: Vec::new(),
                abort_performed: false,
                thread_live: false,
                commit_pending: false,
                commit_ambiguous: false,
            },
        );
        self.inner.deps.lock().register(tid);
        bump(&self.inner.obs.counters.txn_initiated);
        self.inner
            .obs
            .record(EventKind::TxnInitiate { tid, parent });
        Ok(tid)
    }

    /// `begin(t)` — paper §2.1: start execution of `t` on its own thread.
    ///
    /// Beginning a transaction that was already doomed (e.g. aborted
    /// through a dependency formed before it started — the point of
    /// separating `initiate` from `begin`) is a benign no-op: the paper's
    /// `begin` returns 0 there, and the subsequent `commit` reports the
    /// abort. Beginning a transaction in any other non-`Initiated` state is
    /// a programming error.
    ///
    /// ```
    /// use asset_core::Database;
    ///
    /// let db = Database::in_memory();
    /// let t = db.initiate(|_| Ok(())).unwrap();
    /// db.begin(t).unwrap();            // the closure now runs on its own thread
    /// assert!(db.wait(t).unwrap());    // completed — but not yet durable
    /// assert!(db.commit(t).unwrap());
    /// ```
    #[wal(logs = "log_record", mutates = "slot.status = TxnStatus::Running")]
    pub fn begin(&self, t: Tid) -> Result<()> {
        let job = self.inner.txns.with(t, |slot| -> Result<Option<Job>> {
            let slot = slot.ok_or(AssetError::TxnNotFound(t))?;
            if slot.status.is_abort_path() {
                return Ok(None); // doomed before it started; commit reports it
            }
            if slot.status != TxnStatus::Initiated {
                return Err(AssetError::InvalidState {
                    tid: t,
                    status: slot.status,
                    op: "begin",
                });
            }
            // WAL discipline: the Begin record lands before the slot is
            // mutated, so a failed append leaves the transaction cleanly
            // Initiated (retryable) instead of Running with no thread.
            self.inner.engine.log_record(&LogRecord::Begin { tid: t })?;
            slot.status = TxnStatus::Running;
            slot.thread_live = true;
            Ok(Some(
                // Initiated status invariantly carries the job installed by
                // initiate(); nothing else takes it before the status moves.
                // verify: allow(no_panics) — status-gated slot invariant
                slot.job.take().expect("initiated transaction has a job"),
            ))
        })?;
        let Some(job) = job else { return Ok(()) };
        bump(&self.inner.obs.counters.txn_begun);
        self.inner.obs.record(EventKind::TxnBegin { tid: t });
        let inner = Arc::clone(&self.inner);
        let spawned = std::thread::Builder::new()
            .name(format!("asset-{t}"))
            .spawn(move || run_job(inner, t, job));
        if let Err(e) = spawned {
            // The thread never started: drive the slot to a terminal state
            // so wait()/commit() observe the failure instead of hanging on
            // a Running transaction with no thread behind it. The Begin
            // record without a Commit already reads as aborted to restart
            // recovery.
            self.inner.txns.with(t, |slot| {
                if let Some(slot) = slot {
                    slot.status = TxnStatus::Aborted;
                    slot.thread_live = false;
                }
            });
            self.inner.live_count.fetch_sub(1, Ordering::Relaxed);
            self.inner.locks.release_all(t);
            self.inner.txns.bump();
            return Err(AssetError::Io(e));
        }
        Ok(())
    }

    /// `begin(t1, ..., tn)`: start several transactions.
    pub fn begin_many(&self, ts: &[Tid]) -> Result<()> {
        for t in ts {
            self.begin(*t)?;
        }
        Ok(())
    }

    /// `wait(t)` — paper §2.1: block until `t`'s code has completed.
    /// Returns `true` on completion (or if already committed), `false` if
    /// `t` aborted. Completion is *not* commit: `t`'s locks are retained
    /// and its changes stay volatile until [`commit`](Self::commit).
    ///
    /// ```
    /// use asset_core::Database;
    ///
    /// let db = Database::in_memory();
    /// let ok = db.initiate(|_| Ok(())).unwrap();
    /// let bad = db.initiate(|ctx| ctx.abort_self::<()>().map(|_| ())).unwrap();
    /// db.begin_many(&[ok, bad]).unwrap();
    /// assert!(db.wait(ok).unwrap());
    /// assert!(!db.wait(bad).unwrap(), "aborted transactions report false");
    /// ```
    pub fn wait(&self, t: Tid) -> Result<bool> {
        loop {
            let epoch = self.inner.txns.epoch();
            match self.status(t)? {
                TxnStatus::Completed
                | TxnStatus::Committing
                | TxnStatus::Prepared
                | TxnStatus::Committed => return Ok(true),
                TxnStatus::Aborted => return Ok(false),
                TxnStatus::Initiated | TxnStatus::Running | TxnStatus::Aborting => {
                    // Aborting is transient (the victim's thread finalizes
                    // it); report failure only once the undo has run.
                    self.inner.txns.wait_event(epoch);
                }
            }
        }
    }

    /// `commit(t)` — paper §2.1, protocol in §4.2: the blocking commit.
    /// Blocks until `t` completes execution and every dependency gate
    /// opens (CD: the depended-on transaction terminated; AD: the parent
    /// committed; GC: the whole group is ready). Returns `true` if `t`
    /// (and its GC group) committed under one forced log record, `false`
    /// if it aborted.
    ///
    /// ```
    /// use asset_core::{Database, DepType};
    ///
    /// let db = Database::in_memory();
    /// let (a, b) = (db.new_oid(), db.new_oid());
    /// let t1 = db.initiate(move |ctx| ctx.write(a, b"alpha".to_vec())).unwrap();
    /// let t2 = db.initiate(move |ctx| ctx.write(b, b"beta".to_vec())).unwrap();
    /// db.form_dependency(DepType::GC, t1, t2).unwrap();
    /// db.begin_many(&[t1, t2]).unwrap();
    /// assert!(db.commit(t1).unwrap()); // commits the whole GC group
    /// assert!(db.is_committed(t2).unwrap());
    /// ```
    pub fn commit(&self, t: Tid) -> Result<bool> {
        // Span + latency instrumentation wraps the whole terminal
        // processing (gate evaluation, parking, the forced record); both
        // are gated on tracing so the default commit path stays clock-free.
        let obs = &self.inner.obs;
        let t0 = obs.tracing_enabled().then(std::time::Instant::now);
        if t0.is_some() {
            obs.record(EventKind::SpanOpen {
                tid: t,
                span: SpanName::CommitGate,
            });
        }
        let res = self.commit_gated(t);
        if let Some(t0) = t0 {
            obs.commit_ns.record(t0.elapsed().as_nanos() as u64);
            obs.record(EventKind::SpanClose {
                tid: t,
                span: SpanName::CommitGate,
            });
        }
        res
    }

    #[wal(logs = "log_record", mutates = "slot.status = TxnStatus::Committed")]
    fn commit_gated(&self, t: Tid) -> Result<bool> {
        enum Step {
            Done(bool),
            Park,
            FinishAbort,
            Gate,
        }
        loop {
            let epoch = self.inner.txns.epoch();
            // Step 1: status check.
            let step = self.inner.txns.with(t, |slot| -> Result<Step> {
                let slot = slot.ok_or(AssetError::TxnNotFound(t))?;
                match slot.status {
                    TxnStatus::Committed => Ok(Step::Done(true)),
                    TxnStatus::Aborted => Ok(Step::Done(false)),
                    TxnStatus::Aborting => Ok(Step::FinishAbort),
                    TxnStatus::Initiated | TxnStatus::Running => Ok(Step::Park),
                    // a prepared participant's fate belongs to the commit
                    // coordinator (§14); local commit must not decide it
                    TxnStatus::Prepared => Err(AssetError::InvalidState {
                        tid: t,
                        status: TxnStatus::Prepared,
                        op: "commit",
                    }),
                    // a commit record for this transaction's group already
                    // sits in the flush window (executor path): park until
                    // the flush outcome finalizes it rather than forcing a
                    // second record for the same group
                    TxnStatus::Completed | TxnStatus::Committing if slot.commit_pending => {
                        Ok(Step::Park)
                    }
                    TxnStatus::Completed | TxnStatus::Committing => {
                        slot.status = TxnStatus::Committing;
                        Ok(Step::Gate)
                    }
                }
            })?;
            match step {
                Step::Done(committed) => return Ok(committed),
                Step::Park => {
                    // blocking primitive: wait for completion
                    self.inner.txns.wait_event(epoch);
                    continue;
                }
                Step::FinishAbort => {
                    // transient: the victim's own thread (or the aborter)
                    // finalizes the undo; wait for it rather than racing
                    self.abort_many(&[t]);
                    if self.status(t)? != TxnStatus::Aborted {
                        self.inner.txns.wait_event(epoch);
                    }
                    continue;
                }
                Step::Gate => {}
            }

            // Steps 2–3: dependency gates over the GC component.
            let gate = self.inner.deps.lock().commit_gate(t);
            match gate {
                CommitGate::Doomed(group) => {
                    self.abort_many(&group);
                    return Ok(false);
                }
                CommitGate::WaitOn(_) => {
                    self.inner.txns.wait_event(epoch);
                }
                CommitGate::Ready(group) => {
                    // Lock every member's shard, then re-validate: a
                    // form_dependency or abort that would change the gate
                    // needs one of these shards, so a gate that is still
                    // Ready under the guards is committable atomically.
                    let mut guard = self.inner.txns.lock_group(&group);
                    let gate2 = self.inner.deps.lock().commit_gate(t);
                    let same = matches!(
                        &gate2,
                        CommitGate::Ready(g2)
                            if g2.iter().collect::<BTreeSet<_>>()
                                == group.iter().collect::<BTreeSet<_>>()
                    );
                    if !same {
                        drop(guard);
                        continue; // re-evaluate from step 1
                    }
                    // every member must have completed execution (the
                    // paper's commit(tj) invocation inside step 2c-ii is a
                    // blocking wait for the partner)
                    let mut incomplete = false;
                    let mut doomed = false;
                    for m in &group {
                        match guard.get(*m).map(|s| (s.status, s.commit_pending)) {
                            // an executor commit of this group is already in
                            // the flush window: wait for its outcome
                            Some((_, true)) => incomplete = true,
                            Some((TxnStatus::Initiated, _)) | Some((TxnStatus::Running, _)) => {
                                incomplete = true
                            }
                            Some((TxnStatus::Aborting, _)) | Some((TxnStatus::Aborted, _)) => {
                                doomed = true
                            }
                            Some(_) => {}
                            None => {
                                return Err(AssetError::TxnNotFound(*m));
                            }
                        }
                    }
                    if doomed {
                        drop(guard);
                        self.abort_many(&group);
                        return Ok(false);
                    }
                    if incomplete {
                        drop(guard);
                        self.inner.txns.wait_event(epoch);
                        continue;
                    }
                    // Step 4: commit point — one forced record for the group.
                    #[allow(unused_mut)]
                    let mut commit_res: Result<()> = Ok(());
                    asset_faults::failpoint!(
                        &self.inner.config.faults,
                        crate::failpoints::COMMIT_RECORD,
                        |act| {
                            commit_res = Err(self
                                .inner
                                .config
                                .faults
                                .realize_plain(crate::failpoints::COMMIT_RECORD, act)
                                .into());
                        }
                    );
                    if commit_res.is_ok() {
                        commit_res = self
                            .inner
                            .engine
                            .log_record(&LogRecord::Commit {
                                tids: group.clone(),
                            })
                            .map(|_| ());
                    }
                    #[cfg(feature = "faults")]
                    if commit_res.is_ok() {
                        if let Some(act) = self
                            .inner
                            .config
                            .faults
                            .check(crate::failpoints::COMMIT_AFTER_RECORD)
                        {
                            // the record is durable; an error here is the
                            // ambiguous "committed on disk, reported as
                            // failed" outcome the abort path reconciles
                            commit_res = Err(self
                                .inner
                                .config
                                .faults
                                .realize_plain(crate::failpoints::COMMIT_AFTER_RECORD, act)
                                .into());
                        }
                    }
                    if let Err(e) = commit_res {
                        // The commit record may or may not have reached the
                        // OS. Leaving the group members non-terminal here
                        // would let restart recovery redo a group the live
                        // system reported as not committed; instead drive
                        // the group through the abort path. Its CLRs and
                        // Abort records land *after* the (possibly durable)
                        // commit record, so redo followed by the logged
                        // rollback converges to "not committed" on both
                        // sides of a restart.
                        for m in &group {
                            if let Some(slot) = guard.get_mut(*m) {
                                slot.commit_ambiguous = true;
                            }
                        }
                        drop(guard);
                        bump(&self.inner.obs.counters.commit_log_failures);
                        self.inner.obs.record(EventKind::CommitAmbiguous {
                            tid: t,
                            group: group.len() as u32,
                        });
                        self.abort_many(&group);
                        return Err(e);
                    }
                    // Steps 5–6: statuses, dependency cleanup, lock release.
                    for m in &group {
                        // members come from the guard's own locked key set
                        // verify: allow(no_panics) — guard-internal keys
                        let slot = guard.get_mut(*m).expect("group member exists");
                        slot.status = TxnStatus::Committed;
                        slot.undo.clear();
                        self.inner.live_count.fetch_sub(1, Ordering::Relaxed);
                        self.inner.locks.release_all(*m);
                    }
                    let resolved = {
                        let mut deps = self.inner.deps.lock();
                        let before = deps.edge_count() + deps.gc_link_count();
                        deps.committed(&group);
                        before.saturating_sub(deps.edge_count() + deps.gc_link_count())
                    };
                    drop(guard);
                    let obs = &self.inner.obs;
                    add(&obs.counters.txn_committed, group.len() as u64);
                    add(&obs.counters.dep_edges_resolved, resolved as u64);
                    obs.commit_group_size.record(group.len() as u64);
                    obs.record(EventKind::TxnCommit {
                        tid: t,
                        group: group.len() as u32,
                    });
                    self.inner.txns.bump();
                    return Ok(true);
                }
            }
        }
    }

    /// `abort(t)` — paper §2.1, protocol in §4.2: roll `t` back by
    /// installing its before images in reverse order, release its locks
    /// and permits, and propagate the abort along incoming AD/GC edges.
    /// Returns `true` if the abort succeeds (or `t` was already aborted),
    /// `false` if `t` has already committed.
    ///
    /// ```
    /// use asset_core::Database;
    ///
    /// let db = Database::in_memory();
    /// let oid = db.new_oid();
    /// assert!(db.run(move |ctx| ctx.write(oid, b"v1".to_vec())).unwrap());
    /// let t = db.initiate(move |ctx| ctx.write(oid, b"v2".to_vec())).unwrap();
    /// db.begin(t).unwrap();
    /// db.wait(t).unwrap();
    /// assert!(db.abort(t).unwrap());
    /// assert_eq!(db.peek(oid).unwrap().unwrap(), b"v1", "before image restored");
    /// ```
    pub fn abort(&self, t: Tid) -> Result<bool> {
        match self.status(t)? {
            TxnStatus::Committed => Ok(false),
            TxnStatus::Aborted => Ok(true),
            _ => {
                self.abort_many(&[t]);
                Ok(true)
            }
        }
    }

    /// `self()` and `parent()` are on [`TxnCtx`]; this is the parent query
    /// by tid.
    pub fn parent_of(&self, t: Tid) -> Result<Tid> {
        self.inner
            .txns
            .with(t, |slot| slot.map(|s| s.parent))
            .ok_or(AssetError::TxnNotFound(t))
    }

    /// Status query (the paper mentions status primitives without listing
    /// them).
    pub fn status(&self, t: Tid) -> Result<TxnStatus> {
        self.inner
            .txns
            .with(t, |slot| slot.map(|s| s.status))
            .ok_or(AssetError::TxnNotFound(t))
    }

    /// Has `t` committed? (One of the paper's unnamed status queries.)
    pub fn is_committed(&self, t: Tid) -> Result<bool> {
        Ok(self.status(t)? == TxnStatus::Committed)
    }

    /// Has `t` aborted or is it doomed ("determine whether a transaction
    /// has aborted", §2.1)?
    pub fn is_aborted(&self, t: Tid) -> Result<bool> {
        Ok(self.status(t)?.is_abort_path())
    }

    /// Is `t` active in the paper's sense — begun and not terminated?
    pub fn is_active(&self, t: Tid) -> Result<bool> {
        Ok(self.status(t)?.is_active())
    }

    // --- new primitives (paper §2.2) ------------------------------------

    /// `delegate(ti, tj, ob_set)` / `delegate(ti, tj)` (with `obs: None`)
    /// — paper §2.2, implementation in §4.2: transfer responsibility for
    /// `ti`'s uncommitted operations to `tj` — locks, permits granted, and
    /// undo responsibility all move; a `Delegate` log record makes the
    /// transfer crash-safe. The building block of split/join (§3.1.5) and
    /// nested transactions (§3.1.4).
    ///
    /// ```
    /// use asset_core::Database;
    ///
    /// let db = Database::in_memory();
    /// let oid = db.new_oid();
    /// let t1 = db.initiate(move |ctx| ctx.write(oid, b"draft".to_vec())).unwrap();
    /// let t2 = db.initiate(|_| Ok(())).unwrap();
    /// db.begin(t1).unwrap();
    /// db.wait(t1).unwrap();
    /// db.delegate(t1, t2, None).unwrap();  // t2 now owns the lock and the undo
    /// assert!(db.commit(t1).unwrap());     // nothing left to commit: a formality
    /// db.begin(t2).unwrap();
    /// db.wait(t2).unwrap();
    /// assert!(db.abort(t2).unwrap());      // aborting t2 undoes t1's write
    /// assert_eq!(db.peek(oid).unwrap(), None);
    /// ```
    #[wal(logs = "log_record", mutates = "std::mem::take(&mut slot.undo)")]
    pub fn delegate(&self, from: Tid, to: Tid, obs: Option<ObSet>) -> Result<()> {
        let mut guard = self.inner.txns.lock_group(&[from, to]);
        if guard.get(from).is_none() {
            return Err(AssetError::TxnNotFound(from));
        }
        if guard.get(to).is_none() {
            return Err(AssetError::TxnNotFound(to));
        }
        if from == to {
            return Ok(());
        }
        // Crash safety — WAL discipline: the Delegate record lands before
        // any in-memory state moves, so a failed append leaves the
        // delegation entirely un-happened on both sides of a restart
        // (recovery applies a logged Delegate whether or not the splice
        // below ran; an unlogged splice, by contrast, would strand the
        // delegatee's undo responsibility on the delegator after a crash).
        let logged_obs = obs.as_ref().map(|set| match set {
            ObSet::All => None,
            ObSet::Objects(s) => Some(s.iter().copied().collect::<Vec<_>>()),
        });
        let logged_obs = match logged_obs {
            None => None,       // delegate-all
            Some(None) => None, // ObSet::All == delegate-all
            Some(Some(v)) => Some(v),
        };
        asset_faults::failpoint!(
            &self.inner.config.faults,
            crate::failpoints::DELEGATE_RECORD,
            |act| {
                return Err(self
                    .inner
                    .config
                    .faults
                    .realize_plain(crate::failpoints::DELEGATE_RECORD, act)
                    .into());
            }
        );
        self.inner.engine.log_record(&LogRecord::Delegate {
            from,
            to,
            obs: logged_obs,
        })?;
        // splice undo entries (both slots were validated non-None above and
        // the guard has held their shards throughout)
        let moved: Vec<UndoEntry> = {
            let Some(slot) = guard.get_mut(from) else {
                return Err(AssetError::TxnNotFound(from));
            };
            match &obs {
                None => std::mem::take(&mut slot.undo),
                Some(set) => {
                    let (take, keep): (Vec<_>, Vec<_>) =
                        slot.undo.drain(..).partition(|u| set.contains(u.oid));
                    slot.undo = keep;
                    take
                }
            }
        };
        {
            let Some(dst) = guard.get_mut(to) else {
                return Err(AssetError::TxnNotFound(to));
            };
            dst.undo.extend(moved);
            dst.undo.sort_by_key(|u| u.seq);
        }
        // locks + permit re-attribution
        self.inner.locks.delegate(from, to, obs.as_ref());
        drop(guard);
        self.inner.txns.bump();
        Ok(())
    }

    /// `permit(ti, tj, ob_set, operations)` — paper §2.2, descriptor (PD)
    /// in §4.1: allow `tj` to perform conflicting operations on `ti`'s
    /// objects without waiting for `ti` to terminate. Permits compose
    /// transitively (§2.2 property 3). Wildcard forms: `grantee: None` =
    /// any transaction, `ObSet::All` = any object, `OpSet::ALL` = any
    /// operation.
    ///
    /// ```
    /// use asset_core::{Database, ObSet, OpSet};
    ///
    /// let db = Database::in_memory();
    /// let oid = db.new_oid();
    /// let t1 = db.initiate(move |ctx| ctx.write(oid, b"theirs".to_vec())).unwrap();
    /// db.begin(t1).unwrap();
    /// db.wait(t1).unwrap(); // completed, write lock still held
    /// db.permit(t1, None, ObSet::one(oid), OpSet::ALL).unwrap();
    /// // despite t1's lock, another transaction may now write the object
    /// assert!(db.run(move |ctx| ctx.write(oid, b"mine".to_vec())).unwrap());
    /// assert!(db.commit(t1).unwrap());
    /// ```
    pub fn permit(&self, grantor: Tid, grantee: Option<Tid>, obs: ObSet, ops: OpSet) -> Result<()> {
        self.inner.locks.permit(grantor, grantee, obs, ops);
        Ok(())
    }

    /// The paper's `permit(ti, tj, operations)` — materialize the object
    /// set from what `grantor` has accessed or has permission to access,
    /// at call time (§4.2).
    pub fn permit_accessed(&self, grantor: Tid, grantee: Option<Tid>, ops: OpSet) -> Result<()> {
        self.inner.locks.permit_accessed(grantor, grantee, ops);
        Ok(())
    }

    /// `form_dependency(type, ti, tj)` — paper §2.2, edges kept in the
    /// waits-for/dependency graph of §4.1 — with the paper's argument
    /// order:
    /// * CD — `tj` cannot commit before `ti` commits;
    /// * AD — if `ti` aborts, `tj` must abort;
    /// * GC — both commit or neither.
    ///
    /// ```
    /// use asset_core::{Database, DepType};
    ///
    /// let db = Database::in_memory();
    /// let t1 = db.initiate(|ctx| ctx.abort_self::<()>().map(|_| ())).unwrap();
    /// let t2 = db.initiate(|_| Ok(())).unwrap();
    /// db.form_dependency(DepType::AD, t1, t2).unwrap();
    /// db.begin_many(&[t1, t2]).unwrap();
    /// assert!(!db.commit(t2).unwrap(), "t1's abort dooms t2 through the AD edge");
    /// ```
    pub fn form_dependency(&self, kind: DepType, ti: Tid, tj: Tid) -> Result<()> {
        // hold both parties' shards to order against commits, then deps
        let guard = self.inner.txns.lock_group(&[ti, tj]);
        if guard.get(ti).is_none() {
            return Err(AssetError::TxnNotFound(ti));
        }
        if guard.get(tj).is_none() {
            return Err(AssetError::TxnNotFound(tj));
        }
        let mut deps = self.inner.deps.lock();
        // transfer terminal knowledge so retroactive dooming works (both
        // slots were validated non-None above, under the same guard)
        for t in [ti, tj] {
            match guard.get(t).map(|s| s.status) {
                Some(TxnStatus::Committed) => deps.committed(&[t]),
                Some(TxnStatus::Aborted) => {
                    let _ = deps.aborted(t);
                }
                Some(_) => deps.register(t),
                None => {}
            }
        }
        deps.form(kind, ti, tj)?;
        drop(deps);
        drop(guard);
        bump(&self.inner.obs.counters.dep_edges_formed);
        self.inner.obs.record(EventKind::DepFormed { kind, ti, tj });
        self.inner.txns.bump();
        Ok(())
    }

    // --- convenience -----------------------------------------------------

    /// Initiate, begin and commit a transaction in one call — the code the
    /// O++ compiler emits for `trans { ... }` (§3.1.1). Returns `true` if
    /// it committed.
    pub fn run(&self, f: impl FnOnce(&TxnCtx) -> Result<()> + Send + 'static) -> Result<bool> {
        let t = self.initiate(f)?;
        self.begin(t)?;
        self.commit(t)
    }

    /// Allocate a fresh object id.
    pub fn new_oid(&self) -> Oid {
        Oid(self.inner.oid_gen.next())
    }

    /// Read an object's last installed image without any locking — a dirty
    /// diagnostic peek for tests and benchmarks, not a primitive.
    pub fn peek(&self, oid: Oid) -> Result<Option<Vec<u8>>> {
        self.inner.engine.read_object(oid)
    }

    /// Quiescent checkpoint; fails if any transaction is not terminated.
    pub fn checkpoint(&self) -> Result<()> {
        let guard = self.inner.txns.lock_all();
        if let Some((tid, slot)) = guard.iter().find(|(_, s)| !s.status.is_terminated()) {
            return Err(AssetError::InvalidState {
                tid: *tid,
                status: slot.status,
                op: "checkpoint",
            });
        }
        // holding every shard keeps new transactions out of the table
        self.inner.engine.checkpoint()
    }

    /// Compact the write-ahead log while long-lived transactions are still
    /// in flight — the fuzzy counterpart to [`checkpoint`](Self::checkpoint).
    ///
    /// Settled history (committed and aborted work) is dropped from the
    /// log; the pending updates of live transactions are re-logged under
    /// their *current* owner (delegations folded in). Requires only that no
    /// transaction is actively `Running` (completed-but-uncommitted
    /// transactions — the ones that block a quiescent checkpoint — are
    /// fine); fails with `InvalidState` otherwise.
    pub fn compact_log(&self) -> Result<asset_storage::CompactionReport> {
        let guard = self.inner.txns.lock_all();
        if let Some((tid, slot)) = guard
            .iter()
            .find(|(_, s)| matches!(s.status, TxnStatus::Running))
        {
            return Err(AssetError::InvalidState {
                tid: *tid,
                status: slot.status,
                op: "compact_log",
            });
        }
        let live: std::collections::HashSet<Tid> = guard
            .iter()
            .filter(|(_, s)| !s.status.is_terminated())
            .map(|(t, _)| *t)
            .collect();
        // holding the table shards keeps commits/aborts (which append) out
        self.inner.engine.compact_log(&live)
    }

    /// Drop the descriptors of terminated transactions; returns how many
    /// were retired.
    pub fn retire_terminated(&self) -> usize {
        let mut guard = self.inner.txns.lock_all();
        let dead: Vec<Tid> = guard
            .iter()
            .filter(|(_, s)| s.status.is_terminated())
            .map(|(t, _)| *t)
            .collect();
        let mut deps = self.inner.deps.lock();
        for t in &dead {
            guard.remove(*t);
            deps.retire(*t);
        }
        dead.len()
    }

    /// Lock-manager statistics.
    pub fn lock_stats(&self) -> LockStats {
        self.inner.locks.stats()
    }

    /// Aggregate statistics across the whole facility — transaction
    /// counts, lock-manager counters, dependency-graph sizes, permit
    /// count, log volume.
    pub fn stats(&self) -> DatabaseStats {
        let mut c = (0usize, 0usize, 0usize, 0usize, 0usize);
        self.inner.txns.for_each(|_, s| match s.status {
            TxnStatus::Initiated => c.0 += 1,
            TxnStatus::Running => c.1 += 1,
            TxnStatus::Completed | TxnStatus::Committing | TxnStatus::Prepared => c.2 += 1,
            TxnStatus::Committed => c.3 += 1,
            TxnStatus::Aborting | TxnStatus::Aborted => c.4 += 1,
        });
        let (initiated, running, completed, committed, aborted) = c;
        let (dep_edges, gc_links) = {
            let deps = self.inner.deps.lock();
            (deps.edge_count(), deps.gc_link_count())
        };
        DatabaseStats {
            initiated,
            running,
            completed,
            committed,
            aborted,
            locks: self.inner.locks.stats(),
            permits: self.inner.locks.permit_count(),
            dep_edges,
            gc_links,
            log_records: self.inner.engine.log().records_appended(),
        }
    }

    /// The observability hub shared by the storage engine, the lock table
    /// and the transaction manager. Enable tracing with
    /// `db.obs().enable_tracing(capacity)`; read metrics any time with
    /// [`metrics_snapshot`](Self::metrics_snapshot).
    pub fn obs(&self) -> &Arc<Obs> {
        &self.inner.obs
    }

    /// A lock-free point-in-time view of every counter and histogram the
    /// facility records (see `asset_obs::MetricsSnapshot`).
    pub fn metrics_snapshot(&self) -> asset_obs::MetricsSnapshot {
        self.inner.obs.snapshot()
    }

    /// Assemble the full cross-layer [`Introspection`] view: per-stripe
    /// lock occupancy and contention, the waits-for and dependency graphs,
    /// permit-chain depth, and log watermarks. Built for polling from a
    /// monitoring thread (`asset-top` renders it once per frame): each
    /// layer is read under its own short-lived synchronization, never all
    /// at once, so polling cannot stall the workload.
    pub fn introspect(&self) -> Introspection {
        let dep_edges = {
            let deps = self.inner.deps.lock();
            deps.edges()
        };
        let deps_summary = self.inner.deps.lock().summary();
        Introspection {
            stats: self.stats(),
            live: self.live_transactions(),
            stripe_stats: self.inner.locks.stripe_stats(),
            stripes: self.inner.locks.stripe_occupancy(),
            waits: self.inner.locks.waits_snapshot(),
            dep_edges,
            deps: deps_summary,
            log: self.inner.engine.log().watermarks(),
            permit_chain_max: self.inner.obs.permit_chain_len.snapshot().max,
        }
    }

    /// Direct access to the lock table (diagnostics, benches).
    pub fn locks(&self) -> &LockTable {
        &self.inner.locks
    }

    /// Direct access to the storage engine (diagnostics, benches).
    pub fn engine(&self) -> &StorageEngine {
        &self.inner.engine
    }

    /// Number of live (non-terminated) transactions.
    pub fn live_transactions(&self) -> usize {
        self.inner.live_count.load(Ordering::Relaxed)
    }

    // --- abort machinery --------------------------------------------------

    /// Abort every transaction in `seeds` and propagate along incoming
    /// AD/GC edges. Holds at most one transaction shard at a time: each
    /// victim's finalization is *claimed* under its shard (via
    /// `abort_performed`), then the undo/log/release steps run lock-free,
    /// then the terminal status is published. Running victims are marked
    /// and poisoned; their own threads finalize.
    // Abort logs in the reverse direction by design: CLRs land during the
    // undo walk and the Abort record last, after the state changes they
    // describe — recovery re-derives any missing rollback from the Update
    // records (§4.2 step 2), so log-before-mutate does not apply here.
    #[verify_allow(
        wal,
        reason = "abort path: CLRs during undo, Abort record last; recovery re-derives rollback"
    )]
    pub(crate) fn abort_many(&self, seeds: &[Tid]) {
        enum Act {
            Skip,
            Undo(Vec<UndoEntry>),
        }
        let mut queue: Vec<Tid> = seeds.to_vec();
        while let Some(x) = queue.pop() {
            let act = self.inner.txns.with(x, |slot| {
                let Some(slot) = slot else { return Act::Skip };
                if slot.commit_pending {
                    // the group's commit record is in the flush window; its
                    // fate is the flush outcome's to decide. A successful
                    // flush commits the member (the abort request loses the
                    // race, exactly as if the forced record had landed
                    // first); a failed flush re-runs the abort path.
                    return Act::Skip;
                }
                match slot.status {
                    TxnStatus::Committed | TxnStatus::Aborted => Act::Skip,
                    TxnStatus::Running => {
                        // mark; the transaction's own thread performs the
                        // steps
                        slot.status = TxnStatus::Aborting;
                        self.inner.locks.poison(x);
                        Act::Skip
                    }
                    TxnStatus::Aborting if slot.thread_live => {
                        // already marked; its thread will finalize
                        Act::Skip
                    }
                    _ => {
                        if slot.abort_performed {
                            Act::Skip
                        } else {
                            slot.abort_performed = true;
                            slot.status = TxnStatus::Aborting;
                            Act::Undo(std::mem::take(&mut slot.undo))
                        }
                    }
                }
            });
            let Act::Undo(mut undo) = act else { continue };
            let undo_records = undo.len();
            self.inner.obs.record(EventKind::SpanOpen {
                tid: x,
                span: SpanName::Rollback,
            });
            // §4.2 abort step 2: install before images, newest first,
            // logging a CLR per step so restart recovery replays the
            // rollback instead of re-deriving it (and never clobbers later
            // committed overwrites)
            undo.sort_by_key(|u| std::cmp::Reverse(u.seq));
            for u in undo {
                #[allow(unused_mut)]
                let mut clr_lost = false;
                asset_faults::failpoint!(
                    &self.inner.config.faults,
                    crate::failpoints::ABORT_CLR,
                    |act| {
                        match act {
                            asset_faults::FaultAction::Crash
                            | asset_faults::FaultAction::Torn { .. } => {
                                // mid-rollback crash: restart recovery must
                                // finish the undo from the log
                                self.inner
                                    .config
                                    .faults
                                    .crash_now(crate::failpoints::ABORT_CLR);
                            }
                            // a lost CLR append; the in-memory undo still
                            // applies and recovery re-derives the rollback
                            // from the Update records, so states converge
                            _ => clr_lost = true,
                        }
                    }
                );
                // best-effort: failing to undo one image must not strand
                // the rest
                let _ = self.inner.engine.install_image(u.oid, u.before.clone());
                if !clr_lost {
                    let _ = self.inner.engine.log_record(&LogRecord::Clr {
                        oid: u.oid,
                        image: u.before,
                    });
                }
            }
            let _ = self.inner.engine.log_record(&LogRecord::Abort { tid: x });
            self.inner.obs.record(EventKind::SpanClose {
                tid: x,
                span: SpanName::Rollback,
            });
            // step 3: release locks and permits
            self.inner.locks.release_all(x);
            // steps 4–5: propagate along incoming AD/GC, drop CD
            let (victims, resolved) = {
                let mut deps = self.inner.deps.lock();
                let before = deps.edge_count() + deps.gc_link_count();
                let victims = deps.aborted(x);
                let resolved = before.saturating_sub(deps.edge_count() + deps.gc_link_count());
                (victims, resolved)
            };
            queue.extend(victims);
            // step 6: aborted
            self.inner.txns.with(x, |slot| {
                if let Some(slot) = slot {
                    slot.status = TxnStatus::Aborted;
                }
            });
            self.inner.live_count.fetch_sub(1, Ordering::Relaxed);
            let obs = &self.inner.obs;
            bump(&obs.counters.txn_aborted);
            add(&obs.counters.dep_edges_resolved, resolved as u64);
            obs.undo_records.record(undo_records as u64);
            obs.record(EventKind::TxnAbort {
                tid: x,
                undo_records: undo_records as u32,
            });
        }
        self.inner.txns.bump();
    }

    // --- distributed commit participant (§14) --------------------------
    //
    // A node participating in cross-node commit exposes three primitives
    // to the coordinator: `prepare_group` (the vote), and the two decide
    // calls. Prepared transactions are durable-but-undecided: locks held,
    // updates forced, fate owned by the coordinator — they survive
    // restart via the `Prepared` WAL record and the in-doubt restoration
    // in `open`.

    /// Prepare the local GC group(s) of `seeds` for distributed commit
    /// (DESIGN.md §14.2): wait for every member to complete execution and
    /// every commit gate to open, then force one `Prepared` record
    /// through the group-commit flusher and move the whole group to
    /// [`TxnStatus::Prepared`] with locks retained. Returns the full
    /// prepared group (the union of the seeds' GC components).
    ///
    /// A successful return is this participant's *yes* vote: the group
    /// can no longer abort or commit locally — only
    /// [`decide_commit_group`](Self::decide_commit_group) or
    /// [`decide_abort_group`](Self::decide_abort_group) may resolve it.
    /// An error is a *no* vote (nothing durable marks the group prepared,
    /// and doomed groups are aborted locally) — **except** when the error
    /// surfaces after the record became durable (see
    /// [`PART_AFTER_PREPARE`](crate::failpoints::PART_AFTER_PREPARE)), in
    /// which case the group stays `Prepared` awaiting the decision.
    /// Idempotent: re-preparing an already-prepared group returns it.
    #[wal(logs = "log_record", mutates = "slot.status = TxnStatus::Prepared")]
    pub fn prepare_group(&self, seeds: &[Tid]) -> Result<Vec<Tid>> {
        if seeds.is_empty() {
            return Ok(Vec::new());
        }
        loop {
            let epoch = self.inner.txns.epoch();
            // resolve every seed's gate; union the Ready groups
            let mut group: BTreeSet<Tid> = BTreeSet::new();
            let mut waiting = false;
            let mut doomed: Option<(Vec<Tid>, Tid)> = None;
            {
                let deps = self.inner.deps.lock();
                for s in seeds {
                    match deps.commit_gate(*s) {
                        CommitGate::Ready(g) => group.extend(g),
                        CommitGate::WaitOn(_) => waiting = true,
                        CommitGate::Doomed(g) => {
                            doomed = Some((g, *s));
                            break;
                        }
                    }
                }
            }
            if let Some((g, s)) = doomed {
                self.abort_many(&g);
                return Err(AssetError::TxnAborted(s));
            }
            if waiting {
                self.inner.txns.wait_event(epoch);
                continue;
            }
            let group: Vec<Tid> = group.into_iter().collect();
            let mut guard = self.inner.txns.lock_group(&group);
            // re-validate under the guards (same discipline as commit)
            let same = {
                let deps = self.inner.deps.lock();
                let mut g2: BTreeSet<Tid> = BTreeSet::new();
                let mut ok = true;
                for s in seeds {
                    match deps.commit_gate(*s) {
                        CommitGate::Ready(g) => g2.extend(g),
                        _ => {
                            ok = false;
                            break;
                        }
                    }
                }
                ok && g2 == group.iter().copied().collect::<BTreeSet<Tid>>()
            };
            if !same {
                drop(guard);
                continue;
            }
            // every member must have completed execution; terminal or
            // doomed members fail the vote
            let mut incomplete = false;
            let mut prepared = 0usize;
            let mut vote_no: Option<AssetError> = None;
            for m in &group {
                match guard.get(*m).map(|s| (s.status, s.commit_pending)) {
                    Some((_, true)) => incomplete = true,
                    Some((TxnStatus::Initiated | TxnStatus::Running, _)) => incomplete = true,
                    Some((TxnStatus::Aborting | TxnStatus::Aborted, _)) => {
                        vote_no = Some(AssetError::TxnAborted(*m));
                        break;
                    }
                    Some((TxnStatus::Committed, _)) => {
                        vote_no = Some(AssetError::InvalidState {
                            tid: *m,
                            status: TxnStatus::Committed,
                            op: "prepare",
                        });
                        break;
                    }
                    Some((TxnStatus::Prepared, _)) => prepared += 1,
                    Some((TxnStatus::Completed | TxnStatus::Committing, _)) => {}
                    None => return Err(AssetError::TxnNotFound(*m)),
                }
            }
            if let Some(e) = vote_no {
                drop(guard);
                self.abort_many(&group);
                return Err(e);
            }
            if incomplete {
                drop(guard);
                self.inner.txns.wait_event(epoch);
                continue;
            }
            if prepared == group.len() {
                // idempotent re-prepare
                return Ok(group);
            }
            // the vote: one forced Prepared record for the group
            #[allow(unused_mut)]
            let mut prep_res: Result<()> = Ok(());
            asset_faults::failpoint!(
                &self.inner.config.faults,
                crate::failpoints::PREPARE_RECORD,
                |act| {
                    prep_res = Err(self
                        .inner
                        .config
                        .faults
                        .realize_plain(crate::failpoints::PREPARE_RECORD, act)
                        .into());
                }
            );
            if prep_res.is_ok() {
                prep_res = self
                    .inner
                    .engine
                    .log_record(&LogRecord::Prepared {
                        tids: group.clone(),
                    })
                    .map(|_| ());
            }
            if let Err(e) = prep_res {
                // nothing durable marks the group prepared: vote no and
                // abort locally so held locks drain
                drop(guard);
                self.abort_many(&group);
                return Err(e);
            }
            for m in &group {
                // members come from the guard's own locked key set
                // verify: allow(no_panics) — guard-internal keys
                let slot = guard.get_mut(*m).expect("group member exists");
                slot.status = TxnStatus::Prepared;
            }
            drop(guard);
            self.inner.txns.bump();
            // in-doubt clock starts at the durable prepare force (§14.2);
            // guard already dropped, so the map lock nests inside nothing
            {
                let now = std::time::Instant::now();
                let mut at = self.inner.prepared_at.lock();
                for m in &group {
                    at.insert(*m, now);
                }
            }
            self.inner.obs.record(EventKind::PrepareForced {
                tid: group[0],
                group: group.len() as u32,
            });
            // the record is durable and the group is Prepared; a failure
            // here models the participant dying (Crash) or the vote being
            // lost in transit (Error) — either way the group must STAY
            // prepared: only the coordinator's decision resolves it
            #[cfg(feature = "faults")]
            if let Some(act) = self
                .inner
                .config
                .faults
                .check(crate::failpoints::PART_AFTER_PREPARE)
            {
                return Err(self
                    .inner
                    .config
                    .faults
                    .realize_plain(crate::failpoints::PART_AFTER_PREPARE, act)
                    .into());
            }
            return Ok(group);
        }
    }

    /// Apply the coordinator's *commit* decision to a prepared group
    /// (DESIGN.md §14.2): force the group's `Commit` record, move every
    /// member to `Committed`, and release locks and dependencies.
    /// Idempotent — re-deciding a committed group is a no-op, so the
    /// coordinator may re-send decisions after a crash. Rejects groups
    /// with unprepared members (`InvalidState`): a decide may only follow
    /// a successful prepare.
    #[wal(logs = "log_record", mutates = "slot.status = TxnStatus::Committed")]
    pub fn decide_commit_group(&self, group: &[Tid]) -> Result<()> {
        if group.is_empty() {
            return Ok(());
        }
        let mut guard = self.inner.txns.lock_group(group);
        let mut pending: Vec<Tid> = Vec::with_capacity(group.len());
        for m in group {
            match guard.get(*m).map(|s| s.status) {
                Some(TxnStatus::Committed) => {} // already decided
                Some(TxnStatus::Prepared) => pending.push(*m),
                Some(status) => {
                    return Err(AssetError::InvalidState {
                        tid: *m,
                        status,
                        op: "decide-commit",
                    })
                }
                None => return Err(AssetError::TxnNotFound(*m)),
            }
        }
        if pending.is_empty() {
            return Ok(()); // idempotent re-decide
        }
        self.inner.engine.log_record(&LogRecord::Commit {
            tids: pending.clone(),
        })?;
        for m in &pending {
            // members come from the guard's own locked key set
            // verify: allow(no_panics) — guard-internal keys
            let slot = guard.get_mut(*m).expect("group member exists");
            slot.status = TxnStatus::Committed;
            slot.undo.clear();
            self.inner.live_count.fetch_sub(1, Ordering::Relaxed);
            self.inner.locks.release_all(*m);
        }
        let resolved = {
            let mut deps = self.inner.deps.lock();
            let before = deps.edge_count() + deps.gc_link_count();
            deps.committed(&pending);
            before.saturating_sub(deps.edge_count() + deps.gc_link_count())
        };
        drop(guard);
        let obs = &self.inner.obs;
        add(&obs.counters.txn_committed, pending.len() as u64);
        add(&obs.counters.dep_edges_resolved, resolved as u64);
        obs.commit_group_size.record(pending.len() as u64);
        obs.record(EventKind::TxnCommit {
            tid: pending[0],
            group: pending.len() as u32,
        });
        self.record_decide(&pending, true);
        self.inner.txns.bump();
        Ok(())
    }

    /// Close the in-doubt window for `members` (§14.2 observability):
    /// record each member's prepare-force → decision duration into
    /// `Obs::in_doubt_ns` and emit one `DecideApplied` event. Members
    /// without a recorded prepare instant (restart recovery restored
    /// them) record nothing. Never called with a shard guard held.
    fn record_decide(&self, members: &[Tid], commit: bool) {
        let decided: Vec<std::time::Instant> = {
            let mut at = self.inner.prepared_at.lock();
            members.iter().filter_map(|m| at.remove(m)).collect()
        };
        if decided.is_empty() {
            return;
        }
        let obs = &self.inner.obs;
        for t0 in &decided {
            obs.in_doubt_ns.record(t0.elapsed().as_nanos() as u64);
        }
        obs.record(EventKind::DecideApplied {
            tid: members[0],
            commit,
            group: decided.len() as u32,
        });
    }

    /// Apply the coordinator's *abort* decision to a prepared group
    /// (DESIGN.md §14.2): roll every member back through the standard
    /// abort protocol (before images + CLRs + `Abort` records — exactly
    /// what a restart would replay). Idempotent: already-aborted members
    /// are skipped; members that committed are left untouched (the
    /// coordinator never mixes decisions within one group).
    pub fn decide_abort_group(&self, group: &[Tid]) {
        // capture the in-doubt window before the rollback clears state;
        // non-prepared members have no entry and record nothing
        self.record_decide(group, false);
        self.abort_many(group);
    }

    /// Every transaction currently in [`TxnStatus::Prepared`] — after
    /// [`open`](Self::open), the in-doubt set restart recovery restored
    /// (DESIGN.md §14.3), ascending. A recovering coordinator queries
    /// this (wire opcode `PREPARED`) to learn which decisions are still
    /// owed.
    pub fn in_doubt_transactions(&self) -> Vec<Tid> {
        let mut out = Vec::new();
        self.inner.txns.for_each(|t, s| {
            if s.status == TxnStatus::Prepared {
                out.push(t);
            }
        });
        out.sort_unstable();
        out
    }

    // --- executor protocol (crate::exec) -------------------------------
    //
    // The worker-pool executor drives transactions as resumable state
    // machines; these helpers are the non-blocking decomposition of
    // `begin`/`run_job`/`commit_gated`. None of them may sleep: suspension
    // is expressed by their return values and the executor parks the
    // transaction instead (verify rule R5).

    /// Executor-side `begin`: the status transition and Begin record of
    /// [`begin`](Self::begin) without spawning a thread — the worker pool
    /// is the thread. Returns `false` when the transaction was doomed
    /// before it started (the commit phase then reports the abort).
    #[exec_step]
    #[wal(logs = "log_record", mutates = "slot.status = TxnStatus::Running")]
    pub(crate) fn exec_begin(&self, t: Tid) -> Result<bool> {
        let started = self.inner.txns.with(t, |slot| -> Result<bool> {
            let slot = slot.ok_or(AssetError::TxnNotFound(t))?;
            if slot.status.is_abort_path() {
                return Ok(false);
            }
            if slot.status != TxnStatus::Initiated {
                return Err(AssetError::InvalidState {
                    tid: t,
                    status: slot.status,
                    op: "begin",
                });
            }
            self.inner.engine.log_record(&LogRecord::Begin { tid: t })?;
            slot.status = TxnStatus::Running;
            slot.thread_live = true;
            // the step program lives in the executor's task, not the slot
            slot.job = None;
            Ok(true)
        })?;
        if started {
            bump(&self.inner.obs.counters.txn_begun);
            self.inner.obs.record(EventKind::TxnBegin { tid: t });
        }
        Ok(started)
    }

    /// Executor-side completion: the tail of `run_job` — publish the
    /// step program's outcome and finalize a marked abort if one struck
    /// mid-run. Returns `true` when the transaction completed and the
    /// worker should proceed to the commit phase.
    #[exec_step]
    pub(crate) fn exec_complete(&self, t: Tid, succeeded: bool) -> bool {
        self.inner.obs.record(EventKind::TxnComplete {
            tid: t,
            ok: succeeded,
        });
        enum Fin {
            None,
            Completed,
            Abort,
        }
        let fin = self.inner.txns.with(t, |slot| {
            let Some(slot) = slot else { return Fin::None };
            slot.thread_live = false;
            match slot.status {
                TxnStatus::Running if succeeded => {
                    slot.status = TxnStatus::Completed;
                    Fin::Completed
                }
                TxnStatus::Running => {
                    slot.status = TxnStatus::Aborting;
                    Fin::Abort
                }
                TxnStatus::Aborting => Fin::Abort,
                _ => Fin::None,
            }
        });
        match fin {
            Fin::Completed => {
                self.inner.txns.bump();
                true
            }
            Fin::Abort => {
                self.abort_many(&[t]);
                false
            }
            Fin::None => false,
        }
    }

    /// One non-blocking pass of the §4.2 commit protocol (the executor's
    /// counterpart to `commit_gated`). Either resolves the commit
    /// terminally, asks the worker to park until the next table event, or
    /// — gate open and re-validated under every member's shard — pins the
    /// whole GC group with `commit_pending` and hands the group back for
    /// the caller to submit to the flusher. Durability is unchanged: the
    /// statuses move to `Committed` only after the flush ack
    /// ([`exec_finish_commit`](Self::exec_finish_commit)).
    #[exec_step]
    pub(crate) fn exec_try_commit(&self, t: Tid) -> Result<ExecCommit> {
        enum Step {
            Done,
            Wait,
            FinishAbort,
            Gate,
        }
        loop {
            let step = self.inner.txns.with(t, |slot| -> Result<Step> {
                let slot = slot.ok_or(AssetError::TxnNotFound(t))?;
                match slot.status {
                    TxnStatus::Committed | TxnStatus::Aborted => Ok(Step::Done),
                    TxnStatus::Aborting => Ok(Step::FinishAbort),
                    TxnStatus::Initiated | TxnStatus::Running => Ok(Step::Wait),
                    // a prepared participant's fate belongs to the commit
                    // coordinator (§14); the executor must not decide it
                    TxnStatus::Prepared => Err(AssetError::InvalidState {
                        tid: t,
                        status: TxnStatus::Prepared,
                        op: "commit",
                    }),
                    TxnStatus::Completed | TxnStatus::Committing if slot.commit_pending => {
                        Ok(Step::Wait)
                    }
                    TxnStatus::Completed | TxnStatus::Committing => {
                        slot.status = TxnStatus::Committing;
                        Ok(Step::Gate)
                    }
                }
            })?;
            match step {
                Step::Done => return Ok(ExecCommit::Done),
                Step::Wait => return Ok(ExecCommit::Wait),
                Step::FinishAbort => {
                    self.abort_many(&[t]);
                    if self.status(t)? != TxnStatus::Aborted {
                        // another thread owns the finalization; its bump
                        // will requeue us
                        return Ok(ExecCommit::Wait);
                    }
                    continue;
                }
                Step::Gate => {}
            }
            let gate = self.inner.deps.lock().commit_gate(t);
            match gate {
                CommitGate::Doomed(group) => {
                    self.abort_many(&group);
                    return Ok(ExecCommit::Done);
                }
                CommitGate::WaitOn(_) => return Ok(ExecCommit::Wait),
                CommitGate::Ready(group) => {
                    // same re-validation as the blocking path: a gate that
                    // is still Ready under every member's shard commits
                    // atomically
                    let mut guard = self.inner.txns.lock_group(&group);
                    let gate2 = self.inner.deps.lock().commit_gate(t);
                    let same = matches!(
                        &gate2,
                        CommitGate::Ready(g2)
                            if g2.iter().collect::<BTreeSet<_>>()
                                == group.iter().collect::<BTreeSet<_>>()
                    );
                    if !same {
                        drop(guard);
                        continue;
                    }
                    let mut incomplete = false;
                    let mut doomed = false;
                    for m in &group {
                        match guard.get(*m).map(|s| (s.status, s.commit_pending)) {
                            Some((_, true)) => incomplete = true,
                            Some((TxnStatus::Initiated, _)) | Some((TxnStatus::Running, _)) => {
                                incomplete = true
                            }
                            Some((TxnStatus::Aborting, _)) | Some((TxnStatus::Aborted, _)) => {
                                doomed = true
                            }
                            Some(_) => {}
                            None => return Err(AssetError::TxnNotFound(*m)),
                        }
                    }
                    if doomed {
                        drop(guard);
                        self.abort_many(&group);
                        return Ok(ExecCommit::Done);
                    }
                    if incomplete {
                        drop(guard);
                        return Ok(ExecCommit::Wait);
                    }
                    // Commit point, phase 1: pin the group. While pinned,
                    // aborts skip the members and blocking commits park,
                    // so the window between dropping the shards and the
                    // window fsync completing admits no state change that
                    // could contradict the (about to be durable) record.
                    for m in &group {
                        // members come from the guard's own locked key set
                        // verify: allow(no_panics) — guard-internal keys
                        let slot = guard.get_mut(*m).expect("group member exists");
                        slot.commit_pending = true;
                    }
                    drop(guard);
                    return Ok(ExecCommit::Flush(group));
                }
            }
        }
    }

    /// Commit point, phase 2 (flush ack arrived): the group's record is
    /// durable — unpin and run the blocking path's steps 5–6 (statuses,
    /// lock release, dependency cleanup, counters).
    #[exec_step]
    pub(crate) fn exec_finish_commit(&self, t: Tid, group: &[Tid]) {
        let mut guard = self.inner.txns.lock_group(group);
        for m in group {
            // pinned slots are not terminated, so retirement cannot have
            // removed them
            // verify: allow(no_panics) — guard-internal keys
            let slot = guard.get_mut(*m).expect("group member exists");
            slot.commit_pending = false;
            if slot.status != TxnStatus::Committed {
                slot.status = TxnStatus::Committed;
                slot.undo.clear();
                self.inner.live_count.fetch_sub(1, Ordering::Relaxed);
                self.inner.locks.release_all(*m);
            }
        }
        let resolved = {
            let mut deps = self.inner.deps.lock();
            let before = deps.edge_count() + deps.gc_link_count();
            deps.committed(group);
            before.saturating_sub(deps.edge_count() + deps.gc_link_count())
        };
        drop(guard);
        let obs = &self.inner.obs;
        add(&obs.counters.txn_committed, group.len() as u64);
        add(&obs.counters.dep_edges_resolved, resolved as u64);
        obs.commit_group_size.record(group.len() as u64);
        obs.record(EventKind::TxnCommit {
            tid: t,
            group: group.len() as u32,
        });
        self.inner.txns.bump();
    }

    /// Commit point, phase 2 (flush failed): unpin the group and drive it
    /// through the abort path — the same ambiguous-commit reconciliation
    /// as the blocking path (the record may or may not have reached the
    /// OS; the logged rollback converges both sides of a restart).
    #[exec_step]
    pub(crate) fn exec_flush_failed(&self, t: Tid, group: &[Tid]) {
        {
            let mut guard = self.inner.txns.lock_group(group);
            for m in group {
                if let Some(slot) = guard.get_mut(*m) {
                    slot.commit_pending = false;
                    slot.commit_ambiguous = true;
                }
            }
        }
        bump(&self.inner.obs.counters.commit_log_failures);
        self.inner.obs.record(EventKind::CommitAmbiguous {
            tid: t,
            group: group.len() as u32,
        });
        self.abort_many(group);
    }
}

/// What one non-blocking commit pass resolved to (executor path).
pub(crate) enum ExecCommit {
    /// Terminal (committed or aborted) — the slot status already says
    /// which, and `outcome` reads it from there.
    Done,
    /// Gate closed, group incomplete, or finalization owned elsewhere:
    /// park until the next transaction-table event.
    Wait,
    /// Gate open and re-validated: every member is pinned with
    /// `commit_pending`; the caller submits the group's commit record to
    /// the flusher and parks until the ack callback fires.
    Flush(Vec<Tid>),
}

/// Thread body for `begin`: run the job, then complete or abort.
fn run_job(inner: Arc<DbInner>, tid: Tid, job: Job) {
    let db = Database {
        inner: Arc::clone(&inner),
    };
    let ctx = TxnCtx::new(db.clone(), tid);
    let outcome = catch_unwind(AssertUnwindSafe(|| job(&ctx)));
    let succeeded = matches!(outcome, Ok(Ok(())));
    inner
        .obs
        .record(EventKind::TxnComplete { tid, ok: succeeded });
    enum Fin {
        None,
        Completed,
        Abort,
    }
    let fin = inner.txns.with(tid, |slot| {
        let Some(slot) = slot else { return Fin::None };
        slot.thread_live = false;
        match slot.status {
            TxnStatus::Running if succeeded => {
                slot.status = TxnStatus::Completed;
                Fin::Completed
            }
            TxnStatus::Running => {
                // job failed or panicked: abort
                slot.status = TxnStatus::Aborting;
                Fin::Abort
            }
            TxnStatus::Aborting => {
                // doomed while running: finalize the abort now
                Fin::Abort
            }
            _ => Fin::None,
        }
    });
    match fin {
        Fin::Completed => inner.txns.bump(),
        Fin::Abort => db.abort_many(&[tid]),
        Fin::None => {}
    }
}

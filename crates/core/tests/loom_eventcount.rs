#![cfg(loom)]
//! Loom model checks for the txn-table event count protocol
//! (`crates/core/src/txns.rs`): a waiter snapshots the epoch, evaluates
//! its predicate, and sleeps only if the epoch is unchanged, so a
//! notification landing between the predicate check and the sleep just
//! makes the sleep return immediately — no state change can be lost.
//!
//! `TxnTable` is crate-private, so the protocol is mirrored here verbatim
//! over the same `asset_common::sync` primitives the table uses; the
//! third test shows loom *catching* the naive check-then-sleep bug the
//! event count exists to prevent.
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p asset-core --test
//! loom_eventcount --release`.

use asset_common::sync::{Condvar, Mutex};
use loom::sync::atomic::{AtomicBool, Ordering};
use loom::sync::Arc;
use loom::thread;

/// Mirror of the `TxnTable` event count (epoch + condvar).
struct EventCount {
    epoch: Mutex<u64>,
    cv: Condvar,
}

impl EventCount {
    fn new() -> EventCount {
        EventCount {
            epoch: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    fn epoch(&self) -> u64 {
        *self.epoch.lock()
    }

    fn wait_event(&self, seen: u64) {
        let mut ep = self.epoch.lock();
        while *ep == seen {
            self.cv.wait(&mut ep);
        }
    }

    fn bump(&self) {
        {
            let mut ep = self.epoch.lock();
            *ep += 1;
        }
        self.cv.notify_all();
    }
}

#[test]
fn event_count_never_loses_a_wakeup() {
    loom::model(|| {
        let ec = Arc::new(EventCount::new());
        let flag = Arc::new(AtomicBool::new(false));
        let waiter = {
            let ec = Arc::clone(&ec);
            let flag = Arc::clone(&flag);
            thread::spawn(move || loop {
                let seen = ec.epoch();
                if flag.load(Ordering::SeqCst) {
                    break;
                }
                ec.wait_event(seen);
            })
        };
        flag.store(true, Ordering::SeqCst);
        ec.bump();
        waiter.join().unwrap();
    });
}

#[test]
fn two_waiters_both_observe_the_change() {
    loom::model(|| {
        let ec = Arc::new(EventCount::new());
        let flag = Arc::new(AtomicBool::new(false));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let ec = Arc::clone(&ec);
                let flag = Arc::clone(&flag);
                thread::spawn(move || loop {
                    let seen = ec.epoch();
                    if flag.load(Ordering::SeqCst) {
                        break;
                    }
                    ec.wait_event(seen);
                })
            })
            .collect();
        flag.store(true, Ordering::SeqCst);
        ec.bump();
        for h in handles {
            h.join().unwrap();
        }
    });
}

/// The bug the event count replaces: check the flag, drop the lock, then
/// re-lock and sleep. The notification can land in the gap and the sleep
/// never returns. Loom finds that interleaving and reports the deadlock.
#[test]
#[should_panic]
fn naive_check_then_sleep_loses_the_wakeup() {
    loom::model(|| {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let waiter = {
            let m = Arc::clone(&m);
            let cv = Arc::clone(&cv);
            thread::spawn(move || {
                if !*m.lock() {
                    let mut g = m.lock();
                    cv.wait(&mut g); // BUG: flag may already be true
                }
            })
        };
        *m.lock() = true;
        cv.notify_all();
        waiter.join().unwrap();
    });
}

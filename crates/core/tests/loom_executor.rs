#![cfg(loom)]
//! Loom model checks for the executor's park/wake handoff
//! (`crates/core/src/exec.rs`): a worker that fails to acquire a lock
//! *registers interest in the stripe, re-checks, and only then parks* via
//! `CAS RUNNING → PARKED`; the grant side releases, drains the stripe
//! waiter list, and enqueues each task via `CAS PARKED → QUEUED` (push +
//! notify) or `CAS RUNNING → RUNNING_DIRTY` (the worker's park CAS then
//! fails and it requeues itself). The theorem: no interleaving of the
//! release with the register/re-check/park window strands a parked task
//! whose lock was granted.
//!
//! The scheduling word and queues are crate-private, so the protocol is
//! mirrored here verbatim over the same `asset_common::sync` primitives;
//! the last test shows loom *catching* the naive plain-store park (it
//! erases a concurrent `QUEUED` and deadlocks), which is exactly the bug
//! the `RUNNING_DIRTY` state exists to prevent.
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p asset-core --test
//! loom_executor --release`.

use asset_common::sync::{Condvar, Mutex};
use loom::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use loom::sync::Arc;
use loom::thread;
use std::collections::VecDeque;

const PARKED: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
const RUNNING_DIRTY: u8 = 3;

/// Mirror of one executor task's scheduling state: the per-task word, a
/// run queue, the stripe waiter list, and the contended lock entry.
struct Model {
    sched: AtomicU8,
    queue: Mutex<VecDeque<u32>>,
    queue_cv: Condvar,
    waiters: Mutex<Vec<u32>>,
    locked: AtomicBool,
    acquired: AtomicBool,
}

impl Model {
    /// Task starts queued (as `Database::submit` leaves it) with the
    /// stripe entry held by the other transaction.
    fn new() -> Model {
        Model {
            sched: AtomicU8::new(QUEUED),
            queue: Mutex::new(VecDeque::from([0])),
            queue_cv: Condvar::new(),
            waiters: Mutex::new(Vec::new()),
            locked: AtomicBool::new(true),
            acquired: AtomicBool::new(false),
        }
    }

    fn push(&self) {
        self.queue.lock().push_back(0);
        self.queue_cv.notify_one();
    }

    /// Grant-side wakeup (`ExecInner::enqueue`): parked → queue it;
    /// running → mark dirty so the park CAS fails and the worker requeues
    /// itself; queued/dirty → someone else already did.
    fn enqueue(&self) {
        loop {
            match self
                .sched
                .compare_exchange(PARKED, QUEUED, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => {
                    self.push();
                    return;
                }
                Err(RUNNING) => {
                    if self
                        .sched
                        .compare_exchange(
                            RUNNING,
                            RUNNING_DIRTY,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        )
                        .is_ok()
                    {
                        return;
                    }
                }
                Err(_) => return, // QUEUED or RUNNING_DIRTY: wakeup already pending
            }
        }
    }

    /// `StepCtx::try_acquire`: try, register interest in the stripe,
    /// re-check — a grant landing between the two attempts is observed by
    /// the retry, one landing later is delivered by the drain.
    fn try_acquire(&self) -> bool {
        if !self.locked.load(Ordering::SeqCst) {
            return true;
        }
        self.waiters.lock().push(0);
        !self.locked.load(Ordering::SeqCst)
    }

    /// Lock release + stripe drain (`LockTable::release_all` firing the
    /// wake hook): clear the entry first, then wake every registered
    /// waiter.
    fn release_and_drain(&self) {
        self.locked.store(false, Ordering::SeqCst);
        let drained = std::mem::take(&mut *self.waiters.lock());
        for _ in drained {
            self.enqueue();
        }
    }
}

/// One pool worker (`ExecInner::run_task`). `safe_park` selects the real
/// `CAS RUNNING → PARKED` protocol; `false` models the naive plain store
/// that erases a concurrent `QUEUED`.
fn worker(m: &Model, safe_park: bool) {
    loop {
        {
            let mut q = m.queue.lock();
            while q.pop_front().is_none() {
                m.queue_cv.wait(&mut q);
            }
        }
        if m.sched
            .compare_exchange(QUEUED, RUNNING, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            continue; // stale queue entry; the claim raced a newer state
        }
        if m.try_acquire() {
            m.acquired.store(true, Ordering::SeqCst);
            return;
        }
        if safe_park {
            match m
                .sched
                .compare_exchange(RUNNING, PARKED, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => {}
                Err(_) => {
                    // RUNNING_DIRTY: a grant landed while we were
                    // stepping; requeue instead of parking
                    m.sched.store(QUEUED, Ordering::SeqCst);
                    m.push();
                }
            }
        } else {
            // BUG: overwrites a concurrent PARKED→QUEUED transition
            m.sched.store(PARKED, Ordering::SeqCst);
        }
    }
}

#[test]
fn executor_handoff_never_loses_the_grant() {
    loom::model(|| {
        let m = Arc::new(Model::new());
        let w = {
            let m = Arc::clone(&m);
            thread::spawn(move || worker(&m, true))
        };
        let g = {
            let m = Arc::clone(&m);
            thread::spawn(move || m.release_and_drain())
        };
        w.join().unwrap();
        g.join().unwrap();
        assert!(m.acquired.load(Ordering::SeqCst), "grant lost");
    });
}

/// Two wake sources race (a stripe drain and the broadcast the txn-table
/// bump hook performs): the task must still run exactly to completion —
/// duplicate wakeups collapse into the QUEUED/RUNNING_DIRTY states, and a
/// stale queue entry is skipped by the claim CAS.
#[test]
fn duplicate_wakeups_are_idempotent() {
    loom::model(|| {
        let m = Arc::new(Model::new());
        let w = {
            let m = Arc::clone(&m);
            thread::spawn(move || worker(&m, true))
        };
        let g = {
            let m = Arc::clone(&m);
            thread::spawn(move || m.release_and_drain())
        };
        let b = {
            let m = Arc::clone(&m);
            thread::spawn(move || m.enqueue()) // spurious broadcast wake
        };
        w.join().unwrap();
        g.join().unwrap();
        b.join().unwrap();
        assert!(m.acquired.load(Ordering::SeqCst), "grant lost");
    });
}

/// The bug `RUNNING_DIRTY` prevents: parking with a plain store. The
/// grant can land between the failed re-check and the store — enqueue
/// flips RUNNING→RUNNING_DIRTY (or PARKED→QUEUED), the store erases it,
/// and the task sleeps forever on an empty queue. Loom finds the
/// interleaving and reports the deadlock.
#[test]
#[should_panic]
fn naive_plain_store_park_loses_the_wakeup() {
    loom::model(|| {
        let m = Arc::new(Model::new());
        let w = {
            let m = Arc::clone(&m);
            thread::spawn(move || worker(&m, false))
        };
        let g = {
            let m = Arc::clone(&m);
            thread::spawn(move || m.release_and_drain())
        };
        w.join().unwrap();
        g.join().unwrap();
        assert!(m.acquired.load(Ordering::SeqCst), "grant lost");
    });
}

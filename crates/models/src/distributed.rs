//! Distributed transactions (§3.1.2): components run in parallel and commit
//! only as a group, via pairwise GC dependencies:
//!
//! ```text
//! t1 = initiate(f1); ... tn = initiate(fn);
//! form_dependency(GC, t1, t2); ... form_dependency(GC, tn-1, tn);
//! begin(t1, t2, ..., tn);
//! commit(t1); commit(t2); ... commit(tn);
//! ```
//!
//! `commit(t1)` accomplishes the group commit; the later commits just
//! report the outcome (the paper: "the remaining commit invocations simply
//! return 1 ... Later commit invocations simply return 0").

use asset_core::{Database, DepType, Result, TxnCtx};
use asset_obs::{EventKind, ModelKind};

/// A component of a distributed transaction.
pub type Component = Box<dyn FnOnce(&TxnCtx) -> Result<()> + Send + 'static>;

/// Run `components` as one distributed transaction. Returns `true` if the
/// whole group committed, `false` if it aborted (any component failure
/// aborts every component).
pub fn run_distributed(db: &Database, components: Vec<Component>) -> Result<bool> {
    assert!(
        !components.is_empty(),
        "a distributed transaction needs components"
    );
    let mut tids = Vec::with_capacity(components.len());
    for f in components {
        let t = db.initiate(f)?;
        db.obs().record(EventKind::Model {
            model: ModelKind::Distributed,
            tid: t,
            label: "component",
        });
        tids.push(t);
    }
    // pairwise group-commit dependencies chain the component set into one
    // GC component
    for w in tids.windows(2) {
        db.form_dependency(DepType::GC, w[0], w[1])?;
    }
    db.begin_many(&tids)?;
    let outcome = db.commit(tids[0])?;
    // The remaining commits are no-ops that must agree with the outcome.
    // They are not optional: each waits for its member's finalization, so
    // a self-aborted component's undo is complete before we return. (This
    // once lived inside a debug_assert!, which release builds skip — the
    // caller could then read a rolled-back member's write.)
    for t in &tids[1..] {
        let later = db.commit(*t)?;
        debug_assert_eq!(later, outcome);
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asset_common::TxnStatus;

    #[test]
    fn all_components_commit_together() {
        let db = Database::in_memory();
        let (a, b, c) = (db.new_oid(), db.new_oid(), db.new_oid());
        let committed = run_distributed(
            &db,
            vec![
                Box::new(move |ctx: &TxnCtx| ctx.write(a, b"1".to_vec())),
                Box::new(move |ctx: &TxnCtx| ctx.write(b, b"2".to_vec())),
                Box::new(move |ctx: &TxnCtx| ctx.write(c, b"3".to_vec())),
            ],
        )
        .unwrap();
        assert!(committed);
        assert_eq!(db.peek(a).unwrap().unwrap(), b"1");
        assert_eq!(db.peek(b).unwrap().unwrap(), b"2");
        assert_eq!(db.peek(c).unwrap().unwrap(), b"3");
    }

    #[test]
    fn one_failure_aborts_the_group() {
        let db = Database::in_memory();
        let (a, b) = (db.new_oid(), db.new_oid());
        let committed = run_distributed(
            &db,
            vec![
                Box::new(move |ctx: &TxnCtx| ctx.write(a, b"1".to_vec())),
                Box::new(move |ctx: &TxnCtx| {
                    ctx.write(b, b"2".to_vec())?;
                    ctx.abort_self::<()>().map(|_| ())
                }),
            ],
        )
        .unwrap();
        assert!(!committed);
        assert_eq!(db.peek(a).unwrap(), None, "partner's write rolled back");
        assert_eq!(db.peek(b).unwrap(), None);
    }

    #[test]
    fn single_component_degenerates_to_atomic() {
        let db = Database::in_memory();
        let a = db.new_oid();
        let committed = run_distributed(
            &db,
            vec![Box::new(move |ctx: &TxnCtx| ctx.write(a, b"solo".to_vec()))],
        )
        .unwrap();
        assert!(committed);
        assert_eq!(db.peek(a).unwrap().unwrap(), b"solo");
    }

    #[test]
    fn components_run_in_parallel() {
        // both components wait on a shared barrier: only parallel execution
        // can complete
        let db = Database::in_memory();
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(2));
        let (b1, b2) = (barrier.clone(), barrier.clone());
        let committed = run_distributed(
            &db,
            vec![
                Box::new(move |_: &TxnCtx| {
                    b1.wait();
                    Ok(())
                }),
                Box::new(move |_: &TxnCtx| {
                    b2.wait();
                    Ok(())
                }),
            ],
        )
        .unwrap();
        assert!(committed);
    }

    #[test]
    fn statuses_terminal_after_group_commit() {
        let db = Database::in_memory();
        let t1 = db.initiate(|_| Ok(())).unwrap();
        let t2 = db.initiate(|_| Ok(())).unwrap();
        db.form_dependency(DepType::GC, t1, t2).unwrap();
        db.begin_many(&[t1, t2]).unwrap();
        assert!(db.commit(t2).unwrap(), "commit via any member works");
        assert_eq!(db.status(t1).unwrap(), TxnStatus::Committed);
        assert_eq!(db.status(t2).unwrap(), TxnStatus::Committed);
    }
}

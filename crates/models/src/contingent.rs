//! Contingent transactions (§3.1.3): alternatives tried in order; at most
//! one commits.
//!
//! ```text
//! trans {f1()} else trans {f2()} else ... else trans {fn()}
//! ```

use asset_core::{Database, Result, TxnCtx};
use asset_obs::{EventKind, ModelKind};

/// One alternative of a contingent transaction.
pub type Alternative = Box<dyn FnOnce(&TxnCtx) -> Result<()> + Send + 'static>;

/// Run the alternatives in order until one commits. Returns the index of
/// the committed alternative, or `None` if every alternative aborted.
pub fn run_contingent(db: &Database, alternatives: Vec<Alternative>) -> Result<Option<usize>> {
    for (i, f) in alternatives.into_iter().enumerate() {
        let t = db.initiate(f)?;
        db.obs().record(EventKind::Model {
            model: ModelKind::Contingent,
            tid: t,
            label: "alternative",
        });
        db.begin(t)?;
        if db.commit(t)? {
            return Ok(Some(i));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn failing(oid: asset_common::Oid) -> Alternative {
        Box::new(move |ctx: &TxnCtx| {
            ctx.write(oid, b"should vanish".to_vec())?;
            ctx.abort_self::<()>().map(|_| ())
        })
    }

    fn succeeding(oid: asset_common::Oid, tag: &'static [u8]) -> Alternative {
        Box::new(move |ctx: &TxnCtx| ctx.write(oid, tag.to_vec()))
    }

    #[test]
    fn first_alternative_wins_when_it_commits() {
        let db = Database::in_memory();
        let oid = db.new_oid();
        let chosen = run_contingent(
            &db,
            vec![succeeding(oid, b"first"), succeeding(oid, b"second")],
        )
        .unwrap();
        assert_eq!(chosen, Some(0));
        assert_eq!(db.peek(oid).unwrap().unwrap(), b"first");
    }

    #[test]
    fn falls_through_to_later_alternative() {
        let db = Database::in_memory();
        let oid = db.new_oid();
        let chosen = run_contingent(
            &db,
            vec![failing(oid), failing(oid), succeeding(oid, b"third")],
        )
        .unwrap();
        assert_eq!(chosen, Some(2));
        assert_eq!(db.peek(oid).unwrap().unwrap(), b"third");
    }

    #[test]
    fn all_fail_returns_none_and_no_effects() {
        let db = Database::in_memory();
        let oid = db.new_oid();
        let chosen = run_contingent(&db, vec![failing(oid), failing(oid)]).unwrap();
        assert_eq!(chosen, None);
        assert_eq!(
            db.peek(oid).unwrap(),
            None,
            "each failed alternative undone"
        );
    }

    #[test]
    fn at_most_one_commits() {
        // the winning alternative stops the cascade: later ones never run
        let db = Database::in_memory();
        let ran = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        let (r1, r2) = (ran.clone(), ran.clone());
        let chosen = run_contingent(
            &db,
            vec![
                Box::new(move |_: &TxnCtx| {
                    r1.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    Ok(())
                }),
                Box::new(move |_: &TxnCtx| {
                    r2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    Ok(())
                }),
            ],
        )
        .unwrap();
        assert_eq!(chosen, Some(0));
        assert_eq!(ran.load(std::sync::atomic::Ordering::SeqCst), 1);
    }
}

//! Nested transactions (§3.1.4).
//!
//! A subtransaction may access any object its ancestors hold (no conflict),
//! can abort without killing the parent, and on commit hands its effects to
//! the parent; durability waits for the top-level commit. The paper's
//! synthesis, which [`subtransaction`] reproduces:
//!
//! ```text
//! t1 = initiate(make_airline_reservation);
//! permit(self(), t1);
//! begin(t1);
//! if (!wait(t1)) abort(self());
//! delegate(t1, self());
//! commit(t1);
//! ```
//!
//! One refinement: the paper's `permit(self(), t1)` materializes over the
//! parent's object set at call time; we grant a *standing* wildcard permit
//! so objects the parent locks after spawning the child are covered too —
//! which is what "can access any object currently accessed by an ancestor"
//! needs in general. Grandchildren are covered transitively: each level
//! permits the next, and permit chains compose (§2.2 property 3).

use asset_core::{Database, Result, TxnCtx};
use asset_obs::{EventKind, ModelKind};

/// Outcome of a subtransaction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SubtxnOutcome {
    /// The child completed; its work was delegated to the parent and will
    /// commit (durably) with the top level.
    Merged,
    /// The child aborted; its effects are undone, the parent lives on.
    Aborted,
}

/// Run `f` as a subtransaction of the transaction executing `ctx`.
///
/// On success the child's locks and undo responsibility are delegated to
/// the parent (so the parent's eventual abort undoes the child's work, and
/// the parent's commit makes it durable). On child failure the child is
/// aborted and the parent continues — failure containment, the point of
/// nesting.
pub fn subtransaction(
    ctx: &TxnCtx,
    f: impl FnOnce(&TxnCtx) -> Result<()> + Send + 'static,
) -> Result<SubtxnOutcome> {
    let child = ctx.initiate(f)?;
    ctx.db().obs().record(EventKind::Model {
        model: ModelKind::Nested,
        tid: child,
        label: "subtransaction",
    });
    ctx.permit_all(child)?;
    ctx.begin(child)?;
    if !ctx.wait(child)? {
        return Ok(SubtxnOutcome::Aborted);
    }
    ctx.delegate(child, ctx.id(), None)?;
    ctx.commit(child)?;
    Ok(SubtxnOutcome::Merged)
}

/// Like [`subtransaction`], but a child abort aborts the parent too — the
/// paper's trip example (`if (!wait(t1)) abort(self())`).
pub fn required_subtransaction(
    ctx: &TxnCtx,
    f: impl FnOnce(&TxnCtx) -> Result<()> + Send + 'static,
) -> Result<()> {
    match subtransaction(ctx, f)? {
        SubtxnOutcome::Merged => Ok(()),
        SubtxnOutcome::Aborted => ctx.abort_self(),
    }
}

/// Run `f` as the root of a nested transaction (just an atomic transaction
/// whose body spawns subtransactions).
pub fn run_nested(
    db: &Database,
    f: impl FnOnce(&TxnCtx) -> Result<()> + Send + 'static,
) -> Result<bool> {
    crate::atomic::run_atomic(db, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asset_common::Oid;

    #[test]
    fn child_work_commits_with_parent() {
        let db = Database::in_memory();
        let oid = db.new_oid();
        let committed = run_nested(&db, move |ctx| {
            required_subtransaction(ctx, move |c| c.write(oid, b"child".to_vec()))?;
            Ok(())
        })
        .unwrap();
        assert!(committed);
        assert_eq!(db.peek(oid).unwrap().unwrap(), b"child");
    }

    #[test]
    fn child_abort_is_contained() {
        let db = Database::in_memory();
        let (a, b) = (db.new_oid(), db.new_oid());
        let committed = run_nested(&db, move |ctx| {
            let out = subtransaction(ctx, move |c| {
                c.write(a, b"doomed".to_vec())?;
                c.abort_self::<()>().map(|_| ())
            })?;
            assert_eq!(out, SubtxnOutcome::Aborted);
            // parent continues and does its own work
            ctx.write(b, b"parent".to_vec())
        })
        .unwrap();
        assert!(committed);
        assert_eq!(db.peek(a).unwrap(), None, "child's write undone");
        assert_eq!(db.peek(b).unwrap().unwrap(), b"parent");
    }

    #[test]
    fn required_child_abort_kills_parent() {
        let db = Database::in_memory();
        let (a, b) = (db.new_oid(), db.new_oid());
        let committed = run_nested(&db, move |ctx| {
            ctx.write(b, b"parent-before".to_vec())?;
            required_subtransaction(ctx, move |c| {
                c.write(a, b"child".to_vec())?;
                c.abort_self::<()>().map(|_| ())
            })
        })
        .unwrap();
        assert!(!committed);
        assert_eq!(db.peek(a).unwrap(), None);
        assert_eq!(db.peek(b).unwrap(), None, "parent's own write undone too");
    }

    #[test]
    fn parent_abort_undoes_merged_child_work() {
        let db = Database::in_memory();
        let oid = db.new_oid();
        let committed = run_nested(&db, move |ctx| {
            required_subtransaction(ctx, move |c| c.write(oid, b"child".to_vec()))?;
            // child merged; now the parent aborts
            ctx.abort_self::<()>().map(|_| ())
        })
        .unwrap();
        assert!(!committed);
        assert_eq!(db.peek(oid).unwrap(), None, "delegated undo fired");
    }

    #[test]
    fn child_accesses_parent_locked_object() {
        let db = Database::in_memory();
        let oid = db.new_oid();
        let committed = run_nested(&db, move |ctx| {
            ctx.write(oid, b"parent".to_vec())?; // parent holds the write lock
            required_subtransaction(ctx, move |c| {
                // would deadlock without the permit
                let seen = c.read(oid)?.unwrap();
                assert_eq!(seen, b"parent");
                c.write(oid, b"child-over-parent".to_vec())
            })?;
            Ok(())
        })
        .unwrap();
        assert!(committed);
        assert_eq!(db.peek(oid).unwrap().unwrap(), b"child-over-parent");
    }

    #[test]
    fn two_level_nesting_grandchild_reaches_root_objects() {
        let db = Database::in_memory();
        let oid = db.new_oid();
        let committed = run_nested(&db, move |root| {
            root.write(oid, b"root".to_vec())?;
            required_subtransaction(root, move |mid| {
                required_subtransaction(mid, move |leaf| {
                    // leaf reaches the root's lock through the permit chain
                    leaf.write(oid, b"leaf".to_vec())
                })
            })
        })
        .unwrap();
        assert!(committed);
        assert_eq!(db.peek(oid).unwrap().unwrap(), b"leaf");
    }

    #[test]
    fn trip_example_airline_and_hotel() {
        // the paper's §3.1.4 trip: both reservations succeed → trip commits
        let db = Database::in_memory();
        let airline = db.new_oid();
        let hotel = db.new_oid();
        let committed = run_nested(&db, move |ctx| {
            required_subtransaction(ctx, move |c| c.write(airline, b"AA-123".to_vec()))?;
            required_subtransaction(ctx, move |c| c.write(hotel, b"Equator".to_vec()))?;
            Ok(())
        })
        .unwrap();
        assert!(committed);
        assert_eq!(db.peek(airline).unwrap().unwrap(), b"AA-123");
        assert_eq!(db.peek(hotel).unwrap().unwrap(), b"Equator");
    }

    #[test]
    fn trip_example_hotel_failure_cancels_airline() {
        let db = Database::in_memory();
        let airline = db.new_oid();
        let hotel: Oid = db.new_oid();
        let committed = run_nested(&db, move |ctx| {
            required_subtransaction(ctx, move |c| c.write(airline, b"AA-123".to_vec()))?;
            required_subtransaction(ctx, move |c| {
                c.write(hotel, b"Equator".to_vec())?;
                c.abort_self::<()>().map(|_| ()) // no rooms
            })
        })
        .unwrap();
        assert!(!committed);
        assert_eq!(
            db.peek(airline).unwrap(),
            None,
            "airline undone with the trip"
        );
        assert_eq!(db.peek(hotel).unwrap(), None);
    }

    #[test]
    fn siblings_serialize_on_shared_objects() {
        // two children of the same parent still conflict with each other
        // (they are atomic w.r.t. siblings); here they run sequentially so
        // the second sees the first's delegated write
        let db = Database::in_memory();
        let oid = db.new_oid();
        let committed = run_nested(&db, move |ctx| {
            required_subtransaction(ctx, move |c| c.write(oid, vec![1]))?;
            required_subtransaction(ctx, move |c| {
                let v = c.read(oid)?.unwrap();
                c.write(oid, vec![v[0] + 1])
            })
        })
        .unwrap();
        assert!(committed);
        assert_eq!(db.peek(oid).unwrap().unwrap(), vec![2]);
    }
}

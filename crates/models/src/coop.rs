//! Cooperating transactions (§3.2.1): relaxed correctness via permit
//! ping-pong plus commit dependencies.
//!
//! The paper's recipe for letting `tj` work on `ti`'s objects:
//!
//! ```text
//! form_dependency(CD, ti, tj);   // tj cannot commit before ti terminates
//! permit(ti, tj, ob, op);        // tj may perform conflicting op on ob
//! ```
//!
//! and symmetrically back (`permit(tj, ti, ob, op)`) for ping-pong editing.
//! Optionally a second CD — or a GC pair — makes the cooperation
//! all-or-nothing, the "cooperative design environment" scenario.

use asset_common::{DepType, ObSet, OpSet};
use asset_core::{Database, Result, Tid};
use asset_obs::{EventKind, ModelKind};

/// How tightly the cooperating pair's outcomes are coupled.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Coupling {
    /// Only ordering: the follower cannot commit before the leader
    /// terminates (one CD edge). The paper's minimal recipe.
    Ordered,
    /// Mutual commit dependencies — commits are mutually ordered… which
    /// would deadlock; the paper instead suggests making both directions
    /// safe with GC. We map `Mutual` to a GC pair: both commit or neither.
    Mutual,
}

/// A cooperative editing session over a set of shared objects.
///
/// Both transactions may read and write the shared objects concurrently
/// (elementary operations stay atomic under the object latches; the permit
/// machinery suspends and revives locks as access ping-pongs).
pub struct CoopSession {
    /// The transaction that owns the objects initially.
    pub leader: Tid,
    /// The invited collaborator.
    pub follower: Tid,
    /// The shared scope.
    pub scope: ObSet,
}

impl CoopSession {
    /// Establish cooperation between `leader` and `follower` over `scope`.
    pub fn establish(
        db: &Database,
        leader: Tid,
        follower: Tid,
        scope: ObSet,
        coupling: Coupling,
    ) -> Result<CoopSession> {
        match coupling {
            Coupling::Ordered => {
                db.form_dependency(DepType::CD, leader, follower)?;
            }
            Coupling::Mutual => {
                db.form_dependency(DepType::GC, leader, follower)?;
            }
        }
        db.permit(leader, Some(follower), scope.clone(), OpSet::ALL)?;
        db.permit(follower, Some(leader), scope.clone(), OpSet::ALL)?;
        db.obs().record(EventKind::Model {
            model: ModelKind::Coop,
            tid: follower,
            label: "establish",
        });
        Ok(CoopSession {
            leader,
            follower,
            scope,
        })
    }

    /// Widen the session to another participant (permits both ways with
    /// both existing members via transitivity — only the leader's permit is
    /// needed thanks to §2.2 property 3 — plus the coupling edge).
    pub fn invite(&self, db: &Database, newcomer: Tid, coupling: Coupling) -> Result<()> {
        match coupling {
            Coupling::Ordered => db.form_dependency(DepType::CD, self.leader, newcomer)?,
            Coupling::Mutual => db.form_dependency(DepType::GC, self.leader, newcomer)?,
        }
        db.permit(self.leader, Some(newcomer), self.scope.clone(), OpSet::ALL)?;
        db.permit(newcomer, Some(self.leader), self.scope.clone(), OpSet::ALL)?;
        db.permit(
            self.follower,
            Some(newcomer),
            self.scope.clone(),
            OpSet::ALL,
        )?;
        db.permit(
            newcomer,
            Some(self.follower),
            self.scope.clone(),
            OpSet::ALL,
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asset_core::TxnCtx;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    /// A cooperative writer that appends on its turn. Turn-taking makes the
    /// interleaving deterministic — with permits, two unsynchronized
    /// read-modify-writes could lose updates (by design: permits trade
    /// isolation for concurrency; the application supplies the protocol).
    fn spawn_turn_writer(
        db: &Database,
        oid: asset_common::Oid,
        turn: Arc<std::sync::atomic::AtomicUsize>,
        my_idx: usize,
        n_writers: usize,
        rounds: usize,
        tag: u8,
    ) -> Tid {
        db.initiate(move |ctx: &TxnCtx| {
            for i in 0..rounds {
                while turn.load(Ordering::SeqCst) % n_writers != my_idx {
                    std::thread::yield_now();
                }
                ctx.update(oid, |cur| {
                    let mut v = cur.unwrap_or_default();
                    v.push(tag + i as u8);
                    v
                })?;
                turn.fetch_add(1, Ordering::SeqCst);
            }
            Ok(())
        })
        .unwrap()
    }

    #[test]
    fn ping_pong_editing_interleaves_without_blocking() {
        let db = Database::in_memory();
        let oid = db.new_oid();
        assert!(db.run(move |ctx| ctx.write(oid, Vec::new())).unwrap());
        let turn = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let t1 = spawn_turn_writer(&db, oid, Arc::clone(&turn), 0, 2, 5, 0x10);
        let t2 = spawn_turn_writer(&db, oid, Arc::clone(&turn), 1, 2, 5, 0x50);
        let session =
            CoopSession::establish(&db, t1, t2, ObSet::one(oid), Coupling::Ordered).unwrap();
        db.begin_many(&[session.leader, session.follower]).unwrap();
        // t1 must terminate before t2 may commit (CD); commit t1 first
        assert!(db.commit(t1).unwrap());
        assert!(db.commit(t2).unwrap());
        let v = db.peek(oid).unwrap().unwrap();
        assert_eq!(v.len(), 10, "all ten cooperative appends survived");
        // strict alternation proves the ping-pong actually interleaved
        assert_eq!(v[0] & 0xF0, 0x10);
        assert_eq!(v[1] & 0xF0, 0x50);
        assert_eq!(v[2] & 0xF0, 0x10);
    }

    #[test]
    fn cd_orders_the_cooperating_commits() {
        let db = Database::in_memory();
        let oid = db.new_oid();
        let t1 = db
            .initiate(move |ctx| {
                ctx.write(oid, b"leader".to_vec())?;
                std::thread::sleep(Duration::from_millis(120));
                Ok(())
            })
            .unwrap();
        let t2 = db
            .initiate(move |ctx| {
                ctx.read(oid)?;
                Ok(())
            })
            .unwrap();
        CoopSession::establish(&db, t1, t2, ObSet::one(oid), Coupling::Ordered).unwrap();
        db.begin_many(&[t1, t2]).unwrap();

        let done = Arc::new(AtomicBool::new(false));
        let d2 = Arc::clone(&done);
        let dbc = db.clone();
        let h = std::thread::spawn(move || {
            assert!(dbc.commit(t2).unwrap());
            d2.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(40));
        assert!(!done.load(Ordering::SeqCst), "t2 gated until t1 terminates");
        assert!(db.commit(t1).unwrap());
        h.join().unwrap();
    }

    #[test]
    fn mutual_coupling_commits_or_dies_together() {
        let db = Database::in_memory();
        let oid = db.new_oid();
        assert!(db
            .run(move |ctx| ctx.write(oid, b"design-v0".to_vec()))
            .unwrap());
        let t1 = db
            .initiate(move |ctx| ctx.write(oid, b"design-v1".to_vec()))
            .unwrap();
        let t2 = db
            .initiate(move |ctx| {
                ctx.update(oid, |cur| {
                    let mut v = cur.unwrap();
                    v.extend_from_slice(b"+review");
                    v
                })
            })
            .unwrap();
        CoopSession::establish(&db, t1, t2, ObSet::one(oid), Coupling::Mutual).unwrap();
        // deterministic hand-off: the designer finishes before the reviewer
        // appends a note on top of the uncommitted design
        db.begin(t1).unwrap();
        assert!(db.wait(t1).unwrap());
        db.begin(t2).unwrap();
        assert!(db.commit(t1).unwrap(), "group commit of the pair");
        assert_eq!(db.peek(oid).unwrap().unwrap(), b"design-v1+review");
    }

    #[test]
    fn mutual_coupling_abort_takes_both() {
        let db = Database::in_memory();
        let oid = db.new_oid();
        assert!(db.run(move |ctx| ctx.write(oid, b"v0".to_vec())).unwrap());
        let t1 = db
            .initiate(move |ctx| ctx.write(oid, b"v1".to_vec()))
            .unwrap();
        let t2 = db
            .initiate(move |ctx| {
                ctx.update(oid, |cur| {
                    let mut v = cur.unwrap();
                    v.extend_from_slice(b"!");
                    v
                })?;
                ctx.abort_self::<()>().map(|_| ())
            })
            .unwrap();
        CoopSession::establish(&db, t1, t2, ObSet::one(oid), Coupling::Mutual).unwrap();
        // sequence the writes so the undo stack is deterministic: t1 writes
        // and completes first, then t2 appends and self-aborts
        db.begin(t1).unwrap();
        assert!(db.wait(t1).unwrap());
        db.begin(t2).unwrap();
        // let t2's abort finalize first so the undo order is fixed:
        // t2 installs its before image ("v1"), then t1's doomed commit
        // installs "v0" — the paper's policy that cooperative overwrites
        // are lost on abort restores the original value. (Undo order
        // across transactions follows abort order, per §4.2.)
        while db.status(t2).unwrap() != asset_common::TxnStatus::Aborted {
            std::thread::yield_now();
        }
        assert!(!db.commit(t1).unwrap(), "partner abort dooms the pair");
        assert_eq!(db.peek(oid).unwrap().unwrap(), b"v0");
    }

    #[test]
    fn third_participant_via_invite() {
        let db = Database::in_memory();
        let oid = db.new_oid();
        assert!(db.run(move |ctx| ctx.write(oid, Vec::new())).unwrap());
        let turn = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let t1 = spawn_turn_writer(&db, oid, Arc::clone(&turn), 0, 3, 3, 0x10);
        let t2 = spawn_turn_writer(&db, oid, Arc::clone(&turn), 1, 3, 3, 0x20);
        let t3 = spawn_turn_writer(&db, oid, Arc::clone(&turn), 2, 3, 3, 0x30);
        let session =
            CoopSession::establish(&db, t1, t2, ObSet::one(oid), Coupling::Ordered).unwrap();
        session.invite(&db, t3, Coupling::Ordered).unwrap();
        db.begin_many(&[t1, t2, t3]).unwrap();
        assert!(db.commit(t1).unwrap());
        assert!(db.commit(t2).unwrap());
        assert!(db.commit(t3).unwrap());
        assert_eq!(db.peek(oid).unwrap().unwrap().len(), 9);
    }
}

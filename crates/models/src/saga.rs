//! Sagas (§3.1.6, after Garcia-Molina & Salem).
//!
//! A saga is a sequence of component transactions `t1..tn`, each with a
//! compensating transaction `ct1..ct(n-1)`. Components commit immediately
//! (exposing partial results — isolation is per component). If component
//! `k+1` fails, the committed prefix is compensated in reverse order:
//! `t1 .. tk ctk .. ct1`. A compensating transaction is retried until it
//! commits, exactly as the paper's synthesized `do { ... } while
//! (!commit(ct))` loop.

use asset_core::{Database, Result, TxnCtx};
use asset_obs::{EventKind, ModelKind};
use std::sync::Arc;

/// A step's action or compensation, retry-able and thus `Fn` + shared.
pub type SagaAction = Arc<dyn Fn(&TxnCtx) -> Result<()> + Send + Sync>;

/// One saga component with its optional compensation. The final component
/// of a saga needs no compensation (its commit commits the saga).
pub struct SagaStep {
    /// Human-readable step name (reports, traces).
    pub name: String,
    action: SagaAction,
    compensation: Option<SagaAction>,
}

impl SagaStep {
    /// A step with a compensation.
    pub fn new(
        name: impl Into<String>,
        action: impl Fn(&TxnCtx) -> Result<()> + Send + Sync + 'static,
        compensation: impl Fn(&TxnCtx) -> Result<()> + Send + Sync + 'static,
    ) -> SagaStep {
        SagaStep {
            name: name.into(),
            action: Arc::new(action),
            compensation: Some(Arc::new(compensation)),
        }
    }

    /// A step without a compensation (legal for the final step; an earlier
    /// uncompensated step simply skips its slot during rollback).
    pub fn uncompensated(
        name: impl Into<String>,
        action: impl Fn(&TxnCtx) -> Result<()> + Send + Sync + 'static,
    ) -> SagaStep {
        SagaStep {
            name: name.into(),
            action: Arc::new(action),
            compensation: None,
        }
    }
}

/// The observable history of a saga run: which components committed and
/// which compensations ran, in order. Useful for asserting the paper's
/// `t1 .. tk ctk .. ct1` shape.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SagaTrace {
    /// Names of events in execution order: `"step"` for a committed
    /// component, `"~step"` for its compensation.
    pub events: Vec<String>,
}

/// Outcome of a saga.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SagaOutcome {
    /// Every component committed.
    Committed,
    /// Component `failed_step` aborted; the committed prefix was
    /// compensated in reverse order.
    Compensated {
        /// Index of the failed component.
        failed_step: usize,
    },
}

/// A saga: ordered steps executed as independent atomic transactions.
pub struct Saga {
    steps: Vec<SagaStep>,
    /// Bound on compensation retries (a safety valve on the paper's
    /// retry-forever loop; `None` = retry forever).
    max_compensation_retries: Option<u32>,
}

impl Saga {
    /// Start building a saga.
    pub fn new() -> Saga {
        Saga {
            steps: Vec::new(),
            max_compensation_retries: None,
        }
    }

    /// Append a step.
    #[must_use]
    pub fn step(
        mut self,
        name: impl Into<String>,
        action: impl Fn(&TxnCtx) -> Result<()> + Send + Sync + 'static,
        compensation: impl Fn(&TxnCtx) -> Result<()> + Send + Sync + 'static,
    ) -> Saga {
        self.steps.push(SagaStep::new(name, action, compensation));
        self
    }

    /// Append a step with no compensation (typically the last).
    #[must_use]
    pub fn final_step(
        mut self,
        name: impl Into<String>,
        action: impl Fn(&TxnCtx) -> Result<()> + Send + Sync + 'static,
    ) -> Saga {
        self.steps.push(SagaStep::uncompensated(name, action));
        self
    }

    /// Append a pre-built step.
    #[must_use]
    pub fn push(mut self, step: SagaStep) -> Saga {
        self.steps.push(step);
        self
    }

    /// Bound compensation retries (default: unbounded, per the paper).
    #[must_use]
    pub fn with_max_compensation_retries(mut self, n: u32) -> Saga {
        self.max_compensation_retries = Some(n);
        self
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Is the saga empty?
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Execute the saga. Returns the outcome and the event trace.
    pub fn run(self, db: &Database) -> Result<(SagaOutcome, SagaTrace)> {
        let mut trace = SagaTrace::default();
        let mut committed_prefix: Vec<&SagaStep> = Vec::new();
        let mut failed: Option<usize> = None;

        for (i, step) in self.steps.iter().enumerate() {
            let action = Arc::clone(&step.action);
            let t = db.initiate(move |ctx| action(ctx))?;
            db.begin(t)?;
            if db.commit(t)? {
                db.obs().record(EventKind::Model {
                    model: ModelKind::Saga,
                    tid: t,
                    label: "step",
                });
                trace.events.push(step.name.clone());
                committed_prefix.push(step);
            } else {
                db.obs().record(EventKind::Model {
                    model: ModelKind::Saga,
                    tid: t,
                    label: "failed",
                });
                failed = Some(i);
                break;
            }
        }

        let Some(failed_step) = failed else {
            return Ok((SagaOutcome::Committed, trace));
        };

        // compensate the committed prefix in reverse commit order
        for step in committed_prefix.iter().rev() {
            let Some(comp) = &step.compensation else {
                continue;
            };
            let mut attempts = 0u32;
            loop {
                let c = Arc::clone(comp);
                let ct = db.initiate(move |ctx| c(ctx))?;
                db.begin(ct)?;
                if db.commit(ct)? {
                    db.obs().record(EventKind::Model {
                        model: ModelKind::Saga,
                        tid: ct,
                        label: "compensate",
                    });
                    trace.events.push(format!("~{}", step.name));
                    break;
                }
                attempts += 1;
                if let Some(max) = self.max_compensation_retries {
                    if attempts >= max {
                        // surface the stuck compensation rather than spin
                        return Err(asset_common::AssetError::TxnAborted(ct));
                    }
                }
            }
        }
        Ok((SagaOutcome::Compensated { failed_step }, trace))
    }
}

impl Default for Saga {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asset_common::Oid;
    use std::sync::atomic::{AtomicU32, Ordering};

    /// write a tag, compensated by deleting it
    fn tagged_step(name: &str, oid: Oid, tag: &'static [u8]) -> SagaStep {
        SagaStep::new(
            name,
            move |ctx: &TxnCtx| ctx.write(oid, tag.to_vec()),
            move |ctx: &TxnCtx| ctx.delete(oid),
        )
    }

    #[test]
    fn all_steps_commit() {
        let db = Database::in_memory();
        let (a, b, c) = (db.new_oid(), db.new_oid(), db.new_oid());
        let saga = Saga::new()
            .push(tagged_step("s1", a, b"1"))
            .push(tagged_step("s2", b, b"2"))
            .final_step("s3", move |ctx| ctx.write(c, b"3".to_vec()));
        let (outcome, trace) = saga.run(&db).unwrap();
        assert_eq!(outcome, SagaOutcome::Committed);
        assert_eq!(trace.events, vec!["s1", "s2", "s3"]);
        assert_eq!(db.peek(a).unwrap().unwrap(), b"1");
        assert_eq!(db.peek(c).unwrap().unwrap(), b"3");
    }

    #[test]
    fn failure_compensates_prefix_in_reverse() {
        let db = Database::in_memory();
        let (a, b, c) = (db.new_oid(), db.new_oid(), db.new_oid());
        let saga = Saga::new()
            .push(tagged_step("s1", a, b"1"))
            .push(tagged_step("s2", b, b"2"))
            .step(
                "s3",
                move |ctx| {
                    ctx.write(c, b"3".to_vec())?;
                    ctx.abort_self::<()>().map(|_| ())
                },
                |_| Ok(()),
            )
            .final_step("s4", |_| Ok(()));
        let (outcome, trace) = saga.run(&db).unwrap();
        assert_eq!(outcome, SagaOutcome::Compensated { failed_step: 2 });
        // the paper's shape: t1 t2 ct2 ct1
        assert_eq!(trace.events, vec!["s1", "s2", "~s2", "~s1"]);
        assert_eq!(db.peek(a).unwrap(), None, "compensated away");
        assert_eq!(db.peek(b).unwrap(), None);
        assert_eq!(
            db.peek(c).unwrap(),
            None,
            "failed step rolled back atomically"
        );
    }

    #[test]
    fn components_commit_immediately_and_are_visible() {
        // unlike a flat transaction, a saga's early components are durable
        // (and visible) before the saga finishes
        let db = Database::in_memory();
        let a = db.new_oid();
        let dbc = db.clone();
        let saga = Saga::new()
            .push(tagged_step("s1", a, b"1"))
            .final_step("probe", move |_| {
                // while the saga is still running, s1's commit is visible
                assert_eq!(dbc.peek(a)?.unwrap(), b"1");
                Ok(())
            });
        let (outcome, _) = saga.run(&db).unwrap();
        assert_eq!(outcome, SagaOutcome::Committed);
    }

    #[test]
    fn compensation_retries_until_commit() {
        let db = Database::in_memory();
        let a = db.new_oid();
        let attempts = Arc::new(AtomicU32::new(0));
        let at = Arc::clone(&attempts);
        let saga = Saga::new()
            .step(
                "s1",
                move |ctx| ctx.write(a, b"1".to_vec()),
                move |ctx| {
                    // compensation fails twice before succeeding — the
                    // paper's do/while retry loop must absorb that
                    if at.fetch_add(1, Ordering::SeqCst) < 2 {
                        ctx.abort_self::<()>().map(|_| ())
                    } else {
                        ctx.delete(a)
                    }
                },
            )
            .final_step("s2", |ctx| ctx.abort_self::<()>().map(|_| ()));
        let (outcome, trace) = saga.run(&db).unwrap();
        assert_eq!(outcome, SagaOutcome::Compensated { failed_step: 1 });
        assert_eq!(attempts.load(Ordering::SeqCst), 3);
        assert_eq!(trace.events, vec!["s1", "~s1"]);
        assert_eq!(db.peek(a).unwrap(), None);
    }

    #[test]
    fn bounded_retries_surface_stuck_compensation() {
        let db = Database::in_memory();
        let a = db.new_oid();
        let saga = Saga::new()
            .step(
                "s1",
                move |ctx| ctx.write(a, b"1".to_vec()),
                |ctx| ctx.abort_self::<()>().map(|_| ()), // always fails
            )
            .final_step("s2", |ctx| ctx.abort_self::<()>().map(|_| ()))
            .with_max_compensation_retries(3);
        assert!(saga.run(&db).is_err());
    }

    #[test]
    fn first_step_failure_needs_no_compensation() {
        let db = Database::in_memory();
        let saga = Saga::new()
            .step("s1", |ctx| ctx.abort_self::<()>().map(|_| ()), |_| Ok(()))
            .final_step("s2", |_| Ok(()));
        let (outcome, trace) = saga.run(&db).unwrap();
        assert_eq!(outcome, SagaOutcome::Compensated { failed_step: 0 });
        assert!(trace.events.is_empty());
    }

    #[test]
    fn semantic_compensation_counter_example() {
        // compensation is semantic, not physical: increment compensated by
        // decrement, interleaving with other sagas' effects preserved
        let db = Database::in_memory();
        let counter = db.new_oid();
        assert!(crate::atomic::run_atomic(&db, move |ctx| {
            ctx.write(counter, 10u64.to_le_bytes().to_vec())
        })
        .unwrap());

        let bump = move |ctx: &TxnCtx, delta: i64| {
            ctx.update(counter, |cur| {
                let v = u64::from_le_bytes(cur.unwrap().try_into().unwrap());
                (v as i64 + delta).to_le_bytes().to_vec()
            })
        };
        let saga = Saga::new()
            .step("add5", move |ctx| bump(ctx, 5), move |ctx| bump(ctx, -5))
            .final_step("fail", |ctx| ctx.abort_self::<()>().map(|_| ()));
        let (outcome, _) = saga.run(&db).unwrap();
        assert_eq!(outcome, SagaOutcome::Compensated { failed_step: 1 });
        let v = u64::from_le_bytes(db.peek(counter).unwrap().unwrap().try_into().unwrap());
        assert_eq!(v, 10, "semantically undone");
    }
}

//! # asset-models
//!
//! The extended transaction models of the ASSET paper's §3, each realized
//! purely in terms of the §2 primitives (`initiate`/`begin`/`commit`/
//! `wait`/`abort`/`delegate`/`permit`/`form_dependency`) exposed by
//! [`asset_core`]:
//!
//! * [`atomic`] — `trans { ... }` (§3.1.1);
//! * [`distributed`] — parallel components with group commit (§3.1.2);
//! * [`contingent`] — ordered alternatives, at most one commits (§3.1.3);
//! * [`nested`] — subtransactions via permit + delegate (§3.1.4);
//! * [`split`](mod@split) — split/join via delegation at the split point (§3.1.5);
//! * [`saga`] — compensating transactions, `t1..tk ctk..ct1` (§3.1.6);
//! * [`coop`] — cooperating transactions via permit ping-pong + CD/GC
//!   (§3.2.1);
//! * [`cursor`] — cursor stability via wildcard write permits (§3.2.2);
//! * [`workflow`] — the workflow engine and the appendix's `X_conference`
//!   travel activity (§3.2.3 + appendix).
//!
//! These play the role the paper assigns to the database-language compiler:
//! users program against the model, the model emits primitive calls.

#![warn(missing_docs)]

pub mod atomic;
pub mod contingent;
pub mod coop;
pub mod cursor;
pub mod distributed;
pub mod nested;
pub mod saga;
pub mod split;
pub mod workflow;

pub use atomic::{run_atomic, run_atomic_retrying, RetryOutcome};
pub use contingent::{run_contingent, Alternative};
pub use coop::{CoopSession, Coupling};
pub use cursor::Cursor;
pub use distributed::{run_distributed, Component};
pub use nested::{required_subtransaction, run_nested, subtransaction, SubtxnOutcome};
pub use saga::{Saga, SagaOutcome, SagaStep, SagaTrace};
pub use split::{join, split};
pub use workflow::{Branch, Step, StepResult, Workflow, WorkflowOutcome};

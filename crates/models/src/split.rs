//! Split and join transactions (§3.1.5, after Pu/Kaiser/Hutchinson).
//!
//! `split` carves a new transaction out of a running one, delegating
//! responsibility for a set of objects at the split point; the two then
//! commit or abort independently. `join` merges a transaction back by
//! delegating everything to the target.
//!
//! Paper synthesis:
//!
//! ```text
//! s = initiate(f);
//! delegate(parent(s), s, X);   // X = objects handed to the split
//! begin(s);
//! ...
//! wait(s); delegate(s, t);     // join(s, t)
//! ```

use asset_common::ObSet;
use asset_core::{Result, Tid, TxnCtx};
use asset_obs::{EventKind, ModelKind};

/// Split a new transaction off the one executing `ctx`, delegating the
/// objects in `obs` (with their locks and undo responsibility) to it.
/// Returns the split transaction's tid; it is already running and commits
/// or aborts independently of the splitter.
pub fn split(
    ctx: &TxnCtx,
    obs: ObSet,
    f: impl FnOnce(&TxnCtx) -> Result<()> + Send + 'static,
) -> Result<Tid> {
    let s = ctx.initiate(f)?;
    ctx.db().obs().record(EventKind::Model {
        model: ModelKind::Split,
        tid: s,
        label: "split",
    });
    ctx.delegate(ctx.id(), s, Some(obs))?;
    ctx.begin(s)?;
    Ok(s)
}

/// Join transaction `s` into `t`: wait for `s` to complete, then delegate
/// everything it is responsible for to `t`. Returns `false` if `s` aborted
/// (in which case there is nothing to join).
pub fn join(ctx: &TxnCtx, s: Tid, t: Tid) -> Result<bool> {
    if !ctx.wait(s)? {
        return Ok(false);
    }
    ctx.db().obs().record(EventKind::Model {
        model: ModelKind::Split,
        tid: s,
        label: "join",
    });
    ctx.delegate(s, t, None)?;
    // `s` has handed everything over; committing it is now a formality
    // (the paper notes the same about delegating reservation children).
    ctx.commit(s)?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::run_atomic;
    use asset_core::Database;

    #[test]
    fn split_commits_independently() {
        let db = Database::in_memory();
        let handed = db.new_oid();
        let kept = db.new_oid();
        let dbc = db.clone();
        let committed = run_atomic(&db, move |ctx| {
            ctx.write(handed, b"early work".to_vec())?;
            ctx.write(kept, b"kept work".to_vec())?;
            // hand `handed` to a split that commits right away
            let s = split(ctx, ObSet::one(handed), |_| Ok(()))?;
            ctx.commit(s)?;
            // the split committed `handed` durably while we are still alive
            assert_eq!(dbc.peek(handed)?.unwrap(), b"early work");
            Ok(())
        })
        .unwrap();
        assert!(committed);
        assert_eq!(db.peek(kept).unwrap().unwrap(), b"kept work");
    }

    #[test]
    fn splitter_abort_does_not_undo_split_committed_work() {
        let db = Database::in_memory();
        let handed = db.new_oid();
        let kept = db.new_oid();
        let committed = run_atomic(&db, move |ctx| {
            ctx.write(handed, b"split keeps this".to_vec())?;
            ctx.write(kept, b"dies with splitter".to_vec())?;
            let s = split(ctx, ObSet::one(handed), |_| Ok(()))?;
            ctx.commit(s)?;
            ctx.abort_self::<()>().map(|_| ())
        })
        .unwrap();
        assert!(!committed);
        assert_eq!(db.peek(handed).unwrap().unwrap(), b"split keeps this");
        assert_eq!(db.peek(kept).unwrap(), None);
    }

    #[test]
    fn split_abort_does_not_kill_splitter() {
        let db = Database::in_memory();
        let handed = db.new_oid();
        let kept = db.new_oid();
        let committed = run_atomic(&db, move |ctx| {
            ctx.write(handed, b"goes down with split".to_vec())?;
            ctx.write(kept, b"stays".to_vec())?;
            let s = split(ctx, ObSet::one(handed), |c| {
                c.abort_self::<()>().map(|_| ())
            })?;
            assert!(!ctx.commit(s)?);
            Ok(())
        })
        .unwrap();
        assert!(committed);
        assert_eq!(
            db.peek(handed).unwrap(),
            None,
            "delegated write undone by split abort"
        );
        assert_eq!(db.peek(kept).unwrap().unwrap(), b"stays");
    }

    #[test]
    fn split_then_join_merges_back() {
        let db = Database::in_memory();
        let a = db.new_oid();
        let b = db.new_oid();
        let committed = run_atomic(&db, move |ctx| {
            ctx.write(a, b"pre-split".to_vec())?;
            let me = ctx.id();
            let s = split(ctx, ObSet::one(a), move |c| {
                // the split works on its delegated object and more
                c.write(a, b"split-updated".to_vec())?;
                c.write(b, b"split-created".to_vec())
            })?;
            // join s back into this transaction
            assert!(join(ctx, s, me)?);
            Ok(())
        })
        .unwrap();
        assert!(committed);
        assert_eq!(db.peek(a).unwrap().unwrap(), b"split-updated");
        assert_eq!(db.peek(b).unwrap().unwrap(), b"split-created");
    }

    #[test]
    fn join_of_aborted_split_reports_false() {
        let db = Database::in_memory();
        let a = db.new_oid();
        let committed = run_atomic(&db, move |ctx| {
            ctx.write(a, b"x".to_vec())?;
            let me = ctx.id();
            let s = split(ctx, ObSet::empty(), |c| c.abort_self::<()>().map(|_| ()))?;
            assert!(!join(ctx, s, me)?);
            Ok(())
        })
        .unwrap();
        assert!(committed);
        assert_eq!(db.peek(a).unwrap().unwrap(), b"x");
    }

    #[test]
    fn joined_work_aborts_with_the_target() {
        let db = Database::in_memory();
        let a = db.new_oid();
        let b = db.new_oid();
        let committed = run_atomic(&db, move |ctx| {
            ctx.write(a, b"mine".to_vec())?;
            let me = ctx.id();
            let s = split(ctx, ObSet::empty(), move |c| {
                c.write(b, b"split's".to_vec())
            })?;
            assert!(join(ctx, s, me)?);
            ctx.abort_self::<()>().map(|_| ())
        })
        .unwrap();
        assert!(!committed);
        assert_eq!(db.peek(a).unwrap(), None);
        assert_eq!(db.peek(b).unwrap(), None, "joined undo dies with target");
    }
}

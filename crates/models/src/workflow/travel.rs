//! The paper's appendix workflow: person X travels to a conference
//! (June 11–14, 1994), needing a flight (Delta ≻ United ≻ American), the
//! hotel Equator, and optionally a car (National or Avis, raced — the
//! appendix begins both and keeps whichever completes first).
//!
//! The reservation "services" are inventory objects in the database: one
//! u64 seat/room/car counter per provider. A reservation decrements the
//! counter inside an atomic transaction that aborts when the counter is
//! zero; a cancellation increments it back (the compensating transaction).

use super::{Branch, Step, StepResult, Workflow, WorkflowOutcome};
use asset_common::Oid;
use asset_core::{Database, Result, TxnCtx};

/// The reservation inventory for the scenario.
#[derive(Clone, Debug)]
pub struct TravelWorld {
    /// Flight seat counters, in preference order.
    pub flights: Vec<(String, Oid)>,
    /// The hotel room counter.
    pub hotel: (String, Oid),
    /// Car counters, raced.
    pub cars: Vec<(String, Oid)>,
}

/// Encode a u64 counter.
pub fn enc(v: u64) -> Vec<u8> {
    v.to_le_bytes().to_vec()
}

/// Decode a u64 counter.
pub fn dec(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes.try_into().expect("u64 counter"))
}

impl TravelWorld {
    /// Create the inventory with the given capacities.
    pub fn setup(
        db: &Database,
        delta: u64,
        united: u64,
        american: u64,
        equator: u64,
        national: u64,
        avis: u64,
    ) -> Result<TravelWorld> {
        let providers = [
            ("Delta", delta),
            ("United", united),
            ("American", american),
            ("Equator", equator),
            ("National", national),
            ("Avis", avis),
        ];
        let oids: Vec<Oid> = providers.iter().map(|_| db.new_oid()).collect();
        let seed: Vec<(Oid, u64)> = oids
            .iter()
            .copied()
            .zip(providers.iter().map(|p| p.1))
            .collect();
        let committed = db.run(move |ctx| {
            for (oid, cap) in &seed {
                ctx.write(*oid, enc(*cap))?;
            }
            Ok(())
        })?;
        assert!(committed, "inventory bootstrap must commit");
        Ok(TravelWorld {
            flights: vec![
                ("Delta".into(), oids[0]),
                ("United".into(), oids[1]),
                ("American".into(), oids[2]),
            ],
            hotel: ("Equator".into(), oids[3]),
            cars: vec![("National".into(), oids[4]), ("Avis".into(), oids[5])],
        })
    }

    /// Remaining inventory of a provider.
    pub fn remaining(&self, db: &Database, oid: Oid) -> u64 {
        db.peek(oid).unwrap().map(|b| dec(&b)).unwrap_or(0)
    }
}

/// `reserve`: decrement the provider's counter, aborting when sold out.
fn reserve(oid: Oid) -> impl Fn(&TxnCtx) -> Result<()> + Send + Sync + 'static {
    move |ctx: &TxnCtx| {
        let cur = ctx.read(oid)?.map(|b| dec(&b)).unwrap_or(0);
        if cur == 0 {
            return ctx.abort_self(); // sold out
        }
        ctx.write(oid, enc(cur - 1))
    }
}

/// `cancel_*_reservation`: increment the counter back.
fn cancel(oid: Oid) -> impl Fn(&TxnCtx) -> Result<()> + Send + Sync + 'static {
    move |ctx: &TxnCtx| {
        let cur = ctx.read(oid)?.map(|b| dec(&b)).unwrap_or(0);
        ctx.write(oid, enc(cur + 1))
    }
}

/// Build the `X_conference` workflow over `world`.
pub fn x_conference(world: &TravelWorld) -> Workflow {
    let flight_branches: Vec<Branch> = world
        .flights
        .iter()
        .map(|(name, oid)| Branch::new(name.clone(), reserve(*oid), cancel(*oid)))
        .collect();
    let (hotel_name, hotel_oid) = &world.hotel;
    let car_branches: Vec<Branch> = world
        .cars
        .iter()
        .map(|(name, oid)| Branch::new(name.clone(), reserve(*oid), cancel(*oid)))
        .collect();
    Workflow::new("X_conference")
        .step(Step::alternatives("flight", flight_branches))
        .step(Step::single(
            "hotel",
            Branch::new(hotel_name.clone(), reserve(*hotel_oid), cancel(*hotel_oid)),
        ))
        .step(Step::race("car", car_branches).optional())
}

/// Run the appendix activity end to end. Returns the outcome and per-step
/// results (`1`/`0` in the paper's int-returning function).
pub fn run_x_conference(
    db: &Database,
    world: &TravelWorld,
) -> Result<(WorkflowOutcome, Vec<StepResult>)> {
    x_conference(world).run(db)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn everything_available_books_delta() {
        let db = Database::in_memory();
        let world = TravelWorld::setup(&db, 5, 5, 5, 5, 5, 5).unwrap();
        let (outcome, results) = run_x_conference(&db, &world).unwrap();
        assert_eq!(outcome, WorkflowOutcome::Completed);
        assert_eq!(results[0].chosen.as_deref(), Some("Delta"));
        assert!(results[1].succeeded);
        assert!(results[2].succeeded, "a car was rented");
        assert_eq!(world.remaining(&db, world.flights[0].1), 4);
        assert_eq!(world.remaining(&db, world.hotel.1), 4);
        let cars_left =
            world.remaining(&db, world.cars[0].1) + world.remaining(&db, world.cars[1].1);
        assert_eq!(cars_left, 9, "exactly one car reserved across the race");
    }

    #[test]
    fn delta_sold_out_falls_back_to_united() {
        let db = Database::in_memory();
        let world = TravelWorld::setup(&db, 0, 3, 3, 3, 1, 1).unwrap();
        let (outcome, results) = run_x_conference(&db, &world).unwrap();
        assert_eq!(outcome, WorkflowOutcome::Completed);
        assert_eq!(results[0].chosen.as_deref(), Some("United"));
        assert_eq!(world.remaining(&db, world.flights[1].1), 2);
    }

    #[test]
    fn no_flights_fails_the_activity() {
        let db = Database::in_memory();
        let world = TravelWorld::setup(&db, 0, 0, 0, 3, 1, 1).unwrap();
        let (outcome, _) = run_x_conference(&db, &world).unwrap();
        assert_eq!(outcome, WorkflowOutcome::Failed { failed_step: 0 });
        assert_eq!(world.remaining(&db, world.hotel.1), 3, "hotel untouched");
    }

    #[test]
    fn hotel_sold_out_compensates_flight() {
        let db = Database::in_memory();
        let world = TravelWorld::setup(&db, 2, 2, 2, 0, 1, 1).unwrap();
        let (outcome, _) = run_x_conference(&db, &world).unwrap();
        assert_eq!(outcome, WorkflowOutcome::Failed { failed_step: 1 });
        // the flight reservation already committed, so it was compensated
        assert_eq!(
            world.remaining(&db, world.flights[0].1),
            2,
            "Delta seat returned by cancel_flight_reservation"
        );
    }

    #[test]
    fn no_cars_trip_still_proceeds() {
        let db = Database::in_memory();
        let world = TravelWorld::setup(&db, 2, 2, 2, 2, 0, 0).unwrap();
        let (outcome, results) = run_x_conference(&db, &world).unwrap();
        assert_eq!(outcome, WorkflowOutcome::Completed, "public transportation");
        assert!(!results[2].succeeded);
        assert_eq!(world.remaining(&db, world.flights[0].1), 1);
        assert_eq!(world.remaining(&db, world.hotel.1), 1);
    }

    #[test]
    fn repeated_activities_drain_inventory() {
        let db = Database::in_memory();
        let world = TravelWorld::setup(&db, 2, 1, 0, 3, 2, 2).unwrap();
        // 1st: Delta; 2nd: Delta; 3rd: United; 4th: fails (no flights)
        let outcomes: Vec<WorkflowOutcome> = (0..4)
            .map(|_| run_x_conference(&db, &world).unwrap().0)
            .collect();
        assert_eq!(outcomes[0], WorkflowOutcome::Completed);
        assert_eq!(outcomes[1], WorkflowOutcome::Completed);
        assert_eq!(outcomes[2], WorkflowOutcome::Completed);
        assert_eq!(outcomes[3], WorkflowOutcome::Failed { failed_step: 0 });
        // only 3 hotel rooms existed and exactly 3 trips succeeded
        assert_eq!(world.remaining(&db, world.hotel.1), 0);
    }
}

//! Workflows (§3.2.3 and the paper's appendix): long-lived activities with
//! transaction-like components and inter-related dependencies.
//!
//! The paper sketches workflows as hand-written primitive sequences (the
//! `X_conference` program) and notes that "it is possible to design a
//! language to specify workflows ... translated into the code given here".
//! This module is that layer: a small workflow structure whose execution
//! engine emits exactly the paper's patterns —
//!
//! * a **single** step is an atomic transaction (§3.1.1);
//! * an **alternatives** step is a contingent transaction (§3.1.3): try
//!   each in preference order, at most one commits;
//! * a **race** step begins several transactions in parallel, commits the
//!   first to complete and aborts the rest (the appendix's National/Avis
//!   pattern);
//! * a failed **required** step triggers saga-style compensation (§3.1.6)
//!   of every committed step, in reverse order, each compensation retried
//!   until it commits;
//! * an **optional** step's failure is recorded and the activity proceeds
//!   (the appendix: "If a car cannot be rented, the trip can still
//!   proceed").

pub mod travel;

use asset_common::TxnStatus;
use asset_core::{Database, Result, TxnCtx};
use asset_obs::{EventKind, ModelKind};
use std::sync::Arc;
use std::time::Duration;

/// A retry-able action (shared so compensation can re-run).
pub type Action = Arc<dyn Fn(&TxnCtx) -> Result<()> + Send + Sync>;

fn action(f: impl Fn(&TxnCtx) -> Result<()> + Send + Sync + 'static) -> Action {
    Arc::new(f)
}

/// One named alternative within an alternatives/race step.
pub struct Branch {
    /// Label reported in the outcome ("Delta", "Avis", ...).
    pub name: String,
    act: Action,
    comp: Option<Action>,
}

impl Branch {
    /// A branch with a compensation.
    pub fn new(
        name: impl Into<String>,
        act: impl Fn(&TxnCtx) -> Result<()> + Send + Sync + 'static,
        comp: impl Fn(&TxnCtx) -> Result<()> + Send + Sync + 'static,
    ) -> Branch {
        Branch {
            name: name.into(),
            act: action(act),
            comp: Some(action(comp)),
        }
    }

    /// A branch without a compensation.
    pub fn uncompensated(
        name: impl Into<String>,
        act: impl Fn(&TxnCtx) -> Result<()> + Send + Sync + 'static,
    ) -> Branch {
        Branch {
            name: name.into(),
            act: action(act),
            comp: None,
        }
    }
}

enum Runner {
    Single(Branch),
    Alternatives(Vec<Branch>),
    Race(Vec<Branch>),
    /// All branches must succeed, atomically: pairwise GC dependencies
    /// make them one distributed transaction (§3.1.2 inside a workflow).
    Parallel(Vec<Branch>),
}

/// One workflow step.
pub struct Step {
    name: String,
    required: bool,
    /// Transient-failure budget: the whole step is re-attempted this many
    /// extra times before it counts as failed.
    retries: u32,
    runner: Runner,
}

impl Step {
    /// An atomic step.
    pub fn single(name: impl Into<String>, branch: Branch) -> Step {
        Step {
            name: name.into(),
            required: true,
            retries: 0,
            runner: Runner::Single(branch),
        }
    }

    /// A contingent step: alternatives in preference order.
    pub fn alternatives(name: impl Into<String>, branches: Vec<Branch>) -> Step {
        assert!(!branches.is_empty());
        Step {
            name: name.into(),
            required: true,
            retries: 0,
            runner: Runner::Alternatives(branches),
        }
    }

    /// A racing step: all branches start in parallel; the first to
    /// complete commits, the rest abort.
    pub fn race(name: impl Into<String>, branches: Vec<Branch>) -> Step {
        assert!(!branches.is_empty());
        Step {
            name: name.into(),
            required: true,
            retries: 0,
            runner: Runner::Race(branches),
        }
    }

    /// A parallel step: all branches run concurrently and commit **as a
    /// group** (GC dependencies) — any branch failure aborts them all.
    /// On success, every branch's compensation joins the undo stack.
    pub fn parallel(name: impl Into<String>, branches: Vec<Branch>) -> Step {
        assert!(!branches.is_empty());
        Step {
            name: name.into(),
            required: true,
            retries: 0,
            runner: Runner::Parallel(branches),
        }
    }

    /// Mark the step optional: its failure does not fail the activity.
    #[must_use]
    pub fn optional(mut self) -> Step {
        self.required = false;
        self
    }

    /// Re-attempt the whole step up to `n` extra times on failure —
    /// deadlock victims, lock timeouts and transient aborts get another
    /// chance before the activity fails (or skips an optional step). Each
    /// attempt is a fresh transaction; aborted attempts leave no effects.
    #[must_use]
    pub fn with_retries(mut self, n: u32) -> Step {
        self.retries = n;
        self
    }
}

/// Per-step outcome in the report.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StepResult {
    /// Step name.
    pub name: String,
    /// The branch that committed, if any.
    pub chosen: Option<String>,
    /// Did the step succeed?
    pub succeeded: bool,
}

/// Overall outcome of a workflow run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WorkflowOutcome {
    /// Every required step succeeded.
    Completed,
    /// Required step `failed_step` failed; committed steps were
    /// compensated in reverse order.
    Failed {
        /// Index of the failed step.
        failed_step: usize,
    },
}

/// A workflow: an ordered list of steps.
pub struct Workflow {
    name: String,
    steps: Vec<Step>,
}

impl Workflow {
    /// Start building a workflow.
    pub fn new(name: impl Into<String>) -> Workflow {
        Workflow {
            name: name.into(),
            steps: Vec::new(),
        }
    }

    /// Append a step.
    #[must_use]
    pub fn step(mut self, step: Step) -> Workflow {
        self.steps.push(step);
        self
    }

    /// The workflow's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Is the workflow empty?
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Execute against `db`. Returns the outcome and per-step results.
    pub fn run(self, db: &Database) -> Result<(WorkflowOutcome, Vec<StepResult>)> {
        let mut results: Vec<StepResult> = Vec::with_capacity(self.steps.len());
        // compensations of committed steps, in commit order
        let mut undo_stack: Vec<(String, Action)> = Vec::new();

        for (idx, step) in self.steps.iter().enumerate() {
            let mut attempt = 0u32;
            let committed: Vec<&Branch> = loop {
                let result: Vec<&Branch> = match &step.runner {
                    Runner::Single(branch) => {
                        let act = Arc::clone(&branch.act);
                        let t = db.initiate(move |ctx| act(ctx))?;
                        db.obs().record(EventKind::Model {
                            model: ModelKind::Workflow,
                            tid: t,
                            label: "step",
                        });
                        db.begin(t)?;
                        if db.commit(t)? {
                            vec![branch]
                        } else {
                            vec![]
                        }
                    }
                    Runner::Alternatives(branches) => {
                        let mut winner = vec![];
                        for branch in branches {
                            let act = Arc::clone(&branch.act);
                            let t = db.initiate(move |ctx| act(ctx))?;
                            db.begin(t)?;
                            if db.commit(t)? {
                                winner.push(branch);
                                break;
                            }
                        }
                        winner
                    }
                    Runner::Race(branches) => Self::run_race(db, branches)?.into_iter().collect(),
                    Runner::Parallel(branches) => {
                        // §3.1.2 distributed transaction: pairwise GC, all
                        // commit together or none do
                        let mut tids = Vec::with_capacity(branches.len());
                        for b in branches {
                            let act = Arc::clone(&b.act);
                            tids.push(db.initiate(move |ctx| act(ctx))?);
                        }
                        for w in tids.windows(2) {
                            db.form_dependency(asset_common::DepType::GC, w[0], w[1])?;
                        }
                        db.begin_many(&tids)?;
                        if db.commit(tids[0])? {
                            branches.iter().collect()
                        } else {
                            vec![]
                        }
                    }
                };
                if !result.is_empty() || attempt >= step.retries {
                    break result;
                }
                attempt += 1;
            };

            match committed.as_slice() {
                [] if step.required => {
                    results.push(StepResult {
                        name: step.name.clone(),
                        chosen: None,
                        succeeded: false,
                    });
                    Self::compensate(db, &mut undo_stack)?;
                    return Ok((WorkflowOutcome::Failed { failed_step: idx }, results));
                }
                [] => {
                    results.push(StepResult {
                        name: step.name.clone(),
                        chosen: None,
                        succeeded: false,
                    });
                }
                branches => {
                    let chosen = branches
                        .iter()
                        .map(|b| b.name.as_str())
                        .collect::<Vec<_>>()
                        .join("+");
                    results.push(StepResult {
                        name: step.name.clone(),
                        chosen: Some(chosen),
                        succeeded: true,
                    });
                    for b in branches {
                        if let Some(comp) = &b.comp {
                            undo_stack.push((step.name.clone(), Arc::clone(comp)));
                        }
                    }
                }
            }
        }
        Ok((WorkflowOutcome::Completed, results))
    }

    /// Begin every branch; commit the first to complete, abort the rest.
    /// Falls back through later completions if the first-completed aborts
    /// at commit.
    fn run_race<'b>(db: &Database, branches: &'b [Branch]) -> Result<Option<&'b Branch>> {
        let mut tids = Vec::with_capacity(branches.len());
        for b in branches {
            let act = Arc::clone(&b.act);
            tids.push(db.initiate(move |ctx| act(ctx))?);
        }
        db.begin_many(&tids)?;
        let mut decided: Vec<bool> = vec![false; tids.len()];
        loop {
            let mut all_decided = true;
            for (i, t) in tids.iter().enumerate() {
                if decided[i] {
                    continue;
                }
                match db.status(*t)? {
                    TxnStatus::Completed => {
                        // winner: abort the other racers, then commit
                        for (j, other) in tids.iter().enumerate() {
                            if j != i {
                                let _ = db.abort(*other);
                                decided[j] = true;
                            }
                        }
                        decided[i] = true;
                        if db.commit(*t)? {
                            return Ok(Some(&branches[i]));
                        }
                        // rare: doomed at commit — no other racers remain
                        return Ok(None);
                    }
                    TxnStatus::Aborting | TxnStatus::Aborted => {
                        decided[i] = true;
                    }
                    _ => all_decided = false,
                }
            }
            if all_decided {
                return Ok(None); // every racer aborted
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// Saga-style compensation: reverse order, retry until commit.
    fn compensate(db: &Database, undo_stack: &mut Vec<(String, Action)>) -> Result<()> {
        while let Some((_name, comp)) = undo_stack.pop() {
            loop {
                let c = Arc::clone(&comp);
                let ct = db.initiate(move |ctx| c(ctx))?;
                db.obs().record(EventKind::Model {
                    model: ModelKind::Workflow,
                    tid: ct,
                    label: "compensate",
                });
                db.begin(ct)?;
                if db.commit(ct)? {
                    break;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asset_common::Oid;

    fn write_step(oid: Oid, tag: &'static [u8]) -> Branch {
        Branch::new(
            String::from_utf8_lossy(tag).to_string(),
            move |ctx: &TxnCtx| ctx.write(oid, tag.to_vec()),
            move |ctx: &TxnCtx| ctx.delete(oid),
        )
    }

    fn failing_branch(name: &str) -> Branch {
        Branch::new(
            name,
            |ctx: &TxnCtx| ctx.abort_self::<()>().map(|_| ()),
            |_| Ok(()),
        )
    }

    #[test]
    fn linear_workflow_completes() {
        let db = Database::in_memory();
        let (a, b) = (db.new_oid(), db.new_oid());
        let wf = Workflow::new("linear")
            .step(Step::single("one", write_step(a, b"A")))
            .step(Step::single("two", write_step(b, b"B")));
        let (outcome, results) = wf.run(&db).unwrap();
        assert_eq!(outcome, WorkflowOutcome::Completed);
        assert!(results.iter().all(|r| r.succeeded));
        assert_eq!(db.peek(a).unwrap().unwrap(), b"A");
    }

    #[test]
    fn alternatives_pick_first_available() {
        let db = Database::in_memory();
        let a = db.new_oid();
        let wf = Workflow::new("alt").step(Step::alternatives(
            "choice",
            vec![
                failing_branch("first"),
                write_step(a, b"second"),
                failing_branch("third"),
            ],
        ));
        let (outcome, results) = wf.run(&db).unwrap();
        assert_eq!(outcome, WorkflowOutcome::Completed);
        assert_eq!(results[0].chosen.as_deref(), Some("second"));
    }

    #[test]
    fn required_failure_compensates_committed_steps() {
        let db = Database::in_memory();
        let a = db.new_oid();
        let wf = Workflow::new("fail")
            .step(Step::single("one", write_step(a, b"A")))
            .step(Step::alternatives("none-work", vec![failing_branch("x")]));
        let (outcome, results) = wf.run(&db).unwrap();
        assert_eq!(outcome, WorkflowOutcome::Failed { failed_step: 1 });
        assert!(!results[1].succeeded);
        assert_eq!(db.peek(a).unwrap(), None, "step one compensated");
    }

    #[test]
    fn optional_failure_is_tolerated() {
        let db = Database::in_memory();
        let (a, b) = (db.new_oid(), db.new_oid());
        let wf = Workflow::new("opt")
            .step(Step::single("one", write_step(a, b"A")))
            .step(Step::single("maybe", failing_branch("x")).optional())
            .step(Step::single("two", write_step(b, b"B")));
        let (outcome, results) = wf.run(&db).unwrap();
        assert_eq!(outcome, WorkflowOutcome::Completed);
        assert!(!results[1].succeeded);
        assert!(results[2].succeeded);
        assert_eq!(db.peek(a).unwrap().unwrap(), b"A");
        assert_eq!(db.peek(b).unwrap().unwrap(), b"B");
    }

    #[test]
    fn race_commits_exactly_one() {
        let db = Database::in_memory();
        let (a, b) = (db.new_oid(), db.new_oid());
        let wf = Workflow::new("race").step(Step::race(
            "car",
            vec![
                Branch::new(
                    "slow",
                    move |ctx: &TxnCtx| {
                        std::thread::sleep(Duration::from_millis(100));
                        ctx.write(a, b"slow".to_vec())
                    },
                    move |ctx: &TxnCtx| ctx.delete(a),
                ),
                Branch::new(
                    "fast",
                    move |ctx: &TxnCtx| ctx.write(b, b"fast".to_vec()),
                    move |ctx: &TxnCtx| ctx.delete(b),
                ),
            ],
        ));
        let (outcome, results) = wf.run(&db).unwrap();
        assert_eq!(outcome, WorkflowOutcome::Completed);
        assert_eq!(results[0].chosen.as_deref(), Some("fast"));
        assert_eq!(db.peek(b).unwrap().unwrap(), b"fast");
        assert_eq!(db.peek(a).unwrap(), None, "loser aborted");
    }

    #[test]
    fn race_where_all_abort_fails_the_step() {
        let db = Database::in_memory();
        let wf = Workflow::new("race-fail").step(Step::race(
            "car",
            vec![failing_branch("a"), failing_branch("b")],
        ));
        let (outcome, _) = wf.run(&db).unwrap();
        assert_eq!(outcome, WorkflowOutcome::Failed { failed_step: 0 });
    }

    #[test]
    fn parallel_step_commits_all_branches_atomically() {
        let db = Database::in_memory();
        let (a, b, c) = (db.new_oid(), db.new_oid(), db.new_oid());
        let wf = Workflow::new("par").step(Step::parallel(
            "book-everything",
            vec![
                write_step(a, b"A"),
                write_step(b, b"B"),
                write_step(c, b"C"),
            ],
        ));
        let (outcome, results) = wf.run(&db).unwrap();
        assert_eq!(outcome, WorkflowOutcome::Completed);
        assert_eq!(results[0].chosen.as_deref(), Some("A+B+C"));
        assert_eq!(db.peek(a).unwrap().unwrap(), b"A");
        assert_eq!(db.peek(b).unwrap().unwrap(), b"B");
        assert_eq!(db.peek(c).unwrap().unwrap(), b"C");
    }

    #[test]
    fn parallel_step_one_failure_aborts_all() {
        let db = Database::in_memory();
        let (a, b) = (db.new_oid(), db.new_oid());
        let wf = Workflow::new("par-fail")
            .step(Step::single("pre", write_step(a, b"pre")))
            .step(Step::parallel(
                "group",
                vec![write_step(b, b"B"), failing_branch("boom")],
            ));
        let (outcome, _) = wf.run(&db).unwrap();
        assert_eq!(outcome, WorkflowOutcome::Failed { failed_step: 1 });
        assert_eq!(db.peek(b).unwrap(), None, "group aborted atomically");
        assert_eq!(db.peek(a).unwrap(), None, "earlier step compensated");
    }

    #[test]
    fn parallel_step_compensations_cover_every_branch() {
        let db = Database::in_memory();
        let (a, b) = (db.new_oid(), db.new_oid());
        let wf = Workflow::new("par-comp")
            .step(Step::parallel(
                "group",
                vec![write_step(a, b"A"), write_step(b, b"B")],
            ))
            .step(Step::single("boom", failing_branch("boom")));
        let (outcome, _) = wf.run(&db).unwrap();
        assert_eq!(outcome, WorkflowOutcome::Failed { failed_step: 1 });
        assert_eq!(db.peek(a).unwrap(), None, "branch A compensated");
        assert_eq!(db.peek(b).unwrap(), None, "branch B compensated");
    }

    #[test]
    fn step_retries_absorb_transient_failures() {
        let db = Database::in_memory();
        let a = db.new_oid();
        let attempts = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        let at = std::sync::Arc::clone(&attempts);
        let wf = Workflow::new("retry").step(
            Step::single(
                "flaky",
                Branch::new(
                    "flaky",
                    move |ctx: &TxnCtx| {
                        // fails twice, then succeeds
                        if at.fetch_add(1, std::sync::atomic::Ordering::SeqCst) < 2 {
                            ctx.abort_self::<()>().map(|_| ())
                        } else {
                            ctx.write(a, b"eventually".to_vec())
                        }
                    },
                    |_| Ok(()),
                ),
            )
            .with_retries(5),
        );
        let (outcome, _) = wf.run(&db).unwrap();
        assert_eq!(outcome, WorkflowOutcome::Completed);
        assert_eq!(attempts.load(std::sync::atomic::Ordering::SeqCst), 3);
        assert_eq!(db.peek(a).unwrap().unwrap(), b"eventually");
    }

    #[test]
    fn retries_exhausted_still_fails_and_compensates() {
        let db = Database::in_memory();
        let a = db.new_oid();
        let wf = Workflow::new("retry-fail")
            .step(Step::single("pre", write_step(a, b"A")))
            .step(Step::single("boom", failing_branch("boom")).with_retries(2));
        let (outcome, _) = wf.run(&db).unwrap();
        assert_eq!(outcome, WorkflowOutcome::Failed { failed_step: 1 });
        assert_eq!(
            db.peek(a).unwrap(),
            None,
            "compensated after retries ran out"
        );
    }

    #[test]
    fn compensations_run_in_reverse_order() {
        let db = Database::in_memory();
        let log = db.new_oid();
        assert!(db.run(move |ctx| ctx.write(log, Vec::new())).unwrap());
        let appender = |tag: u8| {
            move |ctx: &TxnCtx| {
                ctx.update(log, move |cur| {
                    let mut v = cur.unwrap_or_default();
                    v.push(tag);
                    v
                })
            }
        };
        let wf = Workflow::new("order")
            .step(Step::single(
                "s1",
                Branch::new("s1", appender(1), appender(101)),
            ))
            .step(Step::single(
                "s2",
                Branch::new("s2", appender(2), appender(102)),
            ))
            .step(Step::single("boom", failing_branch("boom")));
        let (outcome, _) = wf.run(&db).unwrap();
        assert_eq!(outcome, WorkflowOutcome::Failed { failed_step: 2 });
        let v = db.peek(log).unwrap().unwrap();
        assert_eq!(v, vec![1, 2, 102, 101], "t1 t2 ct2 ct1");
    }
}

//! Cursor stability (§3.2.2): a relaxed degree of consistency.
//!
//! A scanning transaction holds a read lock only on the record under its
//! cursor; as the cursor moves on, it executes
//!
//! ```text
//! permit(ti, record, write)
//! ```
//!
//! — a wildcard-grantee write permit — so any transaction may overwrite the
//! record without waiting for the scanner to commit. No dependency is
//! formed, so the writers and the scanner commit in any order; the scanner
//! accepts non-repeatable reads in exchange.

use asset_common::{ObSet, Oid, OpSet};
use asset_core::{Result, TxnCtx};
use asset_obs::{EventKind, ModelKind};

/// A cursor-stability scan over an ordered list of records.
pub struct Cursor<'a> {
    ctx: &'a TxnCtx,
    records: Vec<Oid>,
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Open a cursor over `records` within the transaction of `ctx`.
    pub fn open(ctx: &'a TxnCtx, records: Vec<Oid>) -> Cursor<'a> {
        ctx.db().obs().record(EventKind::Model {
            model: ModelKind::Cursor,
            tid: ctx.id(),
            label: "open",
        });
        Cursor {
            ctx,
            records,
            pos: 0,
        }
    }

    /// Read the next record (read-locking it), releasing the previous
    /// record to writers via a wildcard write permit. `None` at the end.
    /// (Not an `Iterator`: each step is fallible and takes locks.)
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<(Oid, Option<Vec<u8>>)>> {
        if self.pos >= self.records.len() {
            return Ok(None);
        }
        let ob = self.records[self.pos];
        let value = self.ctx.read(ob)?;
        // before moving on, allow writes to the record we just left
        self.ctx
            .permit(self.ctx.id(), None, ObSet::one(ob), OpSet::WRITE)?;
        self.pos += 1;
        Ok(Some((ob, value)))
    }

    /// Records remaining (including the one under the cursor).
    pub fn remaining(&self) -> usize {
        self.records.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::run_atomic;
    use asset_core::Database;
    use std::time::Duration;

    fn seed_records(db: &Database, n: usize) -> Vec<Oid> {
        let oids: Vec<Oid> = (0..n).map(|_| db.new_oid()).collect();
        let o2 = oids.clone();
        assert!(db
            .run(move |ctx| {
                for (i, oid) in o2.iter().enumerate() {
                    ctx.write(*oid, vec![i as u8])?;
                }
                Ok(())
            })
            .unwrap());
        oids
    }

    #[test]
    fn scan_reads_all_records() {
        let db = Database::in_memory();
        let oids = seed_records(&db, 5);
        let committed = run_atomic(&db, move |ctx| {
            let mut cursor = Cursor::open(ctx, oids.clone());
            let mut seen = vec![];
            while let Some((_, v)) = cursor.next()? {
                seen.push(v.unwrap()[0]);
            }
            assert_eq!(seen, vec![0, 1, 2, 3, 4]);
            assert_eq!(cursor.remaining(), 0);
            Ok(())
        })
        .unwrap();
        assert!(committed);
    }

    #[test]
    fn writer_overwrites_visited_record_while_scan_is_open() {
        let db = Database::in_memory();
        let oids = seed_records(&db, 3);
        let first = oids[0];

        // scanner: visit record 0, then hold the transaction open
        let scan_oids = oids.clone();
        let gate = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let g2 = std::sync::Arc::clone(&gate);
        let scanner = db
            .initiate(move |ctx| {
                let mut cursor = Cursor::open(ctx, scan_oids.clone());
                cursor.next()?; // visits record 0, then permits writes on it
                while !g2.load(std::sync::atomic::Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                Ok(())
            })
            .unwrap();
        db.begin(scanner).unwrap();
        std::thread::sleep(Duration::from_millis(30));

        // a writer updates the visited record without waiting
        let committed = run_atomic(&db, move |ctx| ctx.write(first, vec![99])).unwrap();
        assert!(committed, "cursor stability unblocked the writer");

        gate.store(true, std::sync::atomic::Ordering::SeqCst);
        assert!(db.commit(scanner).unwrap());
        assert_eq!(db.peek(first).unwrap().unwrap(), vec![99]);
    }

    #[test]
    fn record_under_cursor_is_still_protected() {
        let db = Database::in_memory();
        let oids = seed_records(&db, 3);
        let second = oids[1];
        let gate = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let g2 = std::sync::Arc::clone(&gate);
        let scan_oids = oids.clone();
        let scanner = db
            .initiate(move |ctx| {
                let mut cursor = Cursor::open(ctx, scan_oids.clone());
                cursor.next()?; // record 0 released
                cursor.next()?; // record 1 read... cursor now past it but
                                // record 2 not yet visited — record 1 is
                                // also released. The record "under" the
                                // cursor in this API is the next unvisited
                                // one, which holds no lock yet; what stays
                                // protected is nothing — matching the
                                // paper, protection is only while reading.
                while !g2.load(std::sync::atomic::Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                Ok(())
            })
            .unwrap();
        db.begin(scanner).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        // the already-visited record is writable...
        assert!(run_atomic(&db, move |ctx| ctx.write(second, vec![77])).unwrap());
        gate.store(true, std::sync::atomic::Ordering::SeqCst);
        assert!(db.commit(scanner).unwrap());
    }

    #[test]
    fn non_repeatable_read_is_the_accepted_cost() {
        let db = Database::in_memory();
        let oids = seed_records(&db, 1);
        let ob = oids[0];
        let dbc = db.clone();
        let committed = run_atomic(&db, move |ctx| {
            let mut cursor = Cursor::open(ctx, vec![ob]);
            let (_, v1) = cursor.next()?.unwrap();
            assert_eq!(v1.unwrap(), vec![0]);
            // an independent writer slips in between our reads
            assert!(run_atomic(&dbc, move |c| c.write(ob, vec![42]))?);
            // re-reading shows the new value: non-repeatable, by design
            let v2 = ctx.read(ob)?.unwrap();
            assert_eq!(v2, vec![42]);
            Ok(())
        })
        .unwrap();
        assert!(committed);
    }

    #[test]
    fn without_cursor_stability_writer_blocks() {
        // control experiment: a plain repeatable-read scan keeps its read
        // locks, so the writer times out
        let db = Database::open(
            asset_common::Config::in_memory().with_lock_timeout(Some(Duration::from_millis(80))),
        )
        .unwrap()
        .0;
        let oids = seed_records(&db, 1);
        let ob = oids[0];
        let gate = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let g2 = std::sync::Arc::clone(&gate);
        let scanner = db
            .initiate(move |ctx| {
                ctx.read(ob)?; // plain read: lock held to commit
                while !g2.load(std::sync::atomic::Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                Ok(())
            })
            .unwrap();
        db.begin(scanner).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        let committed = run_atomic(&db, move |ctx| ctx.write(ob, vec![9])).unwrap();
        assert!(
            !committed,
            "writer aborted on lock timeout under strict locking"
        );
        gate.store(true, std::sync::atomic::Ordering::SeqCst);
        assert!(db.commit(scanner).unwrap());
    }
}

//! Atomic transactions (§3.1.1) — what the O++ compiler emits for
//! `trans { ... }`:
//!
//! ```text
//! tid t;
//! if ((t = initiate(f)) != NULL) {
//!     if (begin(t)) {
//!         commit(t);
//!     }
//! }
//! ```

use asset_core::{Database, Result, TxnCtx};
use asset_obs::{EventKind, ModelKind};
use std::sync::Arc;

/// Run `f` as an atomic transaction. Returns `true` if it committed.
pub fn run_atomic(
    db: &Database,
    f: impl FnOnce(&TxnCtx) -> Result<()> + Send + 'static,
) -> Result<bool> {
    let t = db.initiate(f)?;
    db.obs().record(EventKind::Model {
        model: ModelKind::Atomic,
        tid: t,
        label: "trans",
    });
    db.begin(t)?;
    db.commit(t)
}

/// Outcome of [`run_atomic_retrying`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RetryOutcome {
    /// Committed after the given number of attempts (1 = first try).
    Committed {
        /// Attempts used.
        attempts: u32,
    },
    /// Still aborted after exhausting the budget.
    GaveUp {
        /// Attempts used.
        attempts: u32,
    },
}

/// A retryable transaction body: runs once per attempt, shared via `Arc`.
pub type RetryableAction = Arc<dyn Fn(&TxnCtx) -> Result<()> + Send + Sync>;

/// Run `f` as an atomic transaction, retrying on abort (deadlock victims,
/// lock timeouts) up to `max_attempts` times. The closure runs once per
/// attempt, so it must be `Fn` and is shared via `Arc`.
pub fn run_atomic_retrying(
    db: &Database,
    f: RetryableAction,
    max_attempts: u32,
) -> Result<RetryOutcome> {
    assert!(max_attempts >= 1);
    for attempt in 1..=max_attempts {
        let g = Arc::clone(&f);
        let committed = run_atomic(db, move |ctx| g(ctx))?;
        if committed {
            return Ok(RetryOutcome::Committed { attempts: attempt });
        }
    }
    Ok(RetryOutcome::GaveUp {
        attempts: max_attempts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn commits() {
        let db = Database::in_memory();
        let oid = db.new_oid();
        assert!(run_atomic(&db, move |ctx| ctx.write(oid, b"x".to_vec())).unwrap());
        assert_eq!(db.peek(oid).unwrap().unwrap(), b"x");
    }

    #[test]
    fn abort_leaves_no_trace() {
        let db = Database::in_memory();
        let oid = db.new_oid();
        let committed = run_atomic(&db, move |ctx| {
            ctx.write(oid, b"x".to_vec())?;
            ctx.abort_self::<()>().map(|_| ())
        })
        .unwrap();
        assert!(!committed);
        assert_eq!(db.peek(oid).unwrap(), None);
    }

    #[test]
    fn retrying_succeeds_on_later_attempt() {
        let db = Database::in_memory();
        let tries = Arc::new(AtomicU32::new(0));
        let t2 = Arc::clone(&tries);
        let out = run_atomic_retrying(
            &db,
            Arc::new(move |ctx: &TxnCtx| {
                if t2.fetch_add(1, Ordering::SeqCst) < 2 {
                    ctx.abort_self::<()>().map(|_| ())
                } else {
                    Ok(())
                }
            }),
            5,
        )
        .unwrap();
        assert_eq!(out, RetryOutcome::Committed { attempts: 3 });
    }

    #[test]
    fn retrying_gives_up() {
        let db = Database::in_memory();
        let out = run_atomic_retrying(
            &db,
            Arc::new(|ctx: &TxnCtx| ctx.abort_self::<()>().map(|_| ())),
            3,
        )
        .unwrap();
        assert_eq!(out, RetryOutcome::GaveUp { attempts: 3 });
    }
}

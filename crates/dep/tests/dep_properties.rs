//! Property tests for the dependency graph: gate correctness under random
//! edge sets and termination orders, cycle prevention, and group-commit
//! component algebra.

use asset_common::{DepType, Tid};
use asset_dep::{CommitGate, DepGraph, TermState};
use proptest::prelude::*;
use std::collections::HashSet;

#[derive(Clone, Debug)]
enum GraphOp {
    Form(u8, u64, u64), // kind (0=CD,1=AD,2=GC), ti, tj
    Commit(u64),
    Abort(u64),
}

fn arb_graph_op() -> impl Strategy<Value = GraphOp> {
    prop_oneof![
        (0u8..3, 1u64..8, 1u64..8).prop_map(|(k, a, b)| GraphOp::Form(k, a, b)),
        (1u64..8).prop_map(GraphOp::Commit),
        (1u64..8).prop_map(GraphOp::Abort),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whatever happens, a `Ready` gate is truthful: every member of the
    /// returned group is active and no member has an unsatisfied external
    /// AD/CD edge. And the CD/AD subgraph stays acyclic.
    #[test]
    fn gates_are_sound(ops in proptest::collection::vec(arb_graph_op(), 0..60)) {
        let mut g = DepGraph::new();
        for t in 1..8 {
            g.register(Tid(t));
        }
        for op in ops {
            match op {
                GraphOp::Form(k, a, b) => {
                    let kind = match k { 0 => DepType::CD, 1 => DepType::AD, _ => DepType::GC };
                    // may fail (cycle/self) — that's the contract
                    let _ = g.form(kind, Tid(a), Tid(b));
                }
                GraphOp::Commit(t) => {
                    if g.state(Tid(t)) == TermState::Active && !g.is_doomed(Tid(t)) {
                        // only commit when the graph itself says Ready —
                        // mirroring the manager's behavior
                        if let CommitGate::Ready(group) = g.commit_gate(Tid(t)) {
                            for m in &group {
                                prop_assert_eq!(g.state(*m), TermState::Active);
                            }
                            g.committed(&group);
                            for m in &group {
                                prop_assert_eq!(g.state(*m), TermState::Committed);
                            }
                        }
                    }
                }
                GraphOp::Abort(t) => {
                    if g.state(Tid(t)) == TermState::Active {
                        let mut queue = g.aborted(Tid(t));
                        let mut seen = HashSet::new();
                        while let Some(v) = queue.pop() {
                            if seen.insert(v) && g.state(v) == TermState::Active {
                                queue.extend(g.aborted(v));
                            }
                        }
                    }
                }
            }
            // soundness sweep: no committed transaction is doomed
            for t in 1..8 {
                if g.state(Tid(t)) == TermState::Committed {
                    prop_assert!(!g.is_doomed(Tid(t)), "t{t} committed but doomed");
                }
            }
        }
    }

    /// GC components partition the registered transactions: membership is
    /// symmetric and transitive.
    #[test]
    fn gc_components_partition(
        links in proptest::collection::vec((1u64..10, 1u64..10), 0..15)
    ) {
        let mut g = DepGraph::new();
        for t in 1..10 {
            g.register(Tid(t));
        }
        for (a, b) in links {
            if a != b {
                g.form(DepType::GC, Tid(a), Tid(b)).unwrap();
            }
        }
        for t in 1..10u64 {
            let comp = g.gc_component(Tid(t));
            prop_assert!(comp.contains(&Tid(t)), "reflexive");
            for m in &comp {
                let other = g.gc_component(*m);
                prop_assert_eq!(&comp, &other, "t{} and {} disagree", t, m);
            }
        }
    }

    /// Cycle prevention is exact for chains: a chain a→b→...→z accepts a
    /// forward extension and rejects exactly the closing edges.
    #[test]
    fn chain_cycle_prevention(len in 2usize..7) {
        let mut g = DepGraph::new();
        // build dependent-chain: t(i+1) waits on t(i)
        for i in 1..len as u64 {
            g.form(DepType::CD, Tid(i), Tid(i + 1)).unwrap();
        }
        // every back edge (t1 waits on t_k, k>1) closes a cycle
        for k in 2..=len as u64 {
            let err = g.form(DepType::AD, Tid(k), Tid(1));
            prop_assert!(err.is_err(), "t1 waits on t{k} must be rejected");
        }
        // an independent transaction can hook on anywhere
        g.form(DepType::CD, Tid(len as u64), Tid(99)).unwrap();
    }

    /// AD chains doom everything downstream of an abort; CD chains doom
    /// nothing.
    #[test]
    fn abort_propagation_depth(kind_ad in any::<bool>(), len in 2usize..8) {
        let mut g = DepGraph::new();
        let kind = if kind_ad { DepType::AD } else { DepType::CD };
        for i in 1..len as u64 {
            g.form(kind, Tid(i), Tid(i + 1)).unwrap();
        }
        // abort the head; manager-style propagation loop
        let mut queue = g.aborted(Tid(1));
        let mut doomed = HashSet::new();
        while let Some(v) = queue.pop() {
            if doomed.insert(v) {
                queue.extend(g.aborted(v));
            }
        }
        if kind_ad {
            prop_assert_eq!(doomed.len(), len - 1, "whole chain doomed");
        } else {
            prop_assert!(doomed.is_empty(), "CD dependents survive");
            // the head's direct dependent is released; the rest still wait
            // on their (live) predecessors and become ready one by one
            for t in 2..=len as u64 {
                prop_assert_eq!(g.commit_gate(Tid(t)), CommitGate::Ready(vec![Tid(t)]));
                g.committed(&[Tid(t)]);
            }
        }
    }
}

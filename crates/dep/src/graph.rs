//! The transaction dependency graph (paper §4.1–4.2).
//!
//! Internal normalization: every CD/AD edge is stored as *(dependent,
//! on)* — the dependent's commit is gated by `on`:
//!
//! * `form_dependency(CD, ti, tj)` — "tj cannot commit before ti" — becomes
//!   `(dependent: tj, on: ti, CD)`: tj waits until ti *terminates*.
//! * `form_dependency(AD, ti, tj)` — "if ti aborts, tj aborts" — becomes
//!   `(dependent: tj, on: ti, AD)`: tj waits until ti *commits*; if ti
//!   aborts, tj is doomed. (AD covers CD, as the paper notes.)
//! * `form_dependency(GC, ti, tj)` — symmetric; stored once and evaluated
//!   as a connected component that commits or aborts as a unit. The
//!   paper's mark-based protocol discovers the same component pairwise;
//!   component discovery is our equivalent implementation.
//!
//! `form_dependency` rejects a CD/AD edge that would close a cycle in the
//! CD/AD subgraph — the paper: "a check is performed to prevent certain
//! dependency cycles" — because such a cycle deadlocks the commit protocol.
//! GC cycles are fine; they *are* group commit.

use asset_common::{AssetError, DepType, Result, Tid};
use std::collections::{HashMap, HashSet};

/// Terminal knowledge the graph keeps about each registered transaction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TermState {
    /// Not yet terminated.
    Active,
    /// Committed.
    Committed,
    /// Aborted.
    Aborted,
}

/// What the commit protocol should do next for a transaction (or its GC
/// group).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CommitGate {
    /// All gates are open: commit these transactions together (the
    /// transaction itself plus its GC component).
    Ready(Vec<Tid>),
    /// Some member of the group is doomed (an AD parent aborted, or a GC
    /// partner aborted): the whole group must abort.
    Doomed(Vec<Tid>),
    /// Blocked until the named transaction terminates (CD) or commits (AD).
    WaitOn(Tid),
}

/// Aggregate dependency-graph counts, assembled by [`DepGraph::summary`]
/// for `Database::introspect()` and the `asset-top` display.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DepSummary {
    /// Transactions the graph knows about (any terminal state).
    pub registered: usize,
    /// Registered and not yet terminated.
    pub active: usize,
    /// Registered and committed.
    pub committed: usize,
    /// Registered and aborted.
    pub aborted: usize,
    /// Transactions doomed by a dependency, not yet aborted.
    pub doomed: usize,
    /// Live commit dependencies (CD).
    pub cd_edges: usize,
    /// Live abort dependencies (AD).
    pub ad_edges: usize,
    /// Group-commit links (each undirected link counted once).
    pub gc_links: usize,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct GateEdge {
    dependent: Tid,
    on: Tid,
    kind: DepType, // CD or AD only
}

/// The dependency graph. Pure data structure — blocking/waking lives in the
/// transaction manager, which re-evaluates [`DepGraph::commit_gate`] on
/// every termination event.
#[derive(Default)]
pub struct DepGraph {
    /// CD/AD edges, doubly indexed.
    out_edges: HashMap<Tid, Vec<GateEdge>>, // keyed by dependent
    in_edges: HashMap<Tid, Vec<GateEdge>>, // keyed by `on`
    /// GC adjacency (undirected).
    gc: HashMap<Tid, HashSet<Tid>>,
    /// Terminal states of registered transactions.
    term: HashMap<Tid, TermState>,
    /// Transactions doomed by a dependency (must abort when they next try
    /// to commit, or immediately if the manager polls).
    doomed: HashSet<Tid>,
}

impl DepGraph {
    /// An empty graph.
    pub fn new() -> DepGraph {
        DepGraph::default()
    }

    /// Register a transaction (idempotent).
    pub fn register(&mut self, t: Tid) {
        self.term.entry(t).or_insert(TermState::Active);
    }

    /// Terminal state of `t` (`Active` if unknown).
    pub fn state(&self, t: Tid) -> TermState {
        self.term.get(&t).copied().unwrap_or(TermState::Active)
    }

    /// Is `t` doomed by a dependency?
    pub fn is_doomed(&self, t: Tid) -> bool {
        self.doomed.contains(&t)
    }

    /// Number of CD/AD edges (diagnostics).
    pub fn edge_count(&self) -> usize {
        self.out_edges.values().map(Vec::len).sum()
    }

    /// Number of GC links (diagnostics).
    pub fn gc_link_count(&self) -> usize {
        self.gc.values().map(HashSet::len).sum::<usize>() / 2
    }

    /// Every live edge in the paper's `form_dependency(kind, ti, tj)`
    /// orientation: CD/AD edges come back as `(kind, on, dependent)` —
    /// undoing the internal normalization — and each GC link appears once
    /// with its endpoints in ascending tid order. Sorted for deterministic
    /// export (DOT, introspection).
    pub fn edges(&self) -> Vec<(DepType, Tid, Tid)> {
        let mut out: Vec<(DepType, Tid, Tid)> = self
            .out_edges
            .values()
            .flatten()
            .map(|e| (e.kind, e.on, e.dependent))
            .collect();
        for (&a, peers) in &self.gc {
            for &b in peers {
                if a < b {
                    out.push((DepType::GC, a, b));
                }
            }
        }
        out.sort_unstable_by_key(|(k, a, b)| (*k as u8, a.raw(), b.raw()));
        out
    }

    /// Aggregate counts for dashboards ([`DepSummary`]).
    pub fn summary(&self) -> DepSummary {
        let mut s = DepSummary {
            registered: self.term.len(),
            doomed: self.doomed.len(),
            gc_links: self.gc_link_count(),
            ..DepSummary::default()
        };
        for st in self.term.values() {
            match st {
                TermState::Active => s.active += 1,
                TermState::Committed => s.committed += 1,
                TermState::Aborted => s.aborted += 1,
            }
        }
        for e in self.out_edges.values().flatten() {
            match e.kind {
                DepType::AD => s.ad_edges += 1,
                _ => s.cd_edges += 1,
            }
        }
        s
    }

    /// `form_dependency(kind, ti, tj)`.
    ///
    /// Edges involving already-terminated transactions resolve immediately
    /// instead of being stored: a terminated *dependent* cannot be
    /// constrained retroactively (in particular, a committed transaction is
    /// never doomed); an already-committed `on` satisfies AD/CD; an
    /// already-aborted `on` dooms an active AD dependent / GC partner.
    pub fn form(&mut self, kind: DepType, ti: Tid, tj: Tid) -> Result<()> {
        if ti == tj {
            return Err(AssetError::DependencyCycle {
                dependent: tj,
                on: ti,
            });
        }
        self.register(ti);
        self.register(tj);
        let (si, sj) = (self.state(ti), self.state(tj));
        match kind {
            DepType::GC => {
                match (si, sj) {
                    (TermState::Active, TermState::Active) => {
                        self.gc.entry(ti).or_default().insert(tj);
                        self.gc.entry(tj).or_default().insert(ti);
                    }
                    (TermState::Aborted, TermState::Active) => {
                        self.doomed.insert(tj);
                    }
                    (TermState::Active, TermState::Aborted) => {
                        self.doomed.insert(ti);
                    }
                    // a committed or doubly-terminated pair cannot be bound
                    // retroactively
                    _ => {}
                }
                Ok(())
            }
            DepType::CD | DepType::AD => {
                let (dependent, on) = (tj, ti);
                if sj != TermState::Active {
                    // the dependent's fate is already sealed
                    return Ok(());
                }
                match si {
                    TermState::Committed => Ok(()), // gate already satisfied
                    TermState::Aborted => {
                        if kind == DepType::AD {
                            self.doomed.insert(dependent);
                        }
                        Ok(()) // CD on an aborted `on` is satisfied
                    }
                    TermState::Active => {
                        // cycle check over the CD/AD subgraph: adding
                        // dependent -> on must not close a path
                        // on ->* dependent.
                        if self.reaches(on, dependent) {
                            return Err(AssetError::DependencyCycle { dependent, on });
                        }
                        let edge = GateEdge {
                            dependent,
                            on,
                            kind,
                        };
                        self.out_edges.entry(dependent).or_default().push(edge);
                        self.in_edges.entry(on).or_default().push(edge);
                        Ok(())
                    }
                }
            }
        }
    }

    /// Is there a CD/AD path `from ->* to` (following dependent→on edges)?
    fn reaches(&self, from: Tid, to: Tid) -> bool {
        let mut stack = vec![from];
        let mut seen = HashSet::new();
        while let Some(t) = stack.pop() {
            if t == to {
                return true;
            }
            if !seen.insert(t) {
                continue;
            }
            if let Some(edges) = self.out_edges.get(&t) {
                stack.extend(edges.iter().map(|e| e.on));
            }
        }
        false
    }

    /// The GC-connected component of `t` (always contains `t`).
    pub fn gc_component(&self, t: Tid) -> Vec<Tid> {
        let mut seen = HashSet::new();
        let mut stack = vec![t];
        let mut out = Vec::new();
        while let Some(x) = stack.pop() {
            if !seen.insert(x) {
                continue;
            }
            out.push(x);
            if let Some(nbrs) = self.gc.get(&x) {
                stack.extend(nbrs.iter().copied());
            }
        }
        out.sort_unstable();
        out
    }

    /// Evaluate the commit gate for `t` (paper commit steps 2–3).
    ///
    /// Considers `t`'s whole GC component: edges *within* the component are
    /// satisfied by committing together; each member's CD/AD edges to the
    /// outside gate the group.
    pub fn commit_gate(&self, t: Tid) -> CommitGate {
        let group = self.gc_component(t);
        let group_set: HashSet<Tid> = group.iter().copied().collect();

        // Any doomed or aborted member dooms the group.
        for m in &group {
            if self.doomed.contains(m) || self.state(*m) == TermState::Aborted {
                return CommitGate::Doomed(group);
            }
        }
        for m in &group {
            let Some(edges) = self.out_edges.get(m) else {
                continue;
            };
            for e in edges {
                if group_set.contains(&e.on) {
                    continue; // intra-group: satisfied by committing together
                }
                match (e.kind, self.state(e.on)) {
                    // AD: wait for `on` to commit; abort if it aborts
                    (DepType::AD, TermState::Active) => return CommitGate::WaitOn(e.on),
                    (DepType::AD, TermState::Aborted) => {
                        return CommitGate::Doomed(group);
                    }
                    (DepType::AD, TermState::Committed) => {}
                    // CD: wait for `on` to terminate either way
                    (DepType::CD, TermState::Active) => return CommitGate::WaitOn(e.on),
                    (DepType::CD, _) => {}
                    (DepType::GC, _) => unreachable!("GC edges are not gate edges"),
                }
            }
        }
        CommitGate::Ready(group)
    }

    /// Mark every member of `group` committed and drop their edges (paper
    /// commit step 5: "remove all dependencies of other transactions on
    /// ti").
    pub fn committed(&mut self, group: &[Tid]) {
        for t in group {
            self.term.insert(*t, TermState::Committed);
            self.remove_edges(*t);
        }
    }

    /// Mark `t` aborted. Returns the transactions that must now abort too
    /// (paper abort step 4: dependents via AD, GC partners); CD dependents
    /// are simply released. The caller aborts each returned transaction,
    /// which re-enters here — transitivity via iteration.
    pub fn aborted(&mut self, t: Tid) -> Vec<Tid> {
        self.term.insert(t, TermState::Aborted);
        self.doomed.remove(&t);
        let mut victims: Vec<Tid> = Vec::new();
        // incoming AD edges: dependents doomed
        if let Some(edges) = self.in_edges.get(&t) {
            for e in edges {
                if e.kind == DepType::AD && self.state(e.dependent) == TermState::Active {
                    victims.push(e.dependent);
                }
            }
        }
        // GC partners doomed
        if let Some(nbrs) = self.gc.get(&t) {
            for n in nbrs {
                if self.state(*n) == TermState::Active {
                    victims.push(*n);
                }
            }
        }
        victims.sort_unstable();
        victims.dedup();
        for v in &victims {
            self.doomed.insert(*v);
        }
        self.remove_edges(t);
        victims
    }

    /// Drop every edge touching `t`.
    fn remove_edges(&mut self, t: Tid) {
        if let Some(edges) = self.out_edges.remove(&t) {
            for e in edges {
                if let Some(v) = self.in_edges.get_mut(&e.on) {
                    v.retain(|x| x.dependent != t);
                }
            }
        }
        if let Some(edges) = self.in_edges.remove(&t) {
            for e in edges {
                if let Some(v) = self.out_edges.get_mut(&e.dependent) {
                    v.retain(|x| x.on != t);
                }
            }
        }
        if let Some(nbrs) = self.gc.remove(&t) {
            for n in nbrs {
                if let Some(s) = self.gc.get_mut(&n) {
                    s.remove(&t);
                }
            }
        }
    }

    /// Forget a retired transaction entirely (manager GC).
    pub fn retire(&mut self, t: Tid) {
        self.remove_edges(t);
        self.term.remove(&t);
        self.doomed.remove(&t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ready_one(g: &DepGraph, t: Tid) {
        assert_eq!(g.commit_gate(t), CommitGate::Ready(vec![t]));
    }

    #[test]
    fn no_dependencies_is_ready() {
        let mut g = DepGraph::new();
        g.register(Tid(1));
        ready_one(&g, Tid(1));
    }

    #[test]
    fn cd_blocks_until_termination_either_way() {
        // form_dependency(CD, t1, t2): t2 cannot commit before t1.
        let mut g = DepGraph::new();
        g.form(DepType::CD, Tid(1), Tid(2)).unwrap();
        assert_eq!(g.commit_gate(Tid(2)), CommitGate::WaitOn(Tid(1)));
        ready_one(&g, Tid(1)); // t1 itself is unconstrained
        g.committed(&[Tid(1)]);
        ready_one(&g, Tid(2));
    }

    #[test]
    fn cd_released_by_abort() {
        let mut g = DepGraph::new();
        g.form(DepType::CD, Tid(1), Tid(2)).unwrap();
        let victims = g.aborted(Tid(1));
        assert!(victims.is_empty(), "CD dependents survive an abort");
        ready_one(&g, Tid(2));
    }

    #[test]
    fn ad_blocks_then_dooms_on_abort() {
        // form_dependency(AD, t1, t2): if t1 aborts, t2 aborts.
        let mut g = DepGraph::new();
        g.form(DepType::AD, Tid(1), Tid(2)).unwrap();
        assert_eq!(g.commit_gate(Tid(2)), CommitGate::WaitOn(Tid(1)));
        let victims = g.aborted(Tid(1));
        assert_eq!(victims, vec![Tid(2)]);
        assert!(g.is_doomed(Tid(2)));
        assert_eq!(g.commit_gate(Tid(2)), CommitGate::Doomed(vec![Tid(2)]));
    }

    #[test]
    fn ad_satisfied_by_commit() {
        let mut g = DepGraph::new();
        g.form(DepType::AD, Tid(1), Tid(2)).unwrap();
        g.committed(&[Tid(1)]);
        ready_one(&g, Tid(2));
    }

    #[test]
    fn gc_forms_component_and_commits_together() {
        let mut g = DepGraph::new();
        g.form(DepType::GC, Tid(1), Tid(2)).unwrap();
        g.form(DepType::GC, Tid(2), Tid(3)).unwrap();
        assert_eq!(g.gc_component(Tid(1)), vec![Tid(1), Tid(2), Tid(3)]);
        assert_eq!(
            g.commit_gate(Tid(2)),
            CommitGate::Ready(vec![Tid(1), Tid(2), Tid(3)])
        );
        g.committed(&[Tid(1), Tid(2), Tid(3)]);
        assert_eq!(g.state(Tid(3)), TermState::Committed);
    }

    #[test]
    fn gc_abort_dooms_partners() {
        let mut g = DepGraph::new();
        g.form(DepType::GC, Tid(1), Tid(2)).unwrap();
        g.form(DepType::GC, Tid(2), Tid(3)).unwrap();
        let victims = g.aborted(Tid(2));
        assert_eq!(victims, vec![Tid(1), Tid(3)]);
        assert_eq!(g.commit_gate(Tid(1)), CommitGate::Doomed(vec![Tid(1)]));
    }

    #[test]
    fn gc_group_gated_by_external_cd() {
        let mut g = DepGraph::new();
        g.form(DepType::GC, Tid(1), Tid(2)).unwrap();
        // t2 commit-depends on outside transaction t9
        g.form(DepType::CD, Tid(9), Tid(2)).unwrap();
        assert_eq!(g.commit_gate(Tid(1)), CommitGate::WaitOn(Tid(9)));
        g.committed(&[Tid(9)]);
        assert_eq!(
            g.commit_gate(Tid(1)),
            CommitGate::Ready(vec![Tid(1), Tid(2)])
        );
    }

    #[test]
    fn intra_group_gate_edges_are_satisfied() {
        let mut g = DepGraph::new();
        g.form(DepType::GC, Tid(1), Tid(2)).unwrap();
        // an AD inside the group: satisfied by committing together
        g.form(DepType::AD, Tid(1), Tid(2)).unwrap();
        assert_eq!(
            g.commit_gate(Tid(2)),
            CommitGate::Ready(vec![Tid(1), Tid(2)])
        );
    }

    #[test]
    fn cycle_rejected() {
        let mut g = DepGraph::new();
        g.form(DepType::CD, Tid(1), Tid(2)).unwrap(); // t2 waits on t1
        let err = g.form(DepType::CD, Tid(2), Tid(1)).unwrap_err(); // t1 waits on t2
        assert!(matches!(err, AssetError::DependencyCycle { .. }));
        // longer cycle
        g.form(DepType::AD, Tid(2), Tid(3)).unwrap(); // t3 waits on t2
        let err = g.form(DepType::CD, Tid(3), Tid(1)).unwrap_err(); // t1 waits on t3
        assert!(matches!(err, AssetError::DependencyCycle { .. }));
    }

    #[test]
    fn self_dependency_rejected() {
        let mut g = DepGraph::new();
        assert!(g.form(DepType::CD, Tid(1), Tid(1)).is_err());
        assert!(g.form(DepType::GC, Tid(1), Tid(1)).is_err());
    }

    #[test]
    fn gc_cycle_is_fine() {
        let mut g = DepGraph::new();
        g.form(DepType::GC, Tid(1), Tid(2)).unwrap();
        g.form(DepType::GC, Tid(2), Tid(1)).unwrap(); // duplicate/reverse ok
        assert_eq!(g.gc_component(Tid(1)), vec![Tid(1), Tid(2)]);
    }

    #[test]
    fn ad_on_already_aborted_parent_dooms_immediately() {
        let mut g = DepGraph::new();
        g.register(Tid(1));
        g.aborted(Tid(1));
        g.form(DepType::AD, Tid(1), Tid(2)).unwrap();
        assert!(g.is_doomed(Tid(2)));
    }

    #[test]
    fn gc_with_already_aborted_partner_dooms() {
        let mut g = DepGraph::new();
        g.register(Tid(1));
        g.aborted(Tid(1));
        g.form(DepType::GC, Tid(1), Tid(2)).unwrap();
        assert!(g.is_doomed(Tid(2)));
    }

    #[test]
    fn committed_removes_edges_for_others() {
        let mut g = DepGraph::new();
        g.form(DepType::AD, Tid(1), Tid(2)).unwrap();
        g.form(DepType::CD, Tid(1), Tid(3)).unwrap();
        g.committed(&[Tid(1)]);
        assert_eq!(g.edge_count(), 0);
        ready_one(&g, Tid(2));
        ready_one(&g, Tid(3));
    }

    #[test]
    fn chain_of_ads_aborts_transitively_via_manager_iteration() {
        let mut g = DepGraph::new();
        g.form(DepType::AD, Tid(1), Tid(2)).unwrap();
        g.form(DepType::AD, Tid(2), Tid(3)).unwrap();
        // manager loop: abort t1 → victims [t2]; abort t2 → victims [t3]...
        let mut queue = g.aborted(Tid(1));
        let mut all = vec![];
        while let Some(v) = queue.pop() {
            all.push(v);
            queue.extend(g.aborted(v));
        }
        all.sort_unstable();
        assert_eq!(all, vec![Tid(2), Tid(3)]);
    }

    #[test]
    fn retire_cleans_everything() {
        let mut g = DepGraph::new();
        g.form(DepType::GC, Tid(1), Tid(2)).unwrap();
        g.form(DepType::AD, Tid(1), Tid(3)).unwrap();
        g.retire(Tid(1));
        assert_eq!(g.gc_component(Tid(2)), vec![Tid(2)]);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.state(Tid(1)), TermState::Active, "unknown again");
    }

    #[test]
    fn edge_and_link_counts() {
        let mut g = DepGraph::new();
        g.form(DepType::AD, Tid(1), Tid(2)).unwrap();
        g.form(DepType::CD, Tid(1), Tid(3)).unwrap();
        g.form(DepType::GC, Tid(4), Tid(5)).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.gc_link_count(), 1);
    }
}

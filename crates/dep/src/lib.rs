//! # asset-dep
//!
//! The transaction dependency graph of ASSET (paper §4): commit (CD), abort
//! (AD) and group-commit (GC) dependencies between transactions, with the
//! commit-gate evaluation the §4.2 `commit` protocol needs, abort
//! propagation, and cycle prevention on `form_dependency`.

#![warn(missing_docs)]

pub mod graph;
pub mod xnode;

pub use graph::{CommitGate, DepGraph, DepSummary, TermState};
pub use xnode::{CrossGroup, GlobalTid, NodeId};

//! Cross-node transaction identity for distributed commit (DESIGN.md
//! §14).
//!
//! A single node's dependency graph names transactions by [`Tid`]; a
//! coordinator spanning several nodes needs the pair — *which node* and
//! *which tid there*. A [`CrossGroup`] is the distributed analogue of a
//! GC component: the set of `(node, tid)` members that must reach one
//! outcome together. The coordinator drives one prepare/decide exchange
//! per node, so the canonical view of a group is
//! [`CrossGroup::by_node`]: the members folded into per-node tid lists.

use asset_common::Tid;
use std::collections::BTreeMap;
use std::fmt;

/// A participant node's identity within one coordinator's cluster.
///
/// Indexes into the coordinator's transport — node `k` is the `k`-th
/// participant the transport can reach. Purely local to one cluster
/// configuration; nothing durable encodes a `NodeId`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A transaction named across the cluster: the node it lives on plus
/// its tid there. Tids are only unique per node — two nodes can both
/// have a transaction 7 — so every cross-node structure keys on the
/// pair.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GlobalTid {
    /// The node the transaction runs on.
    pub node: NodeId,
    /// Its tid on that node.
    pub tid: Tid,
}

impl GlobalTid {
    /// Name `tid` on `node`.
    pub fn new(node: NodeId, tid: Tid) -> GlobalTid {
        GlobalTid { node, tid }
    }
}

impl fmt::Display for GlobalTid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.node, self.tid)
    }
}

/// The distributed analogue of a GC component: transactions on several
/// nodes that must commit or abort **as one** (DESIGN.md §14.1). The
/// coordinator prepares every member's node and delivers one decision;
/// per-node GC closure (a member's local group-commit component) is
/// computed by each participant's `prepare_group`, so a `CrossGroup`
/// needs to name only the seed transactions.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct CrossGroup {
    members: Vec<GlobalTid>,
}

impl CrossGroup {
    /// An empty group.
    pub fn new() -> CrossGroup {
        CrossGroup::default()
    }

    /// Add a member; duplicates are ignored.
    pub fn add(&mut self, member: GlobalTid) {
        if !self.members.contains(&member) {
            self.members.push(member);
        }
    }

    /// Builder-style [`add`](Self::add).
    pub fn with(mut self, node: NodeId, tid: Tid) -> CrossGroup {
        self.add(GlobalTid::new(node, tid));
        self
    }

    /// Every member, in insertion order.
    pub fn members(&self) -> &[GlobalTid] {
        &self.members
    }

    /// No members?
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The nodes that participate, each with its members' tids — the
    /// unit the coordinator sends one `PREPARE` (and later one decide)
    /// per entry. Nodes are returned in ascending id order, tids in
    /// insertion order.
    pub fn by_node(&self) -> Vec<(NodeId, Vec<Tid>)> {
        let mut map: BTreeMap<NodeId, Vec<Tid>> = BTreeMap::new();
        for m in &self.members {
            map.entry(m.node).or_default().push(m.tid);
        }
        map.into_iter().collect()
    }
}

impl FromIterator<GlobalTid> for CrossGroup {
    fn from_iter<I: IntoIterator<Item = GlobalTid>>(iter: I) -> CrossGroup {
        let mut g = CrossGroup::new();
        for m in iter {
            g.add(m);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_fold_members_per_node() {
        let g = CrossGroup::new()
            .with(NodeId(1), Tid(7))
            .with(NodeId(0), Tid(7))
            .with(NodeId(1), Tid(9))
            .with(NodeId(1), Tid(7)); // duplicate ignored
        assert_eq!(g.members().len(), 3);
        assert_eq!(
            g.by_node(),
            vec![(NodeId(0), vec![Tid(7)]), (NodeId(1), vec![Tid(7), Tid(9)]),]
        );
    }

    #[test]
    fn same_tid_on_two_nodes_is_two_members() {
        let a = GlobalTid::new(NodeId(0), Tid(3));
        let b = GlobalTid::new(NodeId(1), Tid(3));
        assert_ne!(a, b);
        let g: CrossGroup = [a, b].into_iter().collect();
        assert_eq!(g.members().len(), 2);
        assert_eq!(a.to_string(), "node0/t3");
    }
}

//! Fixed-boundary atomic histograms.
//!
//! Boundaries are `&'static [u64]` chosen at construction; recording a
//! value is a handful of relaxed atomic operations (bucket `fetch_add`,
//! running `count`/`sum`, `fetch_max` for the max) — no locks, no
//! allocation, safe inside a stripe critical section.

use std::sync::atomic::{AtomicU64, Ordering};

/// Geometric latency boundaries in nanoseconds, from sub-microsecond spins
/// to long waits. Bucket `i` counts values `v` with
/// `bounds[i-1] < v <= bounds[i]`; the final implicit bucket is overflow.
pub const LATENCY_NS_BOUNDS: &[u64] = &[
    250,
    1_000,
    4_000,
    16_000,
    64_000,
    250_000,
    1_000_000,
    4_000_000,
    16_000_000,
    64_000_000,
    250_000_000,
];

/// Power-of-two boundaries for small cardinalities (spin counts, chain
/// lengths, group sizes, undo-record counts).
pub const SMALL_COUNT_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256];

/// A concurrent histogram with fixed bucket boundaries.
#[derive(Debug)]
pub struct AtomicHistogram {
    boundaries: &'static [u64],
    /// `boundaries.len() + 1` buckets; the last is the overflow bucket.
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl AtomicHistogram {
    /// A histogram over `boundaries` (must be non-empty and strictly
    /// increasing; both are debug-asserted).
    pub fn new(boundaries: &'static [u64]) -> AtomicHistogram {
        debug_assert!(!boundaries.is_empty());
        debug_assert!(boundaries.windows(2).all(|w| w[0] < w[1]));
        let buckets = (0..=boundaries.len())
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        AtomicHistogram {
            boundaries,
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation (wait-free: four relaxed atomic RMWs).
    #[inline]
    pub fn record(&self, value: u64) {
        let idx = self.boundaries.partition_point(|b| *b < value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// The configured boundaries.
    pub fn boundaries(&self) -> &'static [u64] {
        self.boundaries
    }

    /// Copy the histogram state with relaxed loads (lock-free; totals may
    /// lag in-flight records by a few observations, never torn).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            boundaries: self.boundaries,
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of an [`AtomicHistogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Bucket boundaries (bucket `i` holds `bounds[i-1] < v <= bounds[i]`).
    pub boundaries: &'static [u64],
    /// Per-bucket counts; `boundaries.len() + 1` entries, last is overflow.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper boundary of the bucket containing the `q`-quantile
    /// (`0.0..=1.0`), or `max` for the overflow bucket. `None` when empty.
    pub fn quantile_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank.max(1) {
                return Some(self.boundaries.get(i).copied().unwrap_or(self.max));
            }
        }
        Some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_land_in_half_open_buckets() {
        let h = AtomicHistogram::new(&[10, 100, 1000]);
        // exactly on a boundary goes to that boundary's bucket (v <= bound)
        h.record(10);
        // just above a boundary goes to the next bucket
        h.record(11);
        h.record(100);
        h.record(1000);
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![1, 2, 1, 0]);
    }

    #[test]
    fn zero_lands_in_first_bucket() {
        let h = AtomicHistogram::new(&[10, 100]);
        h.record(0);
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![1, 0, 0]);
        assert_eq!(s.sum, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.count, 1);
    }

    #[test]
    fn overflow_lands_in_last_bucket() {
        let h = AtomicHistogram::new(&[10, 100]);
        h.record(101);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![0, 0, 2]);
        assert_eq!(s.max, u64::MAX);
    }

    #[test]
    fn mean_and_max_track_observations() {
        let h = AtomicHistogram::new(SMALL_COUNT_BOUNDS);
        for v in [1, 2, 3, 10] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 16);
        assert_eq!(s.max, 10);
        assert!((s.mean() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_well_defined() {
        let h = AtomicHistogram::new(LATENCY_NS_BOUNDS);
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile_bound(0.5), None);
    }

    #[test]
    fn quantile_bound_picks_covering_bucket() {
        let h = AtomicHistogram::new(&[10, 100, 1000]);
        for _ in 0..9 {
            h.record(5); // bucket 0
        }
        h.record(500); // bucket 2
        let s = h.snapshot();
        assert_eq!(s.quantile_bound(0.5), Some(10));
        assert_eq!(s.quantile_bound(1.0), Some(1000));
    }

    #[test]
    fn concurrent_records_are_not_lost() {
        let h = std::sync::Arc::new(AtomicHistogram::new(SMALL_COUNT_BOUNDS));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for v in 0..1000 {
                        h.record(v % 300);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 4000);
    }
}

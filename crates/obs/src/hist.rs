//! Fixed-boundary atomic histograms.
//!
//! Boundaries are `&'static [u64]` chosen at construction; recording a
//! value is a handful of relaxed atomic operations (bucket `fetch_add`,
//! running `count`/`sum`, `fetch_max` for the max) — no locks, no
//! allocation, safe inside a stripe critical section.

use std::sync::atomic::{AtomicU64, Ordering};

/// Geometric latency boundaries in nanoseconds, from sub-microsecond spins
/// to long waits. Bucket `i` counts values `v` with
/// `bounds[i-1] < v <= bounds[i]`; the final implicit bucket is overflow.
pub const LATENCY_NS_BOUNDS: &[u64] = &[
    250,
    1_000,
    4_000,
    16_000,
    64_000,
    250_000,
    1_000_000,
    4_000_000,
    16_000_000,
    64_000_000,
    250_000_000,
];

/// Power-of-two boundaries for small cardinalities (spin counts, chain
/// lengths, group sizes, undo-record counts).
pub const SMALL_COUNT_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256];

/// A concurrent histogram with fixed bucket boundaries.
#[derive(Debug)]
pub struct AtomicHistogram {
    boundaries: &'static [u64],
    /// `boundaries.len() + 1` buckets; the last is the overflow bucket.
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl AtomicHistogram {
    /// A histogram over `boundaries` (must be non-empty and strictly
    /// increasing; both are debug-asserted).
    pub fn new(boundaries: &'static [u64]) -> AtomicHistogram {
        debug_assert!(!boundaries.is_empty());
        debug_assert!(boundaries.windows(2).all(|w| w[0] < w[1]));
        let buckets = (0..=boundaries.len())
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        AtomicHistogram {
            boundaries,
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation (wait-free: four relaxed atomic RMWs).
    #[inline]
    pub fn record(&self, value: u64) {
        let idx = self.boundaries.partition_point(|b| *b < value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// The configured boundaries.
    pub fn boundaries(&self) -> &'static [u64] {
        self.boundaries
    }

    /// Copy the histogram state with relaxed loads (lock-free; totals may
    /// lag in-flight records by a few observations, never torn).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            boundaries: self.boundaries,
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of an [`AtomicHistogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Bucket boundaries (bucket `i` holds `bounds[i-1] < v <= bounds[i]`).
    pub boundaries: &'static [u64],
    /// Per-bucket counts; `boundaries.len() + 1` entries, last is overflow.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// An all-zero snapshot over `boundaries` — the shape a fresh
    /// [`AtomicHistogram`] would snapshot to (used by the wire decoder).
    pub fn empty(boundaries: &'static [u64]) -> HistogramSnapshot {
        HistogramSnapshot {
            boundaries,
            buckets: vec![0; boundaries.len() + 1],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper boundary of the bucket containing the `q`-quantile
    /// (`0.0..=1.0`), or `max` for the overflow bucket. `None` when empty.
    pub fn quantile_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank.max(1) {
                return Some(self.boundaries.get(i).copied().unwrap_or(self.max));
            }
        }
        Some(self.max)
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// within the bucket containing the quantile rank. The bucket's lower
    /// edge is the previous boundary (0 for the first bucket); its upper
    /// edge is its boundary, or the observed `max` for the overflow bucket.
    /// Returns `None` when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut seen = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            if *c == 0 {
                continue;
            }
            let before = seen;
            seen += c;
            if (seen as f64) >= rank {
                let lo = if i == 0 { 0 } else { self.boundaries[i - 1] };
                let hi = self.boundaries.get(i).copied().unwrap_or(self.max).max(lo);
                let frac = (rank - before as f64) / *c as f64;
                return Some(lo as f64 + (hi - lo) as f64 * frac.clamp(0.0, 1.0));
            }
        }
        Some(self.max as f64)
    }

    /// Convenience triple of interpolated `(p50, p95, p99)` estimates
    /// (all 0.0 when the histogram is empty).
    pub fn percentiles(&self) -> (f64, f64, f64) {
        (
            self.quantile(0.50).unwrap_or(0.0),
            self.quantile(0.95).unwrap_or(0.0),
            self.quantile(0.99).unwrap_or(0.0),
        )
    }

    /// The change between `self` (taken later) and `earlier`: per-bucket
    /// and total counts are subtracted (saturating, in case the snapshots
    /// raced in-flight increments). `max` keeps the later value — the
    /// atomic histogram has no per-interval maximum.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            boundaries: self.boundaries,
            buckets: self
                .buckets
                .iter()
                .zip(earlier.buckets.iter().chain(std::iter::repeat(&0)))
                .map(|(now, was)| now.saturating_sub(*was))
                .collect(),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_land_in_half_open_buckets() {
        let h = AtomicHistogram::new(&[10, 100, 1000]);
        // exactly on a boundary goes to that boundary's bucket (v <= bound)
        h.record(10);
        // just above a boundary goes to the next bucket
        h.record(11);
        h.record(100);
        h.record(1000);
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![1, 2, 1, 0]);
    }

    #[test]
    fn zero_lands_in_first_bucket() {
        let h = AtomicHistogram::new(&[10, 100]);
        h.record(0);
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![1, 0, 0]);
        assert_eq!(s.sum, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.count, 1);
    }

    #[test]
    fn overflow_lands_in_last_bucket() {
        let h = AtomicHistogram::new(&[10, 100]);
        h.record(101);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![0, 0, 2]);
        assert_eq!(s.max, u64::MAX);
    }

    #[test]
    fn mean_and_max_track_observations() {
        let h = AtomicHistogram::new(SMALL_COUNT_BOUNDS);
        for v in [1, 2, 3, 10] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 16);
        assert_eq!(s.max, 10);
        assert!((s.mean() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_well_defined() {
        let h = AtomicHistogram::new(LATENCY_NS_BOUNDS);
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile_bound(0.5), None);
    }

    #[test]
    fn quantile_bound_picks_covering_bucket() {
        let h = AtomicHistogram::new(&[10, 100, 1000]);
        for _ in 0..9 {
            h.record(5); // bucket 0
        }
        h.record(500); // bucket 2
        let s = h.snapshot();
        assert_eq!(s.quantile_bound(0.5), Some(10));
        assert_eq!(s.quantile_bound(1.0), Some(1000));
    }

    #[test]
    fn quantile_interpolates_within_the_hit_bucket() {
        let h = AtomicHistogram::new(&[10, 100, 1000]);
        for _ in 0..100 {
            h.record(50); // all in bucket 1: (10, 100]
        }
        let s = h.snapshot();
        // p50 sits halfway through the only occupied bucket: 10 + 0.5*90
        let p50 = s.quantile(0.5).unwrap();
        assert!((p50 - 55.0).abs() < 1e-9, "p50={p50}");
        let p99 = s.quantile(0.99).unwrap();
        assert!((p99 - 99.1).abs() < 1e-9, "p99={p99}");
    }

    #[test]
    fn quantile_spans_buckets_by_rank() {
        let h = AtomicHistogram::new(&[10, 100, 1000]);
        for _ in 0..90 {
            h.record(5); // bucket 0
        }
        for _ in 0..10 {
            h.record(500); // bucket 2
        }
        let s = h.snapshot();
        assert!(s.quantile(0.5).unwrap() <= 10.0);
        let p95 = s.quantile(0.95).unwrap();
        assert!((100.0..=1000.0).contains(&p95), "p95={p95}");
        let (p50, p95b, p99) = s.percentiles();
        assert!(p50 <= p95b && p95b <= p99);
    }

    #[test]
    fn quantile_overflow_bucket_caps_at_max() {
        let h = AtomicHistogram::new(&[10]);
        h.record(70);
        h.record(90);
        let s = h.snapshot();
        let p99 = s.quantile(0.99).unwrap();
        assert!(p99 <= 90.0, "overflow interpolates toward max, p99={p99}");
        assert!(p99 > 10.0);
    }

    #[test]
    fn delta_subtracts_counts_and_sums() {
        let h = AtomicHistogram::new(&[10, 100]);
        h.record(5);
        h.record(50);
        let earlier = h.snapshot();
        h.record(50);
        h.record(500);
        let now = h.snapshot();
        let d = now.delta(&earlier);
        assert_eq!(d.count, 2);
        assert_eq!(d.sum, 550);
        assert_eq!(d.buckets, vec![0, 1, 1]);
        assert_eq!(d.max, 500);
    }

    #[test]
    fn concurrent_records_are_not_lost() {
        let h = std::sync::Arc::new(AtomicHistogram::new(SMALL_COUNT_BOUNDS));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for v in 0..1000 {
                        h.record(v % 300);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 4000);
    }
}

//! Structured events and the ring-buffer recorder.
//!
//! The recorder is a fixed-capacity ring: recording takes a ticket with one
//! `fetch_add` and writes the slot under a **`try_lock`** — a single CAS
//! that never spins or blocks. If the slot is momentarily held (a writer a
//! full lap ahead, or a reader draining the trace), the event is dropped
//! and counted instead of waiting. That makes recording safe on every hot
//! path, including while a lock-table stripe mutex is held. Once the ring
//! wraps, new events overwrite the oldest — a trace always holds the most
//! recent `capacity` events.

use asset_common::{DepType, Oid, Tid};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

/// Default ring capacity when [`EventRecorder::enable`] is given 0.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// The extended-transaction model responsible for an event (paper §3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelKind {
    /// `trans { ... }` (§3.1.1).
    Atomic,
    /// Distributed transaction with group commit (§3.1.2).
    Distributed,
    /// Contingent alternatives (§3.1.3).
    Contingent,
    /// Nested transactions (§3.1.4).
    Nested,
    /// Split/join (§3.1.5).
    Split,
    /// Sagas with compensation (§3.1.6).
    Saga,
    /// Cooperating transactions (§3.2.1).
    Coop,
    /// Cursor stability (§3.2.2).
    Cursor,
    /// Workflow / long-running activities (§3.2.3).
    Workflow,
    /// Multi-level transactions (open nesting with semantic locks).
    Mlt,
}

/// Identifies a named sub-span on a transaction's track, bracketed by
/// [`EventKind::SpanOpen`]/[`EventKind::SpanClose`] pairs.
#[derive(Clone, Copy, Debug, Hash, PartialEq, Eq)]
pub enum SpanName {
    /// The commit gate: group collection, re-validation under the group
    /// lock, and the forced commit record (paper §4.1).
    CommitGate,
    /// Rollback: walking the undo chain and restoring before-images.
    Rollback,
    /// A network session transaction: opened when a wire `BEGIN` maps a
    /// connection onto a transaction, closed when that transaction
    /// reaches a terminal state (DESIGN.md §13).
    Session,
}

impl SpanName {
    /// A stable lowercase label for exporters.
    pub fn label(self) -> &'static str {
        match self {
            SpanName::CommitGate => "commit-gate",
            SpanName::Rollback => "rollback",
            SpanName::Session => "session",
        }
    }
}

/// What happened. Every variant is `Copy` (labels are `&'static str`) so
/// recording never allocates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// `initiate` created a transaction (paper §2).
    TxnInitiate {
        /// The new transaction.
        tid: Tid,
        /// Its initiator (`Tid::NULL` for top-level).
        parent: Tid,
    },
    /// `begin` started a transaction's execution.
    TxnBegin {
        /// The started transaction.
        tid: Tid,
    },
    /// A transaction (and its GC group) committed.
    TxnCommit {
        /// The transaction whose commit call succeeded.
        tid: Tid,
        /// Size of the group committed together (1 when ungrouped).
        group: u32,
    },
    /// A transaction aborted and rolled back.
    TxnAbort {
        /// The aborted transaction.
        tid: Tid,
        /// Undo records installed during rollback.
        undo_records: u32,
    },
    /// A group commit record failed to append at the commit point. The
    /// record may or may not have reached the OS; the commit path resolves
    /// the ambiguity by driving the whole group through abort, so that the
    /// in-memory outcome matches what restart recovery will reconstruct.
    CommitAmbiguous {
        /// The transaction whose commit call hit the failure.
        tid: Tid,
        /// Size of the group whose commit record failed.
        group: u32,
    },
    /// A transaction's body finished executing (before terminal processing).
    TxnComplete {
        /// The finished transaction.
        tid: Tid,
        /// Whether the body returned `Ok`.
        ok: bool,
    },
    /// A lock request blocked and was eventually granted or failed.
    LockWait {
        /// The waiting transaction.
        tid: Tid,
        /// The contended object.
        ob: Oid,
        /// Lock-table stripe the object hashed to.
        stripe: u32,
        /// Nanoseconds from first block to grant/failure.
        wait_ns: u64,
        /// Pending queue depth observed when the request first blocked.
        queue_depth: u32,
    },
    /// `delegate` moved lock responsibility (paper §2, §4.2).
    Delegate {
        /// The delegator.
        from: Tid,
        /// The delegatee.
        to: Tid,
        /// Objects whose responsibility moved.
        objects: u32,
    },
    /// `form_dependency` added an edge (paper §2, §4.1).
    DepFormed {
        /// CD, AD, or GC.
        kind: DepType,
        /// The `ti` argument.
        ti: Tid,
        /// The `tj` argument.
        tj: Tid,
    },
    /// `permit` registered a permit descriptor (paper §2, §4.2).
    PermitGrant {
        /// The transaction granting the permit.
        grantor: Tid,
        /// The permitted transaction (`Tid::NULL` for an any-transaction
        /// wildcard permit).
        grantee: Tid,
        /// Objects in the permit's scope (0 when the scope is "all").
        objects: u32,
    },
    /// A lock conflict was let through by the permit table — the causal
    /// moment a permit (or a transitive chain of permits) actually took
    /// effect (§4.2).
    PermitThrough {
        /// The holder whose conflicting lock was overridden.
        holder: Tid,
        /// The requester admitted past the conflict.
        requester: Tid,
        /// The contended object.
        ob: Oid,
        /// Permit-chain hops the check walked (1 = a direct permit).
        chain: u32,
    },
    /// A named sub-span opened on a transaction's track. Pairs with the
    /// next [`SpanClose`](EventKind::SpanClose) carrying the same `tid` and
    /// `span`.
    SpanOpen {
        /// The transaction whose track the span belongs to.
        tid: Tid,
        /// Which sub-span.
        span: SpanName,
    },
    /// The matching close for a [`SpanOpen`](EventKind::SpanOpen).
    SpanClose {
        /// The transaction whose track the span belongs to.
        tid: Tid,
        /// Which sub-span.
        span: SpanName,
    },
    /// The log drained buffered records to the OS / stable storage.
    LogFlush {
        /// Bytes handed to the OS by this drain.
        bytes: u64,
        /// Nanoseconds the drain took.
        dur_ns: u64,
    },
    /// The group-commit flusher made one flush window durable: every
    /// commit record queued in the window shares this single write+sync.
    FlushWindow {
        /// Monotonic window number (per flusher).
        window: u64,
        /// Commit records coalesced into the window.
        records: u32,
        /// Log bytes accepted while the window was assembled.
        bytes: u64,
        /// Nanoseconds from window assembly to sync completion.
        dur_ns: u64,
    },
    /// A transaction's commit record became durable as part of a flush
    /// window — the causal hand-off from the committer's track onto the
    /// shared flush lane.
    CommitFlushed {
        /// The committed transaction.
        tid: Tid,
        /// The window (matching [`FlushWindow`](EventKind::FlushWindow))
        /// that carried its commit record.
        window: u64,
    },
    /// An executor-driven transaction parked (left a worker) pending a
    /// wakeup.
    ExecPark {
        /// The parked transaction.
        tid: Tid,
        /// Why it parked: `"lock"`, `"dep"`, `"flush"`, or `"external"`
        /// (an interactive program awaiting its next request).
        reason: &'static str,
    },
    /// A cache-latch acquisition had to spin before succeeding.
    LatchSpin {
        /// Backoff rounds spent before the latch was acquired.
        spins: u32,
    },
    /// A blocked requester searched the waits-for graph for a cycle.
    DeadlockSweep {
        /// The transaction on whose behalf the sweep ran.
        tid: Tid,
        /// Whether a cycle through `tid` was found.
        cycle: bool,
    },
    /// A model-layer milestone, tagging the extended-transaction model in
    /// play (paper §3).
    Model {
        /// The model.
        model: ModelKind,
        /// The transaction involved (`Tid::NULL` when not yet assigned).
        tid: Tid,
        /// A static milestone label (e.g. `"step"`, `"compensate"`).
        label: &'static str,
    },
    /// This node sent a wire request (client→server frame or coordinator
    /// opcode) to a peer, stamped with the propagated trace context
    /// (DESIGN.md §7.2). Pairs with the peer's
    /// [`MsgRecv`](EventKind::MsgRecv) carrying the same `(root, opcode)`
    /// and, on the reply path, with this node's own
    /// [`MsgAck`](EventKind::MsgAck).
    MsgSend {
        /// The destination node id.
        node: u32,
        /// Wire opcode of the request (§13.3).
        opcode: u8,
        /// Root span id of the trace context (the gid for coordinator
        /// opcodes).
        root: u64,
    },
    /// The reply to an earlier [`MsgSend`](EventKind::MsgSend) arrived
    /// back on the sending node.
    MsgAck {
        /// The node that answered.
        node: u32,
        /// Wire opcode of the request being acknowledged.
        opcode: u8,
        /// Root span id of the trace context.
        root: u64,
    },
    /// This node received a wire request carrying a trace context.
    MsgRecv {
        /// Wire opcode of the request (§13.3).
        opcode: u8,
        /// Origin node id from the propagated trace context.
        origin: u32,
        /// Root span id from the propagated trace context.
        root: u64,
    },
    /// This node finished serving a traced wire request and is replying.
    MsgReply {
        /// Wire opcode of the request being answered.
        opcode: u8,
        /// Origin node id from the propagated trace context.
        origin: u32,
        /// Root span id from the propagated trace context.
        root: u64,
        /// Wire status byte of the reply (§13.3).
        status: u8,
    },
    /// A `Prepared` record for a distributed-commit group became durable
    /// on this participant (DESIGN.md §14.2) — the in-doubt window opens
    /// here and closes at [`DecideApplied`](EventKind::DecideApplied).
    PrepareForced {
        /// Lowest member tid of the prepared group.
        tid: Tid,
        /// Size of the prepared group.
        group: u32,
    },
    /// The coordinator's decision reached this participant and was
    /// applied, closing the in-doubt window that
    /// [`PrepareForced`](EventKind::PrepareForced) opened.
    DecideApplied {
        /// Lowest member tid of the resolved group.
        tid: Tid,
        /// `true` for a commit decision, `false` for abort.
        commit: bool,
        /// Size of the resolved group.
        group: u32,
    },
}

/// One recorded event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Global sequence number (ring ticket; gaps mean dropped events).
    pub seq: u64,
    /// Nanoseconds since the owning `Obs` was created.
    pub at_ns: u64,
    /// What happened.
    pub kind: EventKind,
}

impl std::fmt::Display for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{:08} +{}ns {:?}", self.seq, self.at_ns, self.kind)
    }
}

/// Receiver for events as they are recorded — the adapter point for an
/// external tracing subscriber (a real `tracing` integration implements
/// this in the embedding application; the crate itself stays
/// dependency-free).
#[cfg(feature = "tracing-bridge")]
pub trait EventSink: Send + Sync {
    /// Called once per recorded event, on the recording thread.
    fn on_event(&self, at_ns: u64, kind: EventKind);
}

struct Ring {
    slots: Box<[Mutex<Option<Event>>]>,
    mask: usize,
    head: AtomicU64,
}

/// The ring-buffer event recorder. Disabled by default: a disabled recorder
/// costs one relaxed atomic load per [`record`](Self::record) call.
#[derive(Default)]
pub struct EventRecorder {
    enabled: AtomicBool,
    ring: RwLock<Option<Ring>>,
    dropped: AtomicU64,
}

impl EventRecorder {
    /// A disabled recorder with no ring allocated.
    pub fn new() -> EventRecorder {
        EventRecorder::default()
    }

    /// Allocate a ring of at least `capacity` slots (rounded up to a power
    /// of two, minimum 8; 0 means [`DEFAULT_TRACE_CAPACITY`]) and start
    /// recording. Re-enabling replaces the ring and restarts sequencing.
    pub fn enable(&self, capacity: usize) {
        let cap = if capacity == 0 {
            DEFAULT_TRACE_CAPACITY
        } else {
            capacity.max(8).next_power_of_two()
        };
        let slots = (0..cap)
            .map(|_| Mutex::new(None))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let ring = Ring {
            slots,
            mask: cap - 1,
            head: AtomicU64::new(0),
        };
        let mut guard = self.ring.write().unwrap_or_else(|e| e.into_inner());
        *guard = Some(ring);
        self.enabled.store(true, Ordering::Release);
    }

    /// Stop recording. The ring is kept so [`drain`](Self::drain) can still
    /// read the trace.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Release);
    }

    /// Is the recorder currently accepting events?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Ring capacity, if a ring has been allocated.
    pub fn capacity(&self) -> Option<usize> {
        let guard = self.ring.read().unwrap_or_else(|e| e.into_inner());
        guard.as_ref().map(|r| r.slots.len())
    }

    /// Events dropped because a slot was momentarily contended.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Record an event. Never blocks: the slot is claimed with `try_lock`
    /// and the event is dropped (and counted) on contention. Returns
    /// whether the event was stored.
    pub fn record(&self, at_ns: u64, kind: EventKind) -> bool {
        if !self.is_enabled() {
            return false;
        }
        let Ok(guard) = self.ring.try_read() else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        };
        let Some(ring) = guard.as_ref() else {
            return false;
        };
        let seq = ring.head.fetch_add(1, Ordering::Relaxed);
        let slot = &ring.slots[seq as usize & ring.mask];
        let stored = match slot.try_lock() {
            Ok(mut s) => {
                *s = Some(Event { seq, at_ns, kind });
                true
            }
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                false
            }
        };
        stored
    }

    /// Copy out the surviving events, oldest first. (Events recorded while
    /// the drain holds a slot are dropped, not delayed.)
    pub fn drain(&self) -> Vec<Event> {
        let guard = self.ring.read().unwrap_or_else(|e| e.into_inner());
        let Some(ring) = guard.as_ref() else {
            return Vec::new();
        };
        let mut out: Vec<Event> = ring
            .slots
            .iter()
            .filter_map(|s| *s.lock().unwrap_or_else(|e| e.into_inner()))
            .collect();
        out.sort_unstable_by_key(|e| e.seq);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(tid: u64) -> EventKind {
        EventKind::TxnBegin { tid: Tid(tid) }
    }

    #[test]
    fn disabled_recorder_accepts_nothing() {
        let r = EventRecorder::new();
        assert!(!r.record(1, ev(1)));
        assert!(r.drain().is_empty());
        assert_eq!(r.capacity(), None);
    }

    #[test]
    fn records_in_order_until_capacity() {
        let r = EventRecorder::new();
        r.enable(8);
        for i in 0..5 {
            assert!(r.record(i, ev(i)));
        }
        let t = r.drain();
        assert_eq!(t.len(), 5);
        assert_eq!(
            t.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn wraparound_keeps_the_most_recent_capacity_events() {
        let r = EventRecorder::new();
        r.enable(8);
        for i in 0..20 {
            assert!(r.record(i, ev(i)));
        }
        let t = r.drain();
        assert_eq!(t.len(), 8, "ring holds exactly capacity");
        let seqs: Vec<u64> = t.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<_>>(), "oldest overwritten");
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let r = EventRecorder::new();
        r.enable(100);
        assert_eq!(r.capacity(), Some(128));
        let r2 = EventRecorder::new();
        r2.enable(0);
        assert_eq!(r2.capacity(), Some(DEFAULT_TRACE_CAPACITY));
    }

    #[test]
    fn disable_keeps_trace_readable() {
        let r = EventRecorder::new();
        r.enable(8);
        r.record(1, ev(1));
        r.disable();
        assert!(!r.record(2, ev(2)));
        assert_eq!(r.drain().len(), 1);
    }

    #[test]
    fn concurrent_writers_account_for_every_ticket() {
        let r = std::sync::Arc::new(EventRecorder::new());
        r.enable(1024);
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let r = std::sync::Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..2000u64 {
                        r.record(i, ev(w * 10_000 + i));
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        let trace = r.drain();
        assert!(trace.len() <= 1024);
        // every surviving slot holds a distinct ticket from the final laps
        let mut seqs: Vec<u64> = trace.iter().map(|e| e.seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), trace.len());
        assert!(seqs.iter().all(|s| *s < 8000));
        // the ring saw all 8000 tickets: the newest survivor is from the end
        assert!(seqs.last().copied().unwrap_or(0) >= 8000u64.saturating_sub(1024 + r.dropped()));
    }
}

//! The lock-free metrics snapshot.

use crate::counters::CounterSnapshot;
use crate::hist::HistogramSnapshot;

/// A point-in-time copy of every metric an [`Obs`](crate::Obs) maintains.
///
/// Assembled entirely from relaxed atomic loads — taking a snapshot never
/// blocks a recording thread. Totals may be mutually inconsistent by a few
/// in-flight increments under concurrency, never torn.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Every monotonic counter.
    pub counters: CounterSnapshot,
    /// Nanoseconds a blocked lock request spent waiting.
    pub lock_wait_ns: HistogramSnapshot,
    /// Backoff rounds spent acquiring a contended cache latch.
    pub latch_spins: HistogramSnapshot,
    /// Log append latency in nanoseconds (recorded only while tracing is
    /// enabled, to keep the default append path timer-free).
    pub log_append_ns: HistogramSnapshot,
    /// Log flush latency in nanoseconds (same gating as appends).
    pub log_flush_ns: HistogramSnapshot,
    /// Transitive permit-chain length examined per permit check.
    pub permit_chain_len: HistogramSnapshot,
    /// Transactions committed together per group commit.
    pub commit_group_size: HistogramSnapshot,
    /// Undo records rolled back per abort.
    pub undo_records: HistogramSnapshot,
    /// End-to-end `commit` latency in nanoseconds (recorded only while
    /// tracing is enabled, like the log latencies).
    pub commit_ns: HistogramSnapshot,
    /// Commit records coalesced per group-commit flush window.
    pub flush_batch_len: HistogramSnapshot,
    /// Nanoseconds a prepared distributed-commit group spent in doubt
    /// on this participant (prepare-force → decision applied, §14.2).
    pub in_doubt_ns: HistogramSnapshot,
    /// Coordinator decision latency in nanoseconds (first `Prepare` sent
    /// → decision durable).
    pub decision_ns: HistogramSnapshot,
    /// Events dropped by the ring recorder on slot contention.
    pub events_dropped: u64,
    /// Whether the event recorder was enabled when the snapshot was taken.
    pub tracing_enabled: bool,
}

impl MetricsSnapshot {
    /// An all-zero snapshot with the same shape `Obs::new().snapshot()`
    /// produces — the starting point for the wire decoder.
    pub fn empty() -> MetricsSnapshot {
        use crate::hist::{LATENCY_NS_BOUNDS, SMALL_COUNT_BOUNDS};
        MetricsSnapshot {
            counters: CounterSnapshot::default(),
            lock_wait_ns: HistogramSnapshot::empty(LATENCY_NS_BOUNDS),
            latch_spins: HistogramSnapshot::empty(SMALL_COUNT_BOUNDS),
            log_append_ns: HistogramSnapshot::empty(LATENCY_NS_BOUNDS),
            log_flush_ns: HistogramSnapshot::empty(LATENCY_NS_BOUNDS),
            permit_chain_len: HistogramSnapshot::empty(SMALL_COUNT_BOUNDS),
            commit_group_size: HistogramSnapshot::empty(SMALL_COUNT_BOUNDS),
            undo_records: HistogramSnapshot::empty(SMALL_COUNT_BOUNDS),
            commit_ns: HistogramSnapshot::empty(LATENCY_NS_BOUNDS),
            flush_batch_len: HistogramSnapshot::empty(SMALL_COUNT_BOUNDS),
            in_doubt_ns: HistogramSnapshot::empty(LATENCY_NS_BOUNDS),
            decision_ns: HistogramSnapshot::empty(LATENCY_NS_BOUNDS),
            events_dropped: 0,
            tracing_enabled: false,
        }
    }

    /// Mutable access to the histogram named `name` (the inverse of
    /// [`histograms`](Self::histograms), used by the wire decoder).
    /// `None` for unknown names, which decoders skip, not fail.
    pub fn histogram_mut(&mut self, name: &str) -> Option<&mut HistogramSnapshot> {
        Some(match name {
            "lock_wait_ns" => &mut self.lock_wait_ns,
            "latch_spins" => &mut self.latch_spins,
            "log_append_ns" => &mut self.log_append_ns,
            "log_flush_ns" => &mut self.log_flush_ns,
            "permit_chain_len" => &mut self.permit_chain_len,
            "commit_group_size" => &mut self.commit_group_size,
            "undo_records" => &mut self.undo_records,
            "commit_ns" => &mut self.commit_ns,
            "flush_batch_len" => &mut self.flush_batch_len,
            "in_doubt_ns" => &mut self.in_doubt_ns,
            "decision_ns" => &mut self.decision_ns,
            _ => return None,
        })
    }

    /// A compact multi-line textual rendering (one `name value` pair per
    /// line for counters, then one summary line per histogram) — handy for
    /// dumping next to experiment output.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        self.counters.for_each(|name, v| {
            let _ = writeln!(s, "{name} {v}");
        });
        let _ = writeln!(s, "events_dropped {}", self.events_dropped);
        for (name, h) in self.histograms() {
            let _ = writeln!(
                s,
                "{name} count={} mean={:.1} max={}",
                h.count,
                h.mean(),
                h.max
            );
        }
        s
    }

    /// Every histogram as a `(name, snapshot)` pair, in declaration order —
    /// the registry exporters iterate (mirrors
    /// [`CounterSnapshot::for_each`]).
    pub fn histograms(&self) -> [(&'static str, &HistogramSnapshot); 11] {
        [
            ("lock_wait_ns", &self.lock_wait_ns),
            ("latch_spins", &self.latch_spins),
            ("log_append_ns", &self.log_append_ns),
            ("log_flush_ns", &self.log_flush_ns),
            ("permit_chain_len", &self.permit_chain_len),
            ("commit_group_size", &self.commit_group_size),
            ("undo_records", &self.undo_records),
            ("commit_ns", &self.commit_ns),
            ("flush_batch_len", &self.flush_batch_len),
            ("in_doubt_ns", &self.in_doubt_ns),
            ("decision_ns", &self.decision_ns),
        ]
    }

    /// The change between `self` (taken later) and `earlier`: counters and
    /// histograms are subtracted field-by-field (saturating), so an
    /// experiment can report exactly what one run contributed without
    /// ad-hoc subtraction at every call site. `tracing_enabled` keeps the
    /// later value; histogram `max` fields keep the later (whole-run)
    /// maximum.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.delta(&earlier.counters),
            lock_wait_ns: self.lock_wait_ns.delta(&earlier.lock_wait_ns),
            latch_spins: self.latch_spins.delta(&earlier.latch_spins),
            log_append_ns: self.log_append_ns.delta(&earlier.log_append_ns),
            log_flush_ns: self.log_flush_ns.delta(&earlier.log_flush_ns),
            permit_chain_len: self.permit_chain_len.delta(&earlier.permit_chain_len),
            commit_group_size: self.commit_group_size.delta(&earlier.commit_group_size),
            undo_records: self.undo_records.delta(&earlier.undo_records),
            commit_ns: self.commit_ns.delta(&earlier.commit_ns),
            flush_batch_len: self.flush_batch_len.delta(&earlier.flush_batch_len),
            in_doubt_ns: self.in_doubt_ns.delta(&earlier.in_doubt_ns),
            decision_ns: self.decision_ns.delta(&earlier.decision_ns),
            events_dropped: self.events_dropped.saturating_sub(earlier.events_dropped),
            tracing_enabled: self.tracing_enabled,
        }
    }
}

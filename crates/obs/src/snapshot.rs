//! The lock-free metrics snapshot.

use crate::counters::CounterSnapshot;
use crate::hist::HistogramSnapshot;

/// A point-in-time copy of every metric an [`Obs`](crate::Obs) maintains.
///
/// Assembled entirely from relaxed atomic loads — taking a snapshot never
/// blocks a recording thread. Totals may be mutually inconsistent by a few
/// in-flight increments under concurrency, never torn.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Every monotonic counter.
    pub counters: CounterSnapshot,
    /// Nanoseconds a blocked lock request spent waiting.
    pub lock_wait_ns: HistogramSnapshot,
    /// Backoff rounds spent acquiring a contended cache latch.
    pub latch_spins: HistogramSnapshot,
    /// Log append latency in nanoseconds (recorded only while tracing is
    /// enabled, to keep the default append path timer-free).
    pub log_append_ns: HistogramSnapshot,
    /// Log flush latency in nanoseconds (same gating as appends).
    pub log_flush_ns: HistogramSnapshot,
    /// Transitive permit-chain length examined per permit check.
    pub permit_chain_len: HistogramSnapshot,
    /// Transactions committed together per group commit.
    pub commit_group_size: HistogramSnapshot,
    /// Undo records rolled back per abort.
    pub undo_records: HistogramSnapshot,
    /// Events dropped by the ring recorder on slot contention.
    pub events_dropped: u64,
    /// Whether the event recorder was enabled when the snapshot was taken.
    pub tracing_enabled: bool,
}

impl MetricsSnapshot {
    /// A compact multi-line textual rendering (one `name value` pair per
    /// line for counters, then one summary line per histogram) — handy for
    /// dumping next to experiment output.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let c = &self.counters;
        let mut s = String::new();
        let pairs: &[(&str, u64)] = &[
            ("txn_initiated", c.txn_initiated),
            ("txn_begun", c.txn_begun),
            ("txn_committed", c.txn_committed),
            ("txn_aborted", c.txn_aborted),
            ("lock_waits", c.lock_waits),
            ("lock_grants", c.lock_grants),
            ("deadlock_sweeps", c.deadlock_sweeps),
            ("deadlocks", c.deadlocks),
            ("permit_checks", c.permit_checks),
            ("delegations", c.delegations),
            ("delegated_objects", c.delegated_objects),
            ("dep_edges_formed", c.dep_edges_formed),
            ("dep_edges_resolved", c.dep_edges_resolved),
            ("cache_hits", c.cache_hits),
            ("cache_misses", c.cache_misses),
            ("latch_acquires", c.latch_acquires),
            ("latch_contended", c.latch_contended),
            ("log_appends", c.log_appends),
            ("log_flushes", c.log_flushes),
            ("log_coalesced", c.log_coalesced),
            ("events_recorded", c.events_recorded),
            ("events_dropped", self.events_dropped),
        ];
        for (name, v) in pairs {
            let _ = writeln!(s, "{name} {v}");
        }
        let hists: &[(&str, &HistogramSnapshot)] = &[
            ("lock_wait_ns", &self.lock_wait_ns),
            ("latch_spins", &self.latch_spins),
            ("log_append_ns", &self.log_append_ns),
            ("log_flush_ns", &self.log_flush_ns),
            ("permit_chain_len", &self.permit_chain_len),
            ("commit_group_size", &self.commit_group_size),
            ("undo_records", &self.undo_records),
        ];
        for (name, h) in hists {
            let _ = writeln!(
                s,
                "{name} count={} mean={:.1} max={}",
                h.count,
                h.mean(),
                h.max
            );
        }
        s
    }
}

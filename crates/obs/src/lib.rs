//! # asset-obs
//!
//! Observability for the ASSET workspace: monotonic [`Counters`], fixed-
//! boundary [`AtomicHistogram`]s, and a ring-buffer [`EventRecorder`] for
//! structured transaction-lifecycle traces — with no dependencies beyond
//! `asset-common`.
//!
//! The paper's §4 implementation notes hinge on behavior that is invisible
//! from the outside: latch spins, lock-wait queues, permit-check chains,
//! delegation transfers, log flushes. One [`Obs`] instance per database (or
//! per standalone lock table / storage engine) makes those observable:
//!
//! * **Counters** are always on — each is a single relaxed `fetch_add`.
//! * **Histograms** are always on for slow paths (lock waits, latch spins)
//!   and gated on [`Obs::tracing_enabled`] where timing itself would cost
//!   (log append latency).
//! * **Events** go to a ring buffer that is off by default; a disabled
//!   recorder costs one relaxed load per call site.
//!
//! The cardinal rule, enforced by construction: **recording never blocks a
//! hot path.** Counters and histograms are plain atomics; the event ring
//! claims its slot with a `try_lock` (one CAS) and drops the event rather
//! than wait. It is therefore safe to record while holding a lock-table
//! stripe mutex or a cache latch.
//!
//! ```
//! use asset_obs::{Obs, EventKind};
//! use asset_common::Tid;
//!
//! let obs = Obs::new();
//! obs.enable_tracing(1024);
//! obs.record(EventKind::TxnBegin { tid: Tid(7) });
//! let snap = obs.snapshot();
//! assert_eq!(snap.counters.events_recorded, 1);
//! assert_eq!(obs.trace().len(), 1);
//! ```

#![warn(missing_docs)]

mod counters;
mod event;
mod hist;
mod snapshot;
pub mod wire;

pub use counters::{add, bump, CounterSnapshot, Counters};
#[cfg(feature = "tracing-bridge")]
pub use event::EventSink;
pub use event::{Event, EventKind, EventRecorder, ModelKind, SpanName, DEFAULT_TRACE_CAPACITY};
pub use hist::{AtomicHistogram, HistogramSnapshot, LATENCY_NS_BOUNDS, SMALL_COUNT_BOUNDS};
pub use snapshot::MetricsSnapshot;

use std::sync::Arc;
use std::time::Instant;

/// The compact cross-node trace context propagated on wire frames and
/// coordinator messages (DESIGN.md §7.2, §13.1): which node originated
/// the distributed operation and which root span (the gid, for
/// distributed commit) it belongs to. Twelve bytes on the wire, `Copy`
/// in memory — cheap enough to stamp on every message.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceCtx {
    /// Originating node id (coordinator or client-assigned).
    pub origin: u32,
    /// Root span id tying every hop of the operation together.
    pub root: u64,
}

impl TraceCtx {
    /// Encoded size on the wire.
    pub const WIRE_LEN: usize = 12;

    /// The wire encoding: `origin` then `root`, little-endian.
    pub fn to_bytes(self) -> [u8; Self::WIRE_LEN] {
        let mut b = [0u8; Self::WIRE_LEN];
        b[..4].copy_from_slice(&self.origin.to_le_bytes());
        b[4..].copy_from_slice(&self.root.to_le_bytes());
        b
    }

    /// Decode a wire trace context; `None` if `b` is too short.
    pub fn from_bytes(b: &[u8]) -> Option<TraceCtx> {
        if b.len() < Self::WIRE_LEN {
            return None;
        }
        Some(TraceCtx {
            origin: u32::from_le_bytes([b[0], b[1], b[2], b[3]]),
            root: u64::from_le_bytes([b[4], b[5], b[6], b[7], b[8], b[9], b[10], b[11]]),
        })
    }
}

/// The observability hub: one per database (or per standalone component).
///
/// Shared as an `Arc<Obs>` by every layer of the stack; all members are
/// individually thread-safe, so no lock guards the hub itself.
pub struct Obs {
    /// Monotonic event counters (always on).
    pub counters: Counters,
    /// Nanoseconds a blocked lock request spent waiting.
    pub lock_wait_ns: AtomicHistogram,
    /// Backoff rounds spent acquiring a contended cache latch.
    pub latch_spins: AtomicHistogram,
    /// Log append latency (recorded only while tracing is enabled).
    pub log_append_ns: AtomicHistogram,
    /// Log flush latency (same gating).
    pub log_flush_ns: AtomicHistogram,
    /// Transitive permit-chain length examined per permit check.
    pub permit_chain_len: AtomicHistogram,
    /// Transactions committed together per group commit.
    pub commit_group_size: AtomicHistogram,
    /// Undo records rolled back per abort.
    pub undo_records: AtomicHistogram,
    /// End-to-end `commit` latency (recorded only while tracing is
    /// enabled).
    pub commit_ns: AtomicHistogram,
    /// Commit records coalesced per group-commit flush window.
    pub flush_batch_len: AtomicHistogram,
    /// Nanoseconds a prepared distributed-commit group spent in doubt on
    /// this participant: from the forced `Prepared` record to the
    /// coordinator's decision being applied (DESIGN.md §14.2).
    pub in_doubt_ns: AtomicHistogram,
    /// Coordinator-side decision latency in nanoseconds: from the first
    /// `Prepare` sent to the decision becoming durable (log force or
    /// acceptor quorum).
    pub decision_ns: AtomicHistogram,
    recorder: EventRecorder,
    epoch: Instant,
    #[cfg(feature = "tracing-bridge")]
    sink: std::sync::RwLock<Option<Box<dyn EventSink>>>,
}

impl Default for Obs {
    fn default() -> Obs {
        Obs::new()
    }
}

impl Obs {
    /// A fresh hub with all counters zero and the event recorder disabled.
    pub fn new() -> Obs {
        Obs {
            counters: Counters::default(),
            lock_wait_ns: AtomicHistogram::new(LATENCY_NS_BOUNDS),
            latch_spins: AtomicHistogram::new(SMALL_COUNT_BOUNDS),
            log_append_ns: AtomicHistogram::new(LATENCY_NS_BOUNDS),
            log_flush_ns: AtomicHistogram::new(LATENCY_NS_BOUNDS),
            permit_chain_len: AtomicHistogram::new(SMALL_COUNT_BOUNDS),
            commit_group_size: AtomicHistogram::new(SMALL_COUNT_BOUNDS),
            undo_records: AtomicHistogram::new(SMALL_COUNT_BOUNDS),
            commit_ns: AtomicHistogram::new(LATENCY_NS_BOUNDS),
            flush_batch_len: AtomicHistogram::new(SMALL_COUNT_BOUNDS),
            in_doubt_ns: AtomicHistogram::new(LATENCY_NS_BOUNDS),
            decision_ns: AtomicHistogram::new(LATENCY_NS_BOUNDS),
            recorder: EventRecorder::new(),
            epoch: Instant::now(),
            #[cfg(feature = "tracing-bridge")]
            sink: std::sync::RwLock::new(None),
        }
    }

    /// A fresh hub already wrapped in an [`Arc`] for sharing.
    pub fn shared() -> Arc<Obs> {
        Arc::new(Obs::new())
    }

    /// Nanoseconds since this hub was created (the timebase of every
    /// recorded event).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Is the event recorder (and gated latency timing) on?
    #[inline]
    pub fn tracing_enabled(&self) -> bool {
        self.recorder.is_enabled()
    }

    /// Allocate the event ring (`capacity` slots, rounded up to a power of
    /// two; 0 means [`DEFAULT_TRACE_CAPACITY`]) and start recording events
    /// and gated latencies.
    pub fn enable_tracing(&self, capacity: usize) {
        self.recorder.enable(capacity);
    }

    /// Stop recording events. The captured trace stays readable.
    pub fn disable_tracing(&self) {
        self.recorder.disable();
    }

    /// Record a structured event, stamped with [`now_ns`](Self::now_ns).
    /// A no-op (one relaxed load) while tracing is disabled.
    pub fn record(&self, kind: EventKind) {
        #[cfg(feature = "tracing-bridge")]
        {
            if let Ok(guard) = self.sink.try_read() {
                if let Some(sink) = guard.as_ref() {
                    sink.on_event(self.now_ns(), kind);
                }
            }
        }
        if !self.recorder.is_enabled() {
            return;
        }
        if self.recorder.record(self.now_ns(), kind) {
            bump(&self.counters.events_recorded);
        }
    }

    /// Install (or clear) the bridge sink that observes every recorded
    /// event, independent of the ring buffer.
    #[cfg(feature = "tracing-bridge")]
    pub fn set_sink(&self, sink: Option<Box<dyn EventSink>>) {
        let mut guard = self.sink.write().unwrap_or_else(|e| e.into_inner());
        *guard = sink;
    }

    /// The captured event trace, oldest surviving event first.
    pub fn trace(&self) -> Vec<Event> {
        self.recorder.drain()
    }

    /// Write the trace, one event per line, to `w`. Returns the number of
    /// events written.
    pub fn write_trace<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<usize> {
        let events = self.trace();
        for e in &events {
            writeln!(w, "{e}")?;
        }
        Ok(events.len())
    }

    /// A lock-free point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.snapshot(),
            lock_wait_ns: self.lock_wait_ns.snapshot(),
            latch_spins: self.latch_spins.snapshot(),
            log_append_ns: self.log_append_ns.snapshot(),
            log_flush_ns: self.log_flush_ns.snapshot(),
            permit_chain_len: self.permit_chain_len.snapshot(),
            commit_group_size: self.commit_group_size.snapshot(),
            undo_records: self.undo_records.snapshot(),
            commit_ns: self.commit_ns.snapshot(),
            flush_batch_len: self.flush_batch_len.snapshot(),
            in_doubt_ns: self.in_doubt_ns.snapshot(),
            decision_ns: self.decision_ns.snapshot(),
            events_dropped: self.recorder.dropped(),
            tracing_enabled: self.recorder.is_enabled(),
        }
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("tracing_enabled", &self.tracing_enabled())
            .field("counters", &self.counters)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asset_common::Tid;

    #[test]
    fn disabled_recorder_records_nothing() {
        let obs = Obs::new();
        obs.record(EventKind::TxnBegin { tid: Tid(1) });
        assert_eq!(obs.snapshot().counters.events_recorded, 0);
        assert!(obs.trace().is_empty());
    }

    #[test]
    fn enabled_recorder_captures_and_counts() {
        let obs = Obs::new();
        obs.enable_tracing(16);
        obs.record(EventKind::TxnBegin { tid: Tid(1) });
        obs.record(EventKind::TxnCommit {
            tid: Tid(1),
            group: 1,
        });
        let snap = obs.snapshot();
        assert_eq!(snap.counters.events_recorded, 2);
        assert!(snap.tracing_enabled);
        let trace = obs.trace();
        assert_eq!(trace.len(), 2);
        assert!(trace[0].at_ns <= trace[1].at_ns);
    }

    #[test]
    fn write_trace_emits_one_line_per_event() {
        let obs = Obs::new();
        obs.enable_tracing(16);
        obs.record(EventKind::DeadlockSweep {
            tid: Tid(3),
            cycle: false,
        });
        let mut buf = Vec::new();
        let n = obs.write_trace(&mut buf).unwrap();
        assert_eq!(n, 1);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("DeadlockSweep"));
        assert_eq!(text.lines().count(), 1);
    }

    #[test]
    fn snapshot_render_mentions_every_counter_block() {
        let obs = Obs::new();
        bump(&obs.counters.cache_hits);
        let text = obs.snapshot().render();
        assert!(text.contains("cache_hits 1"));
        assert!(text.contains("lock_wait_ns count=0"));
    }
}

//! Versioned wire encoding of a [`MetricsSnapshot`] — the body of the
//! `STATS` reply (DESIGN.md §13.3).
//!
//! The format is **self-describing**: counters and histograms travel as
//! `(name, value)` pairs driven by the [`CounterSnapshot::for_each`] /
//! [`MetricsSnapshot::histograms`] registries, so a snapshot encoded by
//! a newer server decodes on an older client (unknown names are
//! skipped) and a new counter can never be silently missing from the
//! wire. All integers are little-endian.
//!
//! ```text
//! u8   version (SNAPSHOT_WIRE_VERSION)
//! u32  counter count
//!      per counter:   u8 name len | name bytes | u64 value
//! u32  histogram count
//!      per histogram: u8 name len | name bytes
//!                     u32 boundary count | boundaries ×u64
//!                     buckets ×u64 (boundary count + 1)
//!                     u64 count | u64 sum | u64 max
//! u64  events_dropped
//! u8   tracing_enabled (0/1)
//! ```
//!
//! Histogram boundaries are transmitted, then matched against the two
//! static boundary sets ([`LATENCY_NS_BOUNDS`], [`SMALL_COUNT_BOUNDS`])
//! on decode — a histogram with unrecognized boundaries is consumed and
//! skipped rather than failing the whole snapshot.

use crate::hist::{HistogramSnapshot, LATENCY_NS_BOUNDS, SMALL_COUNT_BOUNDS};
use crate::snapshot::MetricsSnapshot;

/// Current snapshot wire-format version (the body's leading byte).
pub const SNAPSHOT_WIRE_VERSION: u8 = 1;

/// Encode `snap` in the versioned wire format.
pub fn encode_snapshot(snap: &MetricsSnapshot) -> Vec<u8> {
    let mut out = Vec::with_capacity(2048);
    out.push(SNAPSHOT_WIRE_VERSION);
    let mut n_counters = 0u32;
    snap.counters.for_each(|_, _| n_counters += 1);
    out.extend_from_slice(&n_counters.to_le_bytes());
    snap.counters.for_each(|name, v| {
        put_name(&mut out, name);
        out.extend_from_slice(&v.to_le_bytes());
    });
    let hists = snap.histograms();
    out.extend_from_slice(&(hists.len() as u32).to_le_bytes());
    for (name, h) in hists {
        put_name(&mut out, name);
        out.extend_from_slice(&(h.boundaries.len() as u32).to_le_bytes());
        for b in h.boundaries {
            out.extend_from_slice(&b.to_le_bytes());
        }
        for i in 0..=h.boundaries.len() {
            let v = h.buckets.get(i).copied().unwrap_or(0);
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&h.count.to_le_bytes());
        out.extend_from_slice(&h.sum.to_le_bytes());
        out.extend_from_slice(&h.max.to_le_bytes());
    }
    out.extend_from_slice(&snap.events_dropped.to_le_bytes());
    out.push(snap.tracing_enabled as u8);
    out
}

/// Decode a snapshot encoded by [`encode_snapshot`]. `None` on a
/// truncated body or an unknown format version; names this build does
/// not know are skipped, not errors.
pub fn decode_snapshot(body: &[u8]) -> Option<MetricsSnapshot> {
    let mut r = Reader { buf: body, pos: 0 };
    if r.u8()? != SNAPSHOT_WIRE_VERSION {
        return None;
    }
    let mut snap = MetricsSnapshot::empty();
    let n_counters = r.u32()?;
    for _ in 0..n_counters {
        let name = r.name()?;
        let value = r.u64()?;
        // unknown counters (newer peer) are dropped on the floor
        let _ = snap.counters.set(&name, value);
    }
    let n_hists = r.u32()?;
    for _ in 0..n_hists {
        let name = r.name()?;
        let n_bounds = r.u32()? as usize;
        // cap wildly-wrong counts before allocating (a histogram has a
        // handful of boundaries, never thousands)
        if n_bounds > 1024 {
            return None;
        }
        let mut bounds = Vec::with_capacity(n_bounds);
        for _ in 0..n_bounds {
            bounds.push(r.u64()?);
        }
        let mut buckets = Vec::with_capacity(n_bounds + 1);
        for _ in 0..=n_bounds {
            buckets.push(r.u64()?);
        }
        let (count, sum, max) = (r.u64()?, r.u64()?, r.u64()?);
        let boundaries: &'static [u64] = if bounds == LATENCY_NS_BOUNDS {
            LATENCY_NS_BOUNDS
        } else if bounds == SMALL_COUNT_BOUNDS {
            SMALL_COUNT_BOUNDS
        } else {
            continue; // consumed but unknown boundary set: skip
        };
        if let Some(slot) = snap.histogram_mut(&name) {
            *slot = HistogramSnapshot {
                boundaries,
                buckets,
                count,
                sum,
                max,
            };
        }
    }
    snap.events_dropped = r.u64()?;
    snap.tracing_enabled = r.u8()? != 0;
    Some(snap)
}

fn put_name(out: &mut Vec<u8>, name: &str) {
    debug_assert!(name.len() <= u8::MAX as usize);
    out.push(name.len() as u8);
    out.extend_from_slice(name.as_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Option<&[u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }

    fn name(&mut self) -> Option<String> {
        let len = self.u8()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{add, bump, EventKind, Obs};
    use asset_common::Tid;

    #[test]
    fn snapshot_round_trips_counters_histograms_and_flags() {
        let obs = Obs::new();
        obs.enable_tracing(16);
        bump(&obs.counters.txn_committed);
        add(&obs.counters.server_requests, 41);
        bump(&obs.counters.coord_msg_prepare);
        obs.lock_wait_ns.record(12_345);
        obs.in_doubt_ns.record(9_000_000);
        obs.commit_group_size.record(3);
        obs.record(EventKind::TxnBegin { tid: Tid(1) });
        let snap = obs.snapshot();
        let decoded = decode_snapshot(&encode_snapshot(&snap)).expect("decodes");
        assert_eq!(decoded.counters, snap.counters);
        assert_eq!(decoded.lock_wait_ns, snap.lock_wait_ns);
        assert_eq!(decoded.in_doubt_ns, snap.in_doubt_ns);
        assert_eq!(decoded.commit_group_size, snap.commit_group_size);
        assert_eq!(decoded.events_dropped, snap.events_dropped);
        assert_eq!(decoded.tracing_enabled, snap.tracing_enabled);
    }

    #[test]
    fn truncated_and_wrong_version_bodies_are_rejected() {
        let snap = Obs::new().snapshot();
        let enc = encode_snapshot(&snap);
        assert!(decode_snapshot(&enc[..enc.len() - 1]).is_none());
        assert!(decode_snapshot(&[]).is_none());
        let mut wrong = enc.clone();
        wrong[0] = 99;
        assert!(decode_snapshot(&wrong).is_none());
    }

    #[test]
    fn unknown_counter_names_are_skipped_not_fatal() {
        // splice a bogus counter in front: version, count=1, "nope"=7,
        // zero histograms, dropped=0, tracing=0
        let mut body = vec![SNAPSHOT_WIRE_VERSION];
        body.extend_from_slice(&1u32.to_le_bytes());
        body.push(4);
        body.extend_from_slice(b"nope");
        body.extend_from_slice(&7u64.to_le_bytes());
        body.extend_from_slice(&0u32.to_le_bytes());
        body.extend_from_slice(&0u64.to_le_bytes());
        body.push(0);
        let snap = decode_snapshot(&body).expect("decodes");
        assert_eq!(snap.counters.txn_committed, 0);
    }

    #[test]
    fn trace_ctx_round_trips() {
        let ctx = crate::TraceCtx {
            origin: 0xC0FFEE,
            root: 42,
        };
        assert_eq!(crate::TraceCtx::from_bytes(&ctx.to_bytes()), Some(ctx));
        assert_eq!(crate::TraceCtx::from_bytes(&[0; 11]), None);
    }
}

//! Monotonic event counters.
//!
//! A [`Counters`] is a flat struct of relaxed [`AtomicU64`]s — one per
//! countable event in the system. Incrementing one is a single relaxed
//! `fetch_add`: safe on any hot path, including inside a lock-stripe
//! critical section (no lock is taken, no allocation happens).

use std::sync::atomic::{AtomicU64, Ordering};

/// Increment `c` by one (relaxed).
#[inline]
pub fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

/// Increment `c` by `n` (relaxed).
#[inline]
pub fn add(c: &AtomicU64, n: u64) {
    c.fetch_add(n, Ordering::Relaxed);
}

macro_rules! define_counters {
    ($($(#[$doc:meta])* $name:ident),* $(,)?) => {
        /// Every monotonic counter the system maintains.
        ///
        /// Fields are public so instrumentation sites can increment them
        /// directly via [`bump`]/[`add`] without a method call per counter.
        #[derive(Default, Debug)]
        pub struct Counters {
            $($(#[$doc])* pub $name: AtomicU64,)*
        }

        /// A point-in-time copy of every counter (relaxed loads; totals may
        /// be mutually inconsistent by a few in-flight increments under
        /// concurrency, never torn).
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
        pub struct CounterSnapshot {
            $($(#[$doc])* pub $name: u64,)*
        }

        impl Counters {
            /// Snapshot every counter with relaxed loads (lock-free).
            pub fn snapshot(&self) -> CounterSnapshot {
                CounterSnapshot {
                    $($name: self.$name.load(Ordering::Relaxed),)*
                }
            }
        }

        impl CounterSnapshot {
            /// Per-counter change between `self` (taken later) and
            /// `earlier` (saturating, in case the snapshots raced
            /// in-flight increments).
            pub fn delta(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
                CounterSnapshot {
                    $($name: self.$name.saturating_sub(earlier.$name),)*
                }
            }

            /// Visit every counter as a `(name, value)` pair, in
            /// declaration order — the single registry exporters iterate
            /// so a new counter can never be silently missing from one.
            pub fn for_each(&self, mut f: impl FnMut(&'static str, u64)) {
                $(f(stringify!($name), self.$name);)*
            }

            /// Set the counter named `name` (the inverse of
            /// [`for_each`](Self::for_each), used by the wire decoder).
            /// Returns `false` for an unknown name — a peer speaking a
            /// newer snapshot revision — which callers skip, not fail.
            pub fn set(&mut self, name: &str, value: u64) -> bool {
                match name {
                    $(stringify!($name) => {
                        self.$name = value;
                        true
                    })*
                    _ => false,
                }
            }
        }
    };
}

define_counters! {
    /// Transactions created via `initiate` (paper §2).
    txn_initiated,
    /// Transactions started via `begin`.
    txn_begun,
    /// Transactions committed (each member of a group commit counts once).
    txn_committed,
    /// Transactions aborted.
    txn_aborted,
    /// Commit attempts whose group commit record failed to append — the
    /// ambiguous outcome (the record may or may not be durable) that the
    /// commit path resolves by driving the group through abort.
    commit_log_failures,
    /// Lock requests that blocked at least once before being granted or
    /// failing.
    lock_waits,
    /// Lock requests granted.
    lock_grants,
    /// Waits-for-graph cycle searches performed by blocked requesters
    /// (the paper's deadlock check on suspension).
    deadlock_sweeps,
    /// Deadlocks detected (requests aborted as victims).
    deadlocks,
    /// Permit-table consultations during lock conflict resolution (§4.2).
    permit_checks,
    /// `delegate` calls that moved at least the responsibility record.
    delegations,
    /// Objects whose lock responsibility moved in a delegation.
    delegated_objects,
    /// CD/AD/GC edges added to the dependency graph via `form_dependency`.
    dep_edges_formed,
    /// CD/AD edges dropped when their transactions terminated.
    dep_edges_resolved,
    /// Shared-cache lookups that found the object resident.
    cache_hits,
    /// Shared-cache lookups that faulted the object in from the store.
    cache_misses,
    /// Latch acquisitions (S or X) in the shared cache.
    latch_acquires,
    /// Latch acquisitions that had to spin at least once.
    latch_contended,
    /// Log records appended.
    log_appends,
    /// Log drains to the OS / stable storage (watermark, force, or flush).
    log_flushes,
    /// Buffered appends that coalesced (stayed in user space; no write
    /// syscall issued).
    log_coalesced,
    /// Flush windows the group-commit flusher made durable (each covers
    /// one or more commit records under a single forced sync).
    flush_windows,
    /// State-machine steps executed by the transaction executor's worker
    /// pool.
    exec_steps,
    /// Executor transactions parked on a lock, dependency, or flush wait.
    exec_parks,
    /// Executor transactions re-enqueued onto a run queue after a wakeup.
    exec_requeues,
    /// Events accepted by the ring-buffer recorder.
    events_recorded,
    /// Network connections accepted by `asset-server`.
    server_connections,
    /// Wire requests decoded and dispatched by `asset-server` sessions.
    server_requests,
    /// Wire frames rejected as malformed (bad version, opcode, or body).
    server_protocol_errors,
    /// Transactions begun over the wire (`BEGIN` requests that admitted
    /// a session transaction).
    session_txns,
    /// Session drains (disconnect, shutdown, failed prepare) that found
    /// a transaction in the `CommitAmbiguous` state: its commit record
    /// may or may not be durable (§13.4). Nonzero means an operator or
    /// recovery pass must resolve the fate from the log.
    session_drain_ambiguous,
    /// Compensating deletes of a failed MINT's already-committed chunks
    /// that themselves failed, leaving funded orphan objects behind.
    /// Nonzero means a conservation audit needs a manual sweep.
    mint_rollback_failures,
    /// `PREPARE` (`0x40`) messages sent by a coordinator through its
    /// transport (DESIGN.md §14.1).
    coord_msg_prepare,
    /// `PREPARED` state queries (`0x41`) sent by a coordinator.
    coord_msg_prepared,
    /// `COMMIT_DECIDE` (`0x42`) messages sent by a coordinator.
    coord_msg_commit_decide,
    /// `ABORT_DECIDE` (`0x43`) messages sent by a coordinator.
    coord_msg_abort_decide,
    /// Wire frames received that carried a propagated trace context
    /// (version `0x02` frames, DESIGN.md §13.1).
    server_traced_frames,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_add_show_up_in_snapshot() {
        let c = Counters::default();
        bump(&c.txn_initiated);
        bump(&c.txn_initiated);
        add(&c.delegated_objects, 7);
        let s = c.snapshot();
        assert_eq!(s.txn_initiated, 2);
        assert_eq!(s.delegated_objects, 7);
        assert_eq!(s.txn_committed, 0);
    }

    #[test]
    fn delta_subtracts_per_counter() {
        let c = Counters::default();
        bump(&c.lock_grants);
        let earlier = c.snapshot();
        bump(&c.lock_grants);
        add(&c.log_appends, 3);
        let d = c.snapshot().delta(&earlier);
        assert_eq!(d.lock_grants, 1);
        assert_eq!(d.log_appends, 3);
        assert_eq!(d.txn_initiated, 0);
    }

    #[test]
    fn for_each_visits_every_counter_once() {
        let c = Counters::default();
        bump(&c.cache_hits);
        let mut names = Vec::new();
        let mut total = 0;
        c.snapshot().for_each(|name, v| {
            names.push(name);
            total += v;
        });
        assert!(names.contains(&"cache_hits"));
        assert!(names.contains(&"events_recorded"));
        assert_eq!(total, 1);
        let mut uniq = names.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), names.len());
    }
}

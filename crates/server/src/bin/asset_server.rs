//! Standalone ASSET server binary.
//!
//! ```text
//! asset-server [--addr HOST:PORT] [--dir PATH] [--workers N]
//!
//!   --addr     listen address          (default 127.0.0.1:4994)
//!   --dir      durable database dir    (default: in-memory)
//!   --workers  executor worker threads (default 0 = one per core)
//! ```
//!
//! Runs until a wire `SHUTDOWN` request (or the process is killed; the
//! log's commit records make restart recovery safe for a `--dir`
//! database).

use asset_common::Config;
use asset_core::Database;
use asset_server::AssetServer;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut addr = String::from("127.0.0.1:4994");
    let mut dir: Option<String> = None;
    let mut workers: usize = 0;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        let r = match arg.as_str() {
            "--addr" => take("--addr").map(|v| addr = v),
            "--dir" => take("--dir").map(|v| dir = Some(v)),
            "--workers" => take("--workers").and_then(|v| {
                v.parse()
                    .map(|n| workers = n)
                    .map_err(|e| format!("--workers: {e}"))
            }),
            "--help" | "-h" => {
                eprintln!("usage: asset-server [--addr HOST:PORT] [--dir PATH] [--workers N]");
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown argument {other:?} (try --help)")),
        };
        if let Err(msg) = r {
            eprintln!("asset-server: {msg}");
            return ExitCode::FAILURE;
        }
    }

    let mut config = match &dir {
        Some(d) => Config::on_disk(d),
        None => Config::in_memory(),
    };
    if workers > 0 {
        config = config.with_exec_workers(workers);
    }

    let (db, recovery) = match Database::open(config) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("asset-server: open failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "asset-server: recovered (winners={}, losers={}, redone={}, undone={})",
        recovery.winners, recovery.losers, recovery.redone, recovery.undone
    );

    let server = match AssetServer::spawn(db, &addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("asset-server: bind {addr} failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("asset-server: listening on {}", server.local_addr());
    server.join();
    eprintln!("asset-server: shut down");
    ExitCode::SUCCESS
}

//! Standalone ASSET server binary.
//!
//! ```text
//! asset-server [--addr HOST:PORT] [--dir PATH] [--workers N]
//!              [--node-id N] [--serve-metrics HOST:PORT] [--trace-cap N]
//!
//!   --addr           listen address          (default 127.0.0.1:4994)
//!   --dir            durable database dir    (default: in-memory)
//!   --workers        executor worker threads (default 0 = one per core)
//!   --node-id        fleet node id for metrics/trace merge (default 0)
//!   --serve-metrics  Prometheus endpoint address (default: off)
//!   --trace-cap      enable event tracing with this ring capacity
//! ```
//!
//! Runs until a wire `SHUTDOWN` request (or the process is killed; the
//! log's commit records make restart recovery safe for a `--dir`
//! database).

use asset_common::Config;
use asset_core::Database;
use asset_server::AssetServer;
use asset_trace::prom::PromServer;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut addr = String::from("127.0.0.1:4994");
    let mut dir: Option<String> = None;
    let mut workers: usize = 0;
    let mut node_id: u32 = 0;
    let mut metrics_addr: Option<String> = None;
    let mut trace_cap: usize = 0;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        let r = match arg.as_str() {
            "--addr" => take("--addr").map(|v| addr = v),
            "--dir" => take("--dir").map(|v| dir = Some(v)),
            "--workers" => take("--workers").and_then(|v| {
                v.parse()
                    .map(|n| workers = n)
                    .map_err(|e| format!("--workers: {e}"))
            }),
            "--node-id" => take("--node-id").and_then(|v| {
                v.parse()
                    .map(|n| node_id = n)
                    .map_err(|e| format!("--node-id: {e}"))
            }),
            "--serve-metrics" => take("--serve-metrics").map(|v| metrics_addr = Some(v)),
            "--trace-cap" => take("--trace-cap").and_then(|v| {
                v.parse()
                    .map(|n| trace_cap = n)
                    .map_err(|e| format!("--trace-cap: {e}"))
            }),
            "--help" | "-h" => {
                eprintln!(
                    "usage: asset-server [--addr HOST:PORT] [--dir PATH] [--workers N] \
                     [--node-id N] [--serve-metrics HOST:PORT] [--trace-cap N]"
                );
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown argument {other:?} (try --help)")),
        };
        if let Err(msg) = r {
            eprintln!("asset-server: {msg}");
            return ExitCode::FAILURE;
        }
    }

    let mut config = match &dir {
        Some(d) => Config::on_disk(d),
        None => Config::in_memory(),
    };
    if workers > 0 {
        config = config.with_exec_workers(workers);
    }

    let (db, recovery) = match Database::open(config) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("asset-server: open failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "asset-server: recovered (winners={}, losers={}, redone={}, undone={})",
        recovery.winners, recovery.losers, recovery.redone, recovery.undone
    );
    if trace_cap > 0 {
        db.obs().enable_tracing(trace_cap);
        eprintln!("asset-server: event tracing on (ring capacity {trace_cap})");
    }

    let server = match AssetServer::spawn_node(db, &addr, node_id) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("asset-server: bind {addr} failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "asset-server: node {} listening on {}",
        server.node_id(),
        server.local_addr()
    );
    let mut exporter = None;
    if let Some(maddr) = &metrics_addr {
        match PromServer::spawn(maddr, server.metrics_source()) {
            Ok(p) => {
                eprintln!(
                    "asset-server: serving metrics on http://{}/metrics",
                    p.addr()
                );
                exporter = Some(p);
            }
            Err(e) => {
                eprintln!("asset-server: metrics bind {maddr} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    server.join();
    if let Some(mut p) = exporter.take() {
        p.shutdown();
    }
    eprintln!("asset-server: shut down");
    ExitCode::SUCCESS
}

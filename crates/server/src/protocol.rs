//! The ASSET wire protocol: length-prefixed binary frames over TCP.
//!
//! This module is the implementation of the **normative specification in
//! `DESIGN.md` §13**; the example frames documented there are asserted
//! byte-for-byte against this code by the
//! `design_section_13_example_frames` test below. If you change anything
//! here, change the spec in the same commit.
//!
//! ## Frame layout
//!
//! Every message — request or response — is one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     len      u32 LE: bytes that follow this field
//! 4       1     version  0x01 plain, 0x02 traced
//! 5       1     opcode   see [`opcode`]
//! 6       4     reqid    u32 LE: chosen by the client, echoed verbatim
//! 10      len-6 body     opcode-specific payload
//! ```
//!
//! A **traced** frame (version `0x02`) carries a 12-byte trace context
//! between `reqid` and `body` — `u32` LE origin node id, `u64` LE root
//! span id (DESIGN.md §7.2) — shifting the body to offset 22. Version
//! `0x01` frames are byte-identical to every earlier revision, and
//! responses are always version `0x01` (the context flows one way:
//! requester → executor).
//!
//! A response frame carries the request's opcode and reqid; its body
//! begins with a **status byte** (see [`status`]): `0x00` = OK followed
//! by the opcode's result payload, anything else is an error code
//! followed by an optional UTF-8 diagnostic message (non-normative).
//! Responses are returned in request order, so clients may pipeline:
//! write several requests, then read as many responses.
//!
//! ## Round-trip
//!
//! ```
//! use asset_obs::TraceCtx;
//! use asset_server::protocol::{opcode, Frame, PROTOCOL_VERSION, PROTOCOL_VERSION_TRACED};
//!
//! let req = Frame::new(opcode::BEGIN, 7, 0u64.to_le_bytes().to_vec());
//! let bytes = req.encode();
//! assert_eq!(bytes[4], PROTOCOL_VERSION);
//! assert_eq!(Frame::decode(&bytes)?, req);
//!
//! let traced = Frame {
//!     ctx: Some(TraceCtx { origin: 2, root: 9 }),
//!     ..req
//! };
//! let bytes = traced.encode();
//! assert_eq!(bytes[4], PROTOCOL_VERSION_TRACED);
//! assert_eq!(Frame::decode(&bytes)?, traced);
//! # Ok::<(), asset_server::protocol::WireError>(())
//! ```

use asset_common::AssetError;
use asset_obs::TraceCtx;
use std::io::{self, Read, Write};

/// The protocol version this build speaks (frame byte 4).
pub const PROTOCOL_VERSION: u8 = 0x01;

/// Frame byte 4 of a traced frame: the header carries a 12-byte
/// [`TraceCtx`] between `reqid` and the body (DESIGN.md §13.1). Either
/// version is accepted on any request; responses always use
/// [`PROTOCOL_VERSION`].
pub const PROTOCOL_VERSION_TRACED: u8 = 0x02;

/// Upper bound on the `len` field: frames larger than this are rejected
/// without being read (a corrupt or hostile length prefix must not make
/// the peer allocate gigabytes).
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Bytes of header covered by `len` before the body begins
/// (version + opcode + reqid).
pub const HEADER_LEN: usize = 6;

/// Bytes covered by `len` before the body of a **traced** frame
/// (version + opcode + reqid + 12-byte trace context).
pub const TRACED_HEADER_LEN: usize = HEADER_LEN + TraceCtx::WIRE_LEN;

/// First byte of the `STATS` OK payload (DESIGN.md §13.3): the
/// revision of the versioned metrics body that follows (`u64` live
/// transactions, then the `asset-obs` self-describing snapshot).
pub const STATS_BODY_REVISION: u8 = 1;

/// Server-side cap on one MINT request's `count` (DESIGN.md §13.3). A
/// larger count is rejected with [`status::ERR_RESOURCE_EXHAUSTED`]
/// before any object is created — an attacker must not be able to make
/// the server allocate or write without bound from one small frame.
/// Larger workloads mint in multiple requests.
pub const MAX_MINT_COUNT: u64 = 1 << 22;

/// Server-side cap on one SUM request's `count` (DESIGN.md §13.3). A
/// larger range is rejected with [`status::ERR_RESOURCE_EXHAUSTED`]
/// before any object is read — a sweep must not be able to pin a
/// connection thread without bound.
pub const MAX_SUM_COUNT: u64 = 1 << 24;

/// Request opcodes (frame byte 5). Responses echo the request's opcode.
pub mod opcode {
    /// Liveness probe. Body: empty. OK payload: empty.
    pub const PING: u8 = 0x01;
    /// Version handshake. Body: empty. OK payload: `u8` — the server's
    /// protocol version.
    pub const HELLO: u8 = 0x02;
    /// Map this connection onto a new transaction. Body: `u64` parent
    /// tid — **reserved, must be 0** (a future revision maps it onto
    /// nested initiation). OK payload: `u64` tid.
    pub const BEGIN: u8 = 0x10;
    /// Transactional read. Body: `u64` tid, `u64` oid. OK payload:
    /// `u8` present flag (0 or 1), then the value bytes when present.
    pub const READ: u8 = 0x11;
    /// Transactional write. Body: `u64` tid, `u64` oid, value bytes to
    /// end of frame. OK payload: empty.
    pub const WRITE: u8 = 0x12;
    /// Commit. Body: `u64` tid. OK payload: empty — and OK is sent only
    /// after the transaction's commit record is durable (the ack rides
    /// the group-commit flush window). Distinguished failures:
    /// [`super::status::ERR_COMMIT_ABORTED`] vs
    /// [`super::status::ERR_COMMIT_AMBIGUOUS`].
    pub const COMMIT: u8 = 0x13;
    /// Abort and roll back. Body: `u64` tid. OK payload: empty.
    pub const ABORT: u8 = 0x14;
    /// `delegate(from, to, obs)` — move lock + undo responsibility.
    /// Body: `u64` from, `u64` to, `u8` all flag, `u32` n, n×`u64` oids
    /// (all=1 requires n=0 and means every delegable object). OK
    /// payload: empty.
    pub const DELEGATE: u8 = 0x20;
    /// `permit(grantor, grantee, obs, ops)`. Body: `u64` grantor,
    /// `u64` grantee (0 = any-transaction wildcard), `u8` ops bitmask
    /// (1 = read, 2 = write), `u8` all flag, `u32` n, n×`u64` oids.
    /// OK payload: empty.
    pub const PERMIT: u8 = 0x21;
    /// `form_dependency(kind, ti, tj)`. Body: `u8` kind (1 = CD,
    /// 2 = AD, 3 = GC), `u64` ti, `u64` tj. OK payload: empty.
    pub const FORM_DEP: u8 = 0x22;
    /// Allocate one object id. Body: empty. OK payload: `u64` oid.
    pub const NEW_OID: u8 = 0x30;
    /// Bulk-create `count` objects each holding `initial` as an i64
    /// counter, committed server-side in chunked transactions. Body:
    /// `u64` count, `i64` initial. OK payload: `u64` first oid,
    /// `u64` count. A count above [`super::MAX_MINT_COUNT`] is rejected
    /// with `ERR_RESOURCE_EXHAUSTED` before any object is created. MINT
    /// requests are serialized by the server; the oids are consecutive
    /// unless another connection allocates concurrently — mint before
    /// opening the workload. On any error the server deletes the chunks
    /// that had already committed (best-effort compensation), so a
    /// failed MINT leaves no funded orphan accounts; the oid space may
    /// still contain gaps.
    pub const MINT: u8 = 0x31;
    /// Sum the committed i64 values of oids `first..first+count`
    /// (missing or non-8-byte objects are skipped). Runs as one
    /// **server-side read transaction**: every object in the range is
    /// S-locked (in ascending oid order, the same order writers take
    /// their locks) before the first value is added, so the sum is a
    /// consistent snapshot even while writers are active — a transfer
    /// is seen either entirely or not at all. A count above
    /// [`super::MAX_SUM_COUNT`] is rejected with
    /// `ERR_RESOURCE_EXHAUSTED` before any object is read.
    /// Body: `u64` first, `u64` count. OK payload: `i64` sum,
    /// `u64` objects present.
    pub const SUM: u8 = 0x32;
    /// Server statistics. Body: empty. OK payload: 4×`u64` —
    /// transactions committed, transactions aborted, live (non-
    /// terminated) transactions, commit log failures.
    pub const STATS: u8 = 0x33;
    /// Distributed commit (DESIGN.md §14): prepare this session's named
    /// transactions as one group. Body: `u32` n, n×`u64` tids — each
    /// must name a transaction of **this session**. The server finishes
    /// each program leaving the transaction `Completed` (locks held),
    /// then drives `Database::prepare_group`, forcing one `Prepared`
    /// WAL record for the union of the tids' GC groups. OK payload:
    /// `u32` m, m×`u64` tids — the full prepared group; OK **is** the
    /// yes vote (the record is durable before the response is written).
    /// Any error is a no vote and the group is aborted locally.
    /// Prepared transactions leave the session: disconnecting no longer
    /// aborts them, and only a decide opcode resolves them.
    pub const PREPARE: u8 = 0x40;
    /// Query a transaction's distributed-commit state — usable by a
    /// recovery coordinator for tids from any session, including before
    /// a crash. Body: `u64` tid. OK payload: `u8` —
    /// 0 = unknown, 1 = prepared (in doubt), 2 = committed, 3 = aborted,
    /// 4 = other (live, not prepared).
    pub const PREPARED: u8 = 0x41;
    /// Coordinator decision: commit a prepared group (DESIGN.md §14).
    /// Body: `u32` n, n×`u64` tids. Sessionless and idempotent — works
    /// after the preparing connection (or the whole node) restarted.
    /// OK payload: empty, written only after the commit record is
    /// durable.
    pub const COMMIT_DECIDE: u8 = 0x42;
    /// Coordinator decision: abort a prepared group. Body: `u32` n,
    /// n×`u64` tids. Sessionless and idempotent. OK payload: empty.
    pub const ABORT_DECIDE: u8 = 0x43;
    /// Stop accepting connections and shut the server down after the OK
    /// response is written. Body: empty. OK payload: empty.
    pub const SHUTDOWN: u8 = 0x7F;
}

/// Response status codes (first body byte of every response).
pub mod status {
    /// Success; the opcode's result payload follows.
    pub const OK: u8 = 0x00;
    /// The frame or body could not be decoded.
    pub const ERR_MALFORMED: u8 = 0x01;
    /// The frame's version byte is not one the server speaks.
    pub const ERR_BAD_VERSION: u8 = 0x02;
    /// Unknown opcode.
    pub const ERR_BAD_OPCODE: u8 = 0x03;
    /// The tid does not name a transaction of this session.
    pub const ERR_TXN_NOT_FOUND: u8 = 0x04;
    /// The operation is invalid in the transaction's current status.
    pub const ERR_INVALID_STATE: u8 = 0x05;
    /// Admission control refused a new transaction.
    pub const ERR_RESOURCE_EXHAUSTED: u8 = 0x06;
    /// `form_dependency` would create a cycle.
    pub const ERR_DEPENDENCY_CYCLE: u8 = 0x07;
    /// The transaction was chosen as a deadlock victim.
    pub const ERR_DEADLOCK: u8 = 0x08;
    /// A lock wait exceeded the configured timeout.
    pub const ERR_LOCK_TIMEOUT: u8 = 0x09;
    /// The transaction is aborted (or was aborted by this failure).
    pub const ERR_TXN_ABORTED: u8 = 0x0A;
    /// The object does not exist.
    pub const ERR_OBJECT_NOT_FOUND: u8 = 0x0B;
    /// Stored state failed validation.
    pub const ERR_CORRUPT: u8 = 0x0C;
    /// An I/O error outside the commit point.
    pub const ERR_IO: u8 = 0x0D;
    /// COMMIT only: the transaction **aborted cleanly** — its commit
    /// record never entered the log and no effect survives. Retrying
    /// the work in a new transaction is safe.
    pub const ERR_COMMIT_ABORTED: u8 = 0x0E;
    /// COMMIT only: the commit record **failed at the commit point** —
    /// it may or may not have reached stable storage. The live system
    /// drove the transaction through abort (DESIGN.md §13.4), but the
    /// client must treat the outcome as unknown, not as aborted:
    /// blindly retrying can double-apply.
    pub const ERR_COMMIT_AMBIGUOUS: u8 = 0x0F;
}

/// A diagnostic name for a status code (stable; used in error messages
/// and tests, not on the wire).
pub fn status_name(s: u8) -> &'static str {
    match s {
        status::OK => "ok",
        status::ERR_MALFORMED => "malformed",
        status::ERR_BAD_VERSION => "bad-version",
        status::ERR_BAD_OPCODE => "bad-opcode",
        status::ERR_TXN_NOT_FOUND => "txn-not-found",
        status::ERR_INVALID_STATE => "invalid-state",
        status::ERR_RESOURCE_EXHAUSTED => "resource-exhausted",
        status::ERR_DEPENDENCY_CYCLE => "dependency-cycle",
        status::ERR_DEADLOCK => "deadlock",
        status::ERR_LOCK_TIMEOUT => "lock-timeout",
        status::ERR_TXN_ABORTED => "txn-aborted",
        status::ERR_OBJECT_NOT_FOUND => "object-not-found",
        status::ERR_CORRUPT => "corrupt",
        status::ERR_IO => "io",
        status::ERR_COMMIT_ABORTED => "commit-aborted",
        status::ERR_COMMIT_AMBIGUOUS => "commit-ambiguous",
        _ => "unknown",
    }
}

/// Map a facility error onto its wire status code (DESIGN.md §13.3).
pub fn status_of(e: &AssetError) -> u8 {
    match e {
        AssetError::TxnNotFound(_) => status::ERR_TXN_NOT_FOUND,
        AssetError::InvalidState { .. } => status::ERR_INVALID_STATE,
        AssetError::ResourceExhausted { .. } => status::ERR_RESOURCE_EXHAUSTED,
        AssetError::DependencyCycle { .. } => status::ERR_DEPENDENCY_CYCLE,
        AssetError::Deadlock(_) => status::ERR_DEADLOCK,
        AssetError::LockTimeout { .. } => status::ERR_LOCK_TIMEOUT,
        AssetError::TxnAborted(_) => status::ERR_TXN_ABORTED,
        AssetError::ObjectNotFound(_) => status::ERR_OBJECT_NOT_FOUND,
        AssetError::Corrupt(_) => status::ERR_CORRUPT,
        AssetError::Io(_) => status::ERR_IO,
    }
}

/// Why a byte sequence failed to decode as a frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the layout requires.
    Truncated,
    /// The length prefix disagrees with the bytes present.
    LengthMismatch {
        /// Bytes the prefix promised after itself.
        declared: u32,
        /// Bytes actually present after the prefix.
        present: u32,
    },
    /// The length prefix exceeds [`MAX_FRAME_LEN`] (or is shorter than
    /// the fixed header).
    BadLength(u32),
    /// The version byte is neither [`PROTOCOL_VERSION`] nor
    /// [`PROTOCOL_VERSION_TRACED`] — or a traced frame is too short to
    /// hold its trace context.
    BadVersion(u8),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::LengthMismatch { declared, present } => {
                write!(f, "length prefix {declared} but {present} bytes present")
            }
            WireError::BadLength(n) => write!(f, "length prefix {n} out of range"),
            WireError::BadVersion(v) => {
                write!(f, "version {v:#04x}, expected {PROTOCOL_VERSION:#04x}")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for io::Error {
    fn from(e: WireError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

/// One wire frame (request or response), without transport state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// The operation (see [`opcode`]); responses echo the request's.
    pub opcode: u8,
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub reqid: u32,
    /// Propagated trace context (DESIGN.md §7.2). `Some` encodes the
    /// frame as version [`PROTOCOL_VERSION_TRACED`]; `None` keeps the
    /// byte-identical version `0x01` layout. Responses never carry one.
    pub ctx: Option<TraceCtx>,
    /// Opcode-specific payload. For responses, begins with the status
    /// byte.
    pub body: Vec<u8>,
}

impl Frame {
    /// A plain (untraced, version `0x01`) frame.
    pub fn new(opcode: u8, reqid: u32, body: Vec<u8>) -> Frame {
        Frame {
            opcode,
            reqid,
            ctx: None,
            body,
        }
    }

    /// Serialize to bytes, length prefix included.
    pub fn encode(&self) -> Vec<u8> {
        let header = match self.ctx {
            Some(_) => TRACED_HEADER_LEN,
            None => HEADER_LEN,
        };
        let len = (header + self.body.len()) as u32;
        let mut out = Vec::with_capacity(4 + len as usize);
        out.extend_from_slice(&len.to_le_bytes());
        match self.ctx {
            Some(ctx) => {
                out.push(PROTOCOL_VERSION_TRACED);
                out.push(self.opcode);
                out.extend_from_slice(&self.reqid.to_le_bytes());
                out.extend_from_slice(&ctx.to_bytes());
            }
            None => {
                out.push(PROTOCOL_VERSION);
                out.push(self.opcode);
                out.extend_from_slice(&self.reqid.to_le_bytes());
            }
        }
        out.extend_from_slice(&self.body);
        out
    }

    /// Parse a complete frame (length prefix included). The inverse of
    /// [`encode`](Self::encode).
    pub fn decode(buf: &[u8]) -> Result<Frame, WireError> {
        if buf.len() < 4 {
            return Err(WireError::Truncated);
        }
        // the slice bound was just checked
        // verify: allow(no_panics) — length checked above
        let len = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes"));
        if len < HEADER_LEN as u32 || len > MAX_FRAME_LEN {
            return Err(WireError::BadLength(len));
        }
        let present = (buf.len() - 4) as u32;
        if present != len {
            return Err(WireError::LengthMismatch {
                declared: len,
                present,
            });
        }
        let version = buf[4];
        let ctx = match version {
            PROTOCOL_VERSION => None,
            PROTOCOL_VERSION_TRACED => {
                // a traced header must fit its 12-byte context
                match TraceCtx::from_bytes(&buf[10..]) {
                    Some(ctx) => Some(ctx),
                    None => return Err(WireError::BadVersion(version)),
                }
            }
            other => return Err(WireError::BadVersion(other)),
        };
        let opcode = buf[5];
        // the slice bound follows from len >= HEADER_LEN
        // verify: allow(no_panics) — length checked above
        let reqid = u32::from_le_bytes(buf[6..10].try_into().expect("4 bytes"));
        let body_off = match ctx {
            Some(_) => 4 + TRACED_HEADER_LEN,
            None => 4 + HEADER_LEN,
        };
        Ok(Frame {
            opcode,
            reqid,
            ctx,
            body: buf[body_off..].to_vec(),
        })
    }

    /// Write the frame to a stream (one `write_all` of the encoding).
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(&self.encode())
    }

    /// Read one frame from a **blocking** stream. Returns `Ok(None)` on
    /// a clean EOF at a frame boundary; a mid-frame EOF, an out-of-range
    /// length, or a version mismatch is an error.
    ///
    /// On a stream with a read timeout, a `WouldBlock`/`TimedOut` error
    /// loses any bytes already consumed — use a persistent
    /// [`FrameReader`] there instead.
    pub fn read_from(r: &mut impl Read) -> io::Result<Option<Frame>> {
        FrameReader::new().read_from(r)
    }

    /// Build an OK response to a request frame with the given payload.
    /// Responses are always version `0x01`: the trace context flows
    /// requester → executor only.
    pub fn ok_response(req: &Frame, payload: &[u8]) -> Frame {
        let mut body = Vec::with_capacity(1 + payload.len());
        body.push(status::OK);
        body.extend_from_slice(payload);
        Frame::new(req.opcode, req.reqid, body)
    }

    /// Build an error response to a request frame.
    pub fn err_response(req: &Frame, code: u8, message: &str) -> Frame {
        let mut body = Vec::with_capacity(1 + message.len());
        body.push(code);
        body.extend_from_slice(message.as_bytes());
        Frame::new(req.opcode, req.reqid, body)
    }
}

/// An incremental frame reader that survives read timeouts.
///
/// [`Frame::read_from`] assumes a blocking stream: if the read errors
/// mid-frame, the bytes already consumed are gone and the stream is
/// desynchronized. A `FrameReader` keeps the partial frame across
/// calls: a `WouldBlock`/`TimedOut` error from the underlying stream
/// propagates to the caller, but the bytes consumed so far stay
/// buffered and the next `read_from` call resumes exactly where the
/// previous one stopped. This is what lets the server poll-read with a
/// timeout (to notice shutdown) without ever tearing a frame that
/// straddles two poll ticks.
///
/// ```
/// use asset_server::protocol::{opcode, Frame, FrameReader};
/// use std::io::{self, Read};
///
/// /// Yields its bytes, then `WouldBlock` (like a read timeout).
/// struct Timeout<'a>(&'a [u8]);
/// impl Read for Timeout<'_> {
///     fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
///         if self.0.is_empty() {
///             return Err(io::ErrorKind::WouldBlock.into());
///         }
///         self.0.read(out)
///     }
/// }
///
/// let f = Frame::new(opcode::PING, 1, vec![]);
/// let bytes = f.encode();
/// let (a, b) = bytes.split_at(5);
/// let mut fr = FrameReader::new();
/// // first poll tick times out mid-frame: the 5 bytes stay buffered
/// let err = fr.read_from(&mut Timeout(a)).unwrap_err();
/// assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
/// assert_eq!(fr.buffered(), 5);
/// // the rest of the frame arrives on the next tick
/// assert_eq!(fr.read_from(&mut Timeout(b)).unwrap(), Some(f));
/// ```
#[derive(Debug, Default)]
pub struct FrameReader {
    /// Bytes of the current frame consumed so far, length prefix first.
    buf: Vec<u8>,
    /// Total bytes of the current frame (4 + len) once the length
    /// prefix is complete and validated; 0 while it is not.
    need: usize,
}

impl FrameReader {
    /// A reader positioned at a frame boundary.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Bytes of the current frame buffered so far (0 = at a boundary).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Read one frame, resuming any partial frame from a previous call.
    /// Returns `Ok(None)` on EOF at a frame boundary; EOF mid-frame, an
    /// out-of-range length, or a version mismatch is an error. A
    /// `WouldBlock`/`TimedOut` error leaves the partial state intact
    /// for the next call.
    pub fn read_from(&mut self, r: &mut impl Read) -> io::Result<Option<Frame>> {
        loop {
            if self.need == 0 && self.buf.len() == 4 {
                // the slice bound was just checked
                // verify: allow(no_panics) — length checked above
                let len = u32::from_le_bytes(self.buf[0..4].try_into().expect("4 bytes"));
                if len < HEADER_LEN as u32 || len > MAX_FRAME_LEN {
                    return Err(WireError::BadLength(len).into());
                }
                self.need = 4 + len as usize;
            }
            if self.need != 0 && self.buf.len() == self.need {
                let frame = Frame::decode(&self.buf);
                self.buf.clear();
                self.need = 0;
                return frame.map(Some).map_err(Into::into);
            }
            let want = if self.need == 0 {
                4 - self.buf.len()
            } else {
                self.need - self.buf.len()
            };
            let mut tmp = [0u8; 16 * 1024];
            let want = want.min(tmp.len());
            match r.read(&mut tmp[..want]) {
                Ok(0) if self.buf.is_empty() => return Ok(None),
                Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
                Ok(n) => self.buf.extend_from_slice(&tmp[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

/// Read a `u64` (LE) at `off`, or [`WireError::Truncated`].
pub fn get_u64(b: &[u8], off: usize) -> Result<u64, WireError> {
    b.get(off..off + 8)
        .and_then(|s| s.try_into().ok())
        .map(u64::from_le_bytes)
        .ok_or(WireError::Truncated)
}

/// Read an `i64` (LE) at `off`, or [`WireError::Truncated`].
pub fn get_i64(b: &[u8], off: usize) -> Result<i64, WireError> {
    get_u64(b, off).map(|v| v as i64)
}

/// Read a `u32` (LE) at `off`, or [`WireError::Truncated`].
pub fn get_u32(b: &[u8], off: usize) -> Result<u32, WireError> {
    b.get(off..off + 4)
        .and_then(|s| s.try_into().ok())
        .map(u32::from_le_bytes)
        .ok_or(WireError::Truncated)
}

/// Read a `u8` at `off`, or [`WireError::Truncated`].
pub fn get_u8(b: &[u8], off: usize) -> Result<u8, WireError> {
    b.get(off).copied().ok_or(WireError::Truncated)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_empty_and_payload_bodies() {
        for body in [Vec::new(), vec![0xAB; 3], vec![0u8; 4096]] {
            let f = Frame::new(opcode::WRITE, 0xDEAD_BEEF, body);
            assert_eq!(Frame::decode(&f.encode()), Ok(f));
        }
    }

    #[test]
    fn stream_round_trip_and_clean_eof() {
        let a = Frame::new(opcode::PING, 1, vec![]);
        let b = Frame::new(opcode::READ, 2, vec![7; 16]);
        let mut buf = Vec::new();
        a.write_to(&mut buf).unwrap();
        b.write_to(&mut buf).unwrap();
        let mut r = &buf[..];
        assert_eq!(Frame::read_from(&mut r).unwrap(), Some(a));
        assert_eq!(Frame::read_from(&mut r).unwrap(), Some(b));
        assert_eq!(Frame::read_from(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn mid_frame_eof_is_an_error() {
        let f = Frame::new(opcode::PING, 1, vec![1, 2, 3]);
        let bytes = f.encode();
        let mut r = &bytes[..bytes.len() - 1];
        assert!(Frame::read_from(&mut r).is_err());
    }

    #[test]
    fn bad_version_and_bad_length_rejected() {
        let f = Frame::new(opcode::PING, 1, vec![]);
        let mut bytes = f.encode();
        bytes[4] = 0x03;
        assert_eq!(Frame::decode(&bytes), Err(WireError::BadVersion(0x03)));
        // version 0x02 with no room for the 12-byte context is rejected
        bytes[4] = PROTOCOL_VERSION_TRACED;
        assert_eq!(Frame::decode(&bytes), Err(WireError::BadVersion(0x02)));
        let mut short = f.encode();
        short[0] = 2; // < HEADER_LEN
        assert_eq!(Frame::decode(&short), Err(WireError::BadLength(2)));
        let mut r = &short[..];
        assert!(Frame::read_from(&mut r).is_err());
        let oversize = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
        let mut r = &oversize[..];
        assert!(Frame::read_from(&mut r).is_err());
    }

    /// A reader that delivers tiny chunks and interleaves `WouldBlock`
    /// errors between them, like a socket with a read timeout firing
    /// mid-frame.
    struct Choppy<'a> {
        data: &'a [u8],
        pos: usize,
        calls: usize,
    }

    impl std::io::Read for Choppy<'_> {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            self.calls += 1;
            if self.calls.is_multiple_of(2) && self.pos < self.data.len() {
                return Err(io::ErrorKind::WouldBlock.into());
            }
            let n = out.len().min(3).min(self.data.len() - self.pos);
            out[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn frame_reader_resumes_partial_frames_across_timeouts() {
        let a = Frame::new(opcode::WRITE, 5, vec![9; 300]);
        let b = Frame::new(opcode::PING, 6, vec![]);
        let mut bytes = a.encode();
        bytes.extend_from_slice(&b.encode());
        let mut r = Choppy {
            data: &bytes,
            pos: 0,
            calls: 0,
        };
        let mut fr = FrameReader::new();
        let mut got = Vec::new();
        let mut timeouts = 0;
        loop {
            match fr.read_from(&mut r) {
                Ok(Some(f)) => got.push(f),
                Ok(None) => break,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => timeouts += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(got, vec![a, b], "frames reassembled across timeouts");
        assert!(timeouts > 0, "the reader was actually interrupted");
        assert_eq!(fr.buffered(), 0, "ends at a frame boundary");
    }

    #[test]
    fn frame_reader_still_rejects_bad_lengths_and_mid_frame_eof() {
        let oversize = (MAX_FRAME_LEN + 1).to_le_bytes();
        let mut fr = FrameReader::new();
        assert!(fr.read_from(&mut &oversize[..]).is_err());

        let f = Frame::new(opcode::PING, 1, vec![1, 2, 3]);
        let bytes = f.encode();
        let mut fr = FrameReader::new();
        let mut partial = &bytes[..bytes.len() - 1];
        // a slice EOFs rather than blocking, so the torn frame errors
        assert!(fr.read_from(&mut partial).is_err());
    }

    #[test]
    fn traced_frames_round_trip_and_responses_stay_plain() {
        let ctx = TraceCtx {
            origin: 3,
            root: 0x0102_0304_0506_0708,
        };
        for body in [Vec::new(), vec![0xAB; 3], vec![0u8; 4096]] {
            let f = Frame {
                ctx: Some(ctx),
                ..Frame::new(opcode::PREPARE, 11, body)
            };
            let bytes = f.encode();
            assert_eq!(bytes[4], PROTOCOL_VERSION_TRACED);
            assert_eq!(Frame::decode(&bytes), Ok(f.clone()));
            // responses to a traced request carry no context
            let ok = Frame::ok_response(&f, &[]);
            assert_eq!(ok.ctx, None);
            assert_eq!(ok.encode()[4], PROTOCOL_VERSION);
            let err = Frame::err_response(&f, status::ERR_MALFORMED, "x");
            assert_eq!(err.ctx, None);
        }
        // a traced frame streams through the incremental reader too
        let f = Frame {
            ctx: Some(ctx),
            ..Frame::new(opcode::COMMIT_DECIDE, 2, vec![1, 2, 3])
        };
        let bytes = f.encode();
        let mut r = &bytes[..];
        assert_eq!(Frame::read_from(&mut r).unwrap(), Some(f));
    }

    #[test]
    fn length_mismatch_rejected() {
        let f = Frame::new(opcode::PING, 1, vec![1, 2]);
        let mut bytes = f.encode();
        bytes[0] += 1;
        assert!(matches!(
            Frame::decode(&bytes),
            Err(WireError::LengthMismatch { .. })
        ));
    }

    /// The example frames documented in DESIGN.md §13.5, byte for byte.
    /// If this test changes, the spec must change in the same commit.
    #[test]
    fn design_section_13_example_frames() {
        // Example 1: BEGIN request, reqid 7, parent 0.
        let begin = Frame::new(opcode::BEGIN, 7, 0u64.to_le_bytes().to_vec());
        assert_eq!(
            begin.encode(),
            [
                0x0E, 0x00, 0x00, 0x00, // len = 14
                0x01, // version
                0x10, // opcode BEGIN
                0x07, 0x00, 0x00, 0x00, // reqid = 7
                0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // parent = 0
            ]
        );
        // Example 2: OK response carrying tid 3.
        let ok = Frame::ok_response(&begin, &3u64.to_le_bytes());
        assert_eq!(
            ok.encode(),
            [
                0x0F, 0x00, 0x00, 0x00, // len = 15
                0x01, // version
                0x10, // opcode echoed
                0x07, 0x00, 0x00, 0x00, // reqid echoed
                0x00, // status OK
                0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // tid = 3
            ]
        );
        // Example 3: COMMIT (tid 3, reqid 9) answered with
        // ERR_COMMIT_AMBIGUOUS and a diagnostic message.
        let commit = Frame::new(opcode::COMMIT, 9, 3u64.to_le_bytes().to_vec());
        assert_eq!(
            commit.encode(),
            [
                0x0E, 0x00, 0x00, 0x00, // len = 14
                0x01, // version
                0x13, // opcode COMMIT
                0x09, 0x00, 0x00, 0x00, // reqid = 9
                0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // tid = 3
            ]
        );
        let ambiguous =
            Frame::err_response(&commit, status::ERR_COMMIT_AMBIGUOUS, "commit fate unknown");
        let mut expect = vec![
            0x1A, 0x00, 0x00, 0x00, // len = 26 (6 + 1 + 19)
            0x01, // version
            0x13, // opcode echoed
            0x09, 0x00, 0x00, 0x00, // reqid echoed
            0x0F, // status ERR_COMMIT_AMBIGUOUS
        ];
        expect.extend_from_slice(b"commit fate unknown");
        assert_eq!(ambiguous.encode(), expect);
        // Example 4: traced PING request (reqid 1) from origin node 2,
        // root span 9.
        let traced = Frame {
            ctx: Some(TraceCtx { origin: 2, root: 9 }),
            ..Frame::new(opcode::PING, 1, Vec::new())
        };
        assert_eq!(
            traced.encode(),
            [
                0x12, 0x00, 0x00, 0x00, // len = 18
                0x02, // version (traced)
                0x01, // opcode PING
                0x01, 0x00, 0x00, 0x00, // reqid = 1
                0x02, 0x00, 0x00, 0x00, // trace origin node = 2
                0x09, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // root span = 9
            ]
        );
    }

    #[test]
    fn status_codes_cover_every_error_variant() {
        use asset_common::{Oid, Tid, TxnStatus};
        let cases = [
            (
                status_of(&AssetError::TxnNotFound(Tid(1))),
                status::ERR_TXN_NOT_FOUND,
            ),
            (
                status_of(&AssetError::InvalidState {
                    tid: Tid(1),
                    status: TxnStatus::Running,
                    op: "x",
                }),
                status::ERR_INVALID_STATE,
            ),
            (
                status_of(&AssetError::ResourceExhausted { limit: 1 }),
                status::ERR_RESOURCE_EXHAUSTED,
            ),
            (
                status_of(&AssetError::DependencyCycle {
                    dependent: Tid(1),
                    on: Tid(2),
                }),
                status::ERR_DEPENDENCY_CYCLE,
            ),
            (
                status_of(&AssetError::Deadlock(Tid(1))),
                status::ERR_DEADLOCK,
            ),
            (
                status_of(&AssetError::LockTimeout {
                    tid: Tid(1),
                    ob: Oid(2),
                }),
                status::ERR_LOCK_TIMEOUT,
            ),
            (
                status_of(&AssetError::TxnAborted(Tid(1))),
                status::ERR_TXN_ABORTED,
            ),
            (
                status_of(&AssetError::ObjectNotFound(Oid(1))),
                status::ERR_OBJECT_NOT_FOUND,
            ),
            (
                status_of(&AssetError::Corrupt("x".into())),
                status::ERR_CORRUPT,
            ),
            (
                status_of(&AssetError::Io(std::io::ErrorKind::Other.into())),
                status::ERR_IO,
            ),
        ];
        for (got, want) in cases {
            assert_eq!(got, want);
        }
        // every named status renders a distinct diagnostic name
        let mut names: Vec<&str> = (0x00..=0x0F).map(status_name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 16);
    }
}

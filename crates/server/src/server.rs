//! The network server: a `std::net::TcpListener` accept loop, one
//! handler thread per connection, requests dispatched onto the
//! executor through per-transaction mailboxes ([`crate::session`]).
//!
//! The server owns no transaction state of its own — a connection is a
//! map from wire tids to [`SessionTxn`]s, and everything transactional
//! lives in the [`Database`]. Dropping a connection aborts its live
//! transactions (queued as terminal ops; the executor rolls them back).

use crate::protocol::{self, get_i64, get_u32, get_u64, get_u8, opcode, status, Frame, WireError};
use crate::session::{OpReply, SessionTxn, TxnOp};
use asset_core::{AssetError, Database, DepType, ObSet, Oid, OpSet, Tid, TxnOutcome, TxnStatus};
use asset_obs::{bump, AtomicHistogram, EventKind, SpanName, LATENCY_NS_BOUNDS};
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::io::{BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Objects written per server-side transaction while servicing a MINT
/// request. Bounds undo-chain length and lock footprint for
/// million-object mints.
const MINT_CHUNK: u64 = 10_000;

/// How often a blocked connection read wakes up to check the shutdown
/// flag.
const READ_POLL: Duration = Duration::from_millis(100);

/// How many times a SUM's read transaction is retried when it loses a
/// deadlock against concurrent writers before the request fails.
const SUM_RETRIES: usize = 16;

struct Shared {
    db: Database,
    shutdown: AtomicBool,
    /// Serializes MINT requests so each mint's oids are consecutive
    /// (unless an unrelated connection allocates concurrently).
    mint: Mutex<()>,
    /// This node's id in a fleet — stamped on fleet metrics and matched
    /// against trace contexts when per-node traces are merged (§7.2).
    node_id: u32,
    metrics: ServerMetrics,
}

/// Fleet metrics local to the server layer (DESIGN.md §7.2): service
/// time per wire opcode plus live connection/session gauges. Everything
/// here is wait-free atomics, recorded on the connection thread after
/// the response is built — never inside the executor or a lock stripe.
struct ServerMetrics {
    /// `(opcode, metric label, service-time histogram)` per §13.3 wire
    /// opcode, in table order.
    ops: Vec<(u8, &'static str, AtomicHistogram)>,
    /// Fallback for opcodes outside the §13.3 table (answered with
    /// `ERR_BAD_OPCODE` but still timed).
    other: AtomicHistogram,
    /// Currently-open client connections.
    live_connections: AtomicU64,
    /// Session transactions currently open across all connections
    /// (BEGIN'd, neither finished nor released to a coordinator).
    live_sessions: AtomicU64,
}

impl ServerMetrics {
    fn new() -> ServerMetrics {
        let ops = [
            (opcode::PING, "ping"),
            (opcode::HELLO, "hello"),
            (opcode::BEGIN, "begin"),
            (opcode::READ, "read"),
            (opcode::WRITE, "write"),
            (opcode::COMMIT, "commit"),
            (opcode::ABORT, "abort"),
            (opcode::DELEGATE, "delegate"),
            (opcode::PERMIT, "permit"),
            (opcode::FORM_DEP, "form_dep"),
            (opcode::NEW_OID, "new_oid"),
            (opcode::MINT, "mint"),
            (opcode::SUM, "sum"),
            (opcode::STATS, "stats"),
            (opcode::PREPARE, "prepare"),
            (opcode::PREPARED, "prepared"),
            (opcode::COMMIT_DECIDE, "commit_decide"),
            (opcode::ABORT_DECIDE, "abort_decide"),
            (opcode::SHUTDOWN, "shutdown"),
        ]
        .into_iter()
        .map(|(op, name)| (op, name, AtomicHistogram::new(LATENCY_NS_BOUNDS)))
        .collect();
        ServerMetrics {
            ops,
            other: AtomicHistogram::new(LATENCY_NS_BOUNDS),
            live_connections: AtomicU64::new(0),
            live_sessions: AtomicU64::new(0),
        }
    }

    fn op_hist(&self, op: u8) -> &AtomicHistogram {
        self.ops
            .iter()
            .find(|(o, _, _)| *o == op)
            .map(|(_, _, h)| h)
            .unwrap_or(&self.other)
    }
}

impl Shared {
    /// The node's Prometheus scrape body — see
    /// [`AssetServer::metrics_text`].
    fn metrics_text(&self) -> String {
        let snap = self.db.metrics_snapshot();
        let stripes = self.db.locks().stripe_stats();
        let mut out = asset_trace::prom::render_node(&snap, &stripes, self.node_id);
        use std::fmt::Write as _;
        for (_, name, h) in &self.metrics.ops {
            asset_trace::prom::render_histogram(
                &mut out,
                &format!("asset_server_op_{name}_ns"),
                "Wire-request service time on this node (ns).",
                &h.snapshot(),
            );
        }
        let node = self.node_id;
        for (name, help, v) in [
            (
                "asset_server_live_connections",
                "Open client connections on this node.",
                self.metrics.live_connections.load(Ordering::Relaxed),
            ),
            (
                "asset_server_live_sessions",
                "Open session transactions on this node.",
                self.metrics.live_sessions.load(Ordering::Relaxed),
            ),
            (
                "asset_server_live_transactions",
                "Live transactions in this node's database.",
                self.db.live_transactions() as u64,
            ),
            (
                "asset_server_in_doubt",
                "Prepared distributed-commit transactions awaiting a \
                 coordinator decision on this node (DESIGN.md 14.2).",
                self.db.in_doubt_transactions().len() as u64,
            ),
        ] {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name}{{node=\"{node}\"}} {v}");
        }
        out
    }
}

/// A running ASSET network server.
///
/// Spawned with [`AssetServer::spawn`]; stopped with
/// [`AssetServer::shutdown`] + [`AssetServer::join`], or by a wire
/// `SHUTDOWN` request.
///
/// The server requires a database configured with live executor worker
/// threads (`Config::with_exec_workers(n)`, `n >= 1`): session
/// transactions park on [`asset_core::TxnStep::WaitExternal`] between
/// requests, which the degraded inline executor (0 workers) cannot run.
pub struct AssetServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl AssetServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start accepting
    /// connections against `db`.
    ///
    /// Fails with `InvalidInput` if `db`'s executor has no live worker
    /// threads: session transactions park on `WaitExternal`, which the
    /// degraded inline executor cannot do (`Database::submit` would
    /// drive the program on the connection thread and never return from
    /// the first `BEGIN`). Failing fast here beats hanging there.
    pub fn spawn(db: Database, addr: &str) -> std::io::Result<AssetServer> {
        Self::spawn_node(db, addr, 0)
    }

    /// [`spawn`](Self::spawn) with an explicit fleet node id. The id is
    /// stamped on this node's Prometheus series and is the `origin` a
    /// trace merge matches this node's events against (§7.2); single-node
    /// deployments use node 0.
    pub fn spawn_node(db: Database, addr: &str, node_id: u32) -> std::io::Result<AssetServer> {
        if db.executor_workers() == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "asset-server requires a live executor worker pool; \
                 the degraded inline executor cannot run session \
                 transactions (see Config::with_exec_workers)",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            db,
            shutdown: AtomicBool::new(false),
            mint: Mutex::new(()),
            node_id,
            metrics: ServerMetrics::new(),
        });
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("asset-accept".into())
                .spawn(move || accept_loop(listener, shared, conns))?
        };
        Ok(AssetServer {
            shared,
            addr: local,
            accept: Some(accept),
            conns,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The database this server fronts.
    pub fn database(&self) -> &Database {
        &self.shared.db
    }

    /// This node's fleet id (see [`spawn_node`](Self::spawn_node)).
    pub fn node_id(&self) -> u32 {
        self.shared.node_id
    }

    /// Render this node's full metrics in Prometheus text format: the
    /// database snapshot and stripe stats, node-attributed fleet series
    /// (`asset_events_dropped{node=...}`), per-opcode service-time
    /// histograms, and the live connection/session gauges. This is the
    /// body served by the binary's `--serve-metrics` endpoint; callers
    /// embedding the server can serve it through
    /// [`asset_trace::prom::PromServer`] via [`metrics_source`](Self::metrics_source).
    pub fn metrics_text(&self) -> String {
        self.shared.metrics_text()
    }

    /// A `Fn() -> String` scrape source for
    /// [`asset_trace::prom::PromServer::spawn`], detached from the
    /// server's lifetime (the closure holds its own handle on the shared
    /// state, so the exporter may outlive [`join`](Self::join)).
    pub fn metrics_source(&self) -> impl Fn() -> String + Send + 'static {
        let shared = Arc::clone(&self.shared);
        move || shared.metrics_text()
    }

    /// Ask the server to stop: no new connections are accepted and
    /// handler threads exit at their next poll tick. Does not wait —
    /// call [`join`](Self::join).
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // unblock the accept loop with a throwaway connection
        // verify: allow(status_flow) — wake-up connection; no transaction outcome flows here
        let _ = TcpStream::connect(self.addr);
    }

    /// Wait for the accept loop and every connection handler to exit.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles = std::mem::take(&mut *self.conns.lock());
        for h in handles {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, conns: Arc<Mutex<Vec<JoinHandle<()>>>>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        bump(&shared.db.obs().counters.server_connections);
        shared
            .metrics
            .live_connections
            .fetch_add(1, Ordering::Relaxed);
        let shared = Arc::clone(&shared);
        let spawned = std::thread::Builder::new()
            .name("asset-conn".into())
            .spawn(move || {
                // connection-level I/O errors only: txn fates are
                // written to the wire before serve returns, and dangling
                // sessions are drained by abort_leftovers
                // verify: allow(status_flow) — txn outcomes surfaced via wire statuses and the drain counter
                let _ = Connection::new(Arc::clone(&shared), &stream).serve(stream);
                shared
                    .metrics
                    .live_connections
                    .fetch_sub(1, Ordering::Relaxed);
            });
        if let Ok(h) = spawned {
            conns.lock().push(h);
        }
    }
}

/// Per-connection state: the wire-visible transactions this connection
/// opened and has not yet finished.
struct Connection {
    shared: Arc<Shared>,
    txns: HashMap<u64, SessionTxn>,
}

/// The abort-leftovers guarantee lives in `Drop`, not at the end of
/// [`Connection::serve`]: an I/O error (or panic) anywhere in the serve
/// loop must still release the session's transactions, or they would
/// hold their locks forever while parked on `WaitExternal`.
impl Drop for Connection {
    fn drop(&mut self) {
        self.abort_leftovers();
    }
}

impl Connection {
    fn new(shared: Arc<Shared>, stream: &TcpStream) -> Connection {
        // poll-read so handler threads notice the shutdown flag even
        // while a client is idle
        let _ = stream.set_read_timeout(Some(READ_POLL));
        let _ = stream.set_nodelay(true);
        Connection {
            shared,
            txns: HashMap::new(),
        }
    }

    /// Serve the connection until EOF, error, or shutdown. Open
    /// transactions are aborted by [`Drop`] on **every** exit path —
    /// including a `?` on a write error (a client disconnecting
    /// mid-response is routine) and a panic — so a dead session can
    /// never park transactions on `WaitExternal` holding locks forever.
    fn serve(mut self, stream: TcpStream) -> std::io::Result<()> {
        let mut reader = stream.try_clone()?;
        let mut writer = BufWriter::new(stream);
        // persists partial frames across poll-tick timeouts: the 100ms
        // read timeout may fire with half a frame consumed, and those
        // bytes must not be discarded or the stream desynchronizes
        let mut frames = protocol::FrameReader::new();
        loop {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let frame = match frames.read_from(&mut reader) {
                Ok(Some(f)) => f,
                Ok(None) => break, // clean EOF
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue; // poll tick: re-check shutdown, then resume
                }
                Err(_) => {
                    bump(&self.shared.db.obs().counters.server_protocol_errors);
                    break; // mid-frame EOF / bad version / bad length
                }
            };
            bump(&self.shared.db.obs().counters.server_requests);
            // §7.2: a traced frame lands its MsgRecv/MsgReply pair in
            // this node's event ring so a fleet merge can draw the
            // cross-node edge back to the origin's MsgSend/MsgAck.
            if let Some(ctx) = frame.ctx {
                bump(&self.shared.db.obs().counters.server_traced_frames);
                self.shared.db.obs().record(EventKind::MsgRecv {
                    opcode: frame.opcode,
                    origin: ctx.origin,
                    root: ctx.root,
                });
            }
            let started = Instant::now();
            let resp = self.dispatch(&frame);
            self.shared
                .metrics
                .op_hist(frame.opcode)
                .record(started.elapsed().as_nanos() as u64);
            if let Some(ctx) = frame.ctx {
                self.shared.db.obs().record(EventKind::MsgReply {
                    opcode: frame.opcode,
                    origin: ctx.origin,
                    root: ctx.root,
                    status: resp.body.first().copied().unwrap_or(status::OK),
                });
            }
            resp.write_to(&mut writer)?;
            // flush per request unless more are already queued (cheap
            // pipelining: a burst of requests gets one syscall)
            writer.flush()?;
            if frame.opcode == opcode::SHUTDOWN {
                self.shared.shutdown.store(true, Ordering::SeqCst);
                // unblock the accept loop
                // verify: allow(status_flow) — wake-up connection; no transaction outcome flows here
                let _ = TcpStream::connect(reader.local_addr()?);
                break;
            }
        }
        Ok(())
    }

    /// Abort every transaction the connection left open (client gone or
    /// server stopping). Terminal ops are queued and nudged; the
    /// executor performs the rollbacks, and this thread **waits for
    /// each outcome** so the drain is deterministic: once every handler
    /// has exited (`AssetServer::join`), no session transaction still
    /// holds a lock or is mid-rollback. Prepared transactions are never
    /// here — a successful PREPARE removes them from the session, so a
    /// shutdown or disconnect cannot abort a cast vote (§14.2).
    fn abort_leftovers(&mut self) {
        let db = &self.shared.db;
        for (_, st) in self.txns.drain() {
            self.shared
                .metrics
                .live_sessions
                .fetch_sub(1, Ordering::Relaxed);
            st.finishing(db, TxnOp::Abort);
            if matches!(db.outcome_kind(st.tid), Ok(TxnOutcome::CommitAmbiguous)) {
                // the commit record may already be durable; surface the
                // ambiguity instead of silently dropping it (§13.4)
                bump(&db.obs().counters.session_drain_ambiguous);
            }
            db.obs().record(EventKind::SpanClose {
                tid: st.tid,
                span: SpanName::Session,
            });
        }
    }

    fn dispatch(&mut self, req: &Frame) -> Frame {
        match self.dispatch_inner(req) {
            Ok(f) => f,
            Err(e) => {
                bump(&self.shared.db.obs().counters.server_protocol_errors);
                Frame::err_response(req, status::ERR_MALFORMED, &e.to_string())
            }
        }
    }

    fn dispatch_inner(&mut self, req: &Frame) -> Result<Frame, WireError> {
        let db = self.shared.db.clone();
        let b = &req.body;
        Ok(match req.opcode {
            opcode::PING => Frame::ok_response(req, &[]),
            opcode::HELLO => Frame::ok_response(req, &[protocol::PROTOCOL_VERSION]),
            opcode::BEGIN => {
                let parent = get_u64(b, 0)?;
                if parent != 0 {
                    return Ok(Frame::err_response(
                        req,
                        status::ERR_MALFORMED,
                        "parent tid is reserved and must be 0",
                    ));
                }
                match SessionTxn::submit(&db) {
                    Ok(st) => {
                        let tid = st.tid;
                        self.txns.insert(tid.0, st);
                        self.shared
                            .metrics
                            .live_sessions
                            .fetch_add(1, Ordering::Relaxed);
                        bump(&db.obs().counters.session_txns);
                        db.obs().record(EventKind::SpanOpen {
                            tid,
                            span: SpanName::Session,
                        });
                        Frame::ok_response(req, &tid.0.to_le_bytes())
                    }
                    Err(e) => err_of(req, &e),
                }
            }
            opcode::READ => {
                let tid = get_u64(b, 0)?;
                let oid = Oid(get_u64(b, 8)?);
                self.txn_op(req, tid, TxnOp::Read(oid))
            }
            opcode::WRITE => {
                let tid = get_u64(b, 0)?;
                let oid = Oid(get_u64(b, 8)?);
                let value = b.get(16..).ok_or(WireError::Truncated)?.to_vec();
                self.txn_op(req, tid, TxnOp::Write(oid, value))
            }
            opcode::COMMIT => {
                let tid = get_u64(b, 0)?;
                self.finish_txn(req, tid, TxnOp::Commit)
            }
            opcode::ABORT => {
                let tid = get_u64(b, 0)?;
                self.finish_txn(req, tid, TxnOp::Abort)
            }
            opcode::DELEGATE => {
                let from = Tid(get_u64(b, 0)?);
                let to = Tid(get_u64(b, 8)?);
                let obs = decode_obset(b, 16)?;
                // all=1 delegates everything delegable (`None` per the
                // Database API); an explicit list delegates just those
                let obs = match obs {
                    ObSet::All => None,
                    objects => Some(objects),
                };
                ack(req, db.delegate(from, to, obs))
            }
            opcode::PERMIT => {
                let grantor = Tid(get_u64(b, 0)?);
                let grantee = match get_u64(b, 8)? {
                    0 => None,
                    t => Some(Tid(t)),
                };
                let ops = match get_u8(b, 16)? {
                    0 => OpSet::NONE,
                    1 => OpSet::READ,
                    2 => OpSet::WRITE,
                    3 => OpSet::ALL,
                    _ => {
                        return Ok(Frame::err_response(
                            req,
                            status::ERR_MALFORMED,
                            "ops bitmask out of range (0..=3)",
                        ))
                    }
                };
                let obs = decode_obset(b, 17)?;
                ack(req, db.permit(grantor, grantee, obs, ops))
            }
            opcode::FORM_DEP => {
                let kind = match get_u8(b, 0)? {
                    1 => DepType::CD,
                    2 => DepType::AD,
                    3 => DepType::GC,
                    _ => {
                        return Ok(Frame::err_response(
                            req,
                            status::ERR_MALFORMED,
                            "dependency kind out of range (1=CD, 2=AD, 3=GC)",
                        ))
                    }
                };
                let ti = Tid(get_u64(b, 1)?);
                let tj = Tid(get_u64(b, 9)?);
                ack(req, db.form_dependency(kind, ti, tj))
            }
            opcode::NEW_OID => Frame::ok_response(req, &db.new_oid().0.to_le_bytes()),
            opcode::MINT => {
                let count = get_u64(b, 0)?;
                let initial = get_i64(b, 8)?;
                self.mint(req, count, initial)
            }
            opcode::SUM => {
                let first = get_u64(b, 0)?;
                let count = get_u64(b, 8)?;
                if count > protocol::MAX_SUM_COUNT {
                    return Ok(Frame::err_response(
                        req,
                        status::ERR_RESOURCE_EXHAUSTED,
                        &format!(
                            "sum count {count} exceeds the per-request cap {}",
                            protocol::MAX_SUM_COUNT
                        ),
                    ));
                }
                self.sum(req, first, count)
            }
            opcode::STATS => {
                // §13.3: revision byte, live-transaction gauge, then the
                // full self-describing metrics snapshot
                let mut payload = Vec::with_capacity(2048);
                payload.push(protocol::STATS_BODY_REVISION);
                payload.extend_from_slice(&(db.live_transactions() as u64).to_le_bytes());
                payload
                    .extend_from_slice(&asset_obs::wire::encode_snapshot(&db.metrics_snapshot()));
                Frame::ok_response(req, &payload)
            }
            opcode::PREPARE => {
                let tids = decode_tid_list(b)?;
                self.prepare(req, &tids)
            }
            opcode::PREPARED => {
                let tid = Tid(get_u64(b, 0)?);
                let state: u8 = match db.status(tid) {
                    Ok(TxnStatus::Prepared) => 1,
                    Ok(TxnStatus::Committed) => 2,
                    Ok(TxnStatus::Aborting) | Ok(TxnStatus::Aborted) => 3,
                    Ok(_) => 4,
                    Err(_) => 0,
                };
                Frame::ok_response(req, &[state])
            }
            opcode::COMMIT_DECIDE => {
                let tids = decode_tid_list(b)?;
                ack(req, db.decide_commit_group(&tids))
            }
            opcode::ABORT_DECIDE => {
                let tids = decode_tid_list(b)?;
                db.decide_abort_group(&tids);
                Frame::ok_response(req, &[])
            }
            opcode::SHUTDOWN => Frame::ok_response(req, &[]),
            _ => {
                bump(&db.obs().counters.server_protocol_errors);
                Frame::err_response(req, status::ERR_BAD_OPCODE, "unknown opcode")
            }
        })
    }

    /// Run a non-terminal op (READ/WRITE) on one of this connection's
    /// transactions. A `Fail` reply or a missing reply means the
    /// transaction terminated — drop it from the session map.
    fn txn_op(&mut self, req: &Frame, tid: u64, op: TxnOp) -> Frame {
        let db = &self.shared.db;
        let Some(st) = self.txns.get(&tid) else {
            return Frame::err_response(
                req,
                status::ERR_TXN_NOT_FOUND,
                "tid does not name a transaction of this session",
            );
        };
        match st.call(db, op) {
            Some(OpReply::Value(v)) => {
                let mut payload = vec![u8::from(v.is_some())];
                if let Some(bytes) = v {
                    payload.extend_from_slice(&bytes);
                }
                Frame::ok_response(req, &payload)
            }
            Some(OpReply::Done) => Frame::ok_response(req, &[]),
            Some(OpReply::Fail(code, msg)) => {
                self.close_session(tid);
                Frame::err_response(req, code, &msg)
            }
            None => {
                self.close_session(tid);
                Frame::err_response(
                    req,
                    status::ERR_TXN_ABORTED,
                    "transaction terminated before answering",
                )
            }
        }
    }

    /// COMMIT/ABORT: queue the terminal op, then block on the
    /// transaction's outcome — for COMMIT the OK therefore rides the
    /// group-commit flush window (DESIGN.md §13.2), and ambiguous
    /// commit-point failures surface as their own status (§13.4).
    fn finish_txn(&mut self, req: &Frame, tid: u64, op: TxnOp) -> Frame {
        let db = self.shared.db.clone();
        let Some(st) = self.txns.remove(&tid) else {
            return Frame::err_response(
                req,
                status::ERR_TXN_NOT_FOUND,
                "tid does not name a transaction of this session",
            );
        };
        self.shared
            .metrics
            .live_sessions
            .fetch_sub(1, Ordering::Relaxed);
        let wanted_commit = matches!(op, TxnOp::Commit);
        st.finishing(&db, op);
        let outcome = db.outcome_kind(st.tid);
        db.obs().record(EventKind::SpanClose {
            tid: st.tid,
            span: SpanName::Session,
        });
        match (outcome, wanted_commit) {
            (Ok(TxnOutcome::Committed), true) => Frame::ok_response(req, &[]),
            (Ok(TxnOutcome::Committed), false) => Frame::err_response(
                req,
                status::ERR_INVALID_STATE,
                "transaction already committed",
            ),
            (Ok(TxnOutcome::Aborted), true) => Frame::err_response(
                req,
                status::ERR_COMMIT_ABORTED,
                "transaction aborted cleanly; no effect survives",
            ),
            (Ok(TxnOutcome::Aborted), false) => Frame::ok_response(req, &[]),
            (Ok(TxnOutcome::CommitAmbiguous), _) => {
                Frame::err_response(req, status::ERR_COMMIT_AMBIGUOUS, "commit fate unknown")
            }
            (Err(e), _) => err_of(req, &e),
        }
    }

    /// SUM as one server-side read transaction (DESIGN.md §13.3): every
    /// object in the range is S-locked in ascending oid order — the
    /// same order writers acquire theirs — before any value is summed,
    /// so the result is a consistent snapshot even under a concurrent
    /// transfer storm. If the reader still loses a deadlock (writers
    /// that lock out of order), the transaction is retried.
    fn sum(&self, req: &Frame, first: u64, count: u64) -> Frame {
        let db = &self.shared.db;
        for _ in 0..SUM_RETRIES {
            let result = Arc::new(Mutex::new((0i64, 0u64)));
            let out = Arc::clone(&result);
            let ran = db.run(move |ctx| {
                let mut sum = 0i64;
                let mut present = 0u64;
                for oid in first..first.saturating_add(count) {
                    if let Some(bytes) = ctx.read(Oid(oid))? {
                        if let Ok(arr) = <[u8; 8]>::try_from(bytes.as_slice()) {
                            sum = sum.wrapping_add(i64::from_le_bytes(arr));
                            present += 1;
                        }
                    }
                }
                *out.lock() = (sum, present);
                Ok(())
            });
            match ran {
                Ok(true) => {
                    let (sum, present) = *result.lock();
                    let mut payload = sum.to_le_bytes().to_vec();
                    payload.extend_from_slice(&present.to_le_bytes());
                    return Frame::ok_response(req, &payload);
                }
                Ok(false) => continue, // deadlock victim: retry
                Err(e) => return err_of(req, &e),
            }
        }
        Frame::err_response(
            req,
            status::ERR_TXN_ABORTED,
            "sum transaction aborted repeatedly under contention",
        )
    }

    /// Wire PREPARE (DESIGN.md §14.2): finish each named session
    /// transaction's program leaving it `Completed` with locks held,
    /// then force the group's `Prepared` record through
    /// [`Database::prepare_group`]. The OK response **is** the yes
    /// vote; any error is a no vote and every named transaction is
    /// aborted (unless its record landed and only the vote was lost —
    /// it is then in doubt and the coordinator must resolve it).
    /// Prepared transactions leave the session map so a later
    /// disconnect or shutdown cannot abort a cast vote.
    fn prepare(&mut self, req: &Frame, tids: &[Tid]) -> Frame {
        let db = self.shared.db.clone();
        if tids.is_empty() {
            return Frame::err_response(req, status::ERR_MALFORMED, "empty prepare group");
        }
        for t in tids {
            if !self.txns.contains_key(&t.0) {
                return Frame::err_response(
                    req,
                    status::ERR_TXN_NOT_FOUND,
                    "tid does not name a transaction of this session",
                );
            }
        }
        for t in tids {
            // verify: allow(no_panics) — membership checked above
            let st = &self.txns[&t.0];
            match st.call(&db, TxnOp::Hold) {
                Some(OpReply::Done) => {}
                other => {
                    // vote no: a member died before it could hold.
                    // Held members have no program left, so abort at
                    // the database, not through the mailbox.
                    self.drop_prepare_failures(&db, tids, true);
                    return match other {
                        Some(OpReply::Fail(code, msg)) => Frame::err_response(req, code, &msg),
                        _ => Frame::err_response(
                            req,
                            status::ERR_TXN_ABORTED,
                            "transaction terminated before it could prepare",
                        ),
                    };
                }
            }
        }
        match db.prepare_group(tids) {
            Ok(group) => {
                for t in tids {
                    self.close_session(t.0);
                }
                let mut payload = (group.len() as u32).to_le_bytes().to_vec();
                for t in &group {
                    payload.extend_from_slice(&t.0.to_le_bytes());
                }
                Frame::ok_response(req, &payload)
            }
            Err(e) => {
                // prepare_group already aborted the group on a no vote
                self.drop_prepare_failures(&db, tids, false);
                err_of(req, &e)
            }
        }
    }

    /// Drop the named transactions from the session after a failed
    /// prepare, waiting out each rollback so the no vote is
    /// deterministic. A transaction whose `Prepared` record landed but
    /// whose vote was lost in transit stays in doubt — it is released
    /// from the session without being touched (§14.3).
    fn drop_prepare_failures(&mut self, db: &Database, tids: &[Tid], abort: bool) {
        for t in tids {
            if let Some(st) = self.txns.remove(&t.0) {
                self.shared
                    .metrics
                    .live_sessions
                    .fetch_sub(1, Ordering::Relaxed);
                if matches!(db.status(st.tid), Ok(TxnStatus::Prepared)) {
                    // in doubt: only the coordinator may resolve it
                } else {
                    if abort {
                        // enqueue errors mean the txn is already
                        // terminal; the outcome probe below reports its
                        // actual fate either way
                        // verify: allow(status_flow) — outcome consumed by the probe below
                        let _ = db.abort(st.tid);
                    }
                    if matches!(db.outcome_kind(st.tid), Ok(TxnOutcome::CommitAmbiguous)) {
                        bump(&db.obs().counters.session_drain_ambiguous);
                    }
                }
                db.obs().record(EventKind::SpanClose {
                    tid: st.tid,
                    span: SpanName::Session,
                });
            }
        }
    }

    fn close_session(&mut self, tid: u64) {
        if self.txns.remove(&tid).is_some() {
            self.shared
                .metrics
                .live_sessions
                .fetch_sub(1, Ordering::Relaxed);
            self.shared.db.obs().record(EventKind::SpanClose {
                tid: Tid(tid),
                span: SpanName::Session,
            });
        }
    }

    /// Bulk-create `count` objects holding `initial` as an i64 counter.
    /// Serialized under the mint mutex so the allocated oids are
    /// consecutive; oids are allocated and written one
    /// [`MINT_CHUNK`]-sized server-side transaction at a time, so peak
    /// allocation is bounded by the chunk, not the request.
    ///
    /// Counts above [`protocol::MAX_MINT_COUNT`] are rejected before
    /// any work. On a mid-mint failure the chunks that had already
    /// committed are deleted again ([`Self::unmint`]) so a failed MINT
    /// leaves no funded orphan accounts behind.
    fn mint(&self, req: &Frame, count: u64, initial: i64) -> Frame {
        let db = &self.shared.db;
        if count > protocol::MAX_MINT_COUNT {
            return Frame::err_response(
                req,
                status::ERR_RESOURCE_EXHAUSTED,
                &format!(
                    "mint count {count} exceeds the per-request cap {}",
                    protocol::MAX_MINT_COUNT
                ),
            );
        }
        let _serial = self.shared.mint.lock();
        let mut first = 0u64;
        let mut minted: Vec<Oid> = Vec::new();
        let mut remaining = count;
        let failed = loop {
            if remaining == 0 {
                break None;
            }
            let n = remaining.min(MINT_CHUNK) as usize;
            let chunk: Vec<Oid> = (0..n).map(|_| db.new_oid()).collect();
            if minted.is_empty() {
                first = chunk.first().map(|o| o.0).unwrap_or(0);
            }
            let written = chunk.clone();
            let ran = db.run(move |ctx| {
                for oid in &written {
                    ctx.write(*oid, initial.to_le_bytes().to_vec())?;
                }
                Ok(())
            });
            match ran {
                Ok(true) => {
                    minted.extend_from_slice(&chunk);
                    remaining -= n as u64;
                }
                Ok(false) => {
                    break Some(Frame::err_response(
                        req,
                        status::ERR_TXN_ABORTED,
                        "mint transaction aborted",
                    ))
                }
                Err(e) => break Some(err_of(req, &e)),
            }
        };
        if let Some(err) = failed {
            self.unmint(&minted);
            return err;
        }
        let mut payload = first.to_le_bytes().to_vec();
        payload.extend_from_slice(&count.to_le_bytes());
        Frame::ok_response(req, &payload)
    }

    /// Compensate a failed MINT: delete the objects of every chunk that
    /// had already committed, so the failure is all-or-nothing as far
    /// as funded accounts are concerned (DESIGN.md §13.3). Best-effort:
    /// a compensating delete that itself fails bumps
    /// `mint_rollback_failures` — nonzero means a conservation audit
    /// must sweep for orphans by hand.
    fn unmint(&self, minted: &[Oid]) {
        let db = &self.shared.db;
        for chunk in minted.chunks(MINT_CHUNK as usize) {
            let chunk = chunk.to_vec();
            let ran = db.run(move |ctx| {
                for oid in &chunk {
                    ctx.delete(*oid)?;
                }
                Ok(())
            });
            if !matches!(ran, Ok(true)) {
                bump(&db.obs().counters.mint_rollback_failures);
            }
        }
    }
}

/// Decode the `u32` n + n×`u64` tids list shape shared by PREPARE,
/// COMMIT_DECIDE, and ABORT_DECIDE bodies. The length is validated
/// against the bytes present before anything is allocated, so a
/// hostile count cannot reserve gigabytes.
fn decode_tid_list(b: &[u8]) -> Result<Vec<Tid>, WireError> {
    let n = get_u32(b, 0)? as usize;
    if b.len() < 4 + 8 * n {
        return Err(WireError::Truncated);
    }
    let mut tids = Vec::with_capacity(n);
    for i in 0..n {
        tids.push(Tid(get_u64(b, 4 + 8 * i)?));
    }
    Ok(tids)
}

/// Decode the `u8` all flag + `u32` n + n×`u64` oids object-set shape
/// shared by DELEGATE and PERMIT bodies.
fn decode_obset(b: &[u8], off: usize) -> Result<ObSet, WireError> {
    let all = get_u8(b, off)?;
    let n = get_u32(b, off + 1)?;
    if all == 1 {
        if n != 0 {
            return Err(WireError::Truncated);
        }
        return Ok(ObSet::All);
    }
    let mut set = BTreeSet::new();
    for i in 0..n as usize {
        set.insert(Oid(get_u64(b, off + 5 + 8 * i)?));
    }
    Ok(ObSet::Objects(set))
}

/// OK or the facility error mapped onto its wire status (§13.3).
fn ack(req: &Frame, r: Result<(), AssetError>) -> Frame {
    match r {
        Ok(()) => Frame::ok_response(req, &[]),
        Err(e) => err_of(req, &e),
    }
}

fn err_of(req: &Frame, e: &AssetError) -> Frame {
    Frame::err_response(req, protocol::status_of(e), &e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use asset_common::Config;

    /// The REVIEW-driven regression for leaked sessions: a `Connection`
    /// that goes away without reaching the end of `serve()` (write
    /// error, panic) must still abort its parked transactions and
    /// release their locks — the guarantee lives in `Drop`.
    #[test]
    fn dropping_a_connection_aborts_its_open_transactions() {
        let (db, _) = Database::open(
            Config::in_memory()
                .with_exec_workers(2)
                .with_commit_flush_window(Duration::from_micros(100)),
        )
        .expect("in-memory open");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let _client = TcpStream::connect(addr).expect("connect");
        let (stream, _) = listener.accept().expect("accept");
        let shared = Arc::new(Shared {
            db: db.clone(),
            shutdown: AtomicBool::new(false),
            mint: Mutex::new(()),
            node_id: 0,
            metrics: ServerMetrics::new(),
        });
        let mut conn = Connection::new(shared, &stream);
        let st = SessionTxn::submit(&db).expect("submit");
        let tid = st.tid;
        let oid = db.new_oid();
        assert!(matches!(
            st.call(&db, TxnOp::Write(oid, vec![1])),
            Some(OpReply::Done)
        ));
        conn.txns.insert(tid.0, st);

        // the write lock is held while the session txn parks
        drop(conn);

        assert_eq!(db.outcome_kind(tid).unwrap(), TxnOutcome::Aborted);
        // the lock was released: another writer gets through
        assert!(db.run(move |ctx| ctx.write(oid, vec![2])).unwrap());
    }
}

//! Sessions: mapping one connection's requests onto executor-driven
//! transactions.
//!
//! A wire `BEGIN` submits a **mailbox-fed step program** to the
//! [`Database`] executor. The program loops: pop the next
//! [`TxnOp`] from the session's mailbox and run it with the step
//! context's non-blocking operations; when the mailbox is empty it
//! returns [`TxnStep::WaitExternal`] and the worker parks the
//! transaction without occupying a thread. The session (connection)
//! thread is the producer: it pushes an op, calls
//! [`Database::nudge`], and blocks on the mailbox condvar for the
//! reply. `COMMIT` is the exception — the program consumes the op and
//! returns `Done(Ok(()))`, entering the executor's group-commit
//! pipeline, and the session thread awaits
//! [`Database::outcome_kind`] instead of a mailbox reply, so the
//! commit acknowledgement rides the group-commit flush window
//! (DESIGN.md §13.2).
//!
//! ## Why the mailbox never loses a wakeup
//!
//! The session pushes the op **before** nudging, and `nudge` on a
//! `RUNNING` task marks it `RUNNING_DIRTY` so a concurrent park
//! attempt requeues instead of parking (the executor's usual
//! discipline). A parked task is re-enqueued directly. Either way the
//! program re-enters and sees the op.

use crate::protocol::status_of;
use asset_core::{AssetError, Database, Oid, Tid, TryOp, TxnStatus, TxnStep};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One operation fed to a session transaction's step program.
#[derive(Clone, Debug)]
pub(crate) enum TxnOp {
    /// Transactional read of an object.
    Read(Oid),
    /// Transactional write of an object.
    Write(Oid, Vec<u8>),
    /// Finish the program successfully: enters the commit pipeline.
    Commit,
    /// Finish the program with an abort.
    Abort,
    /// Finish the program leaving the transaction `Completed` — locks
    /// held, nothing committed or aborted — for the distributed-commit
    /// prepare path (wire `PREPARE`, DESIGN.md §14): the session thread
    /// then drives [`Database::prepare_group`] and the coordinator's
    /// decision resolves the transaction.
    Hold,
}

/// What the program reports back for one consumed [`TxnOp`].
#[derive(Clone, Debug)]
pub(crate) enum OpReply {
    /// A read's result.
    Value(Option<Vec<u8>>),
    /// A write landed.
    Done,
    /// The op failed; the transaction is terminating. Carries the wire
    /// status code and a diagnostic message.
    Fail(u8, String),
}

#[derive(Default)]
struct MailboxInner {
    queue: VecDeque<TxnOp>,
    /// The op being executed; retained across `WouldBlock` parks so a
    /// re-entered program retries the same op (try-ops are retryable).
    current: Option<TxnOp>,
    replies: VecDeque<OpReply>,
}

/// The channel between a session thread and its transaction's step
/// program. Ops flow in (session → program), replies flow out.
#[derive(Default)]
pub(crate) struct Mailbox {
    inner: Mutex<MailboxInner>,
    ready: Condvar,
}

impl Mailbox {
    /// Queue an op. Call [`Database::nudge`] afterwards — push, then
    /// nudge, never the other way around.
    pub(crate) fn push(&self, op: TxnOp) {
        self.inner.lock().queue.push_back(op);
    }

    /// Program side: finish the current op with a reply and wake the
    /// session thread.
    fn finish(&self, reply: OpReply) {
        {
            let mut g = self.inner.lock();
            g.current = None;
            g.replies.push_back(reply);
        }
        self.ready.notify_all();
    }

    /// Program side: consume the current op without a reply (terminal
    /// ops — the session thread awaits the transaction outcome
    /// instead).
    fn consume_silently(&self) {
        self.inner.lock().current = None;
    }

    /// Program side: the op to run now — the retained current op, or
    /// the next queued one. `None` means park on `WaitExternal`.
    fn next_op(&self) -> Option<TxnOp> {
        let mut g = self.inner.lock();
        if let Some(op) = &g.current {
            return Some(op.clone());
        }
        let op = g.queue.pop_front()?;
        g.current = Some(op.clone());
        Some(op)
    }

    /// Session side: wait up to `timeout` for a reply.
    fn take_reply(&self, timeout: Duration) -> Option<OpReply> {
        let mut g = self.inner.lock();
        if let Some(r) = g.replies.pop_front() {
            return Some(r);
        }
        let _timed_out = self.ready.wait_until(&mut g, Instant::now() + timeout);
        g.replies.pop_front()
    }
}

/// One wire-visible transaction: the executor task plus its mailbox.
pub(crate) struct SessionTxn {
    pub(crate) tid: Tid,
    pub(crate) mailbox: Arc<Mailbox>,
}

impl SessionTxn {
    /// Submit a new mailbox-fed transaction to `db`'s executor. The
    /// program parks on [`TxnStep::WaitExternal`] immediately (the
    /// mailbox starts empty).
    pub(crate) fn submit(db: &Database) -> Result<SessionTxn, AssetError> {
        let mailbox = Arc::new(Mailbox::default());
        let mb = Arc::clone(&mailbox);
        let tid = db.submit(move |sc| loop {
            let Some(op) = mb.next_op() else {
                return TxnStep::WaitExternal;
            };
            match op {
                TxnOp::Read(ob) => match sc.try_read(ob) {
                    Ok(TryOp::Done(v)) => mb.finish(OpReply::Value(v)),
                    Ok(TryOp::WouldBlock) => return TxnStep::WaitLock { ob },
                    Err(e) => {
                        mb.finish(OpReply::Fail(status_of(&e), e.to_string()));
                        return TxnStep::Done(Err(e));
                    }
                },
                TxnOp::Write(ob, bytes) => match sc.try_write(ob, bytes) {
                    Ok(TryOp::Done(())) => mb.finish(OpReply::Done),
                    Ok(TryOp::WouldBlock) => return TxnStep::WaitLock { ob },
                    Err(e) => {
                        mb.finish(OpReply::Fail(status_of(&e), e.to_string()));
                        return TxnStep::Done(Err(e));
                    }
                },
                TxnOp::Commit => {
                    mb.consume_silently();
                    return TxnStep::Done(Ok(()));
                }
                TxnOp::Abort => {
                    mb.consume_silently();
                    return TxnStep::Done(Err(AssetError::TxnAborted(sc.id())));
                }
                TxnOp::Hold => {
                    // reply first so the session thread unblocks, then
                    // retire the task with the txn resting at Completed
                    mb.finish(OpReply::Done);
                    return TxnStep::Hold;
                }
            }
        })?;
        Ok(SessionTxn { tid, mailbox })
    }

    /// Push an op, nudge the executor, and wait for the program's
    /// reply. Returns `None` when the transaction reached a terminal
    /// state without answering (e.g. it was aborted by dependency
    /// propagation while the op was queued).
    pub(crate) fn call(&self, db: &Database, op: TxnOp) -> Option<OpReply> {
        self.mailbox.push(op);
        db.nudge(self.tid);
        loop {
            if let Some(r) = self.mailbox.take_reply(Duration::from_millis(20)) {
                return Some(r);
            }
            match db.status(self.tid) {
                Ok(TxnStatus::Aborted) | Ok(TxnStatus::Committed) | Err(_) => {
                    // final drain: the reply may have been pushed just
                    // before the terminal transition
                    return self.mailbox.take_reply(Duration::ZERO);
                }
                Ok(_) => {}
            }
        }
    }

    /// Queue a terminal op (Commit/Abort) and nudge; the caller awaits
    /// the transaction outcome, not a mailbox reply.
    pub(crate) fn finishing(&self, db: &Database, op: TxnOp) {
        self.mailbox.push(op);
        db.nudge(self.tid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asset_core::TxnOutcome;

    fn exec_db() -> Database {
        use asset_common::Config;
        Database::open(
            Config::in_memory()
                .with_exec_workers(2)
                .with_commit_flush_window(Duration::from_micros(100)),
        )
        .expect("in-memory open")
        .0
    }

    #[test]
    fn mailbox_feeds_reads_and_writes_through_the_executor() {
        let db = exec_db();
        let oid = db.new_oid();
        let st = SessionTxn::submit(&db).unwrap();
        match st.call(&db, TxnOp::Write(oid, b"42".to_vec())) {
            Some(OpReply::Done) => {}
            other => panic!("write reply: {other:?}"),
        }
        match st.call(&db, TxnOp::Read(oid)) {
            Some(OpReply::Value(Some(v))) => assert_eq!(v, b"42"),
            other => panic!("read reply: {other:?}"),
        }
        st.finishing(&db, TxnOp::Commit);
        assert_eq!(db.outcome_kind(st.tid).unwrap(), TxnOutcome::Committed);
        assert_eq!(db.peek(oid).unwrap().unwrap(), b"42");
    }

    #[test]
    fn abort_op_rolls_back() {
        let db = exec_db();
        let oid = db.new_oid();
        assert!(db.run(move |ctx| ctx.write(oid, b"old".to_vec())).unwrap());
        let st = SessionTxn::submit(&db).unwrap();
        assert!(matches!(
            st.call(&db, TxnOp::Write(oid, b"new".to_vec())),
            Some(OpReply::Done)
        ));
        st.finishing(&db, TxnOp::Abort);
        assert_eq!(db.outcome_kind(st.tid).unwrap(), TxnOutcome::Aborted);
        assert_eq!(db.peek(oid).unwrap().unwrap(), b"old");
    }

    #[test]
    fn contended_write_parks_and_resumes() {
        let db = exec_db();
        let oid = db.new_oid();
        assert!(db.run(move |ctx| ctx.write(oid, b"seed".to_vec())).unwrap());
        let a = SessionTxn::submit(&db).unwrap();
        let b = SessionTxn::submit(&db).unwrap();
        assert!(matches!(
            a.call(&db, TxnOp::Write(oid, b"a".to_vec())),
            Some(OpReply::Done)
        ));
        // b blocks on the lock a holds; commit a from another thread
        let db2 = db.clone();
        let h = std::thread::spawn(move || {
            // give b's write time to hit the conflict and park
            std::thread::sleep(Duration::from_millis(30));
            a.finishing(&db2, TxnOp::Commit);
            db2.outcome_kind(a.tid)
        });
        assert!(matches!(
            b.call(&db, TxnOp::Write(oid, b"b".to_vec())),
            Some(OpReply::Done)
        ));
        assert_eq!(h.join().unwrap().unwrap(), TxnOutcome::Committed);
        b.finishing(&db, TxnOp::Commit);
        assert_eq!(db.outcome_kind(b.tid).unwrap(), TxnOutcome::Committed);
        assert_eq!(db.peek(oid).unwrap().unwrap(), b"b");
    }
}

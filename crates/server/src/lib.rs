//! # asset-server — the ASSET network transaction server
//!
//! Exposes a [`Database`](asset_core::Database) over TCP with a
//! length-prefixed binary protocol (normative spec: `DESIGN.md` §13;
//! implementation: [`protocol`]). A connection maps wire tids onto
//! **session transactions**: executor-driven step programs fed through
//! per-transaction mailboxes (the private `session` module), so a
//! thousand idle connections park a thousand transactions on
//! [`TxnStep::WaitExternal`](asset_core::TxnStep::WaitExternal) without
//! occupying a single executor worker.
//!
//! Commit acknowledgements ride the group-commit flush window: the OK
//! for a `COMMIT` frame is written only after the transaction's commit
//! record is durable, and a commit-point failure whose fate is unknown
//! surfaces as the dedicated `ERR_COMMIT_AMBIGUOUS` status rather than
//! a generic error (DESIGN.md §13.4).
//!
//! ## In-process quick start
//!
//! ```
//! use asset_common::Config;
//! use asset_core::Database;
//! use asset_server::AssetServer;
//!
//! let (db, _) = Database::open(Config::in_memory().with_exec_workers(2))?;
//! let server = AssetServer::spawn(db, "127.0.0.1:0")?;
//! let addr = server.local_addr(); // connect asset_client::Client here
//! # let _ = addr;
//! server.shutdown();
//! server.join();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The standalone binary (`cargo run -p asset-server -- --addr
//! 127.0.0.1:4994 --dir /tmp/asset`) wraps exactly this.

pub mod protocol;
mod server;
mod session;

pub use server::AssetServer;

//! Semantic lock table: commutativity-based concurrency control.
//!
//! The ASSET paper closes (§5) with its future-work direction: *"exploit
//! the concurrency semantics inherent in objects ... operations to increase
//! an existing employee's salary and to add a new employee to a department
//! commute"*, pointing at multi-level transactions (Weikum, the paper’s reference 23).
//!
//! The key structure is a lock table whose modes are **operation classes**
//! and whose conflict relation is **non-commutativity**. Two increments
//! commute, so two transactions may hold `Increment` locks on the same
//! counter concurrently; an observer's `Observe` lock conflicts with both.
//! Semantic locks are held until the *parent* transaction terminates, while
//! the low-level object locks of each operation are released as soon as the
//! operation's open-nested subtransaction commits.

use asset_common::{AssetError, Oid, Result, Tid};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// An operation class for semantic locking. Classes index into the
/// [`CommutativityTable`]; a type's ops define their own class constants.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct OpClass(pub u8);

/// The maximum number of operation classes a table supports.
pub const MAX_CLASSES: usize = 8;

/// A symmetric commutativity matrix: `commutes[a][b]` says operations of
/// class `a` and class `b` may run concurrently on the same object.
#[derive(Clone, Copy, Debug)]
pub struct CommutativityTable {
    commutes: [[bool; MAX_CLASSES]; MAX_CLASSES],
}

impl CommutativityTable {
    /// A table where nothing commutes (degenerates to exclusive locking).
    pub fn exclusive() -> CommutativityTable {
        CommutativityTable {
            commutes: [[false; MAX_CLASSES]; MAX_CLASSES],
        }
    }

    /// Declare classes `a` and `b` commuting (symmetric).
    #[must_use]
    pub fn commuting(mut self, a: OpClass, b: OpClass) -> CommutativityTable {
        self.commutes[a.0 as usize][b.0 as usize] = true;
        self.commutes[b.0 as usize][a.0 as usize] = true;
        self
    }

    /// Do classes `a` and `b` commute?
    #[inline]
    pub fn commute(&self, a: OpClass, b: OpClass) -> bool {
        self.commutes[a.0 as usize][b.0 as usize]
    }
}

#[derive(Clone, Copy, Debug)]
struct SemLock {
    owner: Tid,
    class: OpClass,
    count: u32,
}

/// Statistics for the semantic lock table.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct SemanticStats {
    /// Semantic locks granted.
    pub grants: u64,
    /// Requests that had to wait at least once.
    pub blocks: u64,
}

struct Inner {
    locks: HashMap<Oid, Vec<SemLock>>,
    stats: SemanticStats,
}

/// The semantic lock table. One per database-level resource domain; the
/// commutativity table is supplied per acquisition, bound to the object
/// type by the typed operation wrappers.
pub struct SemanticLockTable {
    inner: Mutex<Inner>,
    cv: Condvar,
}

impl SemanticLockTable {
    /// An empty table.
    pub fn new() -> SemanticLockTable {
        SemanticLockTable {
            inner: Mutex::new(Inner {
                locks: HashMap::new(),
                stats: SemanticStats::default(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Acquire a semantic lock of `class` on `ob` for `owner`, blocking
    /// while any *other* owner holds a non-commuting class. Re-entrant:
    /// the same owner may stack locks freely (its own ops are ordered by
    /// its own program).
    pub fn acquire(
        &self,
        owner: Tid,
        ob: Oid,
        class: OpClass,
        table: &CommutativityTable,
        timeout: Option<Duration>,
    ) -> Result<()> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut inner = self.inner.lock();
        let mut blocked = false;
        loop {
            let held = inner.locks.entry(ob).or_default();
            let conflict = held
                .iter()
                .any(|l| l.owner != owner && !table.commute(l.class, class));
            if !conflict {
                match held
                    .iter_mut()
                    .find(|l| l.owner == owner && l.class == class)
                {
                    Some(l) => l.count += 1,
                    None => held.push(SemLock {
                        owner,
                        class,
                        count: 1,
                    }),
                }
                inner.stats.grants += 1;
                if blocked {
                    inner.stats.blocks += 1;
                }
                return Ok(());
            }
            blocked = true;
            let timed_out = match deadline {
                None => {
                    self.cv.wait(&mut inner);
                    false
                }
                Some(d) => self.cv.wait_until(&mut inner, d).timed_out(),
            };
            if timed_out {
                inner.stats.blocks += 1;
                return Err(AssetError::LockTimeout { tid: owner, ob });
            }
        }
    }

    /// Release every semantic lock `owner` holds (parent commit or abort).
    pub fn release_owner(&self, owner: Tid) -> usize {
        let mut inner = self.inner.lock();
        let mut released = 0;
        inner.locks.retain(|_, held| {
            held.retain(|l| {
                if l.owner == owner {
                    released += l.count as usize;
                    false
                } else {
                    true
                }
            });
            !held.is_empty()
        });
        drop(inner);
        self.cv.notify_all();
        released
    }

    /// Current holders of semantic locks on `ob` (diagnostics).
    pub fn holders(&self, ob: Oid) -> Vec<(Tid, OpClass)> {
        self.inner
            .lock()
            .locks
            .get(&ob)
            .map(|v| v.iter().map(|l| (l.owner, l.class)).collect())
            .unwrap_or_default()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> SemanticStats {
        self.inner.lock().stats
    }
}

impl Default for SemanticLockTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const INC: OpClass = OpClass(0);
    const DEC: OpClass = OpClass(1);
    const OBS: OpClass = OpClass(2);

    fn counter_table() -> CommutativityTable {
        CommutativityTable::exclusive()
            .commuting(INC, INC)
            .commuting(DEC, DEC)
            .commuting(INC, DEC)
            .commuting(OBS, OBS)
    }

    #[test]
    fn commuting_classes_coexist() {
        let t = SemanticLockTable::new();
        let table = counter_table();
        t.acquire(Tid(1), Oid(1), INC, &table, None).unwrap();
        t.acquire(Tid(2), Oid(1), INC, &table, None).unwrap();
        t.acquire(Tid(3), Oid(1), DEC, &table, None).unwrap();
        assert_eq!(t.holders(Oid(1)).len(), 3);
    }

    #[test]
    fn non_commuting_blocks() {
        let t = SemanticLockTable::new();
        let table = counter_table();
        t.acquire(Tid(1), Oid(1), INC, &table, None).unwrap();
        let err = t
            .acquire(Tid(2), Oid(1), OBS, &table, Some(Duration::from_millis(30)))
            .unwrap_err();
        assert!(matches!(err, AssetError::LockTimeout { .. }));
    }

    #[test]
    fn release_unblocks() {
        let t = Arc::new(SemanticLockTable::new());
        let table = counter_table();
        t.acquire(Tid(1), Oid(1), INC, &table, None).unwrap();
        let t2 = Arc::clone(&t);
        let h = std::thread::spawn(move || {
            t2.acquire(
                Tid(2),
                Oid(1),
                OBS,
                &counter_table(),
                Some(Duration::from_secs(5)),
            )
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(t.release_owner(Tid(1)), 1);
        h.join().unwrap().unwrap();
        assert_eq!(t.holders(Oid(1)), vec![(Tid(2), OBS)]);
    }

    #[test]
    fn same_owner_stacks_any_classes() {
        let t = SemanticLockTable::new();
        let table = counter_table();
        t.acquire(Tid(1), Oid(1), INC, &table, None).unwrap();
        t.acquire(Tid(1), Oid(1), OBS, &table, None).unwrap(); // own ops never self-block
        t.acquire(Tid(1), Oid(1), INC, &table, None).unwrap(); // re-entrant
        assert_eq!(t.release_owner(Tid(1)), 3);
    }

    #[test]
    fn exclusive_table_serializes_everything() {
        let t = SemanticLockTable::new();
        let table = CommutativityTable::exclusive();
        t.acquire(Tid(1), Oid(1), INC, &table, None).unwrap();
        assert!(t
            .acquire(Tid(2), Oid(1), INC, &table, Some(Duration::from_millis(20)))
            .is_err());
    }

    #[test]
    fn different_objects_do_not_interact() {
        let t = SemanticLockTable::new();
        let table = CommutativityTable::exclusive();
        t.acquire(Tid(1), Oid(1), INC, &table, None).unwrap();
        t.acquire(Tid(2), Oid(2), INC, &table, None).unwrap();
        assert_eq!(t.holders(Oid(1)).len(), 1);
        assert_eq!(t.holders(Oid(2)).len(), 1);
    }

    #[test]
    fn stats_track_grants_and_blocks() {
        let t = SemanticLockTable::new();
        let table = counter_table();
        t.acquire(Tid(1), Oid(1), INC, &table, None).unwrap();
        let _ = t.acquire(Tid(2), Oid(1), OBS, &table, Some(Duration::from_millis(10)));
        let s = t.stats();
        assert_eq!(s.grants, 1);
        assert_eq!(s.blocks, 1);
    }
}

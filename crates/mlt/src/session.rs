//! Multi-level transaction sessions: open nesting with logical undo.
//!
//! A *semantic operation* inside an MLT parent runs as an **open-nested
//! subtransaction** that commits immediately — its low-level object locks
//! are released at once, so other parents' commuting operations interleave
//! freely. In exchange:
//!
//! * the parent holds a **semantic lock** (non-commuting operations by
//!   other parents wait until the parent terminates), and
//! * physical before-image undo is replaced by **logical undo**: the
//!   operation registers an *inverse operation*, and a parent abort
//!   executes the inverses in reverse order (retried until they commit,
//!   like saga compensations — which is what they are, one level down).
//!
//! Everything is built from the ASSET primitives: the open-nested
//! subtransaction is `initiate`/`begin`/`commit` from inside the parent,
//! and the inverse execution mirrors the §3.1.6 compensation loop.

use crate::semantic::{CommutativityTable, OpClass, SemanticLockTable};
use asset_common::{AssetError, Oid, Result};
use asset_core::{Database, TxnCtx};
use asset_obs::{EventKind, ModelKind};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

type Inverse = Box<dyn Fn(&TxnCtx) -> Result<()> + Send + Sync>;

/// The in-flight state of one MLT parent.
pub struct MltSession<'a> {
    ctx: &'a TxnCtx,
    sem: Arc<SemanticLockTable>,
    inverses: Arc<Mutex<Vec<Inverse>>>,
    lock_timeout: Option<Duration>,
}

impl<'a> MltSession<'a> {
    /// The parent's transaction context (for plain, physically-undone
    /// reads/writes alongside the semantic operations).
    pub fn ctx(&self) -> &TxnCtx {
        self.ctx
    }

    /// Number of registered inverses (== committed semantic ops).
    pub fn pending_inverses(&self) -> usize {
        self.inverses.lock().len()
    }

    /// Execute one semantic operation of `class` on `ob`.
    ///
    /// Acquires the semantic lock (blocking while non-commuting holders
    /// exist), runs `action` as an open-nested subtransaction that commits
    /// immediately, and registers `inverse` for logical undo. `action`
    /// returning an error (or aborting itself) fails the operation without
    /// registering an inverse; the parent decides whether to continue.
    pub fn op<R: Send + 'static>(
        &self,
        ob: Oid,
        class: OpClass,
        table: &CommutativityTable,
        action: impl FnOnce(&TxnCtx) -> Result<R> + Send + 'static,
        inverse: impl Fn(&TxnCtx) -> Result<()> + Send + Sync + 'static,
    ) -> Result<R> {
        self.sem
            .acquire(self.ctx.id(), ob, class, table, self.lock_timeout)?;
        // open-nested subtransaction: commits (and releases its low-level
        // locks) right away
        let out: Arc<Mutex<Option<R>>> = Arc::new(Mutex::new(None));
        let out2 = Arc::clone(&out);
        let t = self.ctx.initiate(move |c| {
            let r = action(c)?;
            *out2.lock() = Some(r);
            Ok(())
        })?;
        self.ctx.begin(t)?;
        if !self.ctx.commit(t)? {
            return Err(AssetError::TxnAborted(t));
        }
        self.inverses.lock().push(Box::new(inverse));
        let r = out.lock().take().expect("committed op produced a value");
        Ok(r)
    }
}

/// Outcome of an MLT parent.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MltOutcome {
    /// Parent committed; all semantic operations are durable.
    Committed,
    /// Parent aborted; every committed semantic operation was logically
    /// undone by its inverse (in reverse order).
    Undone {
        /// Number of inverse operations executed.
        inverses_run: usize,
    },
}

/// Run `body` as a multi-level transaction over `sem`.
///
/// The body's plain `ctx()` reads/writes get ordinary ASSET treatment
/// (2PL + physical undo). Its semantic ops get open nesting + logical undo.
pub fn run_mlt(
    db: &Database,
    sem: &Arc<SemanticLockTable>,
    body: impl FnOnce(&MltSession<'_>) -> Result<()> + Send + 'static,
) -> Result<MltOutcome> {
    let inverses: Arc<Mutex<Vec<Inverse>>> = Arc::new(Mutex::new(Vec::new()));
    let inv2 = Arc::clone(&inverses);
    let sem2 = Arc::clone(sem);
    let timeout = Some(Duration::from_secs(10));

    let parent = db.initiate(move |ctx| {
        let session = MltSession {
            ctx,
            sem: sem2,
            inverses: inv2,
            lock_timeout: timeout,
        };
        body(&session)
    })?;
    db.obs().record(EventKind::Model {
        model: ModelKind::Mlt,
        tid: parent,
        label: "parent",
    });
    db.begin(parent)?;
    let committed = db.commit(parent)?;

    if committed {
        sem.release_owner(parent);
        Ok(MltOutcome::Committed)
    } else {
        // logical undo: run the inverses in reverse order, each retried
        // until it commits (the §3.1.6 compensation loop). The semantic
        // locks are still held by the (dead) parent, so no non-commuting
        // operation can slip between the failure and the undo.
        let to_undo: Vec<Inverse> = {
            let mut g = inverses.lock();
            g.drain(..).rev().collect()
        };
        let n = to_undo.len();
        for inverse in to_undo {
            let inverse = Arc::new(inverse);
            loop {
                let i2 = Arc::clone(&inverse);
                let ct = db.initiate(move |c| i2(c))?;
                db.begin(ct)?;
                if db.commit(ct)? {
                    break;
                }
            }
        }
        sem.release_owner(parent);
        Ok(MltOutcome::Undone { inverses_run: n })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantic::CommutativityTable;
    use asset_core::Handle;

    const INC: OpClass = OpClass(0);

    fn inc_table() -> CommutativityTable {
        CommutativityTable::exclusive().commuting(INC, INC)
    }

    fn setup(db: &Database, initial: i64) -> Handle<i64> {
        let h = Handle::from_oid(db.new_oid());
        assert!(db.run(move |ctx| ctx.put(h, &initial)).unwrap());
        h
    }

    fn value(db: &Database, h: Handle<i64>) -> i64 {
        i64::from_le_bytes(db.peek(h.oid()).unwrap().unwrap().try_into().unwrap())
    }

    #[test]
    fn committed_ops_are_durable() {
        let db = Database::in_memory();
        let sem = Arc::new(SemanticLockTable::new());
        let h = setup(&db, 0);
        let out = run_mlt(&db, &sem, move |mlt| {
            for _ in 0..3 {
                mlt.op(
                    h.oid(),
                    INC,
                    &inc_table(),
                    move |c| c.modify(h, |v| v + 10),
                    move |c| c.modify(h, |v| v - 10),
                )?;
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(out, MltOutcome::Committed);
        assert_eq!(value(&db, h), 30);
        assert!(sem.holders(h.oid()).is_empty(), "semantic locks released");
    }

    #[test]
    fn parent_abort_runs_inverses_in_reverse() {
        let db = Database::in_memory();
        let sem = Arc::new(SemanticLockTable::new());
        let h = setup(&db, 100);
        let trace = setup(&db, 0); // records inverse order: 1 then 2
        let out = run_mlt(&db, &sem, move |mlt| {
            mlt.op(
                h.oid(),
                INC,
                &inc_table(),
                move |c| c.modify(h, |v| v + 1),
                move |c| {
                    c.modify(h, |v| v - 1)?;
                    c.modify(trace, |t| t * 10 + 1)
                },
            )?;
            mlt.op(
                h.oid(),
                INC,
                &inc_table(),
                move |c| c.modify(h, |v| v + 2),
                move |c| {
                    c.modify(h, |v| v - 2)?;
                    c.modify(trace, |t| t * 10 + 2)
                },
            )?;
            mlt.ctx().abort_self::<()>().map(|_| ())
        })
        .unwrap();
        assert_eq!(out, MltOutcome::Undone { inverses_run: 2 });
        assert_eq!(value(&db, h), 100, "logically undone");
        assert_eq!(
            value(&db, trace),
            21,
            "inverse of op2 ran before inverse of op1"
        );
    }

    #[test]
    fn failed_op_registers_no_inverse() {
        let db = Database::in_memory();
        let sem = Arc::new(SemanticLockTable::new());
        let h = setup(&db, 5);
        let out = run_mlt(&db, &sem, move |mlt| {
            // op aborts itself: no inverse must be registered
            let r = mlt.op(
                h.oid(),
                INC,
                &inc_table(),
                move |c| c.abort_self::<()>(),
                move |c| c.modify(h, |v| v - 999),
            );
            assert!(r.is_err());
            assert_eq!(mlt.pending_inverses(), 0);
            Ok(())
        })
        .unwrap();
        assert_eq!(out, MltOutcome::Committed);
        assert_eq!(value(&db, h), 5);
    }

    #[test]
    fn op_returns_values() {
        let db = Database::in_memory();
        let sem = Arc::new(SemanticLockTable::new());
        let h = setup(&db, 7);
        run_mlt(&db, &sem, move |mlt| {
            let seen: i64 = mlt.op(
                h.oid(),
                INC,
                &inc_table(),
                move |c| {
                    c.modify(h, |v| v + 1)?;
                    Ok(c.get(h)?.unwrap())
                },
                move |c| c.modify(h, |v| v - 1),
            )?;
            assert_eq!(seen, 8);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn commuting_parents_interleave_ops() {
        // two MLT parents increment the same counter concurrently; with a
        // flat ASSET transaction one would block for the other's entire
        // lifetime. Here each op's low-level lock is released at op commit.
        let db = Database::in_memory();
        let sem = Arc::new(SemanticLockTable::new());
        let h = setup(&db, 0);
        let barrier = Arc::new(std::sync::Barrier::new(2));
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let db = db.clone();
                let sem = Arc::clone(&sem);
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    let out = run_mlt(&db, &sem, move |mlt| {
                        for _ in 0..10 {
                            mlt.op(
                                h.oid(),
                                INC,
                                &inc_table(),
                                move |c| c.modify(h, |v| v + 1),
                                move |c| c.modify(h, |v| v - 1),
                            )?;
                            barrier.wait(); // forces true interleaving
                        }
                        Ok(())
                    })
                    .unwrap();
                    assert_eq!(out, MltOutcome::Committed);
                });
            }
        });
        assert_eq!(value(&db, h), 20, "no lost updates, full interleaving");
    }

    #[test]
    fn one_parents_abort_leaves_others_work() {
        // parent A increments and aborts; parent B increments and commits.
        // Physical before-image undo would wipe B's increment (the paper's
        // §4.2 caveat); logical undo preserves it.
        let db = Database::in_memory();
        let sem = Arc::new(SemanticLockTable::new());
        let h = setup(&db, 0);
        let out_a = run_mlt(&db, &sem, move |mlt| {
            mlt.op(
                h.oid(),
                INC,
                &inc_table(),
                move |c| c.modify(h, |v| v + 5),
                move |c| c.modify(h, |v| v - 5),
            )?;
            mlt.ctx().abort_self::<()>().map(|_| ())
        })
        .unwrap();
        assert_eq!(out_a, MltOutcome::Undone { inverses_run: 1 });
        let out_b = run_mlt(&db, &sem, move |mlt| {
            mlt.op(
                h.oid(),
                INC,
                &inc_table(),
                move |c| c.modify(h, |v| v + 7),
                move |c| c.modify(h, |v| v - 7),
            )?;
            Ok(())
        })
        .unwrap();
        assert_eq!(out_b, MltOutcome::Committed);
        assert_eq!(value(&db, h), 7, "A's undo did not clobber B");
    }
}

//! An escrow counter: the canonical semantically-concurrent object.
//!
//! Increments and decrements commute with each other, so any number of MLT
//! parents may adjust the counter concurrently; only *observing* the value
//! conflicts. Bounded decrement enforces a floor: because each decrement's
//! open-nested operation serializes physically on the object for an
//! instant, the check always sees the true committed value — the counter
//! can never be driven below the floor, no matter how many parents race.

use crate::semantic::{CommutativityTable, OpClass};
use crate::session::MltSession;
use asset_common::{AssetError, Result};
use asset_core::{Database, Handle};

/// Operation class: increment.
pub const INC: OpClass = OpClass(0);
/// Operation class: decrement.
pub const DEC: OpClass = OpClass(1);
/// Operation class: observe (read the exact value).
pub const OBS: OpClass = OpClass(2);

/// The commutativity table for counters: adjustments commute with each
/// other; observation only with itself.
pub fn counter_commutativity() -> CommutativityTable {
    CommutativityTable::exclusive()
        .commuting(INC, INC)
        .commuting(DEC, DEC)
        .commuting(INC, DEC)
        .commuting(OBS, OBS)
}

/// A persistent counter with escrow semantics under MLT.
#[derive(Clone, Copy, Debug)]
pub struct EscrowCounter {
    handle: Handle<i64>,
}

impl EscrowCounter {
    /// Create a counter with `initial` value (runs its own transaction).
    pub fn create(db: &Database, initial: i64) -> Result<EscrowCounter> {
        let handle = Handle::from_oid(db.new_oid());
        let ok = db.run(move |ctx| ctx.put(handle, &initial))?;
        if !ok {
            return Err(AssetError::TxnAborted(asset_common::Tid::NULL));
        }
        Ok(EscrowCounter { handle })
    }

    /// Wrap an existing counter object.
    pub fn wrap(handle: Handle<i64>) -> EscrowCounter {
        EscrowCounter { handle }
    }

    /// The underlying typed handle.
    pub fn handle(&self) -> Handle<i64> {
        self.handle
    }

    /// Add `delta` (positive increment). Commutes with other adjustments.
    pub fn add(&self, mlt: &MltSession<'_>, delta: i64) -> Result<()> {
        let h = self.handle;
        mlt.op(
            h.oid(),
            INC,
            &counter_commutativity(),
            move |c| c.modify(h, |v| v + delta),
            move |c| c.modify(h, |v| v - delta),
        )
    }

    /// Subtract `delta`, failing (without effect) if the result would fall
    /// below `floor`. The open-nested check-and-decrement is atomic at the
    /// object level, so the floor holds under any concurrency.
    pub fn sub_bounded(&self, mlt: &MltSession<'_>, delta: i64, floor: i64) -> Result<()> {
        let h = self.handle;
        mlt.op(
            h.oid(),
            DEC,
            &counter_commutativity(),
            move |c| {
                // write-lock first: avoids the read->write upgrade deadlock
                // between concurrent decrement operations
                c.lock_exclusive(h.oid())?;
                let v = c.get(h)?.ok_or(AssetError::ObjectNotFound(h.oid()))?;
                if v - delta < floor {
                    return c.abort_self(); // insufficient escrow
                }
                c.put(h, &(v - delta))
            },
            move |c| c.modify(h, |v| v + delta),
        )
    }

    /// Observe the exact value (conflicts with in-flight adjustments by
    /// other parents — they must terminate first).
    pub fn observe(&self, mlt: &MltSession<'_>) -> Result<i64> {
        let h = self.handle;
        mlt.op(
            h.oid(),
            OBS,
            &counter_commutativity(),
            move |c| c.get(h)?.ok_or(AssetError::ObjectNotFound(h.oid())),
            |_| Ok(()), // observation needs no undo
        )
    }

    /// Committed value, outside any transaction (diagnostics).
    pub fn peek(&self, db: &Database) -> i64 {
        db.peek(self.handle.oid())
            .ok()
            .flatten()
            .map(|b| i64::from_le_bytes(b.try_into().expect("i64 counter")))
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantic::SemanticLockTable;
    use crate::session::{run_mlt, MltOutcome};
    use std::sync::Arc;

    #[test]
    fn concurrent_adds_all_land() {
        let db = Database::in_memory();
        let sem = Arc::new(SemanticLockTable::new());
        let counter = EscrowCounter::create(&db, 0).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let db = db.clone();
                let sem = Arc::clone(&sem);
                scope.spawn(move || {
                    let out = run_mlt(&db, &sem, move |mlt| {
                        for _ in 0..25 {
                            counter.add(mlt, 1)?;
                        }
                        Ok(())
                    })
                    .unwrap();
                    assert_eq!(out, MltOutcome::Committed);
                });
            }
        });
        assert_eq!(counter.peek(&db), 100);
    }

    #[test]
    fn escrow_floor_holds_under_concurrency() {
        let db = Database::in_memory();
        let sem = Arc::new(SemanticLockTable::new());
        let counter = EscrowCounter::create(&db, 10).unwrap();
        let granted = Arc::new(std::sync::atomic::AtomicI64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let db = db.clone();
                let sem = Arc::clone(&sem);
                let granted = Arc::clone(&granted);
                scope.spawn(move || {
                    for _ in 0..10 {
                        let g2 = Arc::clone(&granted);
                        let _ = run_mlt(&db, &sem, move |mlt| {
                            if counter.sub_bounded(mlt, 1, 0).is_ok() {
                                g2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                            }
                            Ok(())
                        })
                        .unwrap();
                    }
                });
            }
        });
        let final_value = counter.peek(&db);
        let granted = granted.load(std::sync::atomic::Ordering::SeqCst);
        assert!(final_value >= 0, "floor never violated: {final_value}");
        assert_eq!(final_value + granted, 10, "units conserved");
        assert_eq!(granted, 10, "exactly the escrow was handed out");
    }

    #[test]
    fn abort_refunds_via_inverse() {
        let db = Database::in_memory();
        let sem = Arc::new(SemanticLockTable::new());
        let counter = EscrowCounter::create(&db, 50).unwrap();
        let out = run_mlt(&db, &sem, move |mlt| {
            counter.sub_bounded(mlt, 20, 0)?;
            counter.add(mlt, 5)?;
            mlt.ctx().abort_self::<()>().map(|_| ())
        })
        .unwrap();
        assert_eq!(out, MltOutcome::Undone { inverses_run: 2 });
        assert_eq!(counter.peek(&db), 50);
    }

    #[test]
    fn failed_sub_has_no_effect_and_parent_continues() {
        let db = Database::in_memory();
        let sem = Arc::new(SemanticLockTable::new());
        let counter = EscrowCounter::create(&db, 3).unwrap();
        let out = run_mlt(&db, &sem, move |mlt| {
            assert!(
                counter.sub_bounded(mlt, 10, 0).is_err(),
                "insufficient escrow"
            );
            counter.add(mlt, 2)?; // parent continues after the failed op
            Ok(())
        })
        .unwrap();
        assert_eq!(out, MltOutcome::Committed);
        assert_eq!(counter.peek(&db), 5);
    }

    #[test]
    fn observe_blocks_while_adjusters_are_live() {
        let db = Database::in_memory();
        let sem = Arc::new(SemanticLockTable::new());
        let counter = EscrowCounter::create(&db, 0).unwrap();
        let gate = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let g2 = Arc::clone(&gate);
        let sem2 = Arc::clone(&sem);
        let db2 = db.clone();
        let adjuster = std::thread::spawn(move || {
            run_mlt(&db2, &sem2, move |mlt| {
                counter.add(mlt, 1)?;
                while !g2.load(std::sync::atomic::Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                Ok(())
            })
            .unwrap()
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        // an observer now: must block on the semantic lock (INC vs OBS)
        let db3 = db.clone();
        let sem3 = Arc::clone(&sem);
        let observer = std::thread::spawn(move || {
            run_mlt(&db3, &sem3, move |mlt| {
                let v = counter.observe(mlt)?;
                assert_eq!(
                    v, 1,
                    "observer saw the adjuster's committed op only after it finished"
                );
                Ok(())
            })
            .unwrap()
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        gate.store(true, std::sync::atomic::Ordering::SeqCst);
        assert_eq!(adjuster.join().unwrap(), MltOutcome::Committed);
        assert_eq!(observer.join().unwrap(), MltOutcome::Committed);
    }
}

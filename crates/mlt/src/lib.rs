//! # asset-mlt
//!
//! Multi-level transactions with semantic concurrency control — the ASSET
//! paper's §5 future-work direction ("exploit the concurrency semantics
//! inherent in objects ... Concepts and mechanisms from Multi-level
//! transactions [Weikum, ref 23] will come into play"), realized on top of
//! the ASSET primitives:
//!
//! * [`semantic`] — a lock table whose modes are *operation classes* and
//!   whose conflicts are *non-commutativity*;
//! * [`session`] — open-nested semantic operations (each commits
//!   immediately, releasing its low-level locks) with **logical undo**
//!   (inverse operations run on parent abort, in reverse order — the saga
//!   compensation loop one level down);
//! * [`counter`] — an escrow counter (increments/decrements commute;
//!   bounded decrement never violates its floor under any concurrency);
//! * [`department`] — the paper's own example: hiring a new employee and
//!   raising an existing employee's salary commute.

#![warn(missing_docs)]

pub mod counter;
pub mod department;
pub mod semantic;
pub mod session;

pub use counter::EscrowCounter;
pub use department::Department;
pub use semantic::{CommutativityTable, OpClass, SemanticLockTable, SemanticStats};
pub use session::{run_mlt, MltOutcome, MltSession};

//! The paper's own §5 example: *"operations to increase an existing
//! employee's salary and to add a new employee to a department commute"*.
//!
//! A `Department` is one persistent object holding its employee roster.
//! Under plain ASSET locking, any two updates to the department conflict.
//! Under MLT, `add_employee` and `raise_salary` are declared commuting
//! operation classes, so hiring and a raise proceed concurrently even in
//! different long-lived parents — with logical undo (fire the hire, lower
//! the raise) if a parent aborts.

use crate::semantic::{CommutativityTable, OpClass};
use crate::session::MltSession;
use asset_common::{AssetError, Result};
use asset_core::{Database, Handle};

/// Operation class: add a new employee.
pub const ADD_EMPLOYEE: OpClass = OpClass(0);
/// Operation class: raise an existing employee's salary.
pub const RAISE_SALARY: OpClass = OpClass(1);
/// Operation class: read the roster (payroll report).
pub const READ_ROSTER: OpClass = OpClass(2);

/// Commutativity: hiring and raises commute with themselves and each
/// other (they touch different parts of the object, or append); reading
/// the roster conflicts with both.
pub fn department_commutativity() -> CommutativityTable {
    CommutativityTable::exclusive()
        .commuting(ADD_EMPLOYEE, ADD_EMPLOYEE)
        .commuting(RAISE_SALARY, RAISE_SALARY)
        .commuting(ADD_EMPLOYEE, RAISE_SALARY)
        .commuting(READ_ROSTER, READ_ROSTER)
}

type Roster = Vec<(String, u64)>;

/// A department object: a persistent employee roster.
#[derive(Clone, Copy, Debug)]
pub struct Department {
    handle: Handle<Roster>,
}

impl Department {
    /// Create an empty department.
    pub fn create(db: &Database) -> Result<Department> {
        let handle = Handle::from_oid(db.new_oid());
        let ok = db.run(move |ctx| ctx.put(handle, &Roster::new()))?;
        if !ok {
            return Err(AssetError::TxnAborted(asset_common::Tid::NULL));
        }
        Ok(Department { handle })
    }

    /// Hire `name` at `salary`. Fails if the name is taken. Inverse: fire.
    pub fn add_employee(
        &self,
        mlt: &MltSession<'_>,
        name: impl Into<String>,
        salary: u64,
    ) -> Result<()> {
        let h = self.handle;
        let name = name.into();
        let name2 = name.clone();
        mlt.op(
            h.oid(),
            ADD_EMPLOYEE,
            &department_commutativity(),
            move |c| {
                c.lock_exclusive(h.oid())?; // no read->write upgrade window
                let mut roster = c.get(h)?.unwrap_or_default();
                if roster.iter().any(|(n, _)| *n == name) {
                    return c.abort_self(); // duplicate hire
                }
                roster.push((name, salary));
                c.put(h, &roster)
            },
            move |c| {
                c.lock_exclusive(h.oid())?;
                let mut roster = c.get(h)?.unwrap_or_default();
                roster.retain(|(n, _)| *n != name2);
                c.put(h, &roster)
            },
        )
    }

    /// Raise `name`'s salary by `amount`. Fails if absent. Inverse: lower.
    pub fn raise_salary(
        &self,
        mlt: &MltSession<'_>,
        name: impl Into<String>,
        amount: u64,
    ) -> Result<()> {
        let h = self.handle;
        let name = name.into();
        let name2 = name.clone();
        mlt.op(
            h.oid(),
            RAISE_SALARY,
            &department_commutativity(),
            move |c| {
                c.lock_exclusive(h.oid())?; // no read->write upgrade window
                let mut roster = c.get(h)?.unwrap_or_default();
                match roster.iter_mut().find(|(n, _)| *n == name) {
                    Some((_, s)) => *s += amount,
                    None => return c.abort_self(),
                }
                c.put(h, &roster)
            },
            move |c| {
                c.lock_exclusive(h.oid())?;
                let mut roster = c.get(h)?.unwrap_or_default();
                if let Some((_, s)) = roster.iter_mut().find(|(n, _)| *n == name2) {
                    *s = s.saturating_sub(amount);
                }
                c.put(h, &roster)
            },
        )
    }

    /// Read the roster (payroll): conflicts with in-flight hires/raises.
    pub fn roster(&self, mlt: &MltSession<'_>) -> Result<Roster> {
        let h = self.handle;
        mlt.op(
            h.oid(),
            READ_ROSTER,
            &department_commutativity(),
            move |c| Ok(c.get(h)?.unwrap_or_default()),
            |_| Ok(()),
        )
    }

    /// Committed roster, outside any transaction (diagnostics).
    pub fn peek(&self, db: &Database) -> Roster {
        use asset_core::ObjectCodec;
        db.peek(self.handle.oid())
            .ok()
            .flatten()
            .and_then(|b| Roster::decode(&b).ok())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantic::SemanticLockTable;
    use crate::session::{run_mlt, MltOutcome};
    use std::sync::Arc;

    #[test]
    fn hire_and_raise_in_one_parent() {
        let db = Database::in_memory();
        let sem = Arc::new(SemanticLockTable::new());
        let dept = Department::create(&db).unwrap();
        let out = run_mlt(&db, &sem, move |mlt| {
            dept.add_employee(mlt, "ada", 100)?;
            dept.add_employee(mlt, "grace", 110)?;
            dept.raise_salary(mlt, "ada", 20)?;
            Ok(())
        })
        .unwrap();
        assert_eq!(out, MltOutcome::Committed);
        let roster = dept.peek(&db);
        assert_eq!(roster.len(), 2);
        assert!(roster.contains(&("ada".into(), 120)));
    }

    #[test]
    fn the_papers_commuting_pair_runs_concurrently() {
        // one parent hires, another gives a raise — the §5 example.
        let db = Database::in_memory();
        let sem = Arc::new(SemanticLockTable::new());
        let dept = Department::create(&db).unwrap();
        assert_eq!(
            run_mlt(&db, &sem, move |mlt| dept.add_employee(mlt, "ada", 100)).unwrap(),
            MltOutcome::Committed
        );
        let barrier = Arc::new(std::sync::Barrier::new(2));
        std::thread::scope(|scope| {
            let db1 = db.clone();
            let sem1 = Arc::clone(&sem);
            let b1 = Arc::clone(&barrier);
            scope.spawn(move || {
                let out = run_mlt(&db1, &sem1, move |mlt| {
                    dept.add_employee(mlt, "grace", 110)?;
                    b1.wait(); // both parents hold their semantic locks here
                    Ok(())
                })
                .unwrap();
                assert_eq!(out, MltOutcome::Committed);
            });
            let db2 = db.clone();
            let sem2 = Arc::clone(&sem);
            let b2 = Arc::clone(&barrier);
            scope.spawn(move || {
                let out = run_mlt(&db2, &sem2, move |mlt| {
                    dept.raise_salary(mlt, "ada", 25)?;
                    b2.wait(); // would deadlock if the classes conflicted
                    Ok(())
                })
                .unwrap();
                assert_eq!(out, MltOutcome::Committed);
            });
        });
        let roster = dept.peek(&db);
        assert_eq!(roster.len(), 2);
        assert!(roster.contains(&("ada".into(), 125)));
        assert!(roster.contains(&("grace".into(), 110)));
    }

    #[test]
    fn aborted_hiring_spree_is_fired_again() {
        let db = Database::in_memory();
        let sem = Arc::new(SemanticLockTable::new());
        let dept = Department::create(&db).unwrap();
        assert_eq!(
            run_mlt(&db, &sem, move |mlt| dept.add_employee(mlt, "ada", 100)).unwrap(),
            MltOutcome::Committed
        );
        let out = run_mlt(&db, &sem, move |mlt| {
            dept.add_employee(mlt, "bob", 90)?;
            dept.raise_salary(mlt, "ada", 50)?;
            mlt.ctx().abort_self::<()>().map(|_| ())
        })
        .unwrap();
        assert_eq!(out, MltOutcome::Undone { inverses_run: 2 });
        let roster = dept.peek(&db);
        assert_eq!(
            roster,
            vec![("ada".to_string(), 100)],
            "hire undone, raise undone"
        );
    }

    #[test]
    fn duplicate_hire_fails_cleanly() {
        let db = Database::in_memory();
        let sem = Arc::new(SemanticLockTable::new());
        let dept = Department::create(&db).unwrap();
        let out = run_mlt(&db, &sem, move |mlt| {
            dept.add_employee(mlt, "ada", 100)?;
            assert!(dept.add_employee(mlt, "ada", 200).is_err());
            Ok(())
        })
        .unwrap();
        assert_eq!(out, MltOutcome::Committed);
        assert_eq!(dept.peek(&db), vec![("ada".to_string(), 100)]);
    }

    #[test]
    fn payroll_report_is_consistent() {
        let db = Database::in_memory();
        let sem = Arc::new(SemanticLockTable::new());
        let dept = Department::create(&db).unwrap();
        run_mlt(&db, &sem, move |mlt| {
            dept.add_employee(mlt, "ada", 100)?;
            dept.add_employee(mlt, "grace", 110)
        })
        .unwrap();
        let out = run_mlt(&db, &sem, move |mlt| {
            let roster = dept.roster(mlt)?;
            let total: u64 = roster.iter().map(|(_, s)| s).sum();
            assert_eq!(total, 210);
            Ok(())
        })
        .unwrap();
        assert_eq!(out, MltOutcome::Committed);
    }
}

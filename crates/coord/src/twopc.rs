//! Classic two-phase commit (DESIGN.md §14.4).
//!
//! Phase 1 collects a vote from every member node; the decision —
//! commit iff every vote is yes — is forced to the **coordinator log**
//! before phase 2 delivers it. Presumed abort: a global transaction
//! with no logged decision aborts on recovery, so only the commit
//! window needs the force.
//!
//! 2PC is **blocking**: between a participant's yes vote and the
//! decision's arrival, the participant can do nothing but hold its
//! locks; if the coordinator (and its log) stays unreachable, that
//! window is unbounded. E17 measures it; [`crate::PaxosCommit`] removes
//! it.

use crate::failpoints::{COORD_AFTER_DECIDE, COORD_BEFORE_DECIDE};
use crate::transport::{CommitMessage, CommitTransport, CoordError};
use crate::{coord_send, terminate, CoordObs, Decision, GlobalTxn};
use asset_common::Tid;
use asset_dep::NodeId;
use asset_faults::{FaultAction, FaultRegistry};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// The coordinator's durable decision log: `gid → decision`, forced
/// before any participant learns the outcome. On disk each record is 9
/// bytes (`u64` gid LE + decision byte, `synced` per record); an
/// in-memory variant backs tests that crash participants but not the
/// coordinator.
pub struct CoordLog {
    file: Option<Mutex<File>>,
    mem: Mutex<BTreeMap<u64, Decision>>,
}

impl CoordLog {
    /// A volatile log (coordinator crashes lose it — which is exactly
    /// the blocking scenario, so crash matrices use [`CoordLog::at`]).
    pub fn in_memory() -> CoordLog {
        CoordLog {
            file: None,
            mem: Mutex::new(BTreeMap::new()),
        }
    }

    /// Open (or create) the durable log at `path`, replaying existing
    /// records. A torn 9-byte tail (crash mid-append) is ignored — the
    /// decision it would have recorded was never acknowledged.
    pub fn at(path: &Path) -> std::io::Result<CoordLog> {
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let mut mem = BTreeMap::new();
        for rec in bytes.chunks_exact(9) {
            // verify: allow(no_panics) — chunks_exact yields 9 bytes
            let gid = u64::from_le_bytes(rec[..8].try_into().expect("8 bytes"));
            let d = if rec[8] == 1 {
                Decision::Commit
            } else {
                Decision::Abort
            };
            mem.insert(gid, d);
        }
        Ok(CoordLog {
            file: Some(Mutex::new(file)),
            mem: Mutex::new(mem),
        })
    }

    /// Force `gid → decision`. Idempotent: re-recording the same
    /// decision is a no-op; recording a *different* one is a logic
    /// error and panics (a decision, once durable, is immutable).
    pub fn record(&self, gid: u64, decision: Decision) -> std::io::Result<()> {
        {
            let mut mem = self.mem.lock();
            if let Some(prev) = mem.get(&gid) {
                assert_eq!(
                    *prev, decision,
                    "decision for gid {gid} is immutable once recorded"
                );
                return Ok(());
            }
            mem.insert(gid, decision);
        }
        if let Some(file) = &self.file {
            let mut f = file.lock();
            let mut rec = gid.to_le_bytes().to_vec();
            rec.push(if decision == Decision::Commit { 1 } else { 0 });
            f.write_all(&rec)?;
            f.sync_data()?;
        }
        Ok(())
    }

    /// The recorded decision for `gid`, if any.
    pub fn decision(&self, gid: u64) -> Option<Decision> {
        self.mem.lock().get(&gid).copied()
    }
}

/// A two-phase-commit coordinator over a [`CommitTransport`].
pub struct TwoPhase {
    transport: Arc<dyn CommitTransport>,
    log: Arc<CoordLog>,
    faults: Arc<FaultRegistry>,
    obs: Option<CoordObs>,
}

impl TwoPhase {
    /// A coordinator speaking through `transport`, deciding into `log`.
    pub fn new(transport: Arc<dyn CommitTransport>, log: Arc<CoordLog>) -> TwoPhase {
        TwoPhase {
            transport,
            log,
            faults: Arc::new(FaultRegistry::new()),
            obs: None,
        }
    }

    /// Builder-style: script coordinator crashes through `faults` (arm
    /// [`COORD_BEFORE_DECIDE`] / [`COORD_AFTER_DECIDE`]).
    pub fn with_faults(mut self, faults: Arc<FaultRegistry>) -> TwoPhase {
        self.faults = faults;
        self
    }

    /// Builder-style: record coordinator-side observability into `co` —
    /// `coord_msg_*` counters, the `decision_ns` histogram, and (with
    /// tracing enabled on the hub) `MsgSend`/`MsgAck` events plus a
    /// trace context on every message (DESIGN.md §7.2).
    pub fn with_obs(mut self, co: CoordObs) -> TwoPhase {
        self.obs = Some(co);
        self
    }

    fn send(&self, gid: u64, node: usize, msg: CommitMessage) -> Result<CommitMessage, CoordError> {
        coord_send(self.transport.as_ref(), self.obs.as_ref(), gid, node, msg)
    }

    /// The decision log (a recovery coordinator reuses it).
    pub fn log(&self) -> &Arc<CoordLog> {
        &self.log
    }

    /// Drive `txn` to a decision: prepare every member node, force the
    /// decision, deliver it. Returns the decision; delivery is
    /// best-effort per node (the decision is durable, so
    /// [`recover`](Self::recover) re-delivers to anyone that missed
    /// it).
    pub fn commit(&self, txn: &GlobalTxn) -> Result<Decision, CoordError> {
        let started = Instant::now();
        let members = txn.members();
        // --- phase 1: collect votes -----------------------------------
        let mut prepared: Vec<(NodeId, Vec<Tid>)> = Vec::new();
        let mut all_yes = true;
        for (node, tids) in &members {
            let sent = self.send(
                txn.gid,
                node.0 as usize,
                CommitMessage::Prepare { tids: tids.clone() },
            );
            match sent {
                Ok(CommitMessage::Vote { yes: true, group }) => prepared.push((*node, group)),
                Ok(CommitMessage::Vote { yes: false, .. }) => {
                    all_yes = false;
                    break;
                }
                Ok(other) => return Err(CoordError::protocol("vote", &other)),
                Err(_) => {
                    // unreachable node: vote no on its behalf
                    all_yes = false;
                    break;
                }
            }
        }
        // --- the blocking window: votes in, nothing durable -----------
        if let Some(act) = self.faults.check(COORD_BEFORE_DECIDE) {
            return Err(self.realize(COORD_BEFORE_DECIDE, act));
        }
        let decision = if all_yes {
            Decision::Commit
        } else {
            Decision::Abort
        };
        self.log.record(txn.gid, decision)?;
        if let Some(co) = &self.obs {
            // decision latency: first prepare sent → decision durable
            co.obs()
                .decision_ns
                .record(started.elapsed().as_nanos() as u64);
        }
        if let Some(act) = self.faults.check(COORD_AFTER_DECIDE) {
            return Err(self.realize(COORD_AFTER_DECIDE, act));
        }
        // --- phase 2: deliver -----------------------------------------
        for (node, group) in &prepared {
            let msg = match decision {
                Decision::Commit => CommitMessage::CommitDecide {
                    tids: group.clone(),
                },
                Decision::Abort => CommitMessage::AbortDecide {
                    tids: group.clone(),
                },
            };
            // best-effort: a dropped decide leaves the node prepared;
            // recover() re-delivers
            // verify: allow(status_flow) — decision is durable; recover() re-delivers lost decides
            let _ = self.send(txn.gid, node.0 as usize, msg);
        }
        if decision == Decision::Abort {
            // members that never prepared (no-voters, unreachable
            // nodes) may still have live transactions: abort them too
            for (node, tids) in &members {
                if !prepared.iter().any(|(n, _)| n == node) {
                    // verify: allow(status_flow) — abort decide is best-effort; participants time out
                    let _ = self.send(
                        txn.gid,
                        node.0 as usize,
                        CommitMessage::AbortDecide { tids: tids.clone() },
                    );
                }
            }
        }
        Ok(decision)
    }

    /// Recovery coordinator: finish `txn` from the durable log alone.
    /// A logged decision is re-delivered (cooperative termination); no
    /// logged decision means the crash preceded the decision point and
    /// the transaction is **presumed aborted** — the abort is made
    /// explicit in the log, then delivered.
    pub fn recover(&self, txn: &GlobalTxn) -> Result<Decision, CoordError> {
        let decision = self.log.decision(txn.gid).unwrap_or(Decision::Abort);
        self.log.record(txn.gid, decision)?;
        terminate(
            self.transport.as_ref(),
            self.obs.as_ref(),
            txn.gid,
            &txn.members(),
            decision,
        )?;
        Ok(decision)
    }

    fn realize(&self, point: &'static str, act: FaultAction) -> CoordError {
        match act {
            FaultAction::Crash | FaultAction::Torn { .. } => self.faults.crash_now(point),
            _ => CoordError::Io(asset_faults::injected(point)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::{mem_nodes, stage};
    use crate::transport::ChannelTransport;
    use crate::ParticipantState;

    fn coordinator(nodes: usize) -> (TwoPhase, Arc<ChannelTransport>, Vec<asset_common::Oid>) {
        let nodes = mem_nodes(nodes);
        let oids = nodes.iter().map(|n| n.db().new_oid()).collect();
        let transport = Arc::new(ChannelTransport::new(nodes));
        let coord = TwoPhase::new(transport.clone(), Arc::new(CoordLog::in_memory()));
        (coord, transport, oids)
    }

    #[test]
    fn unanimous_yes_commits_everywhere() {
        let (coord, transport, oids) = coordinator(3);
        let mut g = GlobalTxn::new(1);
        for (i, oid) in oids.iter().enumerate() {
            let t = stage(transport.node(i), *oid, b"paid");
            g.add_member(i as u32, t);
        }
        assert_eq!(coord.commit(&g).unwrap(), Decision::Commit);
        for (i, oid) in oids.iter().enumerate() {
            assert_eq!(transport.node(i).db().peek(*oid).unwrap().unwrap(), b"paid");
        }
    }

    #[test]
    fn one_no_vote_aborts_everywhere() {
        let (coord, transport, oids) = coordinator(3);
        let mut g = GlobalTxn::new(2);
        for (i, oid) in oids.iter().enumerate() {
            let t = stage(transport.node(i), *oid, b"doomed");
            g.add_member(i as u32, t);
            if i == 1 {
                // node 1's member aborts before prepare: it will vote no
                transport.node(i).db().abort(t).unwrap();
            }
        }
        assert_eq!(coord.commit(&g).unwrap(), Decision::Abort);
        for (i, oid) in oids.iter().enumerate() {
            assert_eq!(
                transport.node(i).db().peek(*oid).unwrap(),
                None,
                "no effect survives a global abort (node {i})"
            );
        }
    }

    #[test]
    fn recovery_with_no_logged_decision_presumes_abort() {
        let (coord, transport, oids) = coordinator(2);
        let mut g = GlobalTxn::new(3);
        for (i, oid) in oids.iter().enumerate() {
            let t = stage(transport.node(i), *oid, b"blocked");
            g.add_member(i as u32, t);
        }
        // crash before the decision: votes collected, nothing logged
        let faults = Arc::new(FaultRegistry::new());
        faults.arm(
            COORD_BEFORE_DECIDE,
            asset_faults::Trigger::Once,
            FaultAction::Error,
        );
        let coord = TwoPhase {
            faults,
            ..TwoPhase::new(transport.clone(), coord.log.clone())
        };
        assert!(coord.commit(&g).is_err());
        // both participants are prepared — in doubt, locks held
        for i in 0..2 {
            let db = transport.node(i).db();
            assert_eq!(db.in_doubt_transactions().len(), 1, "node {i} in doubt");
        }
        // a recovery coordinator with the same (empty) log presumes abort
        assert_eq!(coord.recover(&g).unwrap(), Decision::Abort);
        for (i, oid) in oids.iter().enumerate() {
            assert_eq!(transport.node(i).db().peek(*oid).unwrap(), None);
            assert!(transport.node(i).db().in_doubt_transactions().is_empty());
        }
    }

    #[test]
    fn recovery_after_logged_decision_redelivers_commit() {
        let (coord, transport, oids) = coordinator(2);
        let mut g = GlobalTxn::new(4);
        for (i, oid) in oids.iter().enumerate() {
            let t = stage(transport.node(i), *oid, b"landed");
            g.add_member(i as u32, t);
        }
        let faults = Arc::new(FaultRegistry::new());
        faults.arm(
            COORD_AFTER_DECIDE,
            asset_faults::Trigger::Once,
            FaultAction::Error,
        );
        let coord = TwoPhase {
            faults,
            ..TwoPhase::new(transport.clone(), coord.log.clone())
        };
        // decision logged, delivery never happened
        assert!(coord.commit(&g).is_err());
        assert_eq!(coord.log().decision(4), Some(Decision::Commit));
        assert_eq!(coord.recover(&g).unwrap(), Decision::Commit);
        for (i, oid) in oids.iter().enumerate() {
            assert_eq!(
                transport.node(i).db().peek(*oid).unwrap().unwrap(),
                b"landed"
            );
        }
        // idempotent: a second recovery changes nothing
        assert_eq!(coord.recover(&g).unwrap(), Decision::Commit);
    }

    #[test]
    fn dropped_decide_message_leaves_node_prepared_until_recovery() {
        let nodes = mem_nodes(2);
        let oids: Vec<_> = nodes.iter().map(|n| n.db().new_oid()).collect();
        let msg_faults = Arc::new(FaultRegistry::new());
        let transport = Arc::new(ChannelTransport::new(nodes).with_faults(Arc::clone(&msg_faults)));
        let coord = TwoPhase::new(transport.clone(), Arc::new(CoordLog::in_memory()));
        let mut g = GlobalTxn::new(5);
        for (i, oid) in oids.iter().enumerate() {
            let t = stage(transport.node(i), *oid, b"late");
            g.add_member(i as u32, t);
        }
        // drop the first decide (node 0's); node 1 still gets its
        msg_faults.arm(
            crate::failpoints::MSG_DECIDE_DROP,
            asset_faults::Trigger::Once,
            FaultAction::Error,
        );
        assert_eq!(coord.commit(&g).unwrap(), Decision::Commit);
        let db0 = transport.node(0).db();
        assert_eq!(db0.in_doubt_transactions().len(), 1, "decide was dropped");
        assert_eq!(
            transport.node(1).db().peek(oids[1]).unwrap().unwrap(),
            b"late"
        );
        // termination re-delivers from the durable decision
        assert_eq!(coord.recover(&g).unwrap(), Decision::Commit);
        assert_eq!(db0.peek(oids[0]).unwrap().unwrap(), b"late");
    }

    #[test]
    fn coord_log_survives_reload_and_ignores_torn_tail() {
        let dir = std::env::temp_dir().join(format!(
            "asset-coordlog-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("coord.log");
        {
            let log = CoordLog::at(&path).unwrap();
            log.record(7, Decision::Commit).unwrap();
            log.record(8, Decision::Abort).unwrap();
        }
        // torn tail: a crash mid-append left 3 bytes of a record
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[9, 0, 0]).unwrap();
        }
        let log = CoordLog::at(&path).unwrap();
        assert_eq!(log.decision(7), Some(Decision::Commit));
        assert_eq!(log.decision(8), Some(Decision::Abort));
        assert_eq!(log.decision(9), None, "torn record never happened");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn query_state_reports_the_lifecycle() {
        let (coord, transport, oids) = coordinator(1);
        let t = stage(transport.node(0), oids[0], b"s");
        let mut g = GlobalTxn::new(6);
        g.add_member(0, t);
        let state =
            |tp: &ChannelTransport| match tp.send(0, CommitMessage::QueryState { tid: t }).unwrap()
            {
                CommitMessage::State(s) => s,
                other => panic!("unexpected reply {other:?}"),
            };
        assert_eq!(state(&transport), ParticipantState::Other);
        assert_eq!(coord.commit(&g).unwrap(), Decision::Commit);
        assert_eq!(state(&transport), ParticipantState::Committed);
    }
}
